"""Tests for the CTMDP table-lookup, stochastic and adaptive policies."""

from __future__ import annotations

import pytest

from repro.ctmdp.policy_iteration import policy_iteration
from repro.dpm.adaptive import AdaptivePolicySolver
from repro.dpm.presets import paper_system
from repro.dpm.service_queue import stable, transfer
from repro.dpm.system import SystemState
from repro.errors import InvalidPolicyError
from repro.policies.optimal import (
    AdaptiveCTMDPPolicy,
    OptimalCTMDPPolicy,
    StochasticCTMDPPolicy,
    view_to_system_state,
)
from tests.policies.test_helpers_and_base import make_view


class TestViewToSystemState:
    def test_stable_mapping(self, paper_provider):
        view = make_view(paper_provider, mode="sleeping", occupancy=3)
        assert view_to_system_state(view, 5) == SystemState("sleeping", stable(3))

    def test_transfer_mapping_uses_waiting_plus_one(self, paper_provider):
        view = make_view(paper_provider, mode="active", in_transfer=True, occupancy=2)
        # waiting_count = occupancy - 1 = 1 in the fixture helper.
        assert view_to_system_state(view, 5) == SystemState("active", transfer(2))

    def test_transfer_boundary_clamped(self, paper_provider):
        view = make_view(paper_provider, mode="active", in_transfer=True, occupancy=6)
        state = view_to_system_state(view, 5)
        assert state.queue == transfer(5)


class TestOptimalCTMDPPolicy:
    @pytest.fixture(scope="class")
    def solved(self, paper_mdp):
        return policy_iteration(paper_mdp).policy

    def test_lookup_matches_table(self, solved, paper_model):
        policy = OptimalCTMDPPolicy(solved, paper_model.capacity)
        state = SystemState("sleeping", stable(5))
        assert policy.lookup(state) == solved.action(state)

    def test_decide_issues_table_action(self, solved, paper_model, paper_provider):
        policy = OptimalCTMDPPolicy(solved, paper_model.capacity)
        view = make_view(paper_provider, mode="sleeping", occupancy=5)
        desired = solved.action(SystemState("sleeping", stable(5)))
        decision = policy.decide(view)
        if desired == "sleeping":
            assert decision.command is None
        else:
            assert decision.command == desired

    def test_accepts_raw_mapping(self, paper_model, paper_provider):
        table = {SystemState("sleeping", stable(0)): "sleeping"}
        policy = OptimalCTMDPPolicy(table, paper_model.capacity)
        view = make_view(paper_provider, mode="sleeping", occupancy=0)
        assert policy.decide(view).command is None

    def test_empty_table_rejected(self, paper_model):
        with pytest.raises(InvalidPolicyError):
            OptimalCTMDPPolicy({}, paper_model.capacity)

    def test_label(self, solved, paper_model):
        assert (
            OptimalCTMDPPolicy(solved, 5, label="ctmdp(w=1)").name == "ctmdp(w=1)"
        )
        assert OptimalCTMDPPolicy(solved, 5).name == "OptimalCTMDPPolicy"


class TestStochasticCTMDPPolicy:
    @pytest.fixture(scope="class")
    def randomized(self, paper_mdp):
        from repro.ctmdp.linear_program import solve_constrained_lp

        return solve_constrained_lp(
            paper_mdp, "power", {"queue_length": 1.0}
        ).policy

    def test_reset_restores_stream(self, randomized, paper_provider):
        policy = StochasticCTMDPPolicy(randomized, 5, seed=3)
        view = make_view(paper_provider, mode="sleeping", occupancy=1)
        first = [policy.decide(view).command for _ in range(20)]
        policy.reset()
        second = [policy.decide(view).command for _ in range(20)]
        assert first == second

    def test_degenerate_states_deterministic(self, randomized, paper_provider):
        # A state whose distribution is a point mass always yields the
        # same command.
        policy = StochasticCTMDPPolicy(randomized, 5, seed=0)
        view = make_view(paper_provider, mode="waiting", occupancy=5)
        commands = {policy.decide(view).command for _ in range(50)}
        assert len(commands) == 1


class TestAdaptiveCTMDPPolicy:
    def test_tracks_rate_and_solves_lazily(self, paper_provider):
        solver = AdaptivePolicySolver(paper_system(), weight=1.0, band_width=0.3)
        policy = AdaptiveCTMDPPolicy(solver)
        policy.reset()
        view = make_view(paper_provider, mode="sleeping", occupancy=0)
        policy.decide(view)
        assert policy.n_solves == 1  # initial band

    def test_estimator_updates_on_arrivals(self, paper_provider):
        import dataclasses

        solver = AdaptivePolicySolver(paper_system(), weight=1.0, band_width=0.3)
        policy = AdaptiveCTMDPPolicy(solver)
        policy.reset()
        base = make_view(paper_provider, occupancy=1)
        for k in range(60):  # one arrival per second
            view = dataclasses.replace(base, time=float(k), event="arrival")
            policy.decide(view)
        assert policy.current_rate_estimate() == pytest.approx(1.0, rel=0.01)
