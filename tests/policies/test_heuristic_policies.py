"""Tests for the N-policy, greedy, timeout, always-on and oracle PMs."""

from __future__ import annotations

import pytest

from repro.errors import InvalidPolicyError
from repro.policies import (
    AlwaysOnPolicy,
    GreedyPolicy,
    MultiLevelTimeoutPolicy,
    NPolicy,
    OracleIdlePolicy,
    TimeoutPolicy,
)
from repro.policies.oracle import break_even_time
from repro.sim.workload import TraceArrivals
from tests.policies.test_helpers_and_base import make_view


class TestNPolicy:
    def test_wakes_at_threshold(self, paper_provider):
        policy = NPolicy(3, paper_provider)
        below = make_view(paper_provider, mode="sleeping", occupancy=2)
        at = make_view(paper_provider, mode="sleeping", occupancy=3)
        assert policy.decide(below).command is None
        assert policy.decide(at).command == "active"

    def test_sleeps_at_empty_transfer(self, paper_provider):
        policy = NPolicy(3, paper_provider)
        view = make_view(
            paper_provider, mode="active", in_transfer=True, occupancy=0
        )
        assert policy.decide(view).command == "sleeping"

    def test_keeps_serving_at_busy_transfer(self, paper_provider):
        policy = NPolicy(3, paper_provider)
        view = make_view(
            paper_provider, mode="active", in_transfer=True, occupancy=2
        )
        assert policy.decide(view).command == "active"  # explicit stay

    def test_cancels_powerdown_when_threshold_reached(self, paper_provider):
        policy = NPolicy(1, paper_provider)
        view = make_view(
            paper_provider, mode="active", switch_target="sleeping", occupancy=1
        )
        assert policy.decide(view).command == "active"

    def test_validation(self, paper_provider):
        with pytest.raises(InvalidPolicyError):
            NPolicy(0, paper_provider)
        with pytest.raises(InvalidPolicyError):
            NPolicy(2, paper_provider, sleep_mode="active")
        with pytest.raises(InvalidPolicyError):
            NPolicy(2, paper_provider, active_mode="sleeping")

    def test_name(self, paper_provider):
        assert NPolicy(4, paper_provider).name == "NPolicy(N=4)"
        assert GreedyPolicy(paper_provider).name == "GreedyPolicy"

    def test_greedy_is_n1(self, paper_provider):
        assert GreedyPolicy(paper_provider).n == 1


class TestTimeoutPolicy:
    def test_requests_recheck_while_countdown_runs(self, paper_provider):
        policy = TimeoutPolicy(5.0, paper_provider)
        policy.reset()
        view = make_view(paper_provider, mode="active", occupancy=0)
        decision = policy.decide(view)
        assert decision.command is None
        assert decision.recheck_after == pytest.approx(5.0)

    def test_sleeps_when_timer_expires(self, paper_provider):
        import dataclasses

        policy = TimeoutPolicy(5.0, paper_provider)
        policy.reset()
        idle = make_view(paper_provider, mode="active", occupancy=0)
        policy.decide(idle)  # starts the countdown at t=1
        fired = dataclasses.replace(idle, time=6.0, event="timer")
        assert policy.decide(fired).command == "sleeping"

    def test_arrival_resets_countdown(self, paper_provider):
        import dataclasses

        policy = TimeoutPolicy(5.0, paper_provider)
        policy.reset()
        idle = make_view(paper_provider, mode="active", occupancy=0)
        policy.decide(idle)
        busy = dataclasses.replace(idle, time=3.0, occupancy=1, event="arrival")
        policy.decide(busy)
        idle_again = dataclasses.replace(idle, time=4.0)
        decision = policy.decide(idle_again)
        assert decision.recheck_after == pytest.approx(5.0)

    def test_wakes_on_arrival(self, paper_provider):
        policy = TimeoutPolicy(5.0, paper_provider)
        policy.reset()
        view = make_view(paper_provider, mode="sleeping", occupancy=1)
        assert policy.decide(view).command == "active"

    def test_zero_timeout_sleeps_immediately(self, paper_provider):
        policy = TimeoutPolicy(0.0, paper_provider)
        policy.reset()
        view = make_view(paper_provider, mode="active", occupancy=0)
        assert policy.decide(view).command == "sleeping"

    def test_validation(self, paper_provider):
        with pytest.raises(InvalidPolicyError):
            TimeoutPolicy(-1.0, paper_provider)


class TestMultiLevelTimeoutPolicy:
    @pytest.fixture
    def policy(self, paper_provider):
        p = MultiLevelTimeoutPolicy(
            stages=(("waiting", 2.0), ("sleeping", 8.0)), provider=paper_provider
        )
        p.reset()
        return p

    def test_cascades_through_stages(self, policy, paper_provider):
        import dataclasses

        idle = make_view(paper_provider, mode="active", occupancy=0)
        d0 = policy.decide(idle)  # t = 1, countdown starts
        assert d0.command is None and d0.recheck_after == pytest.approx(2.0)
        at_first = dataclasses.replace(idle, time=3.0, event="timer")
        d1 = policy.decide(at_first)
        assert d1.command == "waiting"
        assert d1.recheck_after == pytest.approx(8.0)
        at_second = dataclasses.replace(
            idle, time=11.0, mode="waiting", event="timer"
        )
        d2 = policy.decide(at_second)
        assert d2.command == "sleeping"
        assert d2.recheck_after is None

    def test_wakes_on_arrival(self, policy, paper_provider):
        view = make_view(paper_provider, mode="sleeping", occupancy=1)
        assert policy.decide(view).command == "active"

    def test_validation(self, paper_provider):
        with pytest.raises(InvalidPolicyError):
            MultiLevelTimeoutPolicy((), paper_provider)
        with pytest.raises(InvalidPolicyError):
            MultiLevelTimeoutPolicy((("active", 1.0),), paper_provider)
        with pytest.raises(InvalidPolicyError):
            MultiLevelTimeoutPolicy((("waiting", -1.0),), paper_provider)


class TestAlwaysOnPolicy:
    def test_drives_to_active(self, paper_provider):
        policy = AlwaysOnPolicy(paper_provider)
        view = make_view(paper_provider, mode="sleeping", occupancy=0)
        assert policy.decide(view).command == "active"

    def test_no_op_when_active(self, paper_provider):
        policy = AlwaysOnPolicy(paper_provider)
        view = make_view(paper_provider, mode="active", occupancy=0)
        assert policy.decide(view).command is None


class TestOracleIdlePolicy:
    def test_break_even_time_formula(self, paper_provider):
        # (ene(A->S) + ene(S->A)) / (P_active - P_sleep).
        expected = (0.5 + 11.0) / (40.0 - 0.1)
        assert break_even_time(paper_provider, "sleeping", "active") == pytest.approx(
            expected
        )

    def test_break_even_requires_power_gap(self, paper_provider):
        with pytest.raises(InvalidPolicyError):
            break_even_time(paper_provider, "active", "active")

    def test_sleeps_only_for_long_idle(self, paper_provider):
        trace = TraceArrivals([100.0])
        policy = OracleIdlePolicy(trace, paper_provider)
        long_idle = make_view(paper_provider, mode="active", occupancy=0)
        assert policy.decide(long_idle).command == "sleeping"

        soon = TraceArrivals([1.1])
        policy2 = OracleIdlePolicy(soon, paper_provider)
        short_idle = make_view(paper_provider, mode="active", occupancy=0)
        assert policy2.decide(short_idle).command is None

    def test_prewake_scheduling(self, paper_provider):
        trace = TraceArrivals([100.0])
        policy = OracleIdlePolicy(trace, paper_provider)
        asleep = make_view(paper_provider, mode="sleeping", occupancy=0)
        decision = policy.decide(asleep)
        assert decision.command is None
        # Pre-wake fires one mean wake latency (1.1 s) before t = 100.
        assert decision.recheck_after == pytest.approx(100.0 - 1.0 - 1.1)

    def test_is_clairvoyant(self, paper_provider):
        policy = OracleIdlePolicy(TraceArrivals([1.0]), paper_provider)
        assert policy.clairvoyant
