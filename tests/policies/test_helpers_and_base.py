"""Tests for the policy interface and shared command plumbing."""

from __future__ import annotations

import pytest

from repro.policies.base import Decision, SystemView
from repro.policies.helpers import command_if_needed


def make_view(
    paper_provider,
    mode="active",
    switch_target=None,
    in_transfer=False,
    occupancy=0,
    event="arrival",
):
    return SystemView(
        time=1.0,
        event=event,
        mode=mode,
        switch_target=switch_target,
        in_transfer=in_transfer,
        occupancy=occupancy,
        waiting_count=max(0, occupancy - 1),
        is_serving=occupancy > 0,
        capacity=5,
        arrival_lost=False,
        provider=paper_provider,
    )


class TestCommandIfNeeded:
    def test_none_desired_no_command(self, paper_provider):
        d = command_if_needed(make_view(paper_provider), None)
        assert d.command is None and d.recheck_after is None

    def test_already_there_no_command(self, paper_provider):
        d = command_if_needed(make_view(paper_provider, mode="active"), "active")
        assert d.command is None

    def test_already_heading_no_command(self, paper_provider):
        view = make_view(paper_provider, mode="active", switch_target="sleeping")
        d = command_if_needed(view, "sleeping")
        assert d.command is None

    def test_redirect_issues_command(self, paper_provider):
        view = make_view(paper_provider, mode="active", switch_target="sleeping")
        d = command_if_needed(view, "waiting")
        assert d.command == "waiting"

    def test_transfer_always_explicit(self, paper_provider):
        view = make_view(paper_provider, mode="active", in_transfer=True)
        d = command_if_needed(view, "active")
        assert d.command == "active"  # explicit stay resolves the transfer

    def test_recheck_passthrough(self, paper_provider):
        d = command_if_needed(make_view(paper_provider), None, recheck_after=2.0)
        assert d.recheck_after == 2.0


class TestSystemView:
    def test_is_idle(self, paper_provider):
        assert make_view(paper_provider, occupancy=0).is_idle
        assert not make_view(paper_provider, occupancy=2).is_idle

    def test_decision_defaults(self):
        d = Decision()
        assert d.command is None and d.recheck_after is None
