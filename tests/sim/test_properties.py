"""Property-based tests (hypothesis) for the simulator's invariants."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dpm.presets import paper_service_provider
from repro.policies import GreedyPolicy, NPolicy, TimeoutPolicy
from repro.sim import PoissonProcess, simulate


def make_policy(kind: str, param: int, provider):
    if kind == "npolicy":
        return NPolicy(1 + param % 5, provider)
    if kind == "timeout":
        return TimeoutPolicy(float(param % 7), provider)
    return GreedyPolicy(provider)


@st.composite
def sim_configs(draw):
    return {
        "seed": draw(st.integers(0, 10_000)),
        "rate": draw(st.sampled_from([1 / 8, 1 / 5, 1 / 3])),
        "kind": draw(st.sampled_from(["npolicy", "timeout", "greedy"])),
        "param": draw(st.integers(0, 10)),
        "capacity": draw(st.integers(1, 6)),
    }


class TestSimulationInvariants:
    @given(config=sim_configs())
    @settings(max_examples=20, deadline=None)
    def test_conservation_and_positivity(self, config):
        provider = paper_service_provider()
        result = simulate(
            provider=provider,
            capacity=config["capacity"],
            workload=PoissonProcess(config["rate"]),
            policy=make_policy(config["kind"], config["param"], provider),
            n_requests=400,
            seed=config["seed"],
        )
        # Request conservation.
        assert result.n_accepted + result.n_lost == result.n_generated
        assert result.n_completed + result.n_unserved == result.n_accepted
        # Physical bounds.
        assert result.elapsed > 0
        assert 0 < result.average_power <= 40.0 + 60.0  # switching spikes bounded
        assert 0 <= result.average_queue_length <= config["capacity"]
        assert result.average_waiting_time >= 0
        assert 0 <= result.loss_probability <= 1
        # Residency sums to elapsed time.
        assert sum(result.mode_residency.values()) == pytest.approx(
            result.elapsed, rel=1e-9
        )

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_policies_share_arrival_realization(self, seed):
        # Same seed => identical arrival count/losses structure across
        # different policies is NOT guaranteed (losses depend on queue),
        # but the generated count is, and results are reproducible.
        provider = paper_service_provider()
        a = simulate(
            provider, 5, PoissonProcess(1 / 6), GreedyPolicy(provider),
            n_requests=300, seed=seed,
        )
        b = simulate(
            provider, 5, PoissonProcess(1 / 6), NPolicy(3, provider),
            n_requests=300, seed=seed,
        )
        assert a.n_generated == b.n_generated == 300

    @given(seed=st.integers(0, 1000), n=st.integers(1, 5))
    @settings(max_examples=10, deadline=None)
    def test_waiting_time_exceeds_service_time_floor(self, seed, n):
        # Every completed request spends at least its service time in
        # the system, so the mean sojourn is at least ~the mean service
        # time (statistically; use a generous floor).
        provider = paper_service_provider()
        result = simulate(
            provider, 5, PoissonProcess(1 / 6), NPolicy(n, provider),
            n_requests=400, seed=seed,
        )
        assert result.average_waiting_time > 0.5 * 1.5
