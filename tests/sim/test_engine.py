"""Tests for the discrete-event scheduler."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.engine import EventScheduler


class TestEventScheduler:
    def test_events_pop_in_time_order(self):
        sched = EventScheduler()
        sched.schedule_at(3.0, "c")
        sched.schedule_at(1.0, "a")
        sched.schedule_at(2.0, "b")
        assert [sched.pop().kind for _ in range(3)] == ["a", "b", "c"]

    def test_fifo_tie_breaking(self):
        sched = EventScheduler()
        sched.schedule_at(1.0, "first")
        sched.schedule_at(1.0, "second")
        assert sched.pop().kind == "first"
        assert sched.pop().kind == "second"

    def test_now_advances_with_pops(self):
        sched = EventScheduler()
        sched.schedule_at(5.0, "x")
        assert sched.now == 0.0
        sched.pop()
        assert sched.now == 5.0

    def test_schedule_after_uses_now(self):
        sched = EventScheduler()
        sched.schedule_at(2.0, "x")
        sched.pop()
        handle = sched.schedule_after(3.0, "y")
        assert handle.time == 5.0

    def test_cancelled_events_skipped(self):
        sched = EventScheduler()
        h = sched.schedule_at(1.0, "cancel-me")
        sched.schedule_at(2.0, "keep")
        h.cancel()
        assert sched.pop().kind == "keep"

    def test_pop_empty_returns_none(self):
        assert EventScheduler().pop() is None

    def test_cannot_schedule_in_past(self):
        sched = EventScheduler()
        sched.schedule_at(5.0, "x")
        sched.pop()
        with pytest.raises(SimulationError):
            sched.schedule_at(4.0, "late")
        with pytest.raises(SimulationError):
            sched.schedule_after(-1.0, "negative")

    def test_peek_time_skips_cancelled(self):
        sched = EventScheduler()
        h = sched.schedule_at(1.0, "gone")
        sched.schedule_at(2.0, "next")
        h.cancel()
        assert sched.peek_time() == 2.0

    def test_len_counts_live_events(self):
        sched = EventScheduler()
        h1 = sched.schedule_at(1.0, "a")
        sched.schedule_at(2.0, "b")
        assert len(sched) == 2
        h1.cancel()
        assert len(sched) == 1

    def test_payload_carried(self):
        sched = EventScheduler()
        sched.schedule_at(1.0, "x", payload={"k": 1})
        assert sched.pop().payload == {"k": 1}
