"""Tests for replicated runs and confidence intervals."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.policies import GreedyPolicy, NPolicy
from repro.sim.batch import compare_policies, run_replications, summarize
from repro.sim.workload import PoissonProcess

LAM = 1.0 / 6.0


@pytest.fixture(scope="module")
def replications(paper_provider):
    return run_replications(
        provider=paper_provider,
        capacity=5,
        workload_factory=lambda: PoissonProcess(LAM),
        policy_factory=lambda: GreedyPolicy(paper_provider),
        n_requests=1500,
        n_replications=8,
        base_seed=100,
    )


class TestRunReplications:
    def test_distinct_seeds(self, replications):
        assert sorted(r.seed for r in replications) == list(range(100, 108))

    def test_results_vary_across_seeds(self, replications):
        powers = {r.average_power for r in replications}
        assert len(powers) == len(replications)

    def test_invalid_count_rejected(self, paper_provider):
        with pytest.raises(SimulationError):
            run_replications(
                paper_provider, 5, lambda: PoissonProcess(LAM),
                lambda: GreedyPolicy(paper_provider), 10, 0,
            )


class TestSummarize:
    def test_interval_contains_mean(self, replications):
        summary = summarize(replications)["average_power"]
        low, high = summary.interval
        assert low < summary.mean < high
        assert summary.n_replications == 8

    def test_interval_width_shrinks_with_replications(self, replications):
        wide = summarize(replications[:3])["average_power"]
        narrow = summarize(replications)["average_power"]
        assert narrow.std_error < wide.std_error * 2  # noisy but sane
        assert narrow.half_width < wide.half_width

    def test_interval_covers_truth(self, paper_model, replications):
        # The analytic greedy value should land inside (or very near)
        # the 95% interval.
        from repro.dpm.analysis import evaluate_dpm_policy
        from repro.dpm.model_policies import as_policy, greedy_assignment

        mdp = paper_model.build_ctmdp(0.0)
        truth = evaluate_dpm_policy(
            paper_model, as_policy(mdp, greedy_assignment(paper_model))
        ).average_power
        summary = summarize(replications)["average_power"]
        low, high = summary.interval
        margin = 3 * summary.half_width  # generous: 1.5k-request runs
        assert low - margin <= truth <= high + margin

    def test_single_replication_has_nan_width(self, replications):
        import math

        summary = summarize(replications[:1])["average_power"]
        assert math.isnan(summary.half_width)

    def test_validation(self, replications):
        with pytest.raises(SimulationError):
            summarize([])
        with pytest.raises(SimulationError):
            summarize(replications, confidence=1.5)


class TestComparePolicies:
    def test_common_seeds_and_ordering(self, paper_provider):
        table = compare_policies(
            provider=paper_provider,
            capacity=5,
            workload_factory=lambda: PoissonProcess(LAM),
            policy_factories={
                "greedy": lambda: GreedyPolicy(paper_provider),
                "n3": lambda: NPolicy(3, paper_provider),
            },
            n_requests=1500,
            n_replications=5,
            base_seed=7,
        )
        assert set(table) == {"greedy", "n3"}
        # N=3 saves power vs greedy; with common random numbers the
        # ordering holds on the means.
        assert (
            table["n3"]["average_power"].mean
            < table["greedy"]["average_power"].mean
        )
