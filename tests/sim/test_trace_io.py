"""Tests for trace and result persistence."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError, TraceIntegrityError
from repro.sim.trace_io import load_result, load_trace, save_result, save_trace
from repro.sim.workload import TraceArrivals


class TestTraceRoundTrip:
    def test_round_trip_preserves_times(self, tmp_path):
        trace = TraceArrivals([0.5, 1.25, 7.125])
        path = tmp_path / "trace.csv"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.times == trace.times

    def test_round_trip_exact_floats(self, tmp_path):
        import numpy as np

        times = np.cumsum(np.random.default_rng(0).exponential(3.0, 50)).tolist()
        path = tmp_path / "trace.csv"
        save_trace(TraceArrivals(times), path)
        assert load_trace(path).times == times  # repr round-trip is exact

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("1.0\n2.0\n")
        with pytest.raises(SimulationError, match="header"):
            load_trace(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("time\n1.0\n\n2.0\n")
        assert load_trace(path).times == [1.0, 2.0]

    def test_unsorted_trace_rejected_on_load(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("time\n2.0\n1.0\n")
        from repro.errors import InvalidModelError

        with pytest.raises(InvalidModelError):
            load_trace(path)


class TestTraceIntegrity:
    def write(self, tmp_path):
        path = tmp_path / "trace.csv"
        save_trace(TraceArrivals([0.5, 1.25, 7.125]), path)
        return path

    def test_edited_cell_detected(self, tmp_path):
        path = self.write(tmp_path)
        lines = path.read_text().splitlines()
        lines[2] = "1.5"  # hand-edit one timestamp
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(
            TraceIntegrityError, match="checksum mismatch"
        ) as excinfo:
            load_trace(path)
        assert str(path) in str(excinfo.value)

    def test_truncated_file_detected(self, tmp_path):
        path = self.write(tmp_path)
        lines = path.read_text().splitlines()
        del lines[2]  # drop a row, keep the footer
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceIntegrityError, match="truncated"):
            load_trace(path)

    def test_unparseable_cell_names_path_and_line(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("time\n1.0\nnot-a-number\n")
        with pytest.raises(
            TraceIntegrityError, match=rf"{path}:3: unparseable"
        ):
            load_trace(path)

    def test_malformed_footer_detected(self, tmp_path):
        path = self.write(tmp_path)
        lines = path.read_text().splitlines()
        lines[-1] = "# sha256=abc count=three"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceIntegrityError, match="malformed"):
            load_trace(path)

    def test_legacy_file_without_footer_loads(self, tmp_path):
        path = tmp_path / "legacy.csv"
        path.write_text("time\n1.0\n2.0\n")
        assert load_trace(path).times == [1.0, 2.0]

    def test_missing_file_is_simulation_error(self, tmp_path):
        with pytest.raises(SimulationError, match="cannot read"):
            load_trace(tmp_path / "nope.csv")

    def test_integrity_error_is_a_simulation_error(self):
        assert issubclass(TraceIntegrityError, SimulationError)


class TestResultRoundTrip:
    @pytest.fixture
    def result(self, paper_provider):
        from repro.policies import GreedyPolicy
        from repro.sim import PoissonProcess, simulate

        return simulate(
            paper_provider, 5, PoissonProcess(1 / 6), GreedyPolicy(paper_provider),
            n_requests=300, seed=2,
        )

    def test_round_trip(self, tmp_path, result):
        path = tmp_path / "result.json"
        save_result(result, path)
        loaded = load_result(path)
        assert loaded == result

    def test_unknown_field_rejected(self, tmp_path, result):
        import json

        path = tmp_path / "result.json"
        save_result(result, path)
        payload = json.loads(path.read_text())
        payload["bogus"] = 1
        path.write_text(json.dumps(payload))
        with pytest.raises(SimulationError, match="unknown"):
            load_result(path)

    def test_missing_field_rejected(self, tmp_path, result):
        import json

        path = tmp_path / "result.json"
        save_result(result, path)
        payload = json.loads(path.read_text())
        del payload["average_power"]
        path.write_text(json.dumps(payload))
        with pytest.raises(SimulationError, match="missing"):
            load_result(path)

    def test_tampered_value_detected(self, tmp_path, result):
        import json

        path = tmp_path / "result.json"
        save_result(result, path)
        payload = json.loads(path.read_text())
        payload["average_power"] = payload["average_power"] * 1.1
        path.write_text(json.dumps(payload))
        with pytest.raises(
            TraceIntegrityError, match="checksum mismatch"
        ) as excinfo:
            load_result(path)
        assert str(path) in str(excinfo.value)

    def test_truncated_json_detected(self, tmp_path, result):
        path = tmp_path / "result.json"
        save_result(result, path)
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        with pytest.raises(TraceIntegrityError, match="not valid JSON"):
            load_result(path)

    def test_legacy_result_without_checksum_loads(self, tmp_path, result):
        import json

        path = tmp_path / "result.json"
        save_result(result, path)
        payload = json.loads(path.read_text())
        del payload["checksum"]
        path.write_text(json.dumps(payload))
        assert load_result(path) == result

    def test_missing_file_is_simulation_error(self, tmp_path):
        with pytest.raises(SimulationError, match="cannot read"):
            load_result(tmp_path / "nope.json")
