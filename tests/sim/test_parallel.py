"""Tests for the process-pool replication engine.

The contract under test: for *any* ``n_jobs``, parallel results are
byte-identical to the serial run -- each replication is fully determined
by its seed, workers receive contiguous index chunks, and ``pool.map``
preserves order.
"""

from __future__ import annotations

import os

import pytest

from repro.errors import SimulationError
from repro.policies import GreedyPolicy, NPolicy
from repro.sim.batch import compare_policies, run_replications
from repro.sim.parallel import _chunk_indices, parallel_map, resolve_n_jobs
from repro.sim.workload import PoissonProcess

LAM = 1.0 / 6.0


def _replications(paper_provider, n_jobs, n_replications=6, base_seed=40):
    return run_replications(
        provider=paper_provider,
        capacity=5,
        workload_factory=lambda: PoissonProcess(LAM),
        policy_factory=lambda: GreedyPolicy(paper_provider),
        n_requests=600,
        n_replications=n_replications,
        base_seed=base_seed,
        n_jobs=n_jobs,
    )


class TestResolveNJobs:
    def test_none_means_serial(self):
        assert resolve_n_jobs(None) == 1

    def test_positive_passthrough(self):
        assert resolve_n_jobs(3) == 3

    def test_negative_means_all_cores(self):
        assert resolve_n_jobs(-1) == max(1, os.cpu_count() or 1)

    def test_zero_rejected(self):
        with pytest.raises(SimulationError):
            resolve_n_jobs(0)


class TestChunking:
    def test_chunks_partition_in_order(self):
        chunks = _chunk_indices(10, 4)
        assert [i for chunk in chunks for i in chunk] == list(range(10))

    def test_no_empty_chunks(self):
        assert all(_chunk_indices(3, 8))

    def test_near_equal_sizes(self):
        sizes = {len(chunk) for chunk in _chunk_indices(13, 4)}
        assert max(sizes) - min(sizes) <= 1


class TestParallelMap:
    def test_order_preserved(self):
        assert parallel_map(lambda x: x * x, range(23), n_jobs=4) == [
            x * x for x in range(23)
        ]

    def test_empty_items(self):
        assert parallel_map(lambda x: x, [], n_jobs=4) == []

    def test_fewer_items_than_jobs(self):
        assert parallel_map(lambda x: -x, [7], n_jobs=8) == [-7]

    def test_nested_calls_degrade_to_serial(self):
        def outer(x):
            return sum(parallel_map(lambda y: x * y, range(3), n_jobs=2))

        assert parallel_map(outer, range(4), n_jobs=2) == [
            sum(x * y for y in range(3)) for x in range(4)
        ]

    def test_negative_max_retries_rejected(self):
        with pytest.raises(SimulationError):
            parallel_map(lambda x: x, [1], max_retries=-1)

    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(SimulationError):
            parallel_map(lambda x: x, [1], timeout_s=0.0)


class TestSerialFallbackAnnouncement:
    """Silent capacity loss is forbidden: both serial-fallback paths
    must emit a RuntimeWarning naming the reason plus the
    ``parallel.serial_fallbacks`` profiling counter."""

    def _run_counting(self, **kwargs):
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.runtime import instrument

        registry = MetricsRegistry()
        with instrument(metrics=registry):
            results = parallel_map(lambda x: x + 1, range(5), **kwargs)
        return results, registry

    def test_nested_call_warns_and_counts(self, monkeypatch):
        import repro.sim.parallel as parallel_module

        # A non-None _WORK is exactly the state a forked worker sees.
        monkeypatch.setattr(parallel_module, "_WORK", (None, None))
        with pytest.warns(RuntimeWarning, match="nested parallel_map"):
            results, registry = self._run_counting(n_jobs=2)
        assert results == [1, 2, 3, 4, 5]
        assert (
            registry.counter("parallel.serial_fallbacks", profiling=True).value
            == 1
        )

    def test_missing_fork_warns_and_counts(self, monkeypatch):
        import types

        import repro.sim.parallel as parallel_module

        def no_fork(method):
            raise ValueError(f"cannot find context for {method!r}")

        monkeypatch.setattr(
            parallel_module, "multiprocessing",
            types.SimpleNamespace(get_context=no_fork),
        )
        with pytest.warns(RuntimeWarning, match="no 'fork' start method"):
            results, registry = self._run_counting(n_jobs=2)
        assert results == [1, 2, 3, 4, 5]
        assert (
            registry.counter("parallel.serial_fallbacks", profiling=True).value
            == 1
        )

    def test_plain_serial_run_does_not_warn(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            results, registry = self._run_counting(n_jobs=1)
        assert results == [1, 2, 3, 4, 5]
        assert "parallel.serial_fallbacks" not in registry

    def test_parallel_run_does_not_warn(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            results, _ = self._run_counting(n_jobs=2)
        assert results == [1, 2, 3, 4, 5]


class TestWorkerMetricsMerge:
    """Worker registries merge back into the parent, equal to serial."""

    @staticmethod
    def _work(x):
        from repro.obs.runtime import active

        ins = active()
        if ins.metrics is not None:
            ins.metrics.counter("work.calls").inc()
            ins.metrics.counter("work.total").inc(x * 0.1)
            ins.metrics.histogram("work.values", bounds=(2.0, 8.0)).observe(x)
            ins.metrics.series("work.rows").append(x=x)
        with ins.span("work.item", x=x):
            return x * x

    def _run(self, n_jobs):
        import json

        from repro.obs.metrics import MetricsRegistry
        from repro.obs.runtime import instrument
        from repro.obs.trace import Tracer

        registry, tracer = MetricsRegistry(), Tracer()
        with instrument(metrics=registry, tracer=tracer):
            results = parallel_map(self._work, range(17), n_jobs=n_jobs)
        return results, json.dumps(registry.to_dict(), sort_keys=True), tracer

    @pytest.mark.parametrize("n_jobs", [2, 3, 8])
    def test_parallel_metrics_equal_serial_bitwise(self, n_jobs):
        serial_results, serial_metrics, _ = self._run(1)
        par_results, par_metrics, _ = self._run(n_jobs)
        assert par_results == serial_results
        assert par_metrics == serial_metrics

    def test_series_rows_keep_input_order(self):
        _, metrics_json, _ = self._run(4)
        import json

        rows = json.loads(metrics_json)["work.rows"]["records"]
        assert [r["x"] for r in rows] == list(range(17))

    def test_worker_spans_adopted_under_open_span(self):
        import json

        from repro.obs.metrics import MetricsRegistry
        from repro.obs.runtime import instrument
        from repro.obs.trace import Tracer

        registry, tracer = MetricsRegistry(), Tracer()
        with instrument(metrics=registry, tracer=tracer) as ins:
            with ins.span("fan_out") as fan:
                parallel_map(self._work, range(6), n_jobs=2)
        spans = tracer.to_dicts()
        workers = [s for s in spans if s["name"] == "work.item"]
        assert len(workers) == 6
        assert all(s["parent_id"] == fan.span_id for s in workers)
        ids = [s["span_id"] for s in spans]
        assert len(ids) == len(set(ids))

    def test_uninstrumented_pool_returns_plain_results(self):
        assert parallel_map(self._work, range(5), n_jobs=2) == [
            x * x for x in range(5)
        ]


class TestReplicationIdentity:
    @pytest.fixture(scope="class")
    def serial(self, paper_provider):
        return _replications(paper_provider, n_jobs=None)

    @pytest.mark.parametrize("n_jobs", [1, 2, 3, 8, -1])
    def test_identical_to_serial(self, paper_provider, serial, n_jobs):
        assert _replications(paper_provider, n_jobs=n_jobs) == serial

    def test_compare_policies_identical(self, paper_provider):
        kwargs = dict(
            provider=paper_provider,
            capacity=5,
            workload_factory=lambda: PoissonProcess(LAM),
            policy_factories={
                "greedy": lambda: GreedyPolicy(paper_provider),
                "npolicy-2": lambda: NPolicy(2, paper_provider),
            },
            n_requests=600,
            n_replications=4,
            base_seed=9,
        )
        assert compare_policies(n_jobs=3, **kwargs) == compare_policies(**kwargs)

    def test_invalid_n_jobs_rejected(self, paper_provider):
        with pytest.raises(SimulationError):
            _replications(paper_provider, n_jobs=0)
