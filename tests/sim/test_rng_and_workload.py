"""Tests for random streams and arrival processes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InvalidModelError
from repro.sim.rng import RandomStreams
from repro.sim.workload import (
    MMPPProcess,
    PiecewiseRateProcess,
    PoissonProcess,
    TraceArrivals,
)


class TestRandomStreams:
    def test_same_name_same_stream_object(self):
        streams = RandomStreams(1)
        assert streams.stream("a") is streams.stream("a")

    def test_streams_reproducible_across_instances(self):
        a = RandomStreams(42).stream("arrivals").random(5)
        b = RandomStreams(42).stream("arrivals").random(5)
        np.testing.assert_array_equal(a, b)

    def test_streams_independent_of_request_order(self):
        s1 = RandomStreams(42)
        s1.stream("x")
        first = s1.stream("arrivals").random(3)
        s2 = RandomStreams(42)
        second = s2.stream("arrivals").random(3)
        np.testing.assert_array_equal(first, second)

    def test_different_names_differ(self):
        s = RandomStreams(0)
        assert not np.array_equal(s.stream("a").random(4), s.stream("b").random(4))

    def test_exponential_helper(self):
        s = RandomStreams(0)
        draws = [s.exponential("svc", 2.0) for _ in range(2000)]
        assert np.mean(draws) == pytest.approx(2.0, rel=0.1)
        with pytest.raises(ValueError):
            s.exponential("svc", 0.0)


class TestPoissonProcess:
    def test_mean_interarrival(self):
        p = PoissonProcess(0.5)
        p.reset(np.random.default_rng(0))
        t, gaps = 0.0, []
        for _ in range(4000):
            nxt = p.next_arrival(t)
            gaps.append(nxt - t)
            t = nxt
        assert np.mean(gaps) == pytest.approx(2.0, rel=0.05)

    def test_requires_reset(self):
        with pytest.raises(InvalidModelError):
            PoissonProcess(1.0).next_arrival(0.0)

    def test_rejects_bad_rate(self):
        with pytest.raises(InvalidModelError):
            PoissonProcess(0.0)


class TestPiecewiseRateProcess:
    def test_rate_at_segments(self):
        p = PiecewiseRateProcess([(10.0, 1.0), (10.0, 5.0)])
        assert p.rate_at(0.0) == 1.0
        assert p.rate_at(9.99) == 1.0
        assert p.rate_at(10.0) == 5.0
        assert p.rate_at(1e6) == 5.0  # final rate holds forever

    def test_empirical_rates_per_segment(self):
        p = PiecewiseRateProcess([(1000.0, 0.5), (1000.0, 4.0)])
        p.reset(np.random.default_rng(3))
        t, first, second = 0.0, 0, 0
        while t < 2000.0:
            t = p.next_arrival(t)
            if t < 1000.0:
                first += 1
            elif t < 2000.0:
                second += 1
        assert first == pytest.approx(500, rel=0.2)
        assert second == pytest.approx(4000, rel=0.1)

    def test_arrivals_strictly_increase(self):
        p = PiecewiseRateProcess([(5.0, 10.0), (5.0, 0.1)])
        p.reset(np.random.default_rng(1))
        t, prev = 0.0, -1.0
        for _ in range(200):
            t = p.next_arrival(t)
            assert t > prev
            prev = t

    def test_validation(self):
        with pytest.raises(InvalidModelError):
            PiecewiseRateProcess([])
        with pytest.raises(InvalidModelError):
            PiecewiseRateProcess([(1.0, -2.0)])


class TestMMPPProcess:
    def test_long_run_rate_matches_stationary_mix(self):
        from repro.markov.generator import stationary_distribution

        modulator = np.array([[-0.1, 0.1], [0.3, -0.3]])
        rates = (9.0, 1.0)
        p = MMPPProcess(rates, modulator)
        p.reset(np.random.default_rng(5))
        horizon = 20_000.0
        t, count = 0.0, 0
        while True:
            t = p.next_arrival(t)
            if t > horizon:
                break
            count += 1
        pi = stationary_distribution(modulator)
        expected = float(pi @ np.array(rates))
        assert count / horizon == pytest.approx(expected, rel=0.05)

    def test_zero_rate_phase_produces_gaps(self):
        # On/off source: no arrivals while "off".
        modulator = np.array([[-1.0, 1.0], [1.0, -1.0]])
        p = MMPPProcess((100.0, 0.0), modulator)
        p.reset(np.random.default_rng(2))
        t = 0.0
        gaps = []
        for _ in range(3000):
            nxt = p.next_arrival(t)
            gaps.append(nxt - t)
            t = nxt
        # Burst gaps ~10 ms; off periods ~1 s appear as outliers.
        assert max(gaps) > 0.5
        assert np.median(gaps) < 0.05

    def test_validation(self):
        good_mod = np.array([[-1.0, 1.0], [1.0, -1.0]])
        with pytest.raises(InvalidModelError):
            MMPPProcess((1.0,), good_mod)  # shape mismatch
        with pytest.raises(InvalidModelError):
            MMPPProcess((0.0, 0.0), good_mod)  # no arrivals at all
        with pytest.raises(InvalidModelError):
            MMPPProcess((1.0, 1.0), good_mod, initial_phase=5)


class TestTraceArrivals:
    def test_replays_in_order(self):
        trace = TraceArrivals([1.0, 2.5, 7.0])
        trace.reset(np.random.default_rng(0))
        assert trace.next_arrival(0.0) == 1.0
        assert trace.next_arrival(1.0) == 2.5
        assert trace.next_arrival(2.5) == 7.0
        assert trace.next_arrival(7.0) is None

    def test_reset_rewinds(self):
        trace = TraceArrivals([1.0, 2.0])
        trace.reset(np.random.default_rng(0))
        trace.next_arrival(0.0)
        trace.reset(np.random.default_rng(0))
        assert trace.next_arrival(0.0) == 1.0

    def test_peek_after_binary_search(self):
        trace = TraceArrivals([1.0, 2.0, 3.0])
        assert trace.peek_after(1.5) == 2.0
        assert trace.peek_after(2.0) == 3.0
        assert trace.peek_after(3.0) is None

    def test_rejects_unsorted_or_negative(self):
        with pytest.raises(InvalidModelError):
            TraceArrivals([2.0, 1.0])
        with pytest.raises(InvalidModelError):
            TraceArrivals([-1.0, 1.0])
