"""Integration-level tests of the event-driven simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dpm.presets import paper_system
from repro.errors import SimulationError
from repro.policies import AlwaysOnPolicy, GreedyPolicy, NPolicy, TimeoutPolicy
from repro.policies.base import Decision, PowerManagementPolicy
from repro.queueing.mm1k import MM1KQueue
from repro.sim import PoissonProcess, TraceArrivals, simulate

LAM = 1.0 / 6.0
MU = 1.0 / 1.5


class RecordingPolicy(PowerManagementPolicy):
    """Stays active forever while recording every view it sees."""

    def __init__(self):
        self.views = []

    def reset(self):
        self.views = []

    def decide(self, view):
        self.views.append(view)
        if view.mode != "active" and view.switch_target != "active":
            return Decision(command="active")
        return Decision()


class NeverWakePolicy(PowerManagementPolicy):
    """Pathological: never issues any command."""

    def decide(self, view):
        return Decision()


@pytest.fixture
def provider(paper_provider):
    return paper_provider


class TestAlwaysOnAgainstMM1K:
    """With the server pinned active the simulation is an M/M/1/5 queue."""

    @pytest.fixture(scope="class")
    def result(self, paper_provider):
        return simulate(
            provider=paper_provider,
            capacity=5,
            workload=PoissonProcess(LAM),
            policy=AlwaysOnPolicy(paper_provider),
            n_requests=40_000,
            seed=3,
            initial_mode="active",
        )

    @pytest.fixture(scope="class")
    def reference(self):
        return MM1KQueue(LAM, MU, capacity=5)

    def test_queue_length(self, result, reference):
        assert result.average_queue_length == pytest.approx(
            reference.mean_number_in_system(), rel=0.03
        )

    def test_sojourn_time(self, result, reference):
        assert result.average_waiting_time == pytest.approx(
            reference.mean_sojourn_time(), rel=0.03
        )

    def test_loss_probability(self, result, reference):
        assert result.loss_probability == pytest.approx(
            reference.blocking_probability(), abs=0.002
        )

    def test_power_is_active_power(self, result):
        assert result.average_power == pytest.approx(40.0, rel=0.01)

    def test_bookkeeping_consistent(self, result):
        assert result.n_generated == 40_000
        assert result.n_accepted + result.n_lost == result.n_generated
        assert result.n_completed == result.n_accepted
        assert result.n_unserved == 0


class TestReproducibility:
    def test_same_seed_same_result(self, provider):
        runs = [
            simulate(
                provider,
                5,
                PoissonProcess(LAM),
                GreedyPolicy(provider),
                n_requests=2000,
                seed=11,
            )
            for _ in range(2)
        ]
        assert runs[0].average_power == runs[1].average_power
        assert runs[0].average_waiting_time == runs[1].average_waiting_time
        assert runs[0].n_lost == runs[1].n_lost

    def test_different_seed_differs(self, provider):
        a = simulate(
            provider, 5, PoissonProcess(LAM), GreedyPolicy(provider),
            n_requests=2000, seed=1,
        )
        b = simulate(
            provider, 5, PoissonProcess(LAM), GreedyPolicy(provider),
            n_requests=2000, seed=2,
        )
        assert a.average_power != b.average_power


class TestPolicyPlumbing:
    def test_views_report_transfer_at_completion(self, provider):
        policy = RecordingPolicy()
        simulate(
            provider, 5, PoissonProcess(LAM), policy, n_requests=200, seed=0
        )
        completions = [v for v in policy.views if v.event == "service_complete"]
        assert completions
        assert all(v.in_transfer for v in completions)

    def test_events_seen(self, provider):
        policy = RecordingPolicy()
        simulate(
            provider, 5, PoissonProcess(LAM), policy, n_requests=200, seed=0
        )
        kinds = {v.event for v in policy.views}
        assert {"start", "arrival", "service_complete", "switch_complete"} <= kinds

    def test_pm_is_asynchronous(self, provider):
        # PM invocations scale with events, not with wall-clock ticks:
        # roughly (arrival + completion + switch) per request.
        result = simulate(
            provider, 5, PoissonProcess(LAM), GreedyPolicy(provider),
            n_requests=1000, seed=4,
        )
        assert result.n_pm_invocations < 10 * 1000
        assert result.n_pm_commands <= result.n_pm_invocations

    def test_policy_must_return_decision(self, provider):
        class BadPolicy(PowerManagementPolicy):
            def decide(self, view):
                return "active"

        with pytest.raises(SimulationError, match="expected Decision"):
            simulate(
                provider, 5, PoissonProcess(LAM), BadPolicy(), n_requests=10, seed=0
            )


class TestDrainSemantics:
    def test_never_wake_leaves_unserved(self, provider):
        trace = TraceArrivals([1.0, 2.0, 3.0])
        result = simulate(
            provider, 5, trace, NeverWakePolicy(), n_requests=3, seed=0
        )
        assert result.n_completed == 0
        assert result.n_unserved == 3
        assert result.average_power == pytest.approx(0.1, rel=1e-6)

    def test_trace_exhaustion_ends_run(self, provider):
        trace = TraceArrivals([1.0, 2.0])
        result = simulate(
            provider, 5, trace, GreedyPolicy(provider), n_requests=100, seed=0
        )
        assert result.n_generated == 2
        assert result.n_completed == 2

    def test_final_powerdown_switch_counted(self, provider):
        trace = TraceArrivals([1.0])
        result = simulate(
            provider, 5, trace, GreedyPolicy(provider), n_requests=1, seed=0
        )
        # wake (sleeping->active) + sleep (active->sleeping) both complete.
        assert result.n_switches == 2


class TestBusyPowerdown:
    class SleepOnceWhileBusyPolicy(PowerManagementPolicy):
        """Wakes on arrival, asks to sleep mid-service exactly once."""

        def __init__(self):
            self.asked = 0

        def reset(self):
            self.asked = 0

        def decide(self, view):
            if view.is_serving and view.mode == "active" and self.asked == 0:
                self.asked += 1
                return Decision(command="sleeping")
            heading = view.switch_target or view.mode
            if view.occupancy > 0 and not view.provider.is_active(heading):
                return Decision(command="active")
            return Decision()

    # A burst guarantees some arrival lands mid-service (the PM only
    # observes is_serving on events, and service starts after the
    # decision at a switch completion or transfer).
    BURST = [1.0, 1.2, 1.4, 1.6, 1.8]

    def test_reject_mode_refuses(self, provider):
        policy = self.SleepOnceWhileBusyPolicy()
        result = simulate(
            provider, 5, TraceArrivals(self.BURST), policy, n_requests=5,
            seed=0, busy_powerdown="reject",
        )
        assert policy.asked == 1
        assert result.n_completed == result.n_accepted
        # The refused command never started a power-down switch: only the
        # initial wake-up switch completes.
        assert result.n_switches == 1

    def test_preempt_mode_aborts_service(self, provider):
        policy = self.SleepOnceWhileBusyPolicy()
        result = simulate(
            provider, 5, TraceArrivals(self.BURST), policy, n_requests=5,
            seed=0, busy_powerdown="preempt",
        )
        assert policy.asked == 1
        # The aborted request is re-queued and eventually completes
        # after the wake that follows the preemption.
        assert result.n_completed == result.n_accepted
        assert result.n_switches >= 3

    def test_invalid_mode_rejected(self, provider):
        with pytest.raises(SimulationError):
            simulate(
                provider, 5, TraceArrivals([1.0]), NeverWakePolicy(),
                n_requests=1, seed=0, busy_powerdown="maybe",
            )


class TestHeuristicOrdering:
    def test_timeout_zero_close_to_greedy(self, provider):
        greedy = simulate(
            provider, 5, PoissonProcess(LAM), GreedyPolicy(provider),
            n_requests=5000, seed=9,
        )
        t0 = simulate(
            provider, 5, PoissonProcess(LAM), TimeoutPolicy(0.0, provider),
            n_requests=5000, seed=9,
        )
        assert t0.average_power == pytest.approx(greedy.average_power, rel=0.02)

    def test_longer_timeout_burns_more_power(self, provider):
        results = [
            simulate(
                provider, 5, PoissonProcess(LAM), TimeoutPolicy(t, provider),
                n_requests=4000, seed=9,
            )
            for t in (0.5, 3.0, 12.0)
        ]
        powers = [r.average_power for r in results]
        assert powers == sorted(powers)

    def test_npolicy_power_decreases_with_n(self, provider):
        powers = []
        for n in (1, 3, 5):
            r = simulate(
                provider, 5, PoissonProcess(LAM), NPolicy(n, provider),
                n_requests=5000, seed=9,
            )
            powers.append(r.average_power)
        assert powers == sorted(powers, reverse=True)
