"""Tests for the service-time distribution samplers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InvalidModelError
from repro.sim.distributions import (
    DeterministicService,
    ErlangService,
    ExponentialService,
    HyperexponentialService,
)


def empirical_moments(dist, mean=2.0, n=60_000, seed=0):
    rng = np.random.default_rng(seed)
    samples = np.array([dist.sample(mean, rng) for _ in range(n)])
    emp_mean = samples.mean()
    emp_scv = samples.var() / emp_mean**2
    return emp_mean, emp_scv


class TestDistributions:
    @pytest.mark.parametrize(
        "dist",
        [
            ExponentialService(),
            DeterministicService(),
            ErlangService(4),
            HyperexponentialService(4.0),
        ],
        ids=["exp", "det", "erlang4", "h2"],
    )
    def test_mean_preserved(self, dist):
        emp_mean, _ = empirical_moments(dist)
        assert emp_mean == pytest.approx(2.0, rel=0.03)

    @pytest.mark.parametrize(
        "dist, scv",
        [
            (ExponentialService(), 1.0),
            (DeterministicService(), 0.0),
            (ErlangService(4), 0.25),
            (HyperexponentialService(4.0), 4.0),
        ],
        ids=["exp", "det", "erlang4", "h2"],
    )
    def test_scv_matches_declaration(self, dist, scv):
        assert dist.scv == pytest.approx(scv)
        _, emp_scv = empirical_moments(dist)
        assert emp_scv == pytest.approx(scv, abs=0.12)

    def test_samples_positive(self):
        rng = np.random.default_rng(1)
        for dist in (ErlangService(2), HyperexponentialService(2.0)):
            assert all(dist.sample(1.0, rng) > 0 for _ in range(100))

    def test_validation(self):
        with pytest.raises(InvalidModelError):
            ErlangService(0)
        with pytest.raises(InvalidModelError):
            HyperexponentialService(1.0)


class TestSimulatorIntegration:
    def test_deterministic_service_tightens_mm1k(self, paper_provider):
        """M/D/1-style service halves queueing vs M/M/1 at the same
        utilization (Pollaczek-Khinchine); the simulator must show less
        waiting under deterministic service with an always-on server."""
        from repro.policies import AlwaysOnPolicy
        from repro.sim import PoissonProcess, simulate

        common = dict(
            provider=paper_provider,
            capacity=5,
            policy=AlwaysOnPolicy(paper_provider),
            n_requests=20_000,
            seed=9,
            initial_mode="active",
        )
        exp = simulate(workload=PoissonProcess(1 / 3), **common)
        det = simulate(
            workload=PoissonProcess(1 / 3),
            service_distribution=DeterministicService(),
            **common,
        )
        assert det.average_waiting_time < exp.average_waiting_time

    def test_h2_service_worsens_waiting(self, paper_provider):
        from repro.policies import AlwaysOnPolicy
        from repro.sim import PoissonProcess, simulate
        from repro.sim.distributions import HyperexponentialService

        common = dict(
            provider=paper_provider,
            capacity=5,
            policy=AlwaysOnPolicy(paper_provider),
            n_requests=20_000,
            seed=9,
            initial_mode="active",
        )
        exp = simulate(workload=PoissonProcess(1 / 3), **common)
        h2 = simulate(
            workload=PoissonProcess(1 / 3),
            service_distribution=HyperexponentialService(6.0),
            **common,
        )
        assert h2.average_waiting_time > exp.average_waiting_time
