"""Tests for the time-weighted statistics collector."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.stats import StatsCollector


class TestStatsCollector:
    def test_power_integral(self):
        stats = StatsCollector()
        stats.set_power(0.0, 10.0)
        stats.set_power(2.0, 40.0)  # 10 W for 2 s
        stats.finalize(3.0)  # 40 W for 1 s
        assert stats.energy == pytest.approx(60.0)
        assert stats.average_power() == pytest.approx(20.0)

    def test_switch_energy_added(self):
        stats = StatsCollector()
        stats.set_power(0.0, 0.0)
        stats.add_switch_energy(11.0)
        stats.add_switch_energy(0.5)
        stats.finalize(1.0)
        assert stats.energy == pytest.approx(11.5)
        assert stats.n_switches == 2

    def test_queue_integral(self):
        stats = StatsCollector()
        stats.set_queue_length(0.0, 0)
        stats.set_queue_length(1.0, 3)
        stats.finalize(3.0)  # 3 requests for 2 s
        assert stats.average_queue_length() == pytest.approx(2.0)

    def test_mode_residency(self):
        stats = StatsCollector()
        stats.set_mode(0.0, "active")
        stats.set_mode(2.0, "sleeping")
        stats.finalize(5.0)
        assert stats.mode_residency["active"] == pytest.approx(2.0)
        assert stats.mode_residency["sleeping"] == pytest.approx(3.0)

    def test_waiting_times(self):
        stats = StatsCollector()
        stats.record_departure(0.0, 2.0)
        stats.record_departure(1.0, 5.0)
        assert stats.average_waiting_time() == pytest.approx(3.0)
        assert stats.n_completed == 2

    def test_empty_run_defaults(self):
        stats = StatsCollector()
        stats.finalize(0.0)
        assert stats.average_power() == 0.0
        assert stats.average_queue_length() == 0.0
        assert stats.average_waiting_time() == 0.0

    def test_pm_counters(self):
        stats = StatsCollector()
        stats.record_pm_invocation(issued_command=True)
        stats.record_pm_invocation(issued_command=False)
        assert stats.n_pm_invocations == 2
        assert stats.n_pm_commands == 1

    def test_time_cannot_go_backwards(self):
        stats = StatsCollector()
        stats.set_power(5.0, 1.0)
        with pytest.raises(SimulationError):
            stats.set_power(4.0, 2.0)

    def test_nonzero_start_time(self):
        stats = StatsCollector(start_time=10.0)
        stats.set_power(10.0, 4.0)
        stats.finalize(20.0)
        assert stats.elapsed == pytest.approx(10.0)
        assert stats.average_power() == pytest.approx(4.0)
