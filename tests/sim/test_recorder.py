"""Tests for the simulation timeline recorder."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.policies import GreedyPolicy, NPolicy
from repro.sim import PoissonProcess, TraceArrivals, simulate
from repro.sim.recorder import ModeSegment, TimelineRecorder

LAM = 1.0 / 6.0


@pytest.fixture
def recorded(paper_provider):
    recorder = TimelineRecorder()
    result = simulate(
        provider=paper_provider,
        capacity=5,
        workload=PoissonProcess(LAM),
        policy=GreedyPolicy(paper_provider),
        n_requests=400,
        seed=6,
        recorder=recorder,
    )
    return recorder, result


class TestModeSegments:
    def test_segments_are_contiguous(self, recorded):
        recorder, result = recorded
        segments = recorder.mode_segments
        assert segments[0].start == 0.0
        assert segments[-1].end == pytest.approx(result.elapsed)
        for a, b in zip(segments, segments[1:]):
            assert b.start == pytest.approx(a.end)
            assert b.mode != a.mode  # segments merge equal neighbors

    def test_durations_match_mode_residency(self, recorded):
        recorder, result = recorded
        for mode, residency in result.mode_residency.items():
            recorded_time = sum(
                s.duration for s in recorder.mode_segments if s.mode == mode
            )
            assert recorded_time == pytest.approx(residency, rel=1e-9)

    def test_mode_at_lookup(self, recorded):
        recorder, _ = recorded
        first = recorder.mode_segments[0]
        assert recorder.mode_at(first.start) == first.mode
        mid = 0.5 * (first.start + first.end)
        assert recorder.mode_at(mid) == first.mode

    def test_mode_at_matches_linear_scan(self, recorded):
        recorder, result = recorded
        segments = recorder.mode_segments

        def linear(t):
            for segment in segments:
                if segment.start <= t < segment.end:
                    return segment.mode
            return segments[-1].mode  # at/after the end of the run

        probes = [s.start for s in segments]
        probes += [0.5 * (s.start + s.end) for s in segments]
        for t in probes:
            assert recorder.mode_at(t) == linear(t)

    def test_mode_at_boundaries(self, recorded):
        recorder, result = recorded
        segments = recorder.mode_segments
        # A shared boundary belongs to the segment that starts there.
        boundary = segments[1].start
        assert recorder.mode_at(boundary) == segments[1].mode
        # At or past the end of the run: the final mode.
        assert recorder.mode_at(segments[-1].end) == segments[-1].mode
        assert recorder.mode_at(segments[-1].end + 100.0) == segments[-1].mode

    def test_mode_at_before_start_rejected(self, recorded):
        recorder, _ = recorded
        with pytest.raises(SimulationError, match="precedes"):
            recorder.mode_at(-1.0)

    def test_mode_at_empty_timeline_reports_no_segments(self):
        recorder = TimelineRecorder()
        recorder.finalize(0.0)
        with pytest.raises(SimulationError, match="no mode segments"):
            recorder.mode_at(0.0)

    def test_unfinalized_rejects_queries(self):
        recorder = TimelineRecorder()
        recorder.record_mode(0.0, "sleeping")
        with pytest.raises(SimulationError, match="finalized"):
            recorder.mode_segments
        with pytest.raises(SimulationError, match="finalized"):
            recorder.mode_at(0.0)


class TestEnergyAccounting:
    def test_total_energy_matches_stats(self, recorded, paper_provider):
        recorder, result = recorded
        energy = recorder.energy_between(paper_provider, 0.0, result.elapsed)
        # A switch completing exactly at the end boundary may fall
        # outside the half-open interval: allow one switch of slack.
        assert energy == pytest.approx(
            result.average_power * result.elapsed, abs=30.0
        )

    def test_subinterval_energy_additive(self, recorded, paper_provider):
        recorder, result = recorded
        t_mid = result.elapsed / 2
        total = recorder.energy_between(paper_provider, 0.0, result.elapsed)
        first = recorder.energy_between(paper_provider, 0.0, t_mid)
        second = recorder.energy_between(paper_provider, t_mid, result.elapsed)
        assert first + second == pytest.approx(total, rel=1e-9)

    def test_empty_interval_rejected(self, recorded, paper_provider):
        recorder, _ = recorded
        with pytest.raises(SimulationError):
            recorder.energy_between(paper_provider, 5.0, 1.0)


class TestQueueAndRequests:
    def test_queue_steps_monotone_times(self, recorded):
        recorder, _ = recorded
        times = [t for t, _ in recorder.queue_steps]
        assert times == sorted(times)

    def test_occupancy_lookup(self, recorded):
        recorder, _ = recorded
        assert recorder.occupancy_at(0.0) == 0
        t, level = recorder.queue_steps[1]
        assert recorder.occupancy_at(t) == level

    def test_occupancy_matches_linear_scan(self, recorded):
        recorder, _ = recorded
        def linear(time):
            level = 0
            for step_time, occupancy in recorder.queue_steps:
                if step_time > time:
                    break
                level = occupancy
            return level

        steps = recorder.queue_steps
        probes = [t for t, _ in steps]
        probes += [0.5 * (a[0] + b[0]) for a, b in zip(steps, steps[1:])]
        probes += [-1.0, steps[-1][0] + 10.0]
        for t in probes:
            assert recorder.occupancy_at(t) == linear(t)

    def test_occupancy_before_first_step_is_zero(self, recorded):
        recorder, _ = recorded
        assert recorder.occupancy_at(-5.0) == 0

    def test_occupancy_after_last_step_holds(self, recorded):
        recorder, _ = recorded
        t, level = recorder.queue_steps[-1]
        assert recorder.occupancy_at(t + 1e6) == level

    def test_request_conservation(self, recorded):
        recorder, result = recorded
        completed = [r for r in recorder.requests if r.departure_time is not None]
        lost = [r for r in recorder.requests if r.lost]
        assert len(completed) == result.n_completed
        assert len(lost) == result.n_lost
        assert len(recorder.requests) == result.n_generated

    def test_lifecycle_ordering(self, recorded):
        recorder, _ = recorded
        for r in recorder.requests:
            if r.service_start_time is not None:
                assert r.service_start_time >= r.arrival_time
            if r.departure_time is not None:
                assert r.departure_time >= r.service_start_time

    def test_unserved_requests_recorded(self, paper_provider):
        from repro.policies.base import Decision, PowerManagementPolicy

        class NeverWake(PowerManagementPolicy):
            def decide(self, view):
                return Decision()

        recorder = TimelineRecorder()
        simulate(
            paper_provider, 5, TraceArrivals([1.0, 2.0]), NeverWake(),
            n_requests=2, seed=0, recorder=recorder,
        )
        unserved = [
            r for r in recorder.requests if r.departure_time is None and not r.lost
        ]
        assert len(unserved) == 2


class TestBusyFraction:
    def test_fractions_sum_to_one(self, recorded):
        recorder, _ = recorded
        total = sum(
            recorder.busy_fraction(m)
            for m in ("active", "waiting", "sleeping")
        )
        assert total == pytest.approx(1.0)

    def test_lazy_policy_sleeps_more(self, paper_provider):
        fractions = {}
        for n in (1, 4):
            recorder = TimelineRecorder()
            simulate(
                paper_provider, 5, PoissonProcess(LAM), NPolicy(n, paper_provider),
                n_requests=2000, seed=8, recorder=recorder,
            )
            fractions[n] = recorder.busy_fraction("sleeping")
        assert fractions[4] > fractions[1]


class TestModeSegmentType:
    def test_duration(self):
        assert ModeSegment("active", 1.0, 3.5).duration == 2.5
