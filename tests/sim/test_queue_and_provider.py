"""Tests for the simulated FIFO queue and provider state holders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.provider import SimulatedProvider
from repro.sim.queue_sim import FIFORequestQueue


class TestFIFORequestQueue:
    def test_offer_and_counts(self):
        q = FIFORequestQueue(capacity=2)
        assert q.is_empty()
        r1 = q.offer(1.0)
        assert r1 is not None and r1.arrival_time == 1.0
        assert q.occupancy == 1 and q.waiting_count == 1

    def test_loss_at_capacity(self):
        q = FIFORequestQueue(capacity=2)
        q.offer(0.0)
        q.offer(1.0)
        assert q.offer(2.0) is None
        assert q.n_lost == 1
        assert q.n_accepted == 2

    def test_in_service_counts_toward_occupancy(self):
        q = FIFORequestQueue(capacity=2)
        q.offer(0.0)
        q.start_service(0.5)
        assert q.waiting_count == 0
        assert q.occupancy == 1
        assert q.is_full() is False
        q.offer(1.0)
        assert q.is_full()

    def test_fifo_order(self):
        q = FIFORequestQueue(capacity=5)
        first = q.offer(0.0)
        q.offer(1.0)
        served = q.start_service(2.0)
        assert served is first

    def test_complete_service_timestamps(self):
        q = FIFORequestQueue(capacity=2)
        q.offer(0.0)
        q.start_service(1.0)
        done = q.complete_service(3.0)
        assert done.service_start_time == 1.0
        assert done.departure_time == 3.0
        assert q.is_empty()

    def test_requeue_in_service_preserves_head(self):
        q = FIFORequestQueue(capacity=3)
        first = q.offer(0.0)
        q.offer(0.5)
        q.start_service(1.0)
        q.requeue_in_service()
        assert q.waiting_count == 2
        assert q.start_service(2.0) is first
        assert first.service_start_time == 2.0

    def test_error_paths(self):
        q = FIFORequestQueue(capacity=1)
        with pytest.raises(SimulationError):
            q.start_service(0.0)  # empty
        with pytest.raises(SimulationError):
            q.complete_service(0.0)  # nothing in service
        q.offer(0.0)
        q.start_service(0.0)
        with pytest.raises(SimulationError):
            q.start_service(0.0)  # already serving
        with pytest.raises(SimulationError):
            FIFORequestQueue(0)


class TestSimulatedProvider:
    def test_initial_state(self, paper_provider):
        sp = SimulatedProvider(paper_provider, "sleeping")
        assert sp.mode == "sleeping"
        assert not sp.is_switching
        assert not sp.is_active
        assert sp.power_now() == pytest.approx(0.1)

    def test_switch_lifecycle(self, paper_provider):
        sp = SimulatedProvider(paper_provider, "sleeping")
        sp.begin_switch("active")
        assert sp.is_switching and sp.switch_target == "active"
        assert sp.mode == "sleeping"  # stays until completion
        energy = sp.finish_switch()
        assert energy == pytest.approx(11.0)
        assert sp.mode == "active" and not sp.is_switching

    def test_cancel_switch(self, paper_provider):
        sp = SimulatedProvider(paper_provider, "active")
        sp.begin_switch("sleeping")
        sp.cancel_switch()
        assert not sp.is_switching
        assert sp.mode == "active"

    def test_self_switch_rejected(self, paper_provider):
        sp = SimulatedProvider(paper_provider, "active")
        with pytest.raises(SimulationError):
            sp.begin_switch("active")
        assert sp.draw_switch_time("active", np.random.default_rng(0)) == 0.0

    def test_finish_without_switch_rejected(self, paper_provider):
        sp = SimulatedProvider(paper_provider, "active")
        with pytest.raises(SimulationError):
            sp.finish_switch()

    def test_service_draw_only_in_active(self, paper_provider):
        sp = SimulatedProvider(paper_provider, "waiting")
        with pytest.raises(SimulationError):
            sp.draw_service_time(np.random.default_rng(0))

    def test_draw_means(self, paper_provider):
        sp = SimulatedProvider(paper_provider, "active")
        rng = np.random.default_rng(0)
        services = [sp.draw_service_time(rng) for _ in range(4000)]
        assert np.mean(services) == pytest.approx(1.5, rel=0.05)
        switches = [sp.draw_switch_time("sleeping", rng) for _ in range(4000)]
        assert np.mean(switches) == pytest.approx(0.2, rel=0.05)

    def test_invalid_initial_mode(self, paper_provider):
        from repro.errors import InvalidModelError

        with pytest.raises(InvalidModelError):
            SimulatedProvider(paper_provider, "hibernate")
