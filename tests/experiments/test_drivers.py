"""Smoke + shape tests for the experiment drivers (small workloads).

The full-size assertions live in the benchmark suite; here the drivers
run with small request counts to verify plumbing, schemas, and the
coarse shapes.
"""

from __future__ import annotations

import pytest

from repro.experiments.figure4 import format_figure4, run_figure4
from repro.experiments.figure5 import format_figure5, heuristic_policies, run_figure5
from repro.experiments.reporting import format_table
from repro.experiments.setup import (
    FIGURE4_N_VALUES,
    INPUT_RATES,
    models_for_rates,
    simulate_policy,
)
from repro.experiments.table1 import Table1Row, format_table1, run_table1

N = 3000


class TestReporting:
    def test_format_table_alignment(self):
        out = format_table(("name", "value"), [("x", 1.25), ("long-name", 2.0)])
        lines = out.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1  # rectangular

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(("a", "b"), [("only-one",)])


class TestSetup:
    def test_input_rates_match_paper(self):
        assert INPUT_RATES == (1 / 8, 1 / 7, 1 / 6, 1 / 5, 1 / 4, 1 / 3)

    def test_models_for_rates(self):
        models = models_for_rates((1 / 8, 1 / 4))
        assert [m.requestor.rate for m in models] == [1 / 8, 1 / 4]

    def test_simulate_policy_uses_common_seed(self, paper_model):
        from repro.policies import GreedyPolicy

        a = simulate_policy(
            paper_model, GreedyPolicy(paper_model.provider), n_requests=500, seed=5
        )
        b = simulate_policy(
            paper_model, GreedyPolicy(paper_model.provider), n_requests=500, seed=5
        )
        assert a.average_power == b.average_power


class TestFigure4Driver:
    @pytest.fixture(scope="class")
    def points(self):
        return run_figure4(n_requests=N, weights=(0.2, 1.0, 2.5))

    def test_both_kinds_present(self, points):
        kinds = {p.kind for p in points}
        assert kinds == {"optimal", "npolicy"}

    def test_all_n_values_present(self, points):
        ns = sorted(p.parameter for p in points if p.kind == "npolicy")
        assert ns == [float(n) for n in FIGURE4_N_VALUES]

    def test_analytic_and_simulated_close(self, points):
        for p in points:
            assert p.simulated_power == pytest.approx(p.analytic_power, rel=0.10)

    def test_duplicate_pareto_points_collapsed(self, points):
        optimal = [
            (p.analytic_power, p.analytic_queue_length)
            for p in points
            if p.kind == "optimal"
        ]
        assert len(optimal) == len(set(optimal))

    def test_formatting(self, points):
        out = format_figure4(points)
        assert "power[W] (model)" in out


class TestTable1Driver:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_table1(rates=(1 / 6, 1 / 4), n_requests=N)

    def test_row_per_rate(self, rows):
        assert [r.input_rate for r in rows] == [1 / 6, 1 / 4]

    def test_approximation_error_small(self, rows):
        for row in rows:
            assert abs(row.error_percent) < 10.0

    def test_row_schema(self):
        row = Table1Row.from_measurements(0.25, waiting_time=4.0, actual_queue_length=1.0)
        assert row.approximate_queue_length == pytest.approx(1.0)
        assert row.error_percent == pytest.approx(0.0)

    def test_formatting(self, rows):
        out = format_table1(rows)
        assert "error [%]" in out and "1/6" in out


class TestFigure5Driver:
    @pytest.fixture(scope="class")
    def points(self):
        return run_figure5(rates=(1 / 6,), n_requests=N)

    def test_five_policies(self, points):
        assert len(points) == 5
        assert {p.policy for p in points} == {
            "ctmdp-optimal",
            "greedy",
            "timeout(1s)",
            "timeout(1/lambda)",
            "timeout(0.5/lambda)",
        }

    def test_heuristic_timeouts_match_rate(self, paper_model):
        policies = heuristic_policies(paper_model)
        assert policies["timeout(1/lambda)"].timeout == pytest.approx(6.0)
        assert policies["timeout(0.5/lambda)"].timeout == pytest.approx(3.0)

    def test_optimal_draws_least_power_at_this_rate(self, points):
        by_name = {p.policy: p for p in points}
        optimal_power = by_name["ctmdp-optimal"].simulated_power
        for name, p in by_name.items():
            if name != "ctmdp-optimal":
                assert optimal_power < p.simulated_power, name

    def test_formatting(self, points):
        assert "avg waiting [s]" in format_figure5(points)
