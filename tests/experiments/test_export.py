"""Tests for experiment CSV export."""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import ReproError
from repro.experiments.export import export_rows, read_rows
from repro.experiments.table1 import Table1Row


@dataclasses.dataclass(frozen=True)
class OtherRow:
    x: int


class TestExportRows:
    @pytest.fixture
    def rows(self):
        return [
            Table1Row.from_measurements(1 / 6, 6.0, 1.0),
            Table1Row.from_measurements(1 / 3, 3.0, 0.99),
        ]

    def test_round_trip_header_and_values(self, tmp_path, rows):
        path = tmp_path / "table1.csv"
        export_rows(rows, path)
        loaded = read_rows(path)
        assert len(loaded) == 2
        assert set(loaded[0]) == {
            "input_rate",
            "simulated_waiting_time",
            "approximate_queue_length",
            "actual_queue_length",
            "error_percent",
        }
        assert float(loaded[0]["simulated_waiting_time"]) == 6.0

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ReproError, match="empty"):
            export_rows([], tmp_path / "x.csv")

    def test_mixed_types_rejected(self, tmp_path, rows):
        with pytest.raises(ReproError, match="same dataclass"):
            export_rows([rows[0], OtherRow(1)], tmp_path / "x.csv")

    def test_non_dataclass_rejected(self, tmp_path):
        with pytest.raises(ReproError, match="dataclasses"):
            export_rows([{"a": 1}], tmp_path / "x.csv")
