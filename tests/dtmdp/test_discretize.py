"""Tests for the CTMDP -> DTMDP time-slicing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ctmdp.policy_iteration import policy_iteration
from repro.dpm.presets import paper_system
from repro.dtmdp.discretize import discretize_ctmdp, slice_metric_rates
from repro.dtmdp.solvers import dt_policy_iteration
from repro.errors import InvalidModelError


@pytest.fixture(scope="module")
def lumped_model():
    return paper_system(include_transfer_states=False)


@pytest.fixture(scope="module")
def discretized(lumped_model):
    return discretize_ctmdp(lumped_model, slice_length=0.5, weight=1.0)


class TestDiscretization:
    def test_states_preserved(self, lumped_model, discretized):
        assert list(discretized.mdp.states) == lumped_model.states

    def test_rows_are_stochastic(self, discretized):
        for state, action in discretized.mdp.state_action_pairs():
            row = discretized.mdp.transition_row(state, action)
            assert row.sum() == pytest.approx(1.0)
            assert np.all(row >= 0)

    def test_actions_follow_validity(self, lumped_model, discretized):
        for state in lumped_model.states:
            assert discretized.mdp.actions(state) == lumped_model.valid_actions(
                state
            )

    def test_invalid_slice_rejected(self, lumped_model):
        with pytest.raises(InvalidModelError):
            discretize_ctmdp(lumped_model, slice_length=0.0)

    def test_slice_cost_bounded_by_extreme_rates(self, lumped_model, discretized):
        # Per-slice cost is an average of rates over the slice, so it is
        # bounded by L times the extreme instantaneous rates.
        ct = lumped_model.build_ctmdp(1.0)
        all_rates = [ct.cost(s, a) for s, a in ct.state_action_pairs()]
        lo, hi = min(all_rates), max(all_rates)
        for state, action in discretized.mdp.state_action_pairs():
            c = discretized.mdp.cost(state, action)
            assert lo * 0.5 - 1e-9 <= c <= hi * 0.5 + 1e-9

    def test_tiny_slice_recovers_ct_optimum(self, lumped_model):
        ct_gain = policy_iteration(lumped_model.build_ctmdp(1.0)).gain
        d = discretize_ctmdp(lumped_model, slice_length=0.01, weight=1.0)
        dt_gain_rate = d.gain_rate(dt_policy_iteration(d.mdp).gain)
        assert dt_gain_rate == pytest.approx(ct_gain, rel=0.01)

    def test_coarser_slices_cost_more(self, lumped_model):
        rates = []
        for slice_length in (1.0, 0.25, 0.05):
            d = discretize_ctmdp(lumped_model, slice_length, weight=1.0)
            rates.append(d.gain_rate(dt_policy_iteration(d.mdp).gain))
        assert rates == sorted(rates, reverse=True)

    def test_ct_optimum_lower_bounds_all_slices(self, lumped_model):
        ct_gain = policy_iteration(lumped_model.build_ctmdp(1.0)).gain
        for slice_length in (2.0, 0.5):
            d = discretize_ctmdp(lumped_model, slice_length, weight=1.0)
            assert d.gain_rate(dt_policy_iteration(d.mdp).gain) >= ct_gain - 1e-6


class TestSliceMetricRates:
    def test_rates_are_consistent_with_gain(self, lumped_model, discretized):
        result = dt_policy_iteration(discretized.mdp)
        rates = slice_metric_rates(discretized, result.assignment)
        # power + w * queue must equal the gain rate.
        combined = rates["power"] + discretized.weight * rates["queue_length"]
        assert combined == pytest.approx(discretized.gain_rate(result.gain), rel=1e-6)

    def test_rates_physical(self, discretized):
        result = dt_policy_iteration(discretized.mdp)
        rates = slice_metric_rates(discretized, result.assignment)
        assert 0 < rates["power"] <= 45.0
        assert 0 <= rates["queue_length"] <= 5.0
        assert 0 <= rates["loss"] <= 1.0 / 6.0
