"""Property-based tests (hypothesis) for the DTMDP substrate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dtmdp.model import DTMDP
from repro.dtmdp.solvers import (
    dt_evaluate_policy,
    dt_policy_iteration,
    dt_solve_average_cost_lp,
)


def random_dtmdp(seed: int, n_states: int, n_actions: int) -> DTMDP:
    rng = np.random.default_rng(seed)
    mdp = DTMDP(list(range(n_states)))
    for s in range(n_states):
        for a in range(n_actions):
            row = rng.uniform(0.05, 1.0, n_states)
            row /= row.sum()
            mdp.add_action(s, a, row, cost=float(rng.uniform(-5, 10)))
    return mdp


params = st.tuples(
    st.integers(0, 10_000), st.integers(2, 5), st.integers(1, 4)
)


class TestDTMDPProperties:
    @given(p=params)
    @settings(max_examples=20, deadline=None)
    def test_optimal_lower_bounds_random_policies(self, p):
        seed, n_states, n_actions = p
        mdp = random_dtmdp(seed, n_states, n_actions)
        optimal = dt_policy_iteration(mdp)
        rng = np.random.default_rng(seed + 1)
        for _ in range(4):
            assignment = {
                s: mdp.actions(s)[rng.integers(len(mdp.actions(s)))]
                for s in mdp.states
            }
            assert optimal.gain <= dt_evaluate_policy(mdp, assignment).gain + 1e-8

    @given(p=params)
    @settings(max_examples=15, deadline=None)
    def test_lp_agrees_with_pi(self, p):
        seed, n_states, n_actions = p
        mdp = random_dtmdp(seed, n_states, n_actions)
        assert dt_solve_average_cost_lp(mdp).gain == pytest.approx(
            dt_policy_iteration(mdp).gain, abs=1e-6
        )

    @given(p=params, shift=st.floats(-5.0, 5.0))
    @settings(max_examples=15, deadline=None)
    def test_cost_shift_shifts_gain(self, p, shift):
        seed, n_states, n_actions = p
        base = random_dtmdp(seed, n_states, n_actions)
        shifted = DTMDP(list(base.states))
        for s in base.states:
            for a in base.actions(s):
                shifted.add_action(
                    s, a, base.transition_row(s, a), base.cost(s, a) + shift
                )
        assert dt_policy_iteration(shifted).gain == pytest.approx(
            dt_policy_iteration(base).gain + shift, abs=1e-8
        )

    @given(p=params)
    @settings(max_examples=15, deadline=None)
    def test_stationary_distribution_valid(self, p):
        seed, n_states, n_actions = p
        mdp = random_dtmdp(seed, n_states, n_actions)
        result = dt_policy_iteration(mdp)
        assert result.stationary.sum() == pytest.approx(1.0)
        assert np.all(result.stationary >= -1e-12)
        pi = result.stationary
        pmat = mdp.policy_matrix(result.assignment)
        np.testing.assert_allclose(pi @ pmat, pi, atol=1e-9)
