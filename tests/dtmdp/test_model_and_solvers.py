"""Tests for the discrete-time MDP substrate."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.dtmdp.model import DTMDP
from repro.dtmdp.solvers import (
    dt_evaluate_policy,
    dt_policy_iteration,
    dt_relative_value_iteration,
    dt_solve_average_cost_lp,
)
from repro.errors import (
    InfeasibleConstraintError,
    InvalidModelError,
    InvalidPolicyError,
)


@pytest.fixture
def two_state_dtmdp() -> DTMDP:
    """Stay (expensive in 'up') or hop; all rows aperiodic."""
    mdp = DTMDP(["up", "down"])
    mdp.add_action("up", "stay", [0.9, 0.1], cost=10.0,
                   extra_costs={"power": 10.0, "delay": 0.0})
    mdp.add_action("up", "hop", [0.2, 0.8], cost=11.0,
                   extra_costs={"power": 11.0, "delay": 0.0})
    mdp.add_action("down", "stay", [0.1, 0.9], cost=1.0,
                   extra_costs={"power": 1.0, "delay": 2.0})
    mdp.add_action("down", "hop", [0.8, 0.2], cost=2.0,
                   extra_costs={"power": 2.0, "delay": 1.0})
    return mdp


def random_dtmdp(seed: int, n_states: int = 5, n_actions: int = 3) -> DTMDP:
    rng = np.random.default_rng(seed)
    mdp = DTMDP(list(range(n_states)))
    for s in range(n_states):
        for a in range(n_actions):
            row = rng.uniform(0.05, 1.0, n_states)
            row /= row.sum()
            mdp.add_action(s, a, row, cost=float(rng.uniform(0, 10)))
    return mdp


def brute_force_gain(mdp: DTMDP) -> float:
    best = np.inf
    for actions in itertools.product(*(mdp.actions(s) for s in mdp.states)):
        assignment = dict(zip(mdp.states, actions))
        try:
            gain = dt_evaluate_policy(mdp, assignment).gain
        except Exception:
            continue
        best = min(best, gain)
    return best


class TestDTMDPModel:
    def test_rejects_bad_rows(self):
        mdp = DTMDP(["a", "b"])
        with pytest.raises(InvalidModelError, match="sums to"):
            mdp.add_action("a", "x", [0.5, 0.4], cost=0.0)
        with pytest.raises(InvalidModelError, match="negative"):
            mdp.add_action("a", "x", [1.5, -0.5], cost=0.0)
        with pytest.raises(InvalidModelError, match="shape"):
            mdp.add_action("a", "x", [1.0], cost=0.0)

    def test_duplicate_action_rejected(self, two_state_dtmdp):
        with pytest.raises(InvalidModelError, match="already defined"):
            two_state_dtmdp.add_action("up", "stay", [1.0, 0.0], cost=0.0)

    def test_validate_requires_actions_everywhere(self):
        mdp = DTMDP(["a", "b"])
        mdp.add_action("a", "x", [0.5, 0.5], cost=0.0)
        with pytest.raises(InvalidModelError, match="no actions"):
            mdp.validate()

    def test_policy_matrix_and_costs(self, two_state_dtmdp):
        assignment = {"up": "hop", "down": "stay"}
        p = two_state_dtmdp.policy_matrix(assignment)
        np.testing.assert_allclose(p, [[0.2, 0.8], [0.1, 0.9]])
        np.testing.assert_allclose(
            two_state_dtmdp.policy_costs(assignment), [11.0, 1.0]
        )

    def test_incomplete_policy_rejected(self, two_state_dtmdp):
        with pytest.raises(InvalidPolicyError):
            two_state_dtmdp.policy_matrix({"up": "stay"})


class TestDTEvaluation:
    def test_evaluation_equation(self, two_state_dtmdp):
        assignment = {"up": "hop", "down": "hop"}
        ev = dt_evaluate_policy(two_state_dtmdp, assignment)
        p = two_state_dtmdp.policy_matrix(assignment)
        c = two_state_dtmdp.policy_costs(assignment)
        lhs = ev.bias + ev.gain
        rhs = c + p @ ev.bias
        np.testing.assert_allclose(lhs, rhs, atol=1e-10)

    def test_gain_is_stationary_cost(self, two_state_dtmdp):
        assignment = {"up": "hop", "down": "hop"}
        ev = dt_evaluate_policy(two_state_dtmdp, assignment)
        assert ev.gain == pytest.approx(
            float(ev.stationary @ two_state_dtmdp.policy_costs(assignment))
        )


class TestDTPolicyIteration:
    def test_matches_brute_force(self):
        for seed in range(6):
            mdp = random_dtmdp(seed)
            result = dt_policy_iteration(mdp)
            assert result.gain == pytest.approx(
                brute_force_gain(mdp), abs=1e-9
            ), f"seed {seed}"

    def test_two_state_prefers_cheap_sink(self, two_state_dtmdp):
        result = dt_policy_iteration(two_state_dtmdp)
        # Staying down (cost 1, sticky) is the cheap regime.
        assert result.assignment["down"] == "stay"

    def test_fixed_point(self):
        mdp = random_dtmdp(3)
        first = dt_policy_iteration(mdp)
        again = dt_policy_iteration(mdp, initial=first.assignment)
        assert again.iterations == 1


class TestDTValueIteration:
    def test_agrees_with_policy_iteration(self):
        for seed in range(4):
            mdp = random_dtmdp(seed + 20)
            vi = dt_relative_value_iteration(mdp, span_tolerance=1e-12)
            pi = dt_policy_iteration(mdp)
            assert vi.gain == pytest.approx(pi.gain, abs=1e-8)


class TestDTLinearProgram:
    def test_agrees_with_policy_iteration(self):
        for seed in range(4):
            mdp = random_dtmdp(seed + 40)
            lp = dt_solve_average_cost_lp(mdp)
            pi = dt_policy_iteration(mdp)
            assert lp.gain == pytest.approx(pi.gain, abs=1e-7)

    def test_occupation_normalizes(self):
        mdp = random_dtmdp(1)
        lp = dt_solve_average_cost_lp(mdp)
        assert sum(lp.occupation.values()) == pytest.approx(1.0, abs=1e-8)

    def test_constrained_version(self, two_state_dtmdp):
        base = dt_solve_average_cost_lp(two_state_dtmdp, objective="power")
        bound = 0.5 * base.extra_cost_values["delay"]
        constrained = dt_solve_average_cost_lp(
            two_state_dtmdp, objective="power", constraints={"delay": bound}
        )
        assert constrained.extra_cost_values["delay"] <= bound + 1e-8
        assert constrained.gain >= base.gain - 1e-9

    def test_infeasible_raises(self, two_state_dtmdp):
        with pytest.raises(InfeasibleConstraintError):
            dt_solve_average_cost_lp(
                two_state_dtmdp, objective="power", constraints={"delay": -1.0}
            )
