"""Property-based tests (hypothesis) for the CTMDP solvers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ctmdp.linear_program import solve_average_cost_lp
from repro.ctmdp.model import CTMDP
from repro.ctmdp.policy import Policy, evaluate_policy
from repro.ctmdp.policy_iteration import policy_iteration


def random_mdp(seed: int, n_states: int, n_actions: int) -> CTMDP:
    """Dense random unichain CTMDP from a seed."""
    rng = np.random.default_rng(seed)
    mdp = CTMDP(list(range(n_states)))
    for s in range(n_states):
        for a in range(n_actions):
            rates = rng.uniform(0.05, 3.0, size=n_states)
            rates[s] = 0.0
            mdp.add_action(s, a, rates=rates, cost_rate=float(rng.uniform(-5, 10)))
    return mdp


mdp_params = st.tuples(
    st.integers(0, 10_000),  # seed
    st.integers(2, 5),  # states
    st.integers(1, 4),  # actions
)


class TestOptimalityProperties:
    @given(params=mdp_params)
    @settings(max_examples=25, deadline=None)
    def test_optimal_gain_lower_bounds_all_policies(self, params):
        seed, n_states, n_actions = params
        mdp = random_mdp(seed, n_states, n_actions)
        result = policy_iteration(mdp)
        rng = np.random.default_rng(seed + 1)
        for _ in range(5):
            assignment = {
                s: mdp.actions(s)[rng.integers(len(mdp.actions(s)))]
                for s in mdp.states
            }
            gain = evaluate_policy(Policy(mdp, assignment)).gain
            assert result.gain <= gain + 1e-8

    @given(params=mdp_params)
    @settings(max_examples=20, deadline=None)
    def test_lp_and_pi_agree(self, params):
        seed, n_states, n_actions = params
        mdp = random_mdp(seed, n_states, n_actions)
        pi = policy_iteration(mdp)
        lp = solve_average_cost_lp(mdp)
        assert lp.gain == pytest.approx(pi.gain, abs=1e-6)

    @given(params=mdp_params, shift=st.floats(-5.0, 5.0))
    @settings(max_examples=20, deadline=None)
    def test_constant_cost_shift_shifts_gain(self, params, shift):
        # Adding a constant to every cost rate shifts the optimal gain
        # by that constant and preserves the optimal policy's gain gap.
        seed, n_states, n_actions = params
        base = random_mdp(seed, n_states, n_actions)
        shifted = CTMDP(list(base.states))
        for s in base.states:
            for a in base.actions(s):
                data = base.data(s, a)
                shifted.add_action(
                    s, a, rates=data.rates, cost_rate=data.cost_rate + shift
                )
        g0 = policy_iteration(base).gain
        g1 = policy_iteration(shifted).gain
        assert g1 == pytest.approx(g0 + shift, abs=1e-7)

    @given(params=mdp_params, scale=st.floats(0.1, 10.0))
    @settings(max_examples=20, deadline=None)
    def test_time_rescaling_scales_gain(self, params, scale):
        # Scaling all rates AND all cost rates by c is a change of time
        # units: the gain scales by c.
        seed, n_states, n_actions = params
        base = random_mdp(seed, n_states, n_actions)
        scaled = CTMDP(list(base.states))
        for s in base.states:
            for a in base.actions(s):
                data = base.data(s, a)
                scaled.add_action(
                    s,
                    a,
                    rates=data.rates * scale,
                    cost_rate=data.cost_rate * scale,
                )
        g0 = policy_iteration(base).gain
        g1 = policy_iteration(scaled).gain
        assert g1 == pytest.approx(scale * g0, rel=1e-7)
