"""Tests for discounted-cost policy iteration (Theorems 2.2 / 2.3)."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.ctmdp.discounted import discounted_policy_iteration
from repro.ctmdp.model import CTMDP
from repro.ctmdp.policy import Policy
from repro.ctmdp.policy_iteration import policy_iteration


def random_unichain_mdp(seed: int, n_states: int = 4, n_actions: int = 3) -> CTMDP:
    rng = np.random.default_rng(seed)
    mdp = CTMDP(list(range(n_states)))
    for s in range(n_states):
        for a in range(n_actions):
            rates = rng.uniform(0.1, 2.0, size=n_states)
            rates[s] = 0.0
            mdp.add_action(s, a, rates=rates, cost_rate=float(rng.uniform(0, 10)))
    return mdp


def brute_force_discounted(mdp: CTMDP, discount: float) -> np.ndarray:
    """Minimum value vector over all deterministic policies.

    For a fixed discount the optimal value is the componentwise minimum
    achieved by a single policy (Theorem 2.2).
    """
    best = None
    for actions in itertools.product(*(mdp.actions(s) for s in mdp.states)):
        policy = Policy(mdp, dict(zip(mdp.states, actions)))
        g = policy.generator_matrix()
        c = policy.cost_vector()
        v = np.linalg.solve(discount * np.eye(len(c)) - g, c)
        best = v if best is None else np.minimum(best, v)
    return best


class TestDiscountedPolicyIteration:
    def test_matches_brute_force(self):
        for seed in range(5):
            mdp = random_unichain_mdp(seed)
            result = discounted_policy_iteration(mdp, discount=0.4)
            np.testing.assert_allclose(
                result.values, brute_force_discounted(mdp, 0.4), atol=1e-8
            )

    def test_value_equation_holds(self):
        mdp = random_unichain_mdp(11)
        a = 0.7
        result = discounted_policy_iteration(mdp, a)
        g = result.policy.generator_matrix()
        c = result.policy.cost_vector()
        residual = a * result.values - g @ result.values - c
        np.testing.assert_allclose(residual, 0.0, atol=1e-9)

    def test_requires_positive_discount(self):
        mdp = random_unichain_mdp(0)
        with pytest.raises(ValueError):
            discounted_policy_iteration(mdp, 0.0)
        with pytest.raises(ValueError):
            discounted_policy_iteration(mdp, -0.5)

    def test_small_discount_recovers_average_optimal_gain(self):
        # Theorem 2.3: discounted-optimal policies converge to an
        # average-optimal policy as a -> 0.
        from repro.ctmdp.policy import evaluate_policy

        for seed in range(4):
            mdp = random_unichain_mdp(seed + 50)
            avg = policy_iteration(mdp)
            disc = discounted_policy_iteration(mdp, discount=1e-6)
            assert evaluate_policy(disc.policy).gain == pytest.approx(
                avg.gain, abs=1e-6
            )

    def test_large_discount_is_myopic(self):
        # With a huge discount only the immediate cost rate matters.
        mdp = random_unichain_mdp(8)
        result = discounted_policy_iteration(mdp, discount=1e6)
        for state in mdp.states:
            chosen = result.policy.action(state)
            cheapest = min(mdp.actions(state), key=lambda a: mdp.cost(state, a))
            assert mdp.cost(state, chosen) == pytest.approx(
                mdp.cost(state, cheapest)
            )

    def test_values_scale_with_discount(self):
        # v ~ c / a as a grows: doubling a roughly halves values.
        mdp = random_unichain_mdp(13)
        v1 = discounted_policy_iteration(mdp, discount=1e5).values
        v2 = discounted_policy_iteration(mdp, discount=2e5).values
        np.testing.assert_allclose(v1 / v2, 2.0, rtol=1e-3)
