"""Solver-deep telemetry: decision records, ladder series, gate counters.

These tests pin the observability contract of the solver stack: every
backend resolution leaves an auditable record, every sparse policy
evaluation emits a residual-trajectory row naming the rung that fired,
the Kronecker tier counts its generator matvecs, and the admission gate
publishes its verdict and finding codes as labeled counters. They also
pin the merge semantics: Krylov series rows collected in forked workers
merge back bit-identically to a serial run.
"""

from __future__ import annotations

import json
import logging
from types import SimpleNamespace

import numpy as np
import pytest
import scipy.sparse as sp

from repro.ctmdp.backends import DECISION_SERIES, resolve_backend
from repro.ctmdp.kron import kron_farm_model
from repro.ctmdp.policy_iteration import policy_iteration
from repro.ctmdp.sparse import KRYLOV_SERIES, solve_sparse_with_fallback
from repro.dpm.presets import paper_system
from repro.obs.metrics import MetricsRegistry
from repro.obs.runtime import active, instrument
from repro.obs.trace import Tracer
from repro.robust.admission import admit_ctmdp
from repro.sim.parallel import parallel_map


def _instrumented():
    return MetricsRegistry(), Tracer()


def _spd_system(seed: int = 0):
    """A small diagonally dominant CSR system (direct rung succeeds)."""
    rng = np.random.default_rng(1234 + seed)
    n = 30
    m = sp.random(n, n, density=0.2, random_state=rng, format="csr")
    m = m + sp.eye_array(n, format="csr") * (abs(m).sum(axis=1).max() + 1.0)
    b = rng.standard_normal(n)
    return sp.csr_array(m), b


class TestBackendDecisions:
    def _decisions(self, registry):
        return registry.series(DECISION_SERIES).records

    def test_auto_small_model_lands_dense_with_reason(self):
        mdp = SimpleNamespace(n_states=40)
        registry, _ = _instrumented()
        with instrument(metrics=registry):
            assert resolve_backend(mdp, "auto") == "compiled"
        (row,) = self._decisions(registry)
        assert row["requested"] == "auto"
        assert row["resolved"] == "compiled"
        assert row["n_states"] == 40
        assert "fits the dense tier" in row["reason"]
        assert registry.counter("solver.backend.selected.compiled").value == 1

    def test_auto_large_model_lands_sparse(self):
        registry, _ = _instrumented()
        with instrument(metrics=registry):
            assert (
                resolve_backend(SimpleNamespace(n_states=50_000), "auto")
                == "sparse"
            )
        (row,) = self._decisions(registry)
        assert row["resolved"] == "sparse"
        assert "exceeds the dense tier" in row["reason"]

    def test_kron_model_recorded(self):
        kmdp = kron_farm_model(2, 2)
        registry, _ = _instrumented()
        with instrument(metrics=registry):
            assert resolve_backend(kmdp, "auto", who="test") == "kron"
        (row,) = self._decisions(registry)
        assert row["resolved"] == "kron"
        assert row["reason"] == "kronecker-model"
        assert row["who"] == "test"

    def test_explicit_request_recorded(self):
        registry, _ = _instrumented()
        with instrument(metrics=registry):
            resolve_backend(SimpleNamespace(n_states=10), "reference")
        (row,) = self._decisions(registry)
        assert row["requested"] == "reference"
        assert row["reason"] == "explicit request"

    def test_auto_selection_logged(self, caplog):
        with caplog.at_level(logging.INFO, logger="repro.ctmdp.backends"):
            resolve_backend(SimpleNamespace(n_states=40), "auto")
        assert any(
            "backend auto-selected" in rec.message for rec in caplog.records
        )

    def test_disabled_records_nothing(self):
        registry = MetricsRegistry()
        resolve_backend(SimpleNamespace(n_states=40), "auto")
        assert registry.names() == []


class TestSparseLadderTelemetry:
    def test_direct_rung_emits_trajectory_row(self):
        m, b = _spd_system()
        registry, tracer = _instrumented()
        with instrument(metrics=registry, tracer=tracer):
            solve_sparse_with_fallback(m, b, what="unit test")
        (row,) = registry.series(KRYLOV_SERIES).records
        assert row["rung"] == "direct"
        assert row["what"] == "unit test"
        assert row["iterations"] == 0
        assert len(row["residuals"]) == 1
        assert row["residual"] == row["residuals"][0]
        assert registry.counter("solver.sparse.direct_solves").value == 1
        hist = registry.histogram("solver.sparse.lu_fill_factor")
        assert hist.count == 1
        (span,) = [r for r in tracer.records if r.name == "sparse_solve"]
        assert span.attrs["rung"] == "direct"
        assert span.attrs["nnz"] == int(sp.csc_array(m).nnz)

    def test_forced_gmres_rung_records_residual_trajectory(
        self, monkeypatch, caplog
    ):
        def boom(a_csc, b):
            raise RuntimeError("forced for test")

        monkeypatch.setattr("repro.ctmdp.sparse._direct_solve", boom)
        m, b = _spd_system()
        registry, tracer = _instrumented()
        with caplog.at_level(logging.INFO, logger="repro.ctmdp.sparse"):
            with instrument(metrics=registry, tracer=tracer):
                x = solve_sparse_with_fallback(m, b, what="unit test")
        assert np.all(np.isfinite(x))
        (row,) = registry.series(KRYLOV_SERIES).records
        assert row["rung"] == "gmres"
        assert row["reason"] == "forced for test"
        assert row["iterations"] == len(row["residuals"]) > 0
        # The trajectory is the per-iteration preconditioned norms.
        assert all(r >= 0.0 for r in row["residuals"])
        assert registry.counter("solver.sparse.gmres_fallbacks").value == 1
        (span,) = [r for r in tracer.records if r.name == "sparse_solve"]
        assert span.attrs["rung"] == "gmres"
        assert span.attrs["gmres_iterations"] == row["iterations"]
        assert any(
            "fell back to ILU-GMRES" in rec.message for rec in caplog.records
        )

    def test_sparse_solve_span_nests_under_caller(self):
        m, b = _spd_system()
        registry, tracer = _instrumented()
        with instrument(metrics=registry, tracer=tracer) as ins:
            with ins.span("policy_iteration") as outer:
                solve_sparse_with_fallback(m, b)
        (solve_span,) = [
            r for r in tracer.records if r.name == "sparse_solve"
        ]
        assert solve_span.parent_id == outer.span_id

    def test_disabled_path_attaches_no_callback(self, monkeypatch):
        """Without instrumentation the GMRES callback must stay None."""
        seen = {}
        import repro.ctmdp.sparse as sparse_mod

        real_gmres = sparse_mod.gmres

        def spy(*args, **kwargs):
            seen["callback"] = kwargs.get("callback")
            return real_gmres(*args, **kwargs)

        monkeypatch.setattr(sparse_mod, "gmres", spy)
        monkeypatch.setattr(
            sparse_mod,
            "_direct_solve",
            lambda a, b: (_ for _ in ()).throw(RuntimeError("forced")),
        )
        m, b = _spd_system()
        solve_sparse_with_fallback(m, b)
        assert seen["callback"] is None


class TestKronTelemetry:
    def test_policy_iteration_counts_matvecs_and_sets_gauge(self):
        kmdp = kron_farm_model(2, 3)  # 4^2 = 16 states
        registry, tracer = _instrumented()
        with instrument(metrics=registry, tracer=tracer):
            result = policy_iteration(kmdp)
        assert np.isfinite(result.gain)
        assert registry.counter("solver.kron.matvecs").value > 0
        assert registry.counter("solver.kron.gmres_solves").value > 0
        assert registry.gauge("solver.kron.uniformization_rate").value > 0
        rows = registry.series("solver.kron.krylov.residuals").records
        assert rows and all(r["converged"] for r in rows)
        assert all(len(r["residuals"]) == r["iterations"] for r in rows)

    def test_gmres_span_nests_under_policy_evaluation(self):
        kmdp = kron_farm_model(2, 3)
        registry, tracer = _instrumented()
        with instrument(metrics=registry, tracer=tracer):
            policy_iteration(kmdp)
        spans = tracer.to_dicts()
        evals = {
            s["span_id"]: s
            for s in spans
            if s["name"] == "policy_evaluation"
        }
        assert evals
        # Every Krylov solve nests under the phase that issued it: the
        # elimination system under policy_evaluation, the occupation
        # solve under stationary_solve.
        solver_parents = dict(evals)
        solver_parents.update(
            (s["span_id"], s)
            for s in spans
            if s["name"] == "stationary_solve"
        )
        gmres_spans = [s for s in spans if s["name"] == "gmres_solve"]
        assert gmres_spans
        assert all(s["parent_id"] in solver_parents for s in gmres_spans)
        assert any(s["parent_id"] in evals for s in gmres_spans)
        assert all(
            s["attrs"].get("backend") == "kron" for s in evals.values()
        )


class TestAdmissionTelemetry:
    def test_gate_counters_and_phase_spans(self):
        mdp = paper_system(capacity=2).build_ctmdp(weight=1.0)
        registry, tracer = _instrumented()
        with instrument(metrics=registry, tracer=tracer):
            report = admit_ctmdp(mdp, level="standard")
        assert registry.counter("admission.gates").value == 1
        assert (
            registry.counter(f"admission.verdict.{report.verdict}").value
            == 1
        )
        for finding in report.findings:
            assert (
                registry.counter(f"admission.findings.{finding.code}").value
                >= 1
            )
        spans = tracer.to_dicts()
        (gate,) = [s for s in spans if s["name"] == "admission.gate"]
        assert gate["attrs"]["verdict"] == report.verdict
        phase_names = {
            s["name"] for s in spans if s["parent_id"] == gate["span_id"]
        }
        assert {"admission.compile", "admission.structural"} <= phase_names


def _krylov_work(i: int) -> float:
    """One forced-GMRES sparse solve; emits a Krylov series row."""
    m, b = _spd_system(seed=i)
    x = solve_sparse_with_fallback(m, b, what=f"item-{i}")
    return float(x[0])


class TestParallelKrylovSeriesMerge:
    def _run(self, n_jobs, monkeypatch):
        def boom(a_csc, b):
            raise RuntimeError("forced for test")

        # Patched in the parent before the pool forks, so both the
        # serial path and every worker hit the GMRES rung.
        monkeypatch.setattr("repro.ctmdp.sparse._direct_solve", boom)
        registry, tracer = _instrumented()
        with instrument(metrics=registry, tracer=tracer):
            results = parallel_map(_krylov_work, range(8), n_jobs=n_jobs)
        return results, json.dumps(registry.to_dict(), sort_keys=True)

    @pytest.mark.parametrize("n_jobs", [2, 3])
    def test_worker_series_merge_bit_identical(self, n_jobs, monkeypatch):
        serial_results, serial_metrics = self._run(1, monkeypatch)
        par_results, par_metrics = self._run(n_jobs, monkeypatch)
        assert par_results == serial_results
        assert par_metrics == serial_metrics
        rows = json.loads(par_metrics)[KRYLOV_SERIES]["records"]
        assert [r["what"] for r in rows] == [
            f"item-{i}" for i in range(8)
        ]
        assert all(r["rung"] == "gmres" for r in rows)
