"""Tests for CTMDP -> DTMDP uniformization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ctmdp.model import CTMDP
from repro.ctmdp.uniformization import APERIODICITY_SLACK, uniformize_ctmdp


@pytest.fixture
def small_mdp() -> CTMDP:
    mdp = CTMDP(["a", "b"])
    mdp.add_action("a", "x", rates=[0.0, 2.0], cost_rate=6.0)
    mdp.add_action("a", "y", rates=[0.0, 4.0], cost_rate=8.0)
    mdp.add_action("b", "x", rates=[1.0, 0.0], cost_rate=2.0)
    return mdp


class TestUniformizeCTMDP:
    def test_default_rate_has_slack(self, small_mdp):
        uni = uniformize_ctmdp(small_mdp)
        assert uni.rate == pytest.approx(APERIODICITY_SLACK * 4.0)

    def test_rows_are_stochastic(self, small_mdp):
        uni = uniformize_ctmdp(small_mdp)
        for row in uni.transition.values():
            assert row.sum() == pytest.approx(1.0)
            assert np.all(row >= 0)

    def test_self_loop_probability(self, small_mdp):
        uni = uniformize_ctmdp(small_mdp, rate=10.0)
        row = uni.transition[(0, "y")]
        np.testing.assert_allclose(row, [0.6, 0.4])

    def test_step_costs_scaled(self, small_mdp):
        uni = uniformize_ctmdp(small_mdp, rate=10.0)
        assert uni.step_cost[(0, "x")] == pytest.approx(0.6)
        assert uni.step_cost[(1, "x")] == pytest.approx(0.2)

    def test_rate_below_max_exit_rejected(self, small_mdp):
        with pytest.raises(ValueError):
            uniformize_ctmdp(small_mdp, rate=3.0)

    def test_actions_preserved_per_state(self, small_mdp):
        uni = uniformize_ctmdp(small_mdp)
        assert uni.actions[0] == ["x", "y"]
        assert uni.actions[1] == ["x"]

    def test_zero_rate_model_gets_unit_rate(self):
        mdp = CTMDP(["only"])
        mdp.add_action("only", "stay", rates=[0.0], cost_rate=1.0)
        uni = uniformize_ctmdp(mdp)
        assert uni.rate == 1.0
        np.testing.assert_allclose(uni.transition[(0, "stay")], [1.0])

    def test_stationary_distribution_preserved(self, two_state_generator):
        # Uniformizing the chain induced by a fixed action preserves pi.
        from repro.markov.generator import stationary_distribution

        mdp = CTMDP(["on", "off"])
        mdp.add_action("on", "go", rates=[0.0, 2.0], cost_rate=0.0)
        mdp.add_action("off", "go", rates=[3.0, 0.0], cost_rate=0.0)
        uni = uniformize_ctmdp(mdp)
        p = np.vstack([uni.transition[(0, "go")], uni.transition[(1, "go")]])
        pi = stationary_distribution(two_state_generator)
        np.testing.assert_allclose(pi @ p, pi, atol=1e-12)
