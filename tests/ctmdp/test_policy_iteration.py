"""Tests for average-cost policy iteration."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.ctmdp.model import CTMDP
from repro.ctmdp.policy import Policy, evaluate_policy
from repro.ctmdp.policy_iteration import policy_iteration


def brute_force_optimal_gain(mdp: CTMDP) -> float:
    """Enumerate every deterministic policy and evaluate exactly."""
    states = mdp.states
    best = np.inf
    for actions in itertools.product(*(mdp.actions(s) for s in states)):
        policy = Policy(mdp, dict(zip(states, actions)))
        try:
            gain = evaluate_policy(policy).gain
        except Exception:
            continue  # multichain combination; PI never visits these here
        best = min(best, gain)
    return best


@pytest.fixture
def power_mdp() -> CTMDP:
    """On/off server whose every deterministic policy is unichain.

    'up' decays spontaneously (rate 0.5) even under 'stay', so no
    action combination produces two disjoint recurrent classes.
    """
    mdp = CTMDP(["up", "down"])
    mdp.add_action("up", "stay", rates=[0.0, 0.5], cost_rate=10.0)
    mdp.add_action("up", "sleep", rates=[0.0, 4.0], cost_rate=10.0,
                   impulse_costs=[0.0, 2.0])
    mdp.add_action("down", "stay", rates=[0.0, 0.0], cost_rate=1.0)
    mdp.add_action("down", "wake", rates=[5.0, 0.0], cost_rate=1.0,
                   impulse_costs=[3.0, 0.0])
    return mdp


def random_unichain_mdp(seed: int, n_states: int = 5, n_actions: int = 3) -> CTMDP:
    """A dense random CTMDP; dense positive rates keep it unichain."""
    rng = np.random.default_rng(seed)
    mdp = CTMDP(list(range(n_states)))
    for s in range(n_states):
        for a in range(n_actions):
            rates = rng.uniform(0.1, 2.0, size=n_states)
            rates[s] = 0.0
            mdp.add_action(s, a, rates=rates, cost_rate=float(rng.uniform(0, 10)))
    return mdp


class TestPolicyIteration:
    def test_prefers_cheap_state(self, power_mdp):
        # Staying down forever costs 1/s, the global optimum here
        # (waking costs both power and impulses).
        result = policy_iteration(power_mdp)
        assert result.gain == pytest.approx(
            brute_force_optimal_gain(power_mdp)
        )

    def test_matches_brute_force_on_random_models(self):
        for seed in range(8):
            mdp = random_unichain_mdp(seed)
            result = policy_iteration(mdp)
            assert result.gain == pytest.approx(
                brute_force_optimal_gain(mdp), abs=1e-9
            ), f"seed {seed}"

    def test_gain_history_non_increasing(self):
        mdp = random_unichain_mdp(42, n_states=6, n_actions=4)
        result = policy_iteration(mdp)
        for earlier, later in zip(result.gain_history, result.gain_history[1:]):
            assert later <= earlier + 1e-9

    def test_converges_in_few_iterations(self):
        mdp = random_unichain_mdp(7)
        result = policy_iteration(mdp)
        assert result.iterations <= 10

    def test_initial_policy_respected_but_still_optimal(self, power_mdp):
        bad_start = Policy(power_mdp, {"up": "stay", "down": "wake"})
        result = policy_iteration(power_mdp, initial_policy=bad_start)
        assert result.gain == pytest.approx(1.0)

    def test_optimal_policy_is_fixed_point(self):
        mdp = random_unichain_mdp(3)
        first = policy_iteration(mdp)
        again = policy_iteration(mdp, initial_policy=first.policy)
        assert again.iterations == 1
        assert again.policy == first.policy

    def test_stationary_returned(self, power_mdp):
        result = policy_iteration(power_mdp)
        assert result.stationary.sum() == pytest.approx(1.0)

    def test_paper_model_solves(self, paper_mdp):
        result = policy_iteration(paper_mdp)
        assert result.iterations <= 20
        assert 0.0 < result.gain < 50.0
