"""Tests for the CSR sparse lowering and its Krylov solver ladder."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

import repro.ctmdp.sparse as sparse_mod
from repro.ctmdp.compiled import compile_ctmdp
from repro.ctmdp.model import CTMDP
from repro.ctmdp.policy import Policy, evaluate_policy
from repro.ctmdp.sparse import (
    SparseCTMDP,
    compile_sparse_ctmdp,
    solve_sparse_with_fallback,
    sparse_stationary_distribution,
)
from repro.errors import (
    InvalidModelError,
    NotIrreducibleError,
    SolverError,
)
from repro.markov.generator import stationary_distribution


@pytest.fixture
def power_mdp() -> CTMDP:
    mdp = CTMDP(["up", "down"])
    mdp.add_action("up", "stay", rates=[0.0, 0.5], cost_rate=10.0)
    mdp.add_action("up", "sleep", rates=[0.0, 4.0], cost_rate=10.0,
                   impulse_costs=[0.0, 2.0])
    mdp.add_action("down", "stay", rates=[0.0, 0.0], cost_rate=1.0)
    mdp.add_action("down", "wake", rates=[5.0, 0.0], cost_rate=1.0,
                   impulse_costs=[3.0, 0.0])
    return mdp


class TestSparseLowering:
    def test_from_ctmdp_matches_compiled_bitwise(self, power_mdp):
        comp = compile_ctmdp(power_mdp)
        smdp = compile_sparse_ctmdp(power_mdp)
        assert smdp.states == comp.states
        assert smdp.actions == comp.actions
        np.testing.assert_array_equal(smdp.cost, comp.cost)
        np.testing.assert_array_equal(smdp.generator.toarray(), comp.generator)
        np.testing.assert_array_equal(smdp.pair_state, comp.pair_state)
        np.testing.assert_array_equal(smdp.pair_offset, comp.pair_offset)

    def test_compile_is_cached_on_the_model(self, power_mdp):
        assert compile_sparse_ctmdp(power_mdp) is compile_sparse_ctmdp(power_mdp)
        smdp = compile_sparse_ctmdp(power_mdp)
        assert compile_sparse_ctmdp(smdp) is smdp

    def test_from_coo_completes_diagonals(self):
        smdp = SparseCTMDP.from_coo(
            states=["a", "b"],
            actions=[["go"], ["back"]],
            pair_rows=np.array([0, 1]),
            cols=np.array([1, 0]),
            rates=np.array([2.0, 3.0]),
            cost=np.array([1.0, 4.0]),
        )
        np.testing.assert_array_equal(
            smdp.generator.toarray(), [[-2.0, 2.0], [3.0, -3.0]]
        )
        np.testing.assert_array_equal(smdp.exit_rates(), [2.0, 3.0])

    def test_from_coo_rejects_negative_rates(self):
        with pytest.raises(InvalidModelError):
            SparseCTMDP.from_coo(
                ["a", "b"], [["go"], ["back"]],
                np.array([0]), np.array([1]), np.array([-1.0]),
                np.zeros(2),
            )

    def test_from_coo_rejects_self_transitions(self):
        with pytest.raises(InvalidModelError):
            SparseCTMDP.from_coo(
                ["a", "b"], [["go"], ["back"]],
                np.array([0]), np.array([0]), np.array([1.0]),
                np.zeros(2),
            )

    def test_canonical_rescaling_is_exact(self, power_mdp):
        smdp = compile_sparse_ctmdp(power_mdp)
        g, c, shift = smdp.canonical()
        np.testing.assert_array_equal(
            g.toarray(), np.ldexp(smdp.generator.toarray(), -shift)
        )
        np.testing.assert_array_equal(c, np.ldexp(smdp.cost, -shift))

    def test_sparse_entries_row_major(self, power_mdp):
        smdp = compile_sparse_ctmdp(power_mdp)
        rows, cols, vals = smdp.sparse_entries()
        assert np.all(np.diff(rows) >= 0)
        dense = smdp.generator.toarray()
        np.testing.assert_array_equal(vals, dense[rows, cols])


class TestSolverLadder:
    def bordered_system(self):
        """A small well-posed bordered evaluation system."""
        g = np.array([[-2.0, 2.0, 0.0],
                      [1.0, -3.0, 2.0],
                      [0.0, 4.0, -4.0]])
        a = np.zeros((4, 4))
        a[:3, :3] = g
        a[:3, 3] = -1.0
        a[3, 0] = 1.0
        b = np.array([1.0, 2.0, 3.0, 0.0])
        return sp.csc_array(a), b

    def test_direct_rung_solves(self):
        a, b = self.bordered_system()
        x = solve_sparse_with_fallback(a, b)
        np.testing.assert_allclose(a @ x, b, atol=1e-10)

    def test_gmres_rung_meets_documented_residual(self, monkeypatch):
        """Forcing the Krylov rung still meets the residual contract."""

        def broken(a_csc, b):
            raise RuntimeError("forced direct failure")

        monkeypatch.setattr(sparse_mod, "_direct_solve", broken)
        a, b = self.bordered_system()
        x = solve_sparse_with_fallback(a, b)
        a_max = float(np.max(np.abs(a.toarray())))
        residual = np.max(np.abs(a @ x - b)) / (
            a_max * max(np.max(np.abs(x)), 1e-300)
        )
        from repro.robust.guardrails import RESIDUAL_RTOL

        assert residual <= RESIDUAL_RTOL

    def test_singular_system_raises_typed(self, monkeypatch):
        a = sp.csc_array(np.zeros((3, 3)))
        b = np.ones(3)
        with pytest.raises(SolverError) as err:
            solve_sparse_with_fallback(a, b)
        assert err.value.diagnostics["backend"] == "sparse"


class TestSparseStationary:
    def test_matches_dense(self, two_state_generator):
        p_sparse = sparse_stationary_distribution(
            sp.csr_array(two_state_generator)
        )
        p_dense = stationary_distribution(two_state_generator)
        np.testing.assert_allclose(p_sparse, p_dense, atol=1e-12)

    def test_reducible_raises(self, reducible_generator):
        with pytest.raises(NotIrreducibleError):
            sparse_stationary_distribution(sp.csr_array(reducible_generator))

    def test_rejects_non_square(self):
        with pytest.raises(InvalidModelError):
            sparse_stationary_distribution(sp.csr_array(np.zeros((2, 3))))


class TestSparseEvaluation:
    def test_evaluate_policy_matches_dense(self, power_mdp):
        policy = Policy(power_mdp, {"up": "sleep", "down": "wake"})
        dense = evaluate_policy(policy)
        sparse = evaluate_policy(policy, backend="sparse")
        assert abs(dense.gain - sparse.gain) < 1e-10
        np.testing.assert_allclose(dense.bias, sparse.bias, atol=1e-9)
        np.testing.assert_allclose(
            dense.stationary, sparse.stationary, atol=1e-10
        )

    def test_randomized_policy_rejected(self, power_mdp):
        from repro.ctmdp.policy import RandomizedPolicy

        randomized = RandomizedPolicy(power_mdp, {
            "up": {"stay": 0.5, "sleep": 0.5},
            "down": {"wake": 1.0},
        })
        with pytest.raises(SolverError):
            evaluate_policy(randomized, backend="sparse")
