"""Within-solve reuse layer: BorderedSystemCache + sparse-PI wiring.

Pins the three mechanisms of :mod:`repro.ctmdp.reuse` -- vectorized
bordered assembly, in-place CSR row surgery, stale-LU preconditioned
GMRES -- against the straightforward ``block_array`` lowering they
replace, and the correctness contract: warm-started sparse policy
iteration returns bit-identical results to a cold solve.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

import repro.ctmdp.reuse as reuse_mod
import repro.ctmdp.sparse as sparse_mod
from repro.ctmdp.policy_iteration import policy_iteration
from repro.ctmdp.reuse import (
    REUSE_MAX_CHANGED_FRACTION,
    BorderedSystemCache,
    _concat_ranges,
)
from repro.ctmdp.sparse import (
    ILU_DROP_TOL,
    ILU_FILL_FACTOR,
    KRYLOV_SERIES,
    compile_sparse_ctmdp,
    solve_sparse_with_fallback,
)
from repro.dpm.presets import paper_system
from repro.obs.metrics import MetricsRegistry
from repro.obs.runtime import instrument
from repro.robust.guardrails import RESIDUAL_RTOL


def _paper_sparse(capacity=25, weight=1.0):
    return compile_sparse_ctmdp(
        paper_system(capacity=capacity).build_ctmdp(
            weight=weight, backend="sparse"
        )
    )


def _reference_system(smdp, sel, reference_state=0):
    """The pre-reuse ``block_array`` lowering of the bordered system."""
    g_can, c_can, _ = smdp.canonical()
    n = smdp.n_states
    gain_col = sp.csr_array(
        (np.full(n, -1.0), (np.arange(n), np.zeros(n, dtype=int))),
        shape=(n, 1),
    )
    ref_row = sp.csr_array(([1.0], ([0], [reference_state])), shape=(1, n))
    return sp.block_array(
        [[g_can[sel], gain_col], [ref_row, None]], format="csr"
    )


def _counters(registry):
    doc = registry.to_dict()
    return {
        name: value.get("value")
        for name, value in doc.items()
        if name.startswith("solver.reuse.")
    }


class TestConcatRanges:
    def test_basic(self):
        np.testing.assert_array_equal(
            _concat_ranges(np.array([3, 1, 2])), [0, 1, 2, 0, 0, 1]
        )

    def test_empty(self):
        assert _concat_ranges(np.zeros(0, dtype=np.intp)).size == 0

    def test_zero_counts_interleaved(self):
        np.testing.assert_array_equal(
            _concat_ranges(np.array([0, 2, 0, 1])), [0, 1, 0]
        )


class TestAssembly:
    def test_full_assembly_matches_block_array(self):
        smdp = _paper_sparse()
        g_can, _, _ = smdp.canonical()
        cache = BorderedSystemCache(g_can, smdp.n_states, 0)
        for sel in (
            smdp.pair_offset[:-1],
            smdp.pair_offset[1:] - 1,  # last-listed action per state
        ):
            a = cache.system_for(np.asarray(sel))
            ref = _reference_system(smdp, np.asarray(sel))
            assert (a != ref).nnz == 0
            # Bit-level check, not just same sparsity pattern:
            ref_csr = sp.csr_array(ref)
            np.testing.assert_array_equal(a.indptr, ref_csr.indptr)
            np.testing.assert_array_equal(a.indices, ref_csr.indices)
            np.testing.assert_array_equal(a.data, ref_csr.data)

    def test_incremental_update_matches_full_reassembly(self):
        # A synthetic model where every action has the same row nnz, so
        # flipping actions exercises the in-place surgery path.
        n, k = 12, 3
        rng = np.random.default_rng(7)
        rows, cols, vals = [], [], []
        for pair in range(n * k):
            state = pair // k
            dests = rng.choice(
                [j for j in range(n) if j != state], size=3, replace=False
            )
            for j in dests:
                rows.append(pair)
                cols.append(int(j))
                vals.append(float(rng.uniform(0.5, 2.0)))
        smdp = sparse_mod.SparseCTMDP.from_coo(
            list(range(n)),
            [tuple(f"a{i}" for i in range(k))] * n,
            np.asarray(rows, dtype=np.intp),
            np.asarray(cols, dtype=np.intp),
            np.asarray(vals),
            np.zeros(n * k),
        )
        g_can, _, _ = smdp.canonical()
        metrics = MetricsRegistry()
        with instrument(metrics=metrics):
            cache = BorderedSystemCache(g_can, n, 0)
            sel = smdp.pair_offset[:-1].copy()
            cache.system_for(sel)
            sel2 = sel.copy()
            sel2[[2, 5, 9]] += 1  # flip three states to their next action
            a = cache.system_for(sel2).copy()
        ref = sp.csr_array(_reference_system(smdp, sel2))
        np.testing.assert_array_equal(a.indptr, ref.indptr)
        np.testing.assert_array_equal(a.indices, ref.indices)
        np.testing.assert_array_equal(a.data, ref.data)
        counters = _counters(metrics)
        assert counters["solver.reuse.incremental_updates"] == 1
        assert counters["solver.reuse.incremental_update_rows"] == 3
        assert counters["solver.reuse.full_assemblies"] == 1

    def test_sparsity_change_falls_back_to_reassembly(self):
        smdp = _paper_sparse(capacity=8)
        g_can, _, _ = smdp.canonical()
        counts = np.diff(smdp.generator.indptr)
        # Find a state whose two actions have different row nnz.
        target = None
        for state in range(smdp.n_states):
            lo, hi = smdp.pair_offset[state], smdp.pair_offset[state + 1]
            if hi - lo >= 2 and counts[lo] != counts[lo + 1]:
                target = state
                break
        assert target is not None, "SYS actions should differ in nnz"
        metrics = MetricsRegistry()
        with instrument(metrics=metrics):
            cache = BorderedSystemCache(g_can, smdp.n_states, 0)
            sel = smdp.pair_offset[:-1].copy()
            cache.system_for(sel)
            sel2 = sel.copy()
            sel2[target] += 1
            a = cache.system_for(sel2)
        ref = sp.csr_array(_reference_system(smdp, sel2))
        np.testing.assert_array_equal(a.indptr, ref.indptr)
        np.testing.assert_array_equal(a.data, ref.data)
        counters = _counters(metrics)
        assert counters["solver.reuse.full_assemblies"] == 2
        assert counters.get("solver.reuse.incremental_updates") is None

    def test_unchanged_selection_reuses_matrix_object(self):
        smdp = _paper_sparse(capacity=6)
        g_can, _, _ = smdp.canonical()
        cache = BorderedSystemCache(g_can, smdp.n_states, 0)
        sel = smdp.pair_offset[:-1]
        a1 = cache.system_for(sel)
        a2 = cache.system_for(sel.copy())
        assert a1 is a2


class TestReuseLadder:
    def test_reused_lu_solution_meets_residual_contract(self):
        smdp = _paper_sparse(capacity=30)
        g_can, c_can, _ = smdp.canonical()
        n = smdp.n_states
        metrics = MetricsRegistry()
        with instrument(metrics=metrics):
            cache = BorderedSystemCache(g_can, n, 0)
            sel = smdp.pair_offset[:-1].copy()
            b = np.concatenate([-c_can[sel], [0.0]])
            a_max = max(1.0, float(np.max(np.abs(g_can.data))))
            cache.solve(sel, b, a_max)  # factorizes
            sel2 = sel.copy()
            sel2[4] += 1  # one changed row: prime stale-LU territory
            b2 = np.concatenate([-c_can[sel2], [0.0]])
            x = cache.solve(sel2, b2, a_max)
        a = sp.csr_array(_reference_system(smdp, sel2))
        residual = float(np.max(np.abs(a @ x - b2))) / (
            a_max * max(float(np.max(np.abs(x))), 1e-300)
        )
        assert residual <= RESIDUAL_RTOL
        counters = _counters(metrics)
        assert counters["solver.reuse.refactorizations"] == 1
        assert counters["solver.reuse.factorization_reuses"] == 1
        rows = metrics.to_dict()[KRYLOV_SERIES]["records"]
        reused = [r for r in rows if r["rung"] == "reused_lu"]
        assert reused and all(r["residuals"] for r in rows)

    def test_large_policy_change_refactorizes(self):
        smdp = _paper_sparse(capacity=30)
        g_can, c_can, _ = smdp.canonical()
        n = smdp.n_states
        metrics = MetricsRegistry()
        with instrument(metrics=metrics):
            cache = BorderedSystemCache(g_can, n, 0)
            sel = smdp.pair_offset[:-1].copy()
            b = np.concatenate([-c_can[sel], [0.0]])
            a_max = max(1.0, float(np.max(np.abs(g_can.data))))
            cache.solve(sel, b, a_max)
            # Change far more rows than the stale-LU rung tolerates.
            sel2 = smdp.pair_offset[1:] - 1
            changed = int(np.count_nonzero(sel2 != sel))
            assert changed > REUSE_MAX_CHANGED_FRACTION * n
            b2 = np.concatenate([-c_can[sel2], [0.0]])
            cache.solve(sel2, b2, a_max)
        counters = _counters(metrics)
        assert counters["solver.reuse.refactorizations"] == 2
        assert counters.get("solver.reuse.factorization_reuses") is None


class TestCacheSelfInvalidation:
    """Satellite: `BorderedSystemCache` self-invalidation under forced
    misses and repeated solve cycles (only the happy path was tested).
    """

    def _primed(self, capacity=30):
        smdp = _paper_sparse(capacity=capacity)
        g_can, c_can, _ = smdp.canonical()
        cache = BorderedSystemCache(g_can, smdp.n_states, 0)
        sel = smdp.pair_offset[:-1].copy()
        a_max = max(1.0, float(np.max(np.abs(g_can.data))))
        b = np.concatenate([-c_can[sel], [0.0]])
        cache.solve(sel, b, a_max)
        # States with at least two actions -- the only ones whose row
        # choice can legally be perturbed.
        flexible = np.flatnonzero(np.diff(smdp.pair_offset) > 1)
        return smdp, c_can, cache, sel, a_max, flexible

    def test_forced_miss_refactorizes_and_stays_correct(self, monkeypatch):
        # A stale-LU GMRES that diverges (NaN, as a breakdown leaves it)
        # must register as a miss, so each solve falls through to a
        # fresh factorization -- and still meets the residual contract.
        def diverged_gmres(a, b, **kwargs):
            return np.full_like(b, np.nan), 1

        metrics = MetricsRegistry()
        with instrument(metrics=metrics):
            smdp, c_can, cache, sel, a_max, flexible = self._primed()
            monkeypatch.setattr(reuse_mod, "gmres", diverged_gmres)
            for k in flexible[:3]:
                sel2 = sel.copy()
                sel2[k] += 1
                b2 = np.concatenate([-c_can[sel2], [0.0]])
                x = cache.solve(sel2, b2, a_max)
                a = sp.csr_array(_reference_system(smdp, sel2))
                residual = float(np.max(np.abs(a @ x - b2))) / (
                    a_max * max(float(np.max(np.abs(x))), 1e-300)
                )
                assert residual <= RESIDUAL_RTOL
        counters = _counters(metrics)
        assert counters["solver.reuse.reuse_misses"] == 3
        assert counters["solver.reuse.refactorizations"] == 4  # prime + 3
        assert counters.get("solver.reuse.factorization_reuses") is None

    def test_failed_acceptance_drops_lu_and_uses_full_ladder(
        self, monkeypatch
    ):
        # An impossible acceptance threshold inside the reuse module
        # makes both the stale-LU rung and the fresh-LU acceptance fail:
        # the cache must drop its factorization state (self-invalidate)
        # and hand the solve to the full sparse ladder, whose own
        # (unpatched) contract still holds.
        smdp, c_can, cache, sel, a_max, flexible = self._primed()
        assert cache._lu is not None
        monkeypatch.setattr(reuse_mod, "RESIDUAL_RTOL", 0.0)
        sel2 = sel.copy()
        sel2[flexible[0]] += 1
        b2 = np.concatenate([-c_can[sel2], [0.0]])
        x = cache.solve(sel2, b2, a_max)
        assert cache._lu is None and cache._lu_sel is None
        a = sp.csr_array(_reference_system(smdp, sel2))
        residual = float(np.max(np.abs(a @ x - b2))) / (
            a_max * max(float(np.max(np.abs(x))), 1e-300)
        )
        assert residual <= RESIDUAL_RTOL

    def test_invalidated_cache_recovers_on_next_solve(self, monkeypatch):
        # After a self-invalidation the next uninhibited solve must
        # refactorize from scratch and restore normal reuse behavior.
        metrics = MetricsRegistry()
        with instrument(metrics=metrics):
            smdp, c_can, cache, sel, a_max, flexible = self._primed()
            monkeypatch.setattr(reuse_mod, "RESIDUAL_RTOL", 0.0)
            sel2 = sel.copy()
            sel2[flexible[0]] += 1
            b2 = np.concatenate([-c_can[sel2], [0.0]])
            cache.solve(sel2, b2, a_max)
            assert cache._lu is None
            monkeypatch.setattr(
                reuse_mod, "RESIDUAL_RTOL", RESIDUAL_RTOL
            )
            b = np.concatenate([-c_can[sel], [0.0]])
            cache.solve(sel, b, a_max)
            assert cache._lu is not None  # refactorized
            sel3 = sel.copy()
            sel3[flexible[1]] += 1
            b3 = np.concatenate([-c_can[sel3], [0.0]])
            cache.solve(sel3, b3, a_max)
        counters = _counters(metrics)
        # The last solve reused the recovered factorization.
        assert counters["solver.reuse.factorization_reuses"] == 1

    def test_repeated_solve_cycles_match_reference(self):
        # Ten alternating-selection solves through one cache, each
        # checked against the block_array reference lowering.
        smdp, c_can, cache, sel, a_max, flexible = self._primed(capacity=20)
        for k in range(10):
            sel2 = sel.copy()
            sel2[flexible[k % len(flexible)]] += 1 if k % 2 == 0 else 0
            b2 = np.concatenate([-c_can[sel2], [0.0]])
            x = cache.solve(sel2, b2, a_max)
            a = sp.csr_array(_reference_system(smdp, sel2))
            residual = float(np.max(np.abs(a @ x - b2))) / (
                a_max * max(float(np.max(np.abs(x))), 1e-300)
            )
            assert residual <= RESIDUAL_RTOL


class TestWarmColdEquivalence:
    @pytest.mark.parametrize("capacity,weight", [(40, 0.5), (75, 1.0)])
    def test_sparse_pi_reuse_is_bit_identical(self, capacity, weight):
        mdp = paper_system(capacity=capacity).build_ctmdp(
            weight=weight, backend="sparse"
        )
        cold = policy_iteration(mdp, reuse=False)
        warm = policy_iteration(mdp, reuse=True)
        assert warm.policy.as_dict() == cold.policy.as_dict()
        assert warm.gain == cold.gain
        np.testing.assert_array_equal(warm.bias, cold.bias)
        np.testing.assert_array_equal(warm.stationary, cold.stationary)
        assert warm.iterations == cold.iterations

    def test_final_reevaluation_counted(self):
        mdp = paper_system(capacity=40).build_ctmdp(
            weight=1.0, backend="sparse"
        )
        metrics = MetricsRegistry()
        with instrument(metrics=metrics):
            result = policy_iteration(mdp, reuse=True)
        assert result.iterations > 1
        counters = _counters(metrics)
        assert counters["solver.reuse.final_reevaluations"] == 1

    def test_seeded_start_converges_to_same_fixed_point(self):
        mdp = paper_system(capacity=40).build_ctmdp(
            weight=1.0, backend="sparse"
        )
        cold = policy_iteration(mdp)
        seeded = policy_iteration(mdp, initial_policy=cold.policy)
        assert seeded.policy.as_dict() == cold.policy.as_dict()
        assert seeded.gain == cold.gain
        np.testing.assert_array_equal(seeded.bias, cold.bias)
        # Starting at the fixed point converges in one no-change round.
        assert seeded.iterations == 1


class TestIluKnobs:
    def test_constants_are_the_documented_values(self):
        assert ILU_DROP_TOL == 1e-6
        assert ILU_FILL_FACTOR == 10.0

    def test_knobs_recorded_in_gmres_series_row(self, monkeypatch):
        def broken(a_csc, b):
            raise RuntimeError("forced direct failure")

        monkeypatch.setattr(sparse_mod, "_direct_solve", broken)
        smdp = _paper_sparse(capacity=10)
        a = _reference_system(smdp, smdp.pair_offset[:-1])
        _, c_can, _ = smdp.canonical()
        b = np.concatenate([-c_can[smdp.pair_offset[:-1]], [0.0]])
        metrics = MetricsRegistry()
        with instrument(metrics=metrics):
            solve_sparse_with_fallback(a, b)
        rows = metrics.to_dict()[KRYLOV_SERIES]["records"]
        (gmres_row,) = [r for r in rows if r["rung"] == "gmres"]
        assert gmres_row["preconditioner"] == "ilu"
        assert gmres_row["ilu_drop_tol"] == ILU_DROP_TOL
        assert gmres_row["ilu_fill_factor"] == ILU_FILL_FACTOR
        assert gmres_row["warm_started"] is False

    def test_knobs_in_solver_error_diagnostics(self, monkeypatch):
        def broken(a_csc, b):
            raise RuntimeError("forced direct failure")

        monkeypatch.setattr(sparse_mod, "_direct_solve", broken)
        from repro.errors import SolverError

        # A singular system defeats both rungs.
        a = sp.csc_array(np.zeros((3, 3)))
        with pytest.raises(SolverError) as err:
            solve_sparse_with_fallback(a, np.ones(3))
        assert err.value.diagnostics["preconditioner"] in ("ilu", "jacobi")

    def test_warm_x0_accepted_and_counted(self, monkeypatch):
        def broken(a_csc, b):
            raise RuntimeError("forced direct failure")

        monkeypatch.setattr(sparse_mod, "_direct_solve", broken)
        smdp = _paper_sparse(capacity=10)
        a = _reference_system(smdp, smdp.pair_offset[:-1])
        _, c_can, _ = smdp.canonical()
        b = np.concatenate([-c_can[smdp.pair_offset[:-1]], [0.0]])
        x_cold = solve_sparse_with_fallback(a, b)
        metrics = MetricsRegistry()
        with instrument(metrics=metrics):
            x_warm = solve_sparse_with_fallback(a, b, x0=x_cold)
        counters = _counters(metrics)
        assert counters["solver.reuse.gmres_warm_starts"] == 1
        rows = metrics.to_dict()[KRYLOV_SERIES]["records"]
        (gmres_row,) = [r for r in rows if r["rung"] == "gmres"]
        assert gmres_row["warm_started"] is True
        assert gmres_row["residuals"]  # non-empty even at instant convergence
        a_max = float(np.max(np.abs(sp.csc_array(a).data)))
        residual = float(np.max(np.abs(a @ x_warm - b))) / (
            a_max * max(float(np.max(np.abs(x_warm))), 1e-300)
        )
        assert residual <= RESIDUAL_RTOL
