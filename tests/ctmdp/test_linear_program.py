"""Tests for the occupation-measure LP solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ctmdp.linear_program import solve_average_cost_lp, solve_constrained_lp
from repro.ctmdp.model import CTMDP
from repro.ctmdp.policy import evaluate_policy
from repro.ctmdp.policy_iteration import policy_iteration
from repro.errors import InfeasibleConstraintError


def random_unichain_mdp(seed: int, n_states: int = 5, n_actions: int = 3) -> CTMDP:
    rng = np.random.default_rng(seed)
    mdp = CTMDP(list(range(n_states)))
    for s in range(n_states):
        for a in range(n_actions):
            rates = rng.uniform(0.1, 2.0, size=n_states)
            rates[s] = 0.0
            mdp.add_action(
                s,
                a,
                rates=rates,
                cost_rate=float(rng.uniform(0, 10)),
                extra_costs={
                    "power": float(rng.uniform(0, 5)),
                    "delay": float(rng.uniform(0, 3)),
                },
            )
    return mdp


class TestAverageCostLP:
    def test_matches_policy_iteration(self):
        for seed in range(6):
            mdp = random_unichain_mdp(seed)
            lp = solve_average_cost_lp(mdp)
            pi = policy_iteration(mdp)
            assert lp.gain == pytest.approx(pi.gain, abs=1e-7), f"seed {seed}"

    def test_occupation_is_probability(self):
        mdp = random_unichain_mdp(1)
        lp = solve_average_cost_lp(mdp)
        total = sum(lp.occupation.values())
        assert total == pytest.approx(1.0, abs=1e-8)
        assert all(v >= 0 for v in lp.occupation.values())

    def test_deterministic_policy_achieves_gain(self):
        mdp = random_unichain_mdp(4)
        lp = solve_average_cost_lp(mdp)
        assert evaluate_policy(lp.deterministic_policy).gain == pytest.approx(
            lp.gain, abs=1e-7
        )

    def test_extra_cost_values_reported(self):
        mdp = random_unichain_mdp(2)
        lp = solve_average_cost_lp(mdp)
        assert set(lp.extra_cost_values) == {"power", "delay"}

    def test_paper_model_matches_pi(self, paper_mdp):
        lp = solve_average_cost_lp(paper_mdp)
        pi = policy_iteration(paper_mdp)
        assert lp.gain == pytest.approx(pi.gain, rel=1e-8)


class TestConstrainedLP:
    def test_constraint_satisfied(self):
        mdp = random_unichain_mdp(0)
        unconstrained = solve_constrained_lp(mdp, "power", {})
        # Bind delay strictly below its unconstrained level.
        delay0 = unconstrained.extra_cost_values["delay"]
        bound = 0.9 * delay0
        lp = solve_constrained_lp(mdp, "power", {"delay": bound})
        assert lp.extra_cost_values["delay"] <= bound + 1e-8
        # Power can only get worse when the constraint binds.
        assert lp.gain >= unconstrained.gain - 1e-9

    def test_infeasible_raises(self):
        mdp = random_unichain_mdp(3)
        with pytest.raises(InfeasibleConstraintError):
            solve_constrained_lp(mdp, "power", {"delay": -1.0})

    def test_tighter_bound_costs_more_power(self):
        mdp = random_unichain_mdp(5)
        base = solve_constrained_lp(mdp, "power", {})
        d0 = base.extra_cost_values["delay"]
        loose = solve_constrained_lp(mdp, "power", {"delay": 0.95 * d0})
        tight = solve_constrained_lp(mdp, "power", {"delay": 0.85 * d0})
        assert tight.gain >= loose.gain - 1e-9

    def test_randomized_policy_valid_distributions(self, paper_mdp):
        lp = solve_constrained_lp(paper_mdp, "power", {"queue_length": 1.0})
        for state in paper_mdp.states:
            dist = lp.policy.distribution(state)
            assert sum(dist.values()) == pytest.approx(1.0)
            assert all(p >= 0 for p in dist.values())

    def test_paper_constrained_gain_between_extremes(self, paper_model, paper_mdp):
        # The constrained optimum must be at least the unconstrained
        # minimum power, at most the always-on power.
        lp = solve_constrained_lp(paper_mdp, "power", {"queue_length": 1.0})
        unconstrained = solve_average_cost_lp(paper_model.build_ctmdp(0.0))
        assert lp.gain >= unconstrained.gain - 1e-9
        assert lp.gain <= 40.0


class TestStatusAndDiagnostics:
    def test_successful_solve_reports_optimal(self):
        mdp = random_unichain_mdp(0)
        lp = solve_average_cost_lp(mdp)
        assert lp.status == "optimal"
        assert lp.diagnostics["highs_status"] == 0
        assert lp.diagnostics["iterations"] > 0

    def test_strong_duality_holds_at_the_optimum(self):
        mdp = random_unichain_mdp(3)
        lp = solve_average_cost_lp(mdp)
        scale = max(1.0, abs(lp.gain))
        assert lp.diagnostics["dual_objective"] == pytest.approx(
            lp.gain, abs=1e-9 * scale
        )
        assert abs(lp.diagnostics["duality_gap"]) < 1e-9 * scale
        # The normalization row's multiplier *is* the gain (LP duality).
        assert lp.diagnostics["gain_dual"] == pytest.approx(
            lp.gain, abs=1e-9 * scale
        )

    def test_constrained_solve_carries_diagnostics(self):
        mdp = random_unichain_mdp(2)
        lp = solve_constrained_lp(mdp, "power", {"delay": 2.0})
        assert lp.status == "optimal"
        scale = max(1.0, abs(lp.gain))
        assert abs(lp.diagnostics["duality_gap"]) < 1e-9 * scale

    def test_infeasible_failure_carries_diagnostics(self):
        mdp = random_unichain_mdp(5)
        with pytest.raises(InfeasibleConstraintError) as excinfo:
            solve_constrained_lp(mdp, "power", {"delay": -1.0})
        diag = excinfo.value.diagnostics
        assert diag["highs_status"] == 2
        assert "message" in diag
        # No duality_gap claim on a failed solve.
        assert "duality_gap" not in diag
