"""Tests for the CTMDP model type."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ctmdp.model import CTMDP, StateActionData
from repro.errors import InvalidModelError


@pytest.fixture
def toy_mdp() -> CTMDP:
    """Two states, two actions each: a minimal on/off power model.

    State "up" (cost 10/s) can stay or head down; state "down"
    (cost 1/s) can stay or head up. Heading down/up pays an impulse.
    """
    mdp = CTMDP(["up", "down"])
    mdp.add_action("up", "stay", rates=[0.0, 0.0], cost_rate=10.0)
    mdp.add_action(
        "up",
        "power_down",
        rates=[0.0, 4.0],
        cost_rate=10.0,
        impulse_costs=[0.0, 2.0],
        extra_costs={"power": 10.0},
    )
    mdp.add_action("down", "stay", rates=[0.0, 0.0], cost_rate=1.0)
    mdp.add_action(
        "down",
        "power_up",
        rates=[5.0, 0.0],
        cost_rate=1.0,
        impulse_costs=[3.0, 0.0],
    )
    return mdp


class TestConstruction:
    def test_requires_states(self):
        with pytest.raises(InvalidModelError):
            CTMDP([])

    def test_unique_states(self):
        with pytest.raises(InvalidModelError, match="unique"):
            CTMDP(["a", "a"])

    def test_duplicate_action_rejected(self, toy_mdp):
        with pytest.raises(InvalidModelError, match="already defined"):
            toy_mdp.add_action("up", "stay", rates=[0.0, 0.0], cost_rate=0.0)

    def test_rates_shape_checked(self):
        mdp = CTMDP(["a", "b"])
        with pytest.raises(InvalidModelError, match="shape"):
            mdp.add_action("a", "x", rates=[1.0], cost_rate=0.0)

    def test_negative_rate_rejected(self):
        mdp = CTMDP(["a", "b"])
        with pytest.raises(InvalidModelError, match="negative rate"):
            mdp.add_action("a", "x", rates=[0.0, -1.0], cost_rate=0.0)

    def test_nonzero_self_rate_rejected(self):
        mdp = CTMDP(["a", "b"])
        with pytest.raises(InvalidModelError, match="self-rate"):
            mdp.add_action("a", "x", rates=[1.0, 0.0], cost_rate=0.0)

    def test_validate_flags_actionless_states(self):
        mdp = CTMDP(["a", "b"])
        mdp.add_action("a", "x", rates=[0.0, 1.0], cost_rate=0.0)
        with pytest.raises(InvalidModelError, match="no actions"):
            mdp.validate()

    def test_unknown_state_and_action(self, toy_mdp):
        with pytest.raises(InvalidModelError, match="unknown state"):
            toy_mdp.index_of("missing")
        with pytest.raises(InvalidModelError, match="not available"):
            toy_mdp.data("up", "warp")


class TestAccessors:
    def test_actions_in_insertion_order(self, toy_mdp):
        assert toy_mdp.actions("up") == ["stay", "power_down"]

    def test_generator_row_has_eqn_2_4_diagonal(self, toy_mdp):
        row = toy_mdp.generator_row("up", "power_down")
        np.testing.assert_allclose(row, [-4.0, 4.0])

    def test_cost_folds_impulses(self, toy_mdp):
        # c = c_ii + sum_j s_ij c_ij = 10 + 4 * 2.
        assert toy_mdp.cost("up", "power_down") == pytest.approx(18.0)
        assert toy_mdp.cost("up", "stay") == pytest.approx(10.0)

    def test_extra_cost_defaults_to_zero(self, toy_mdp):
        assert toy_mdp.extra_cost("up", "power_down", "power") == 10.0
        assert toy_mdp.extra_cost("up", "power_down", "missing") == 0.0

    def test_state_action_pairs_order(self, toy_mdp):
        pairs = toy_mdp.state_action_pairs()
        assert pairs == [
            ("up", "stay"),
            ("up", "power_down"),
            ("down", "stay"),
            ("down", "power_up"),
        ]

    def test_max_exit_rate(self, toy_mdp):
        assert toy_mdp.max_exit_rate() == pytest.approx(5.0)


class TestStateActionData:
    def test_effective_cost_without_impulses(self):
        data = StateActionData(rates=np.array([0.0, 2.0]), cost_rate=3.0)
        assert data.effective_cost_rate() == pytest.approx(3.0)

    def test_effective_cost_with_impulses(self):
        data = StateActionData(
            rates=np.array([0.0, 2.0]),
            cost_rate=3.0,
            impulse_costs=np.array([0.0, 5.0]),
        )
        assert data.effective_cost_rate() == pytest.approx(13.0)
