"""Tests for Policy, RandomizedPolicy and exact policy evaluation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ctmdp.model import CTMDP
from repro.ctmdp.policy import Policy, RandomizedPolicy, evaluate_policy
from repro.errors import InvalidPolicyError


@pytest.fixture
def power_mdp() -> CTMDP:
    """On/off server: off saves power but a wake costs energy."""
    mdp = CTMDP(["up", "down"])
    mdp.add_action("up", "stay", rates=[0.0, 0.0], cost_rate=10.0)
    mdp.add_action("up", "sleep", rates=[0.0, 4.0], cost_rate=10.0,
                   impulse_costs=[0.0, 2.0])
    mdp.add_action("down", "stay", rates=[0.0, 0.0], cost_rate=1.0)
    mdp.add_action("down", "wake", rates=[5.0, 0.0], cost_rate=1.0,
                   impulse_costs=[3.0, 0.0])
    return mdp


@pytest.fixture
def cycling_policy(power_mdp) -> Policy:
    return Policy(power_mdp, {"up": "sleep", "down": "wake"})


class TestPolicy:
    def test_missing_state_rejected(self, power_mdp):
        with pytest.raises(InvalidPolicyError, match="misses"):
            Policy(power_mdp, {"up": "stay"})

    def test_unknown_state_rejected(self, power_mdp):
        with pytest.raises(InvalidPolicyError, match="unknown"):
            Policy(power_mdp, {"up": "stay", "down": "stay", "ghost": "stay"})

    def test_unavailable_action_rejected(self, power_mdp):
        with pytest.raises(InvalidPolicyError, match="not available"):
            Policy(power_mdp, {"up": "wake", "down": "stay"})

    def test_generator_matrix(self, cycling_policy):
        np.testing.assert_allclose(
            cycling_policy.generator_matrix(), [[-4.0, 4.0], [5.0, -5.0]]
        )

    def test_cost_vector_includes_impulses(self, cycling_policy):
        np.testing.assert_allclose(cycling_policy.cost_vector(), [18.0, 16.0])

    def test_induced_chain_stationary(self, cycling_policy):
        chain = cycling_policy.induced_chain()
        probs = chain.stationary_probabilities()
        assert probs["up"] == pytest.approx(5.0 / 9.0)

    def test_equality_and_dict(self, power_mdp, cycling_policy):
        same = Policy(power_mdp, {"up": "sleep", "down": "wake"})
        other = Policy(power_mdp, {"up": "stay", "down": "wake"})
        assert cycling_policy == same
        assert cycling_policy != other
        assert cycling_policy.as_dict() == {"up": "sleep", "down": "wake"}


class TestRandomizedPolicy:
    def test_mixture_generator(self, power_mdp):
        rp = RandomizedPolicy(
            power_mdp,
            {"up": {"stay": 0.5, "sleep": 0.5}, "down": {"wake": 1.0}},
        )
        np.testing.assert_allclose(
            rp.generator_matrix(), [[-2.0, 2.0], [5.0, -5.0]]
        )

    def test_mixture_cost(self, power_mdp):
        rp = RandomizedPolicy(
            power_mdp,
            {"up": {"stay": 0.5, "sleep": 0.5}, "down": {"wake": 1.0}},
        )
        np.testing.assert_allclose(rp.cost_vector(), [14.0, 16.0])

    def test_probabilities_must_normalize(self, power_mdp):
        with pytest.raises(InvalidPolicyError, match="sum to"):
            RandomizedPolicy(
                power_mdp, {"up": {"stay": 0.6}, "down": {"wake": 1.0}}
            )

    def test_unavailable_action_rejected(self, power_mdp):
        with pytest.raises(InvalidPolicyError, match="not available"):
            RandomizedPolicy(
                power_mdp, {"up": {"wake": 1.0}, "down": {"wake": 1.0}}
            )

    def test_deterministic_rounding(self, power_mdp):
        rp = RandomizedPolicy(
            power_mdp,
            {"up": {"stay": 0.2, "sleep": 0.8}, "down": {"wake": 1.0}},
        )
        assert rp.deterministic_rounding().as_dict() == {
            "up": "sleep",
            "down": "wake",
        }

    def test_sample_action_distribution(self, power_mdp):
        rp = RandomizedPolicy(
            power_mdp,
            {"up": {"stay": 0.3, "sleep": 0.7}, "down": {"wake": 1.0}},
        )
        rng = np.random.default_rng(0)
        draws = [rp.sample_action("up", rng) for _ in range(4000)]
        frac = draws.count("sleep") / len(draws)
        assert frac == pytest.approx(0.7, abs=0.03)


class TestEvaluatePolicy:
    def test_gain_equals_stationary_cost(self, cycling_policy):
        ev = evaluate_policy(cycling_policy)
        expected = float(ev.stationary @ cycling_policy.cost_vector())
        assert ev.gain == pytest.approx(expected)

    def test_bias_reference_is_zero(self, cycling_policy):
        ev = evaluate_policy(cycling_policy, reference_state=0)
        assert ev.bias[0] == pytest.approx(0.0)
        ev1 = evaluate_policy(cycling_policy, reference_state=1)
        assert ev1.bias[1] == pytest.approx(0.0)

    def test_evaluation_equation_holds(self, cycling_policy):
        # c + G h = g 1.
        ev = evaluate_policy(cycling_policy)
        lhs = cycling_policy.cost_vector() + cycling_policy.generator_matrix() @ ev.bias
        np.testing.assert_allclose(lhs, ev.gain, atol=1e-10)

    def test_gain_reference_independent(self, cycling_policy):
        g0 = evaluate_policy(cycling_policy, reference_state=0).gain
        g1 = evaluate_policy(cycling_policy, reference_state=1).gain
        assert g0 == pytest.approx(g1)

    def test_cost_override(self, cycling_policy):
        ev = evaluate_policy(cycling_policy, cost_vector=np.array([1.0, 1.0]))
        assert ev.gain == pytest.approx(1.0)

    def test_unichain_with_transient_state(self):
        # "trap" drains into the recurrent pair; evaluation still works.
        mdp = CTMDP(["a", "b", "trap"])
        mdp.add_action("a", "go", rates=[0.0, 1.0, 0.0], cost_rate=2.0)
        mdp.add_action("b", "go", rates=[1.0, 0.0, 0.0], cost_rate=4.0)
        mdp.add_action("trap", "leave", rates=[1.0, 0.0, 0.0], cost_rate=100.0)
        policy = Policy(mdp, {"a": "go", "b": "go", "trap": "leave"})
        ev = evaluate_policy(policy)
        assert ev.gain == pytest.approx(3.0)
        assert ev.stationary[2] == pytest.approx(0.0, abs=1e-12)
