"""Equivalence suite: compiled solver backends vs the reference path.

The compiled lowering (:mod:`repro.ctmdp.compiled`) is a pure
performance layer -- every solver result must match the dict-based
reference path exactly (policies, gains, biases, stationary vectors,
iteration counts), with value iteration allowed floating-point roundoff
on values only (dgemv vs per-row ddot accumulate in different orders).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ctmdp.compiled import CompiledCTMDP, compile_ctmdp
from repro.ctmdp.discounted import discounted_policy_iteration
from repro.ctmdp.model import CTMDP
from repro.ctmdp.policy import Policy, evaluate_policy
from repro.ctmdp.policy_iteration import policy_iteration
from repro.ctmdp.value_iteration import relative_value_iteration
from repro.dpm.presets import (
    disk_drive_provider,
    paper_system,
    wireless_nic_provider,
)
from repro.dpm.service_requestor import ServiceRequestor
from repro.dpm.system import PowerManagedSystemModel
from repro.errors import InvalidPolicyError, SolverError


def preset_mdps():
    """One CTMDP per preset system model (ids for parametrize)."""
    return [
        ("paper-w1", paper_system().build_ctmdp(weight=1.0)),
        ("paper-w0", paper_system().build_ctmdp(weight=0.0)),
        (
            "paper-no-transfer",
            paper_system(include_transfer_states=False).build_ctmdp(weight=0.5),
        ),
        (
            "disk-drive",
            PowerManagedSystemModel(
                disk_drive_provider(), ServiceRequestor(0.25), capacity=3
            ).build_ctmdp(weight=1.0),
        ),
        (
            "wireless-nic",
            PowerManagedSystemModel(
                wireless_nic_provider(), ServiceRequestor(10.0), capacity=3
            ).build_ctmdp(weight=2.0),
        ),
    ]


PRESETS = preset_mdps()
PRESET_IDS = [name for name, _ in PRESETS]
PRESET_MDPS = [mdp for _, mdp in PRESETS]


def random_mdp(seed: int, n_states: int, n_actions: int) -> CTMDP:
    """Dense random unichain CTMDP with impulse and extra costs."""
    rng = np.random.default_rng(seed)
    mdp = CTMDP(list(range(n_states)))
    for s in range(n_states):
        for a in range(n_actions):
            rates = rng.uniform(0.05, 3.0, size=n_states)
            rates[s] = 0.0
            impulses = rng.uniform(0.0, 2.0, size=n_states)
            mdp.add_action(
                s,
                a,
                rates=rates,
                cost_rate=float(rng.uniform(-5, 10)),
                impulse_costs=impulses if a % 2 == 0 else None,
                extra_costs={"power": float(rng.uniform(0, 4))},
            )
    return mdp


@pytest.mark.parametrize("mdp", PRESET_MDPS, ids=PRESET_IDS)
class TestBackendEquivalence:
    def test_policy_iteration_identical(self, mdp):
        ref = policy_iteration(mdp, backend="reference")
        cmp_ = policy_iteration(mdp, backend="compiled")
        assert cmp_.policy.as_dict() == ref.policy.as_dict()
        assert cmp_.gain == ref.gain
        assert np.array_equal(cmp_.bias, ref.bias)
        assert np.array_equal(cmp_.stationary, ref.stationary)
        assert cmp_.iterations == ref.iterations
        assert cmp_.gain_history == ref.gain_history

    def test_discounted_identical(self, mdp):
        ref = discounted_policy_iteration(mdp, discount=0.1, backend="reference")
        cmp_ = discounted_policy_iteration(mdp, discount=0.1, backend="compiled")
        assert cmp_.policy.as_dict() == ref.policy.as_dict()
        assert np.array_equal(cmp_.values, ref.values)
        assert cmp_.iterations == ref.iterations

    def test_evaluate_policy_identical(self, mdp):
        policy = Policy(mdp, {s: mdp.actions(s)[0] for s in mdp.states})
        ref = evaluate_policy(policy, backend="reference")
        cmp_ = evaluate_policy(policy, backend="compiled")
        assert cmp_.gain == ref.gain
        assert np.array_equal(cmp_.bias, ref.bias)
        assert np.array_equal(cmp_.stationary, ref.stationary)


# The default paper model's stiff self-switch rate makes plain value
# iteration converge too slowly for a tight span; use the soft-rate
# variant the reference VI tests use, plus the non-paper presets.
VI_PRESETS = [
    ("paper-soft", paper_system(self_switch_rate=50.0).build_ctmdp(weight=1.0)),
    PRESETS[2],
    PRESETS[3],
    PRESETS[4],
]


@pytest.mark.parametrize(
    "mdp", [m for _, m in VI_PRESETS], ids=[n for n, _ in VI_PRESETS]
)
class TestValueIterationEquivalence:
    def test_value_iteration_agrees(self, mdp):
        # One matrix-vector product per sweep accumulates in a different
        # order than the per-row reference dots, so values may differ in
        # the last bits; the greedy policy and sweep count must agree
        # exactly and the gain to tight relative tolerance.
        ref = relative_value_iteration(mdp, span_tolerance=1e-8, backend="reference")
        cmp_ = relative_value_iteration(mdp, span_tolerance=1e-8, backend="compiled")
        assert cmp_.policy.as_dict() == ref.policy.as_dict()
        assert cmp_.iterations == ref.iterations
        assert cmp_.gain == pytest.approx(ref.gain, rel=1e-9, abs=1e-12)
        assert cmp_.values == pytest.approx(ref.values, rel=1e-9, abs=1e-9)


class TestRandomizedEquivalence:
    @given(
        params=st.tuples(
            st.integers(0, 10_000), st.integers(2, 6), st.integers(1, 4)
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_policy_iteration_identical_on_random_models(self, params):
        seed, n_states, n_actions = params
        mdp = random_mdp(seed, n_states, n_actions)
        ref = policy_iteration(mdp, backend="reference")
        cmp_ = policy_iteration(mdp, backend="compiled")
        assert cmp_.policy.as_dict() == ref.policy.as_dict()
        assert cmp_.gain == ref.gain
        assert np.array_equal(cmp_.bias, ref.bias)
        assert np.array_equal(cmp_.stationary, ref.stationary)
        assert cmp_.gain_history == ref.gain_history

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_initial_policy_respected(self, seed):
        mdp = random_mdp(seed, 4, 3)
        rng = np.random.default_rng(seed + 7)
        initial = Policy(
            mdp,
            {
                s: mdp.actions(s)[rng.integers(len(mdp.actions(s)))]
                for s in mdp.states
            },
        )
        ref = policy_iteration(mdp, initial_policy=initial, backend="reference")
        cmp_ = policy_iteration(mdp, initial_policy=initial, backend="compiled")
        assert cmp_.policy.as_dict() == ref.policy.as_dict()
        assert cmp_.gain_history == ref.gain_history


class TestCompiledStructure:
    @pytest.fixture(scope="class")
    def mdp(self):
        return paper_system().build_ctmdp(weight=1.0)

    @pytest.fixture(scope="class")
    def comp(self, mdp):
        return compile_ctmdp(mdp)

    def test_compile_is_cached_on_the_model(self, mdp, comp):
        assert compile_ctmdp(mdp) is comp

    def test_arrays_match_reference_accessors(self, mdp, comp):
        for p, (state, action) in enumerate(mdp.state_action_pairs()):
            assert comp.states[comp.pair_state[p]] == state
            assert np.array_equal(
                comp.generator[p], mdp.generator_row(state, action)
            )
            assert comp.cost[p] == mdp.cost(state, action)
            for name, channel in comp.extra.items():
                assert channel[p] == mdp.extra_cost(state, action, name)
        assert comp.max_exit_rate() == mdp.max_exit_rate()

    def test_arrays_are_read_only(self, comp):
        for array in (comp.generator, comp.cost, comp.pair_state, comp.pad_index):
            with pytest.raises(ValueError):
                array[tuple(0 for _ in array.shape)] = 1.0

    def test_policy_rows_roundtrip(self, mdp, comp):
        assignment = {s: mdp.actions(s)[-1] for s in mdp.states}
        sel = comp.policy_rows(assignment)
        assert comp.assignment_from_rows(sel) == assignment

    def test_policy_rows_rejects_unknown_action(self, comp):
        assignment = {s: "no-such-mode" for s in comp.states}
        with pytest.raises(InvalidPolicyError):
            comp.policy_rows(assignment)

    def test_add_action_invalidates_compiled_cache(self):
        mdp = random_mdp(3, 3, 2)
        first = compile_ctmdp(mdp)
        rates = np.array([1.0, 1.0, 0.0])
        mdp.add_action(2, "late", rates=rates, cost_rate=1.0)
        second = compile_ctmdp(mdp)
        assert second is not first
        assert second.n_pairs == first.n_pairs + 1


class TestSweepSemantics:
    def test_improve_applies_incumbent_atol_rule(self):
        # State 0: action b is better than incumbent a by less than atol
        # -> incumbent retained. State 1: clear winner -> displaced.
        mdp = CTMDP([0, 1])
        mdp.add_action(0, "a", rates=np.array([0.0, 1.0]), cost_rate=1.0)
        mdp.add_action(0, "b", rates=np.array([0.0, 1.0]), cost_rate=1.0)
        mdp.add_action(1, "a", rates=np.array([1.0, 0.0]), cost_rate=5.0)
        mdp.add_action(1, "b", rates=np.array([1.0, 0.0]), cost_rate=0.0)
        comp = compile_ctmdp(mdp)
        sel = comp.pair_offset[:-1].copy()
        values = comp.cost.copy()
        values[1] = values[0] - 1e-12  # state 0 action b: within atol
        new_sel, changed = comp.improve(values, sel, atol=1e-9)
        assert changed
        assert comp.assignment_from_rows(new_sel) == {0: "a", 1: "b"}

    def test_greedy_first_wins_on_ties(self):
        mdp = CTMDP([0])
        mdp.add_action(0, "a", rates=np.zeros(1), cost_rate=2.0)
        mdp.add_action(0, "b", rates=np.zeros(1), cost_rate=2.0)
        comp = compile_ctmdp(mdp)
        values = np.array([1.5, 1.5])
        best_val, best_col = comp.greedy(values)
        assert best_val[0] == 1.5
        assert best_col[0] == 0  # insertion order wins exact ties

    def test_unknown_backend_rejected(self):
        mdp = random_mdp(0, 2, 2)
        with pytest.raises(SolverError):
            policy_iteration(mdp, backend="numba")
        with pytest.raises(SolverError):
            relative_value_iteration(mdp, backend="numba")
        with pytest.raises(SolverError):
            discounted_policy_iteration(mdp, 0.1, backend="numba")


class TestGeneratorRowCache:
    def test_row_is_cached_and_write_protected(self):
        mdp = random_mdp(11, 3, 2)
        row = mdp.generator_row(0, 0)
        assert mdp.generator_row(0, 0) is row  # cached, not rebuilt
        with pytest.raises(ValueError):
            row[0] = 123.0  # read-only: silent mutation would poison the cache
        assert row[0] == -row[1:].sum() or np.isclose(row.sum(), 0.0)

    def test_cached_row_survives_caller_copy_mutation(self):
        mdp = random_mdp(12, 3, 2)
        row = mdp.generator_row(1, 0)
        mutable = row.copy()
        mutable[0] = 1e9
        assert np.array_equal(mdp.generator_row(1, 0), row)

    def test_row_cache_not_pickled(self):
        import pickle

        mdp = random_mdp(13, 3, 2)
        mdp.generator_row(0, 0)
        compile_ctmdp(mdp)
        clone = pickle.loads(pickle.dumps(mdp))
        assert clone._row_cache == {}
        assert clone._compiled is None
        assert np.array_equal(
            clone.generator_row(0, 0), mdp.generator_row(0, 0)
        )
