"""Tests for relative value iteration (and agreement with PI)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ctmdp.model import CTMDP
from repro.ctmdp.policy_iteration import policy_iteration
from repro.ctmdp.value_iteration import relative_value_iteration
from repro.errors import SolverError


def random_unichain_mdp(seed: int, n_states: int = 5, n_actions: int = 3) -> CTMDP:
    rng = np.random.default_rng(seed)
    mdp = CTMDP(list(range(n_states)))
    for s in range(n_states):
        for a in range(n_actions):
            rates = rng.uniform(0.1, 2.0, size=n_states)
            rates[s] = 0.0
            mdp.add_action(s, a, rates=rates, cost_rate=float(rng.uniform(0, 10)))
    return mdp


class TestRelativeValueIteration:
    def test_gain_matches_policy_iteration(self):
        for seed in range(6):
            mdp = random_unichain_mdp(seed)
            vi = relative_value_iteration(mdp, span_tolerance=1e-12)
            pi = policy_iteration(mdp)
            assert vi.gain == pytest.approx(pi.gain, abs=1e-8), f"seed {seed}"

    def test_policy_matches_policy_iteration_gain(self):
        # The greedy VI policy, evaluated exactly, achieves the optimal gain
        # (the policies themselves may differ at ties).
        from repro.ctmdp.policy import evaluate_policy

        for seed in range(6):
            mdp = random_unichain_mdp(seed + 100)
            vi = relative_value_iteration(mdp, span_tolerance=1e-12)
            pi = policy_iteration(mdp)
            assert evaluate_policy(vi.policy).gain == pytest.approx(
                pi.gain, abs=1e-8
            )

    def test_span_history_decreases_overall(self):
        mdp = random_unichain_mdp(2)
        vi = relative_value_iteration(mdp)
        assert vi.span_history[-1] < vi.span_history[0]

    def test_values_normalized(self):
        mdp = random_unichain_mdp(5)
        vi = relative_value_iteration(mdp)
        assert vi.values[0] == pytest.approx(0.0)

    def test_max_iterations_raises(self):
        mdp = random_unichain_mdp(1)
        with pytest.raises(SolverError, match="did not reach"):
            relative_value_iteration(mdp, span_tolerance=1e-15, max_iterations=2)

    def test_explicit_uniformization_rate(self):
        mdp = random_unichain_mdp(9)
        vi = relative_value_iteration(mdp, uniformization_rate=100.0)
        pi = policy_iteration(mdp)
        assert vi.gain == pytest.approx(pi.gain, abs=1e-7)

    def test_paper_model_agrees_with_pi(self):
        # The default self-switch stand-in rate (1e4) makes the
        # uniformized chain too stiff for value iteration (the solver
        # ablation bench quantifies this); a softer stand-in keeps VI
        # practical while policy iteration is unaffected by stiffness.
        from repro.dpm.presets import paper_system

        model = paper_system(self_switch_rate=50.0)
        mdp = model.build_ctmdp(weight=1.0)
        vi = relative_value_iteration(mdp, span_tolerance=1e-9)
        pi = policy_iteration(mdp)
        assert vi.gain == pytest.approx(pi.gain, rel=1e-5)
