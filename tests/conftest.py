"""Shared fixtures: small canonical chains and the paper's models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dpm.presets import paper_service_provider, paper_system


@pytest.fixture
def two_state_generator() -> np.ndarray:
    """On/off chain with rates 2 (on->off) and 3 (off->on).

    Stationary distribution: (3/5, 2/5).
    """
    return np.array([[-2.0, 2.0], [3.0, -3.0]])


@pytest.fixture
def three_state_cycle() -> np.ndarray:
    """Unidirectional 3-cycle with unit rates; stationary = uniform."""
    return np.array(
        [
            [-1.0, 1.0, 0.0],
            [0.0, -1.0, 1.0],
            [1.0, 0.0, -1.0],
        ]
    )


@pytest.fixture
def reducible_generator() -> np.ndarray:
    """Two disconnected 2-state blocks (not irreducible)."""
    return np.array(
        [
            [-1.0, 1.0, 0.0, 0.0],
            [1.0, -1.0, 0.0, 0.0],
            [0.0, 0.0, -2.0, 2.0],
            [0.0, 0.0, 2.0, -2.0],
        ]
    )


@pytest.fixture
def absorbing_generator() -> np.ndarray:
    """State 0 drains into absorbing state 1."""
    return np.array([[-1.0, 1.0], [0.0, 0.0]])


@pytest.fixture(scope="session")
def paper_provider():
    return paper_service_provider()


@pytest.fixture(scope="session")
def paper_model():
    return paper_system()


@pytest.fixture(scope="session")
def paper_mdp(paper_model):
    """The Section-V joint CTMDP at weight 1."""
    return paper_model.build_ctmdp(weight=1.0)
