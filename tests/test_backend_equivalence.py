"""Cross-backend equivalence of the solver core (dense / sparse / kron).

The backend ladder's contract: every tier returns the same optimal
policies and gains on the same model -- bit-compatible for the direct
(dense, sparse-LU) paths, within the documented Krylov residual
tolerance for the matrix-free paths. This suite pins that contract on
the paper's SYS model and on adversarial fuzzer-generated models, plus
the backend-resolution rules themselves.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.ctmdp.sparse as sparse_mod
from repro.ctmdp.backends import BACKENDS, DENSE_STATE_LIMIT, resolve_backend
from repro.ctmdp.discounted import discounted_policy_iteration
from repro.ctmdp.kron import KroneckerCTMDP, kron_farm_model
from repro.ctmdp.policy_iteration import policy_iteration
from repro.ctmdp.value_iteration import relative_value_iteration
from repro.dpm.presets import paper_system
from repro.errors import SolverError
from repro.robust.admission import admit_model
from repro.robust.fuzz import build_from_spec, generate_spec

#: Fuzzer corpus entries that admit and solve cleanly (checked when
#: picked); regenerated deterministically from (kind, seed).
FUZZ_MODELS = (
    ("baseline", 0),
    ("capacity_one", 5),
    ("near_duplicate_actions", 7),
    ("paper_perturbed", 11),
    ("baseline", 12),
)

#: Gain agreement for Krylov-backed (kron) paths: relative, plus an
#: absolute floor at double-precision cancellation scale.
KRON_GAIN_RTOL = 1e-8


def paper_mdp(self_switch: "float | None" = None):
    model = (paper_system() if self_switch is None
             else paper_system(self_switch_rate=self_switch))
    return model.build_ctmdp(weight=1.0)


def fuzz_mdp(kind: str, seed: int):
    """Rebuild the admitted MDP exactly as the fuzzer driver does."""
    spec = generate_spec(kind, seed)
    model, is_sys = build_from_spec(spec)
    weight = float(spec.get("weight", 0.0))
    report = admit_model(
        model, level="full", weight=weight, raise_on_reject=False,
        sample_budget=24, seed=int(spec.get("seed", 0)),
    )
    assert report.verdict != "rejected", (
        f"fuzz model {kind}-{seed} no longer admits; re-pick FUZZ_MODELS"
    )
    mdp = report.admitted_mdp
    if mdp is None:
        target = (report.repaired_model
                  if report.repaired_model is not None else model)
        mdp = target.build_ctmdp(weight) if is_sys else target
    return mdp


class TestPolicyIteration:
    def test_sparse_matches_compiled_on_paper_sys(self):
        mdp = paper_mdp()
        dense = policy_iteration(mdp, backend="compiled")
        sparse = policy_iteration(mdp, backend="sparse")
        assert sparse.policy.as_dict() == dense.policy.as_dict()
        assert abs(sparse.gain - dense.gain) < 1e-10
        np.testing.assert_allclose(
            sparse.stationary, dense.stationary, atol=1e-10
        )

    def test_dense_alias_is_compiled_bitwise(self):
        mdp = paper_mdp()
        a = policy_iteration(mdp, backend="dense")
        b = policy_iteration(mdp, backend="compiled")
        assert a.gain == b.gain
        assert a.policy.as_dict() == b.policy.as_dict()
        np.testing.assert_array_equal(a.bias, b.bias)

    def test_kron_matches_compiled_on_paper_sys(self):
        mdp = paper_mdp()
        dense = policy_iteration(mdp, backend="compiled")
        kron = policy_iteration(KroneckerCTMDP.from_ctmdp(mdp))
        assert kron.policy.as_dict() == dense.policy.as_dict()
        tol = KRON_GAIN_RTOL * max(abs(dense.gain), 1.0)
        assert abs(kron.gain - dense.gain) < tol

    @pytest.mark.parametrize("kind,seed", FUZZ_MODELS)
    def test_sparse_matches_compiled_on_fuzz_models(self, kind, seed):
        mdp = fuzz_mdp(kind, seed)
        dense = policy_iteration(mdp, backend="compiled")
        sparse = policy_iteration(mdp, backend="sparse")
        scale = max(abs(dense.gain), abs(sparse.gain), 1e-12)
        assert abs(sparse.gain - dense.gain) <= 1e-8 * scale

    @pytest.mark.parametrize("kind,seed", FUZZ_MODELS)
    def test_kron_matches_compiled_on_fuzz_models(self, kind, seed):
        mdp = fuzz_mdp(kind, seed)
        dense = policy_iteration(mdp, backend="compiled")
        try:
            kron = policy_iteration(KroneckerCTMDP.from_ctmdp(mdp))
        except SolverError as exc:
            # The unpreconditioned matrix-free Krylov path may refuse a
            # hostile model with a typed error; that satisfies the
            # backend contract (same lenient rule as the fuzzer).
            pytest.skip(f"kron backend returned typed error: {exc}")
        cost_scale = float(np.max(np.abs(dense.bias), initial=0.0))
        tol = (KRON_GAIN_RTOL * max(abs(dense.gain), abs(kron.gain))
               + 1e-12 * max(cost_scale, 1.0))
        assert abs(kron.gain - dense.gain) <= tol


class TestValueIteration:
    def test_sparse_matches_compiled(self):
        # VI needs the aperiodicity self-switch variant of the preset.
        mdp = paper_mdp(self_switch=50.0)
        dense = relative_value_iteration(mdp, span_tolerance=1e-9,
                                         backend="compiled")
        sparse = relative_value_iteration(mdp, span_tolerance=1e-9,
                                          backend="sparse")
        assert sparse.policy.as_dict() == dense.policy.as_dict()
        assert abs(sparse.gain - dense.gain) < 1e-8

    def test_kron_matches_compiled(self):
        mdp = paper_mdp(self_switch=50.0)
        dense = relative_value_iteration(mdp, span_tolerance=1e-9,
                                         backend="compiled")
        kron = relative_value_iteration(
            KroneckerCTMDP.from_ctmdp(mdp), span_tolerance=1e-9
        )
        assert kron.policy.as_dict() == dense.policy.as_dict()
        assert abs(kron.gain - dense.gain) < 1e-7


class TestDiscounted:
    @pytest.mark.parametrize("backend", ["sparse"])
    def test_backends_match_compiled(self, backend):
        mdp = paper_mdp()
        dense = discounted_policy_iteration(mdp, 0.5, backend="compiled")
        other = discounted_policy_iteration(mdp, 0.5, backend=backend)
        assert other.policy.as_dict() == dense.policy.as_dict()
        np.testing.assert_allclose(other.values, dense.values, atol=1e-8)

    def test_kron_matches_compiled(self):
        mdp = paper_mdp()
        dense = discounted_policy_iteration(mdp, 0.5, backend="compiled")
        kron = discounted_policy_iteration(
            KroneckerCTMDP.from_ctmdp(mdp), 0.5
        )
        assert kron.policy.as_dict() == dense.policy.as_dict()
        np.testing.assert_allclose(kron.values, dense.values, atol=1e-7)


class TestKronNative:
    """A genuinely tensor-structured model solved on every tier."""

    def test_farm_model_pi_matches_dense(self):
        kmdp = kron_farm_model(3, 3)  # 4^3 = 64 states
        dense = policy_iteration(kmdp.to_ctmdp())
        kron = policy_iteration(kmdp)
        assert kron.policy.as_dict() == dense.policy.as_dict()
        assert abs(kron.gain - dense.gain) < 1e-8

    def test_farm_model_vi_matches_dense(self):
        kmdp = kron_farm_model(2, 4)  # 5^2 = 25 states
        dense = relative_value_iteration(kmdp.to_ctmdp(),
                                         span_tolerance=1e-9)
        kron = relative_value_iteration(kmdp, span_tolerance=1e-9)
        assert kron.policy.as_dict() == dense.policy.as_dict()
        assert abs(kron.gain - dense.gain) < 1e-7


class TestKrylovResidualContract:
    def test_forced_gmres_rung_meets_contract(self, monkeypatch):
        """With the direct rung disabled, evaluation still holds the
        documented residual tolerance and reproduces the dense gain."""
        mdp = paper_mdp()
        dense = policy_iteration(mdp, backend="compiled")

        def broken(a_csc, b):
            raise RuntimeError("forced direct failure")

        monkeypatch.setattr(sparse_mod, "_direct_solve", broken)
        sparse = policy_iteration(mdp, backend="sparse")
        assert abs(sparse.gain - dense.gain) < 1e-6 * max(abs(dense.gain), 1.0)

    def test_accepted_solution_residual(self, monkeypatch):
        """The ladder's accepted Krylov solution satisfies the
        documented relative-residual bound on the actual system."""
        import scipy.sparse as sp

        from repro.robust.guardrails import RESIDUAL_RTOL

        def broken(a_csc, b):
            raise RuntimeError("forced direct failure")

        monkeypatch.setattr(sparse_mod, "_direct_solve", broken)
        smdp = sparse_mod.compile_sparse_ctmdp(paper_mdp())
        g_can, c_can, shift = smdp.canonical()
        sel = smdp.pair_offset[:-1]
        n = smdp.n_states
        rows = g_can[sel]
        gain_col = sp.csr_array(
            (np.full(n, -1.0), (np.arange(n), np.zeros(n, dtype=int))),
            shape=(n, 1),
        )
        ref_row = sp.csr_array(([1.0], ([0], [0])), shape=(1, n))
        a = sp.block_array([[rows, gain_col], [ref_row, None]], format="csc")
        b = np.concatenate([-c_can[sel], [0.0]])
        x = sparse_mod.solve_sparse_with_fallback(a, b)
        a_max = float(np.max(np.abs(a.data)))
        residual = float(np.max(np.abs(a @ x - b))) / (
            a_max * max(float(np.max(np.abs(x))), 1e-300)
        )
        assert residual <= RESIDUAL_RTOL


class TestBackendResolution:
    def test_backends_tuple(self):
        assert set(
            ("auto", "dense", "compiled", "sparse", "kron", "reference")
        ) == set(BACKENDS)

    def test_auto_picks_compiled_below_limit(self):
        mdp = paper_mdp()
        assert mdp.n_states <= DENSE_STATE_LIMIT
        assert resolve_backend(mdp, "auto") == "compiled"

    def test_auto_picks_sparse_above_limit(self):
        import types

        big = types.SimpleNamespace(n_states=DENSE_STATE_LIMIT + 1)
        assert resolve_backend(big, "auto") == "sparse"

    def test_kron_model_resolves_to_kron(self):
        kmdp = kron_farm_model(2, 2)
        assert resolve_backend(kmdp, "auto") == "kron"

    def test_plain_model_rejects_kron_backend(self):
        with pytest.raises(SolverError):
            resolve_backend(paper_mdp(), "kron")

    def test_unknown_backend_rejected(self):
        with pytest.raises(SolverError):
            resolve_backend(paper_mdp(), "quantum")

    def test_sys_build_rejects_kron(self):
        with pytest.raises(SolverError):
            paper_system().build_ctmdp(1.0, backend="kron")


class TestReuseEquivalence:
    """The reuse ladder never changes results: reuse=True == reuse=False.

    Bit-identity holds because every converged policy is re-evaluated
    through the standard sparse ladder before returning (DESIGN §12),
    regardless of which reuse rungs served the intermediate rounds.
    """

    def _assert_identical(self, mdp):
        cold = policy_iteration(mdp, backend="sparse", reuse=False)
        warm = policy_iteration(mdp, backend="sparse", reuse=True)
        assert warm.policy.as_dict() == cold.policy.as_dict()
        assert warm.gain == cold.gain
        np.testing.assert_array_equal(warm.bias, cold.bias)
        np.testing.assert_array_equal(warm.stationary, cold.stationary)
        assert warm.iterations == cold.iterations

    def test_reuse_bit_identical_on_paper_sys(self):
        self._assert_identical(paper_mdp())

    @pytest.mark.parametrize("kind,seed", FUZZ_MODELS)
    def test_reuse_bit_identical_on_fuzz_models(self, kind, seed):
        self._assert_identical(fuzz_mdp(kind, seed))

    def test_reuse_bit_identical_under_forced_gmres(self, monkeypatch):
        # With the direct rung disabled, both the reuse cache's
        # refactorization and the fallback ladder run GMRES -- results
        # must still match a reuse-free solve bit-for-bit.
        def broken(a_csc, b):
            raise RuntimeError("forced direct failure")

        monkeypatch.setattr(sparse_mod, "_direct_solve", broken)
        self._assert_identical(paper_mdp())
