"""Closed-form queueing formulas at the edges of their domains.

Satellite of the admission PR: at ``rho -> 1`` and ``rho -> 0`` every
closed form must return a finite limit or raise a typed
:class:`~repro.errors.DomainError` -- never emit ``inf``/``NaN`` as an
answer -- and the finite-queue forms must keep matching the simulator
across utilizations including the critical point ``rho = 1``.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.dpm.service_provider import ServiceProvider
from repro.errors import DomainError, InvalidModelError
from repro.policies import AlwaysOnPolicy
from repro.queueing.mg1 import MG1Queue
from repro.queueing.mm1 import MM1Queue
from repro.queueing.mm1k import MM1KQueue
from repro.queueing.npolicy_mm1 import NPolicyMM1Queue
from repro.sim import PoissonProcess, simulate

MU = 1.0


def _finite(x: float) -> bool:
    return math.isfinite(x)


class TestMM1Domain:
    def test_rho_at_one_is_typed(self):
        with pytest.raises(DomainError):
            MM1Queue(MU, MU)

    def test_rho_above_one_is_typed(self):
        with pytest.raises(DomainError):
            MM1Queue(2 * MU, MU)

    def test_nonfinite_inputs_are_typed(self):
        with pytest.raises(DomainError):
            MM1Queue(float("nan"), MU)
        with pytest.raises(DomainError):
            MM1Queue(0.5, float("inf"))
        with pytest.raises(DomainError):
            MM1Queue(0.0, MU)

    def test_rho_one_ulp_below_one(self):
        # The closest admissible rho: every metric is finite or typed,
        # never a silent inf.
        lam = math.nextafter(MU, 0.0)
        q = MM1Queue(lam, MU)
        for metric in (q.mean_number_in_system, q.mean_number_waiting,
                       q.mean_sojourn_time, q.mean_waiting_time):
            try:
                assert _finite(metric())
            except DomainError:
                pass

    def test_rho_to_zero_limits(self):
        q = MM1Queue(1e-12, MU)
        assert q.mean_number_in_system() == pytest.approx(0.0, abs=1e-11)
        assert q.mean_sojourn_time() == pytest.approx(1.0 / MU)


class TestMM1KDomain:
    def test_critical_rho_is_uniform(self):
        q = MM1KQueue(MU, MU, capacity=4)
        assert np.allclose(q.state_probabilities(), 0.2)
        assert _finite(q.mean_sojourn_time())

    def test_overload_distribution_is_finite(self):
        # rho >> 1 used to overflow rho**(K+1) into inf/NaN.
        q = MM1KQueue(1e200, MU, capacity=8)
        p = q.state_probabilities()
        assert np.all(np.isfinite(p))
        assert p.sum() == pytest.approx(1.0)
        assert p[-1] == pytest.approx(1.0)  # point mass at K
        assert q.throughput() == pytest.approx(MU)

    def test_overload_throughput_is_flow_balanced(self):
        q = MM1KQueue(3.0, 2.0, capacity=5)
        probs = q.state_probabilities()
        assert q.throughput() == pytest.approx(2.0 * (1.0 - probs[0]))
        # Flow balance and PASTA agree where both are stable.
        assert q.throughput() == pytest.approx(3.0 * (1.0 - probs[-1]))

    def test_nonfinite_inputs_are_typed(self):
        with pytest.raises(DomainError):
            MM1KQueue(float("inf"), MU, capacity=3)
        with pytest.raises(DomainError):
            MM1KQueue(0.5, 0.0, capacity=3)
        with pytest.raises(DomainError):
            MM1KQueue(0.5, MU, capacity=0)


class TestMG1AndNPolicyDomain:
    def test_mg1_rho_at_one_is_typed(self):
        with pytest.raises(DomainError):
            MG1Queue(MU, 1.0 / MU, 1.0)

    def test_mg1_bad_scv_is_typed(self):
        with pytest.raises(DomainError):
            MG1Queue(0.5, 1.0, -0.1)
        with pytest.raises(DomainError):
            MG1Queue(0.5, 1.0, float("nan"))

    def test_npolicy_rho_at_one_is_typed(self):
        with pytest.raises(DomainError):
            NPolicyMM1Queue(MU, MU, n=2)

    def test_npolicy_near_critical_is_finite_or_typed(self):
        lam = math.nextafter(MU, 0.0)
        try:
            q = NPolicyMM1Queue(lam, MU, n=3)
            assert _finite(q.mean_number_in_system())
            assert _finite(q.mean_cycle_length())
        except DomainError:
            pass

    def test_npolicy_power_still_checks_signs(self):
        q = NPolicyMM1Queue(0.5, MU, n=2)
        with pytest.raises(InvalidModelError):
            q.average_power(-1.0, 0.0, 0.0)


class TestAgainstSimulator:
    """Property test: closed forms track the simulator at rho in
    {0.01, 0.99, 1.0} -- below, near, and at the critical point."""

    CAPACITY = 5

    @pytest.fixture(scope="class")
    def provider(self):
        return ServiceProvider(
            ("on", "off"),
            np.array([[0.0, 10.0], [10.0, 0.0]]),
            np.array([MU, 0.0]),
            np.array([1.0, 0.0]),
            np.zeros((2, 2)),
        )

    @pytest.mark.parametrize("rho", [0.01, 0.99, 1.0])
    def test_queue_length_and_loss(self, provider, rho):
        lam = rho * MU
        reference = MM1KQueue(lam, MU, capacity=self.CAPACITY)
        result = simulate(
            provider=provider,
            capacity=self.CAPACITY,
            workload=PoissonProcess(lam),
            policy=AlwaysOnPolicy(provider),
            n_requests=40_000,
            seed=17,
            initial_mode="on",
        )
        assert result.average_queue_length == pytest.approx(
            reference.mean_number_in_system(), rel=0.05, abs=0.02
        )
        assert result.loss_probability == pytest.approx(
            reference.blocking_probability(), abs=0.01
        )
        assert result.average_waiting_time == pytest.approx(
            reference.mean_sojourn_time(), rel=0.05
        )
