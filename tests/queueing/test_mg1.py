"""Tests for the M/G/1 Pollaczek--Khinchine closed forms."""

from __future__ import annotations

import pytest

from repro.errors import InvalidModelError
from repro.queueing.mg1 import MG1Queue
from repro.queueing.mm1 import MM1Queue


class TestMG1ClosedForm:
    def test_scv1_reduces_to_mm1(self):
        mg1 = MG1Queue(1.0, 0.5, service_scv=1.0)
        mm1 = MM1Queue(1.0, 2.0)
        assert mg1.mean_waiting_time() == pytest.approx(mm1.mean_waiting_time())
        assert mg1.mean_sojourn_time() == pytest.approx(mm1.mean_sojourn_time())
        assert mg1.mean_number_in_system() == pytest.approx(
            mm1.mean_number_in_system()
        )

    def test_md1_halves_queueing_delay(self):
        md1 = MG1Queue(1.0, 0.5, service_scv=0.0)
        mm1 = MG1Queue(1.0, 0.5, service_scv=1.0)
        assert md1.mean_waiting_time() == pytest.approx(
            0.5 * mm1.mean_waiting_time()
        )

    def test_waiting_monotone_in_scv(self):
        waits = [
            MG1Queue(1.0, 0.5, service_scv=scv).mean_waiting_time()
            for scv in (0.0, 0.25, 1.0, 4.0)
        ]
        assert waits == sorted(waits)

    def test_littles_law(self):
        q = MG1Queue(0.8, 0.9, service_scv=2.0)
        assert q.mean_number_in_system() == pytest.approx(
            q.arrival_rate * q.mean_sojourn_time()
        )
        assert q.mean_number_waiting() == pytest.approx(
            q.arrival_rate * q.mean_waiting_time()
        )

    def test_validation(self):
        with pytest.raises(InvalidModelError):
            MG1Queue(1.0, 1.0, 1.0)  # rho = 1
        with pytest.raises(InvalidModelError):
            MG1Queue(1.0, 0.5, -0.1)
        with pytest.raises(InvalidModelError):
            MG1Queue(0.0, 0.5, 1.0)


class TestAgainstSimulator:
    @pytest.mark.parametrize(
        "dist_name, scv",
        [("deterministic", 0.0), ("erlang4", 0.25), ("h2", 4.0)],
    )
    def test_pk_formula_matches_simulation(self, paper_provider, dist_name, scv):
        """Always-on server + deep queue ~ M/G/1; the simulated sojourn
        must match Pollaczek-Khinchine for each service distribution."""
        from repro.policies import AlwaysOnPolicy
        from repro.sim import PoissonProcess, simulate
        from repro.sim.distributions import (
            DeterministicService,
            ErlangService,
            HyperexponentialService,
        )

        dist = {
            "deterministic": DeterministicService(),
            "erlang4": ErlangService(4),
            "h2": HyperexponentialService(4.0),
        }[dist_name]
        lam, mean_service = 1.0 / 3.0, 1.5  # rho = 0.5
        sim = simulate(
            provider=paper_provider,
            capacity=200,  # effectively infinite
            workload=PoissonProcess(lam),
            policy=AlwaysOnPolicy(paper_provider),
            n_requests=40_000,
            seed=5,
            initial_mode="active",
            service_distribution=dist,
        )
        expected = MG1Queue(lam, mean_service, scv).mean_sojourn_time()
        assert sim.average_waiting_time == pytest.approx(expected, rel=0.06)
