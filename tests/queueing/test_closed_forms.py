"""Tests for the closed-form queueing references.

Each closed form is checked internally (formula identities) and against
the generic CTMC stationary solver on the corresponding birth-death
generator -- two independent code paths agreeing on textbook numbers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InvalidModelError
from repro.markov.generator import stationary_distribution
from repro.queueing.mm1 import MM1Queue
from repro.queueing.mm1k import MM1KQueue
from repro.queueing.npolicy_mm1 import NPolicyMM1Queue


class TestMM1:
    @pytest.fixture
    def queue(self):
        return MM1Queue(arrival_rate=1.0, service_rate=2.0)  # rho = 0.5

    def test_utilization(self, queue):
        assert queue.utilization == 0.5

    def test_mean_number_in_system(self, queue):
        assert queue.mean_number_in_system() == pytest.approx(1.0)

    def test_littles_law(self, queue):
        assert queue.mean_number_in_system() == pytest.approx(
            queue.arrival_rate * queue.mean_sojourn_time()
        )
        assert queue.mean_number_waiting() == pytest.approx(
            queue.arrival_rate * queue.mean_waiting_time()
        )

    def test_sojourn_decomposition(self, queue):
        # W = Wq + 1/mu.
        assert queue.mean_sojourn_time() == pytest.approx(
            queue.mean_waiting_time() + 1.0 / queue.service_rate
        )

    def test_state_probabilities_geometric(self, queue):
        probs = [queue.state_probability(n) for n in range(30)]
        assert probs[0] == pytest.approx(0.5)
        assert sum(probs) == pytest.approx(1.0, abs=1e-6)

    def test_against_truncated_ctmc(self, queue):
        g = queue.birth_death_generator(truncation=60)
        pi = stationary_distribution(g)
        expected = [queue.state_probability(n) for n in range(60)]
        np.testing.assert_allclose(pi, expected, atol=1e-8)

    def test_stability_required(self):
        with pytest.raises(InvalidModelError):
            MM1Queue(2.0, 1.0)
        with pytest.raises(InvalidModelError):
            MM1Queue(0.0, 1.0)


class TestMM1K:
    @pytest.fixture
    def queue(self):
        # The paper's queue under always-on: lambda=1/6, mu=1/1.5, K=5.
        return MM1KQueue(1 / 6, 1 / 1.5, capacity=5)

    def test_probabilities_normalize(self, queue):
        assert queue.state_probabilities().sum() == pytest.approx(1.0)

    def test_against_exact_ctmc(self, queue):
        pi = stationary_distribution(queue.birth_death_generator())
        np.testing.assert_allclose(pi, queue.state_probabilities(), atol=1e-12)

    def test_blocking_is_last_state(self, queue):
        assert queue.blocking_probability() == pytest.approx(
            float(queue.state_probabilities()[-1])
        )

    def test_throughput_below_arrival_rate(self, queue):
        assert 0 < queue.throughput() < queue.arrival_rate

    def test_littles_law_on_accepted_traffic(self, queue):
        assert queue.mean_number_in_system() == pytest.approx(
            queue.throughput() * queue.mean_sojourn_time()
        )

    def test_rho_equal_one_uniform(self):
        q = MM1KQueue(1.0, 1.0, capacity=4)
        np.testing.assert_allclose(q.state_probabilities(), 0.2)

    def test_overloaded_queue_allowed(self):
        q = MM1KQueue(3.0, 1.0, capacity=3)
        assert q.blocking_probability() > 0.5

    def test_large_k_approaches_mm1(self):
        mm1 = MM1Queue(1.0, 2.0)
        mm1k = MM1KQueue(1.0, 2.0, capacity=80)
        assert mm1k.mean_number_in_system() == pytest.approx(
            mm1.mean_number_in_system(), rel=1e-6
        )

    def test_validation(self):
        with pytest.raises(InvalidModelError):
            MM1KQueue(1.0, 1.0, capacity=0)
        with pytest.raises(InvalidModelError):
            MM1KQueue(-1.0, 1.0, capacity=2)


class TestNPolicyMM1:
    def test_n1_reduces_to_mm1_length(self):
        np1 = NPolicyMM1Queue(1.0, 2.0, n=1)
        mm1 = MM1Queue(1.0, 2.0)
        assert np1.mean_number_in_system() == pytest.approx(
            mm1.mean_number_in_system()
        )

    def test_accumulation_penalty(self):
        # L grows by (N-1)/2.
        base = NPolicyMM1Queue(1.0, 2.0, n=1).mean_number_in_system()
        for n in (2, 3, 5):
            q = NPolicyMM1Queue(1.0, 2.0, n=n)
            assert q.mean_number_in_system() == pytest.approx(base + (n - 1) / 2)

    def test_off_fraction_independent_of_n(self):
        for n in (1, 2, 7):
            q = NPolicyMM1Queue(1.0, 4.0, n=n)
            assert q.off_fraction() == pytest.approx(0.75)

    def test_cycle_length(self):
        q = NPolicyMM1Queue(1.0, 2.0, n=3)
        # N/lambda accumulation + N/(mu - lambda) busy.
        assert q.mean_cycle_length() == pytest.approx(3.0 + 3.0)

    def test_average_power_decreases_with_n(self):
        powers = [
            NPolicyMM1Queue(1.0, 2.0, n=n).average_power(10.0, 0.5, 5.0)
            for n in (1, 2, 4, 8)
        ]
        assert powers == sorted(powers, reverse=True)

    def test_power_components(self):
        q = NPolicyMM1Queue(1.0, 2.0, n=2)
        # rho P_on + (1-rho) P_off + E_cycle / E[C].
        expected = 0.5 * 10.0 + 0.5 * 0.5 + 5.0 / q.mean_cycle_length()
        assert q.average_power(10.0, 0.5, 5.0) == pytest.approx(expected)

    def test_two_state_npolicy_tradeoff_is_pareto(self):
        # The Section-V claim: for a 2-state server the N-policy family
        # is Pareto-ordered -- more delay always buys less power, so no
        # member dominates another (nothing to gain from other policies
        # at the same delay in this family).
        queues = [NPolicyMM1Queue(1.0, 2.0, n=n) for n in range(1, 8)]
        delays = [q.mean_number_in_system() for q in queues]
        powers = [q.average_power(10.0, 0.5, 5.0) for q in queues]
        assert delays == sorted(delays)
        assert powers == sorted(powers, reverse=True)

    def test_validation(self):
        with pytest.raises(InvalidModelError):
            NPolicyMM1Queue(2.0, 1.0, n=1)
        with pytest.raises(InvalidModelError):
            NPolicyMM1Queue(1.0, 2.0, n=0)
        with pytest.raises(InvalidModelError):
            NPolicyMM1Queue(1.0, 2.0, n=1).average_power(-1.0, 0.0, 0.0)
