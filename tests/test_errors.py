"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro.errors import (
    InfeasibleConstraintError,
    InvalidGeneratorError,
    InvalidModelError,
    InvalidPolicyError,
    NotIrreducibleError,
    ReproError,
    SimulationError,
    SolverError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            InvalidGeneratorError,
            NotIrreducibleError,
            InvalidModelError,
            InvalidPolicyError,
            SolverError,
            InfeasibleConstraintError,
            SimulationError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")

    def test_infeasible_is_solver_error(self):
        # Callers treating infeasibility as a solver failure still work.
        assert issubclass(InfeasibleConstraintError, SolverError)

    def test_library_failures_catchable_in_one_clause(self):
        from repro.dpm.service_requestor import ServiceRequestor

        with pytest.raises(ReproError):
            ServiceRequestor(-1.0)
