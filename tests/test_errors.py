"""Tests for the exception hierarchy."""

from __future__ import annotations

import numpy as np
import pytest

import repro.errors
from repro.errors import (
    ArtifactError,
    ArtifactIntegrityError,
    ArtifactRejectedError,
    ArtifactSchemaError,
    CertificationError,
    CertificationFailedError,
    CheckpointError,
    DomainError,
    InfeasibleConstraintError,
    InvalidGeneratorError,
    InvalidModelError,
    InvalidPolicyError,
    ModelRejectedError,
    NotIrreducibleError,
    ReproError,
    ServeRequestError,
    SimulationError,
    SolverError,
    TraceIntegrityError,
    WorkerFailureError,
)

ALL_PUBLIC = [
    InvalidGeneratorError,
    NotIrreducibleError,
    InvalidModelError,
    DomainError,
    ModelRejectedError,
    InvalidPolicyError,
    SolverError,
    InfeasibleConstraintError,
    SimulationError,
    WorkerFailureError,
    CheckpointError,
    ArtifactError,
    ArtifactIntegrityError,
    ArtifactSchemaError,
    ArtifactRejectedError,
    ServeRequestError,
    TraceIntegrityError,
    CertificationError,
    CertificationFailedError,
]


class TestHierarchy:
    @pytest.mark.parametrize("exc", ALL_PUBLIC)
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")

    def test_every_public_exception_is_covered(self):
        # Keep ALL_PUBLIC in sync with the module: every ReproError
        # subclass defined in repro.errors must appear above.
        defined = {
            obj
            for obj in vars(repro.errors).values()
            if isinstance(obj, type)
            and issubclass(obj, ReproError)
            and obj is not ReproError
        }
        assert defined == set(ALL_PUBLIC)

    def test_infeasible_is_solver_error(self):
        # Callers treating infeasibility as a solver failure still work.
        assert issubclass(InfeasibleConstraintError, SolverError)

    def test_worker_failure_is_simulation_error(self):
        assert issubclass(WorkerFailureError, SimulationError)

    def test_artifact_family_is_catchable_as_artifact_error(self):
        for exc in (
            ArtifactIntegrityError,
            ArtifactSchemaError,
            ArtifactRejectedError,
        ):
            assert issubclass(exc, ArtifactError)

    def test_trace_integrity_is_simulation_error(self):
        # Callers treating corrupt trace files as simulation failures
        # still work.
        assert issubclass(TraceIntegrityError, SimulationError)

    def test_certification_failure_is_certification_error(self):
        # A policy that fails its certificate is catchable alongside
        # engine errors (bad fingerprint, corrupt certificate document).
        assert issubclass(CertificationFailedError, CertificationError)

    def test_domain_and_rejection_are_invalid_model_errors(self):
        # Callers treating admission rejections and closed-form domain
        # violations as bad models still work.
        assert issubclass(DomainError, InvalidModelError)
        assert issubclass(ModelRejectedError, InvalidModelError)

    def test_library_failures_catchable_in_one_clause(self):
        from repro.dpm.service_requestor import ServiceRequestor

        with pytest.raises(ReproError):
            ServiceRequestor(-1.0)


class TestDiagnosticsPayloads:
    def test_solver_error_defaults_to_empty_diagnostics(self):
        assert SolverError("boom").diagnostics == {}

    def test_solver_error_copies_diagnostics(self):
        source = {"iteration": 3}
        exc = SolverError("boom", diagnostics=source)
        source["iteration"] = 99
        assert exc.diagnostics == {"iteration": 3}

    def test_worker_failure_carries_diagnostics(self):
        exc = WorkerFailureError("boom", diagnostics={"chunks": []})
        assert exc.diagnostics == {"chunks": []}


class TestRaisedByLibraryPaths:
    """Each exception family is reachable through a real call path."""

    def test_invalid_generator(self):
        from repro.markov.chain import ContinuousTimeMarkovChain

        with pytest.raises(InvalidGeneratorError):
            ContinuousTimeMarkovChain(np.array([[1.0, -1.0], [0.0, 0.0]]))

    def test_not_irreducible(self, reducible_generator):
        from repro.markov.generator import stationary_distribution

        with pytest.raises(NotIrreducibleError):
            stationary_distribution(reducible_generator)

    def test_invalid_model(self):
        from repro.dpm.service_provider import ServiceProvider

        with pytest.raises(InvalidModelError):
            ServiceProvider(
                modes=["a", "a"],  # duplicate mode names
                switching_rates=np.ones((2, 2)),
                service_rates=[1.0, 0.0],
                power=[1.0, 0.0],
                switching_energy=np.zeros((2, 2)),
            )

    def test_invalid_policy(self, paper_mdp):
        from repro.ctmdp.policy import Policy

        with pytest.raises(InvalidPolicyError):
            Policy(paper_mdp, {})

    def test_solver_error_with_diagnostics(self):
        from repro.robust.guardrails import solve_with_fallback

        singular = np.array([[1.0, 1.0], [1.0, 1.0]])
        with pytest.raises(SolverError) as excinfo:
            solve_with_fallback(singular, np.array([1.0, 2.0]))
        assert "condition_number" in excinfo.value.diagnostics

    def test_infeasible_constraint(self, paper_model):
        from repro.dpm.optimizer import find_weight_for_constraint

        with pytest.raises(InfeasibleConstraintError):
            find_weight_for_constraint(paper_model, max_queue_length=1e-9)

    def test_simulation_error(self):
        from repro.sim.batch import summarize

        with pytest.raises(SimulationError):
            summarize([])

    def test_worker_failure(self):
        from repro.sim.parallel import parallel_map

        with pytest.raises(WorkerFailureError):
            parallel_map(
                lambda x: x, range(4), n_jobs=2,
                max_retries=0, backoff_s=0.001,
                validate=lambda rs: False,
            )

    def test_trace_integrity(self, tmp_path):
        from repro.sim.trace_io import load_trace, save_trace
        from repro.sim.workload import TraceArrivals

        path = tmp_path / "trace.csv"
        save_trace(TraceArrivals([1.0, 2.0]), path)
        lines = path.read_text().splitlines()
        lines[1] = "1.5"  # hand-edit a timestamp under the checksum
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceIntegrityError):
            load_trace(path)

    def test_certification_error(self):
        from repro.certify import CertificationReport

        with pytest.raises(CertificationError):
            CertificationReport.from_document({"schema": "bogus/v9"})

    def test_checkpoint_error(self, tmp_path):
        from repro.robust.checkpoint import Checkpoint

        path = tmp_path / "c.json"
        Checkpoint(path, {"a": 1}).put("k", 1)
        with pytest.raises(CheckpointError):
            Checkpoint(path, {"a": 2}, resume=True)
