"""Tests for bench-trajectory tracking: schema, appender, comparator."""

from __future__ import annotations

import json

from repro.obs.benchtrack import (
    BENCH_SCHEMA,
    MetricRecord,
    bench_report,
    compare,
    default_record,
    flatten,
    infer_unit,
    load_bench,
    record_suite,
    regressions,
)


class TestInference:
    def test_unit_from_suffix(self):
        assert infer_unit("suite.solve_s") == "s"
        assert infer_unit("suite.guard_ns") == "ns"
        assert infer_unit("suite.peak_bytes") == "bytes"
        assert infer_unit("suite.overhead_fraction") == "ratio"
        assert infer_unit("suite.speedup") == "ratio"
        assert infer_unit("suite.n_states") == "count"
        assert infer_unit("suite.iterations") == "count"
        assert infer_unit("suite.gain") == "value"

    def test_only_timings_and_bytes_checked_by_default(self):
        assert default_record("x.solve_s", 1.0).tolerance is not None
        assert default_record("x.peak_bytes", 1.0).tolerance is not None
        # Machine-dependent counts must never fail a nightly run.
        assert default_record("x.n_events", 5.0).tolerance is None
        assert default_record("x.gain", 2.3).tolerance is None

    def test_flatten_numeric_leaves_only(self):
        flat = flatten(
            {"a": {"b": 1, "skip": True, "name": "str"}, "c": 2.5},
            "root",
        )
        assert flat == {"root.a.b": 1.0, "root.c": 2.5}


class TestRecordSuite:
    def test_creates_canonical_file(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        record_suite(path, "suite", {"solve_s": 0.5, "n": 3},
                     manifest={"git_sha": "abc"})
        doc = json.loads(path.read_text())
        assert doc["schema"] == BENCH_SCHEMA
        assert doc["manifest"] == {"git_sha": "abc"}
        assert doc["suites"]["suite"] == {"solve_s": 0.5, "n": 3}
        assert doc["metrics"]["suite.solve_s"]["unit"] == "s"
        assert "tolerance" in doc["metrics"]["suite.solve_s"]

    def test_migrates_legacy_file_in_place(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps({"old": {"build_s": 1.0}}))
        record_suite(path, "new", {"solve_s": 0.5}, manifest={})
        doc = json.loads(path.read_text())
        assert doc["schema"] == BENCH_SCHEMA
        assert doc["suites"]["old"] == {"build_s": 1.0}  # preserved
        assert "old.build_s" in doc["metrics"]
        assert "new.solve_s" in doc["metrics"]

    def test_rerecord_replaces_stale_metrics(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        record_suite(path, "s", {"solve_s": 0.5, "gone_s": 1.0},
                     manifest={})
        record_suite(path, "s", {"solve_s": 0.6}, manifest={})
        doc = json.loads(path.read_text())
        assert doc["metrics"]["s.solve_s"]["value"] == 0.6
        assert "s.gone_s" not in doc["metrics"]

    def test_tolerance_overrides(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        record_suite(
            path, "s", {"solve_s": 0.5, "gain": 2.0}, manifest={},
            tolerances={"s.solve_s": None, "s.gain": 0.01},
        )
        records = load_bench(path)
        assert records["s.solve_s"].tolerance is None
        assert records["s.gain"].tolerance == 0.01

    def test_legacy_file_loads_with_default_specs(self, tmp_path):
        path = tmp_path / "BENCH_legacy.json"
        path.write_text(json.dumps({"suite": {"solve_s": 2.0, "n": 4}}))
        records = load_bench(path)
        assert records["suite.solve_s"].tolerance is not None
        assert records["suite.n"].unit == "value"


def _rec(name, value, **kw):
    base = default_record(name, value)
    for key, val in kw.items():
        setattr(base, key, val)
    return base


class TestCompare:
    def test_within_tolerance_is_ok(self):
        (delta,) = compare(
            {"a.solve_s": _rec("a.solve_s", 1.0)},
            {"a.solve_s": _rec("a.solve_s", 1.1)},
        )
        assert delta.status == "ok"
        assert abs(delta.rel_change - 0.1) < 1e-12

    def test_regression_beyond_tolerance(self):
        (delta,) = compare(
            {"a.solve_s": _rec("a.solve_s", 1.0)},
            {"a.solve_s": _rec("a.solve_s", 1.25)},
        )
        assert delta.status == "regressed"
        assert regressions([delta]) == [delta]

    def test_improvement_beyond_tolerance(self):
        (delta,) = compare(
            {"a.solve_s": _rec("a.solve_s", 1.0)},
            {"a.solve_s": _rec("a.solve_s", 0.5)},
        )
        assert delta.status == "improved"
        assert regressions([delta]) == []

    def test_missing_baseline_metric_is_new(self):
        (delta,) = compare({}, {"a.solve_s": _rec("a.solve_s", 1.0)})
        assert delta.status == "new"
        assert delta.baseline is None

    def test_missing_current_metric_is_missing(self):
        (delta,) = compare({"a.solve_s": _rec("a.solve_s", 1.0)}, {})
        assert delta.status == "missing"
        assert delta.current is None

    def test_new_and_missing_never_fail_check(self):
        deltas = compare(
            {"gone_s": _rec("gone_s", 1.0)},
            {"born_s": _rec("born_s", 1.0)},
        )
        assert regressions(deltas) == []

    def test_zero_baseline_compares_against_floor(self):
        # peak_bytes floor is 1e6: 0 -> 0.5MB is noise, 0 -> 5MB is not.
        (quiet,) = compare(
            {"a.peak_bytes": _rec("a.peak_bytes", 0.0)},
            {"a.peak_bytes": _rec("a.peak_bytes", 5e5)},
        )
        assert quiet.status == "ok"
        (loud,) = compare(
            {"a.peak_bytes": _rec("a.peak_bytes", 0.0)},
            {"a.peak_bytes": _rec("a.peak_bytes", 5e6)},
        )
        assert loud.status == "regressed"

    def test_zero_to_zero_is_ok(self):
        (delta,) = compare(
            {"a.solve_s": _rec("a.solve_s", 0.0)},
            {"a.solve_s": _rec("a.solve_s", 0.0)},
        )
        assert delta.status == "ok"
        assert delta.rel_change == 0.0

    def test_noise_floor_suppresses_tiny_timings(self):
        # 0.8ms -> 1.6ms is +100% but both are under the 50ms floor.
        (delta,) = compare(
            {"a.solve_s": _rec("a.solve_s", 0.0008)},
            {"a.solve_s": _rec("a.solve_s", 0.0016)},
        )
        assert delta.status == "ok"

    def test_untolerated_metric_is_informational(self):
        (delta,) = compare(
            {"a.n_events": _rec("a.n_events", 100.0)},
            {"a.n_events": _rec("a.n_events", 900.0)},
        )
        assert delta.status == "info"

    def test_higher_is_better_direction(self):
        base = MetricRecord("a.throughput", 100.0, unit="value",
                            tolerance=0.2, direction="higher")
        cur = MetricRecord("a.throughput", 50.0, unit="value",
                           tolerance=0.2, direction="higher")
        (delta,) = compare({"a.throughput": base}, {"a.throughput": cur})
        assert delta.status == "regressed"


class TestBenchReport:
    def _write(self, bench_dir, solve_s):
        bench_dir.mkdir(exist_ok=True)
        record_suite(
            bench_dir / "BENCH_x.json", "suite",
            {"solve_s": solve_s, "n_states": 10}, manifest={},
        )

    def test_trend_without_baseline(self, tmp_path):
        self._write(tmp_path / "bench", 1.0)
        text, deltas = bench_report(tmp_path / "bench")
        assert "BENCH_x.json" in text
        assert "suite.solve_s" in text
        assert deltas == []

    def test_compare_flags_regression(self, tmp_path):
        self._write(tmp_path / "base", 1.0)
        self._write(tmp_path / "cur", 1.3)
        text, deltas = bench_report(
            tmp_path / "cur", baseline_dir=tmp_path / "base"
        )
        assert "+30.0%" in text
        assert len(regressions(deltas)) == 1

    def test_self_compare_is_clean(self, tmp_path):
        self._write(tmp_path / "bench", 1.0)
        _, deltas = bench_report(
            tmp_path / "bench", baseline_dir=tmp_path / "bench"
        )
        assert regressions(deltas) == []

    def test_only_filter(self, tmp_path):
        self._write(tmp_path / "base", 1.0)
        self._write(tmp_path / "cur", 1.3)
        _, deltas = bench_report(
            tmp_path / "cur", baseline_dir=tmp_path / "base",
            only="n_states",
        )
        assert [d.name for d in deltas] == ["suite.n_states"]
        _, glob_deltas = bench_report(
            tmp_path / "cur", baseline_dir=tmp_path / "base",
            only="*.solve_s",
        )
        assert [d.name for d in glob_deltas] == ["suite.solve_s"]

    def test_empty_dir_reports_no_files(self, tmp_path):
        text, _ = bench_report(tmp_path / "nowhere")
        assert "no BENCH_*.json files" in text
