"""Tests for the metric primitives and registry merge semantics.

The central contract: a registry assembled by merging per-chunk
registries (in chunk order) is *bit-for-bit identical* to the registry
a single serial pass would have produced -- for any chunking. That is
what lets the parallel engine report the same metrics as a serial run.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ObservabilityError,
    Series,
    log_buckets,
)


class TestCounter:
    def test_int_increments(self):
        c = Counter("c")
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert isinstance(c.value, int)

    def test_float_increments_exact(self):
        c = Counter("c")
        for _ in range(10):
            c.inc(0.1)
        assert c.value == 1.0  # fsum is exact; naive sum would drift

    def test_negative_rejected(self):
        with pytest.raises(ObservabilityError):
            Counter("c").inc(-1)

    def test_merge_sums(self):
        a, b = Counter("c"), Counter("c")
        a.inc(2)
        a.inc(0.25)
        b.inc(3)
        b.inc(0.5)
        a.merge(b)
        assert a.value == 5.75


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge("g")
        g.set(1.0)
        g.set(7.0)
        assert g.value == 7.0

    def test_merge_ignores_unset(self):
        a, b = Gauge("g"), Gauge("g")
        a.set(3.0)
        a.merge(b)
        assert a.value == 3.0

    def test_merge_takes_set_value(self):
        a, b = Gauge("g"), Gauge("g")
        a.set(3.0)
        b.set(9.0)
        a.merge(b)
        assert a.value == 9.0


class TestHistogram:
    def test_default_bounds(self):
        assert Histogram("h").bounds == DEFAULT_BUCKETS

    def test_upper_bounds_inclusive(self):
        h = Histogram("h", bounds=(1.0, 2.0))
        h.observe(1.0)  # lands in the first bucket (<= 1.0)
        h.observe(1.5)
        h.observe(5.0)  # overflow
        assert h.counts == [1, 1, 1]
        assert h.count == 3
        assert h.min == 1.0
        assert h.max == 5.0

    def test_sum_and_mean(self):
        h = Histogram("h", bounds=(10.0,))
        for v in (0.1, 0.2, 0.3):
            h.observe(v)
        assert h.sum == pytest.approx(0.6)
        assert h.mean == pytest.approx(0.2)

    def test_non_increasing_bounds_rejected(self):
        with pytest.raises(ObservabilityError):
            Histogram("h", bounds=(2.0, 1.0))

    def test_merge_requires_identical_bounds(self):
        a = Histogram("h", bounds=(1.0, 2.0))
        b = Histogram("h", bounds=(1.0, 3.0))
        with pytest.raises(ObservabilityError):
            a.merge(b)

    def test_merge_bucketwise(self):
        a = Histogram("h", bounds=(1.0, 2.0))
        b = Histogram("h", bounds=(1.0, 2.0))
        a.observe(0.5)
        b.observe(1.5)
        b.observe(9.0)
        a.merge(b)
        assert a.counts == [1, 1, 1]
        assert a.count == 3

    def test_log_buckets_invalid(self):
        with pytest.raises(ObservabilityError):
            log_buckets(low=-1.0)


class TestSeries:
    def test_append_and_len(self):
        s = Series("s")
        s.append(iteration=1, residual=0.5)
        assert len(s) == 1
        assert s.records == [{"iteration": 1, "residual": 0.5}]

    def test_deterministic_view_strips_profiling_fields(self):
        s = Series("s", profiling_fields=("sweep_s",))
        s.append(iteration=1, sweep_s=0.01)
        full = s.to_dict()
        det = s.to_dict(deterministic_only=True)
        assert full["records"][0] == {"iteration": 1, "sweep_s": 0.01}
        assert det["records"][0] == {"iteration": 1}

    def test_merge_concatenates(self):
        a, b = Series("s"), Series("s")
        a.append(i=1)
        b.append(i=2)
        a.merge(b)
        assert [r["i"] for r in a.records] == [1, 2]


class TestRegistry:
    def test_get_or_create(self):
        reg = MetricsRegistry()
        assert reg.counter("c") is reg.counter("c")
        assert "c" in reg
        assert len(reg) == 1
        assert reg.get("missing") is None

    def test_kind_clash_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ObservabilityError):
            reg.gauge("x")

    def test_names_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.counter("a")
        assert reg.names() == ["a", "b"]

    def test_deterministic_view_drops_profiling_instruments(self):
        reg = MetricsRegistry()
        reg.counter("keep").inc()
        reg.histogram("profile.drop", profiling=True).observe(0.5)
        full = reg.to_dict()
        det = reg.to_dict(deterministic_only=True)
        assert set(full) == {"keep", "profile.drop"}
        assert full["profile.drop"]["profiling"] is True
        assert set(det) == {"keep"}

    def test_merge_dict_unknown_type_rejected(self):
        with pytest.raises(ObservabilityError):
            MetricsRegistry().merge_dict({"x": {"type": "bogus"}})


def _populate(reg: MetricsRegistry, values) -> None:
    """One deterministic workload against a registry."""
    for v in values:
        reg.counter("events").inc()
        reg.counter("total").inc(v)
        reg.histogram("dist").observe(v)
        reg.series("trace", profiling_fields=("t_s",)).append(v=v, t_s=v / 7)
    reg.gauge("last").set(values[-1])


class TestMergeIdentity:
    """Chunked merge == serial, bit-for-bit, for any chunking."""

    @pytest.fixture(scope="class")
    def values(self):
        rng = random.Random(1999)
        # Adversarial magnitudes: naive float summation would round
        # differently depending on the accumulation order.
        return [rng.uniform(0, 1) * 10 ** rng.randint(-8, 8) for _ in range(400)]

    @pytest.fixture(scope="class")
    def serial(self, values):
        reg = MetricsRegistry()
        _populate(reg, values)
        return json.dumps(reg.to_dict(), sort_keys=True)

    @pytest.mark.parametrize("n_chunks", [1, 2, 3, 7, 400])
    def test_object_merge_identity(self, values, serial, n_chunks):
        parent = MetricsRegistry()
        size = -(-len(values) // n_chunks)
        for start in range(0, len(values), size):
            worker = MetricsRegistry()
            _populate(worker, values[start:start + size])
            parent.merge(worker)
        assert json.dumps(parent.to_dict(), sort_keys=True) == serial

    @pytest.mark.parametrize("n_chunks", [2, 5])
    def test_dict_merge_identity(self, values, serial, n_chunks):
        """The cross-process path (serialized snapshots) agrees too."""
        parent = MetricsRegistry()
        size = -(-len(values) // n_chunks)
        for start in range(0, len(values), size):
            worker = MetricsRegistry()
            _populate(worker, values[start:start + size])
            # Round-trip through JSON exactly as the pool does.
            parent.merge_dict(json.loads(json.dumps(worker.to_dict())))
        parent_json = json.dumps(parent.to_dict(), sort_keys=True)
        # Histogram sums cross the boundary as a single float (already
        # exact), so the serialized path agrees with serial exactly.
        assert parent_json == serial
