"""Tests for the ambient instrumentation context and the exporters."""

from __future__ import annotations

import json

import pytest

from repro.obs.export import (
    read_metrics,
    read_trace,
    run_manifest,
    write_metrics,
    write_trace,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.runtime import DISABLED, active, instrument
from repro.obs.trace import Tracer


class TestRuntime:
    def test_disabled_by_default(self):
        ins = active()
        assert ins is DISABLED
        assert not ins.enabled
        assert ins.metrics is None
        assert ins.tracer is None

    def test_disabled_span_is_noop(self):
        with active().span("anything", k=1) as span:
            span.attrs.update(extra=2)
        assert active() is DISABLED

    def test_instrument_activates_and_restores(self):
        registry = MetricsRegistry()
        with instrument(metrics=registry) as ins:
            assert active() is ins
            assert ins.enabled
            assert ins.metrics is registry
            assert ins.tracer is None
        assert active() is DISABLED

    def test_nested_instrument_stacks(self):
        outer_reg, inner_reg = MetricsRegistry(), MetricsRegistry()
        with instrument(metrics=outer_reg):
            with instrument(metrics=inner_reg):
                active().metrics.counter("c").inc()
            assert active().metrics is outer_reg
        assert "c" in inner_reg
        assert "c" not in outer_reg

    def test_restored_on_exception(self):
        with pytest.raises(RuntimeError):
            with instrument(metrics=MetricsRegistry()):
                raise RuntimeError()
        assert active() is DISABLED

    def test_tracer_span_via_instrumentation(self):
        tracer = Tracer()
        with instrument(tracer=tracer) as ins:
            with ins.span("timed"):
                pass
        assert tracer.records[0].name == "timed"


class TestManifest:
    def test_fields(self):
        manifest = run_manifest(argv=["solve"], seed=7, extra_key="x")
        assert manifest["argv"] == ["solve"]
        assert manifest["seed"] == 7
        assert manifest["extra_key"] == "x"
        assert "python" in manifest["versions"]
        assert "numpy" in manifest["versions"]
        assert manifest["platform"]

    def test_git_sha_present_in_checkout(self):
        # The test suite runs from the repo checkout, so a sha resolves.
        sha = run_manifest()["git_sha"]
        assert sha is None or (len(sha) == 40 and set(sha) <= set("0123456789abcdef"))


class TestExporters:
    def test_metrics_round_trip(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("events").inc(3)
        registry.histogram("lat", bounds=(1.0,)).observe(0.5)
        path = tmp_path / "metrics.json"
        write_metrics(registry, path, manifest=run_manifest(argv=[], seed=1))
        data = read_metrics(path)
        assert data["manifest"]["seed"] == 1
        assert data["metrics"]["events"]["value"] == 3
        assert data["metrics"]["lat"]["count"] == 1

    def test_trace_round_trip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        path = tmp_path / "trace.jsonl"
        write_trace(tracer, path, manifest=run_manifest(argv=["x"]))
        manifest, spans = read_trace(path)
        assert manifest["type"] == "manifest"
        assert manifest["argv"] == ["x"]
        assert [s["name"] for s in spans] == ["outer", "inner"]
        # File is genuine JSONL: every line parses on its own.
        with open(path) as fh:
            for line in fh:
                json.loads(line)
