"""Tests for the phase profiler: per-span capture + tree aggregation."""

from __future__ import annotations

import json
import time

from repro.obs.export import write_profile
from repro.obs.profile import (
    PROFILE_SCHEMA,
    PhaseProfiler,
    build_profile,
    flatten_profile,
    format_profile,
    read_profile,
    top_self_phase,
)
from repro.obs.runtime import active, instrument


class TestPhaseProfiler:
    def test_is_a_tracer(self):
        """instrument(tracer=profiler) must serve existing span sites."""
        profiler = PhaseProfiler(trace_malloc=False)
        with instrument(tracer=profiler):
            with active().span("phase", n=1) as span:
                span.attrs.update(extra=2)
        profiler.close()
        (record,) = profiler.records
        assert record.name == "phase"
        assert record.attrs == {"n": 1, "extra": 2}
        assert record.span_id in profiler.profiles

    def test_cpu_time_recorded(self):
        profiler = PhaseProfiler(trace_malloc=False)
        with profiler.span("spin") as span:
            deadline = time.process_time() + 0.01
            while time.process_time() < deadline:
                pass
        profile = profiler.profiles[span.span_id]
        profiler.close()
        assert profile["cpu_s"] >= 0.009
        assert "alloc_peak_bytes" not in profile

    def test_alloc_peak_attributed_to_span(self):
        profiler = PhaseProfiler()
        try:
            with profiler.span("alloc") as span:
                blob = bytearray(4_000_000)
            del blob
            peak = profiler.profiles[span.span_id]["alloc_peak_bytes"]
            assert peak >= 4_000_000
        finally:
            profiler.close()

    def test_nested_child_peak_folds_into_parent(self):
        """A parent's peak is never below the largest child peak."""
        profiler = PhaseProfiler()
        try:
            with profiler.span("parent") as parent:
                with profiler.span("child") as child:
                    blob = bytearray(4_000_000)
                    del blob
                # Child's allocation is freed; the parent frame must
                # still remember the high-water mark it caused.
            profs = profiler.profiles
            assert (
                profs[parent.span_id]["alloc_peak_bytes"]
                >= profs[child.span_id]["alloc_peak_bytes"]
                >= 4_000_000
            )
        finally:
            profiler.close()

    def test_close_idempotent_and_releases_tracemalloc(self):
        import tracemalloc

        was_tracing = tracemalloc.is_tracing()
        profiler = PhaseProfiler()
        profiler.close()
        profiler.close()
        assert tracemalloc.is_tracing() == was_tracing


class TestBuildProfile:
    def _spans(self):
        """root(1.0s) -> a(0.6s, called twice) -> b(0.2s)."""
        return [
            {"span_id": 1, "parent_id": None, "name": "root",
             "start": 0.0, "duration": 1.0, "attrs": {}},
            {"span_id": 2, "parent_id": 1, "name": "a",
             "start": 0.1, "duration": 0.4, "attrs": {}},
            {"span_id": 3, "parent_id": 1, "name": "a",
             "start": 0.5, "duration": 0.2, "attrs": {}},
            {"span_id": 4, "parent_id": 2, "name": "b",
             "start": 0.2, "duration": 0.2, "attrs": {}},
        ]

    def test_self_and_cumulative_math(self):
        profile = build_profile(self._spans())
        assert profile["schema"] == PROFILE_SCHEMA
        nodes = {n["path"]: n for n in flatten_profile(profile)}
        assert nodes["root"]["cum_s"] == 1.0
        assert abs(nodes["root"]["self_s"] - 0.4) < 1e-12  # 1.0 - 0.6
        assert nodes["root/a"]["calls"] == 2
        assert abs(nodes["root/a"]["cum_s"] - 0.6) < 1e-12
        assert abs(nodes["root/a"]["self_s"] - 0.4) < 1e-12
        assert nodes["root/a/b"]["self_s"] == 0.2
        assert profile["total_s"] == 1.0

    def test_open_spans_skipped(self):
        spans = self._spans()
        spans[1]["duration"] = None
        profile = build_profile(spans)
        paths = {n["path"] for n in flatten_profile(profile)}
        assert "root" in paths
        # The open span is skipped but its sibling (same path) remains.
        assert {"root/a", "root/a/b"} <= paths

    def test_top_self_phase(self):
        top = top_self_phase(build_profile(self._spans()))
        # root and root/a tie at 0.4 self; path breaks the tie.
        assert top["path"] == "root/a"
        assert top_self_phase({"tree": []}) is None

    def test_cpu_and_alloc_folded_in(self):
        profiles = {
            1: {"cpu_s": 0.5, "alloc_peak_bytes": 100},
            2: {"cpu_s": 0.2, "alloc_peak_bytes": 900},
            3: {"cpu_s": 0.1, "alloc_peak_bytes": 200},
        }
        profile = build_profile(self._spans(), profiles)
        nodes = {n["path"]: n for n in flatten_profile(profile)}
        assert abs(nodes["root/a"]["cum_cpu_s"] - 0.3) < 1e-12
        assert nodes["root/a"]["alloc_peak_bytes"] == 900  # max, not sum
        assert abs(nodes["root"]["self_cpu_s"] - 0.2) < 1e-12


class TestProfileIO:
    def test_write_read_round_trip(self, tmp_path):
        profiler = PhaseProfiler(trace_malloc=False)
        with profiler.span("outer"):
            with profiler.span("inner"):
                pass
        profiler.close()
        path = tmp_path / "profile.json"
        write_profile(profiler, path, manifest={"seed": 7})
        doc = json.loads(path.read_text())
        assert doc["manifest"] == {"seed": 7}
        profile = read_profile(path)
        assert profile["schema"] == PROFILE_SCHEMA
        assert [n["name"] for n in profile["tree"]] == ["outer"]
        assert profile["tree"][0]["children"][0]["name"] == "inner"

    def test_read_bare_document(self, tmp_path):
        profiler = PhaseProfiler(trace_malloc=False)
        with profiler.span("solo"):
            pass
        profiler.close()
        path = tmp_path / "bare.json"
        path.write_text(json.dumps(profiler.to_profile()))
        assert read_profile(path)["tree"][0]["name"] == "solo"

    def test_format_profile_renders_tree_and_flat(self):
        profiler = PhaseProfiler(trace_malloc=False)
        with profiler.span("outer"):
            with profiler.span("inner"):
                pass
        profiler.close()
        text = format_profile(profiler.to_profile())
        assert "phase tree (wall-clock):" in text
        assert "  inner" in text  # indented under outer
        assert "outer/inner" in text  # flat table path
        assert "total:" in text
        by_cum = format_profile(profiler.to_profile(), sort="cum")
        assert "hot phases (by cum_s" in by_cum
