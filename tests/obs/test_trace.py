"""Tests for span tracing: nesting, attrs, and worker adoption."""

from __future__ import annotations

import json

from repro.obs.trace import Tracer


class TestSpans:
    def test_records_name_and_duration(self):
        tracer = Tracer()
        with tracer.span("work", n=3):
            pass
        (record,) = tracer.records
        assert record.name == "work"
        assert record.attrs == {"n": 3}
        assert record.duration is not None and record.duration >= 0.0
        assert record.parent_id is None

    def test_nesting_sets_parent(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.current_span_id == inner.span_id
            assert tracer.current_span_id == outer.span_id
        assert inner.parent_id == outer.span_id
        assert tracer.current_span_id is None

    def test_attrs_updatable_in_block(self):
        tracer = Tracer()
        with tracer.span("solve") as span:
            span.attrs.update(iterations=7)
        assert tracer.records[0].attrs["iterations"] == 7

    def test_sibling_spans_share_parent(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        _, a, b = tracer.records
        assert a.parent_id == b.parent_id == root.span_id

    def test_duration_recorded_on_exception(self):
        tracer = Tracer()
        try:
            with tracer.span("boom"):
                raise ValueError()
        except ValueError:
            pass
        assert tracer.records[0].duration is not None


class TestAdoption:
    def test_ids_renumbered_and_reparented(self):
        worker = Tracer()
        with worker.span("w_root"):
            with worker.span("w_child"):
                pass
        parent = Tracer()
        with parent.span("fan_out") as fan:
            parent.adopt(worker.to_dicts())
        by_name = {r.name: r for r in parent.records}
        assert by_name["w_root"].parent_id == fan.span_id
        assert by_name["w_child"].parent_id == by_name["w_root"].span_id
        ids = [r.span_id for r in parent.records]
        assert len(ids) == len(set(ids))

    def test_adopt_outside_span_keeps_roots_parentless(self):
        worker = Tracer()
        with worker.span("w"):
            pass
        parent = Tracer()
        parent.adopt(worker.to_dicts())
        assert parent.records[0].parent_id is None

    def test_worker_epoch_aligns_timeline(self):
        parent = Tracer()
        worker = Tracer(epoch=parent.epoch)
        assert worker.epoch == parent.epoch


class TestSerialization:
    def test_jsonl_round_trip(self):
        tracer = Tracer()
        with tracer.span("a", k="v"):
            pass
        lines = tracer.to_jsonl().strip().split("\n")
        assert len(lines) == 1
        obj = json.loads(lines[0])
        assert obj["name"] == "a"
        assert obj["attrs"] == {"k": "v"}
        assert set(obj) == {
            "span_id", "parent_id", "name", "start", "duration", "attrs"
        }
