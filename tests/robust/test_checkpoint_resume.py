"""Checkpoint/resume tests: unit semantics plus kill-and-resume proofs.

The headline acceptance test SIGKILLs a frontier sweep mid-run and
asserts the resumed run's stdout is bit-identical to an uninterrupted
run.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.dpm.optimizer import optimize_weighted, sweep_weights
from repro.dpm.pareto import deterministic_frontier
from repro.dpm.presets import paper_system
from repro.errors import CheckpointError
from repro.policies import GreedyPolicy
from repro.robust.checkpoint import Checkpoint, config_hash, open_checkpoint
from repro.sim.batch import run_replications
from repro.sim.workload import PoissonProcess

CONFIG = {"task": "test", "rate": 0.25, "capacity": 3}


class TestConfigHash:
    def test_key_order_irrelevant(self):
        assert config_hash({"a": 1, "b": 2.5}) == config_hash({"b": 2.5, "a": 1})

    def test_value_changes_hash(self):
        assert config_hash({"a": 1}) != config_hash({"a": 2})

    def test_unserializable_config_rejected(self):
        with pytest.raises(CheckpointError):
            config_hash({"a": object()})


class TestCheckpointStore:
    def test_put_get_roundtrip(self, tmp_path):
        ck = Checkpoint(tmp_path / "c.json", CONFIG)
        ck.put("k", {"x": 0.1})
        assert "k" in ck
        assert ck.get("k") == {"x": 0.1}
        reloaded = Checkpoint(tmp_path / "c.json", CONFIG, resume=True)
        assert reloaded.get("k") == {"x": 0.1}

    def test_exact_float_roundtrip(self, tmp_path):
        value = 0.1 + 0.2  # not exactly 0.3
        ck = Checkpoint(tmp_path / "c.json", CONFIG)
        ck.put("k", value)
        reloaded = Checkpoint(tmp_path / "c.json", CONFIG, resume=True)
        assert reloaded.get("k") == value  # bit-identical

    def test_save_every_batches_writes(self, tmp_path):
        path = tmp_path / "c.json"
        ck = Checkpoint(path, CONFIG, save_every=3)
        ck.put("a", 1)
        ck.put("b", 2)
        assert not path.exists()
        ck.put("c", 3)
        assert path.exists()

    def test_flush_forces_write(self, tmp_path):
        path = tmp_path / "c.json"
        ck = Checkpoint(path, CONFIG, save_every=100)
        ck.put("a", 1)
        ck.flush()
        assert json.loads(path.read_text())["completed"] == {"a": 1}

    def test_config_mismatch_rejected_on_resume(self, tmp_path):
        path = tmp_path / "c.json"
        Checkpoint(path, CONFIG).put("a", 1)
        with pytest.raises(CheckpointError, match="different configuration"):
            Checkpoint(path, {**CONFIG, "rate": 0.5}, resume=True)

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text("{not json")
        with pytest.raises(CheckpointError, match="cannot read"):
            Checkpoint(path, CONFIG, resume=True)

    def test_non_checkpoint_document_rejected(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text(json.dumps({"something": "else"}))
        with pytest.raises(CheckpointError, match="not a checkpoint"):
            Checkpoint(path, CONFIG, resume=True)

    def test_invalid_save_every(self, tmp_path):
        with pytest.raises(CheckpointError):
            Checkpoint(tmp_path / "c.json", CONFIG, save_every=0)

    def test_open_checkpoint_none_path(self):
        assert open_checkpoint(None, CONFIG) is None

    def test_no_stale_temp_files_after_flush(self, tmp_path):
        ck = Checkpoint(tmp_path / "c.json", CONFIG)
        for k in range(5):
            ck.put(str(k), k)
        assert [p.name for p in tmp_path.iterdir()] == ["c.json"]


@pytest.fixture(scope="module")
def small_model():
    return paper_system(arrival_rate=0.25, capacity=2)


class TestSweepWeightsResume:
    WEIGHTS = [0.0, 0.5, 1.0, 2.0, 5.0]

    def test_checkpointed_sweep_matches_plain(self, small_model, tmp_path):
        plain = sweep_weights(small_model, self.WEIGHTS)
        ck = Checkpoint(tmp_path / "sweep.json", {"k": 1})
        checkpointed = sweep_weights(small_model, self.WEIGHTS, checkpoint=ck)
        assert [r.weight for r in checkpointed] == [r.weight for r in plain]
        assert [r.policy for r in checkpointed] == [r.policy for r in plain]
        assert [r.metrics for r in checkpointed] == [r.metrics for r in plain]

    def test_resume_solves_only_missing_weights(
        self, small_model, tmp_path, monkeypatch
    ):
        path = tmp_path / "sweep.json"
        config = {"k": 2}
        # "Interrupted" run: only the first three weights completed.
        sweep_weights(
            small_model, self.WEIGHTS[:3],
            checkpoint=Checkpoint(path, config),
        )
        solved = []
        import repro.dpm.optimizer as optimizer_module

        real = optimize_weighted

        def counting(
            model, weight, solver="policy_iteration", backend="auto", **kwargs
        ):
            solved.append(weight)
            return real(model, weight, solver=solver, backend=backend, **kwargs)

        monkeypatch.setattr(optimizer_module, "optimize_weighted", counting)
        resumed = sweep_weights(
            small_model, self.WEIGHTS,
            checkpoint=Checkpoint(path, config, resume=True),
        )
        assert solved == self.WEIGHTS[3:]  # cached weights not re-solved
        plain = sweep_weights(small_model, self.WEIGHTS)
        assert [r.metrics for r in resumed] == [r.metrics for r in plain]


class TestFrontierResume:
    def test_interrupted_frontier_resumes_identically(
        self, small_model, tmp_path
    ):
        plain = deterministic_frontier(
            small_model, max_weight=50.0, weight_tolerance=0.01
        )
        path = tmp_path / "front.json"
        config = {"front": 1}
        deterministic_frontier(
            small_model, max_weight=50.0, weight_tolerance=0.01,
            checkpoint=Checkpoint(path, config),
        )
        # Simulate a mid-sweep kill: drop half the completed entries.
        doc = json.loads(path.read_text())
        kept = dict(list(doc["completed"].items())[: len(doc["completed"]) // 2])
        doc["completed"] = kept
        path.write_text(json.dumps(doc))
        resumed = deterministic_frontier(
            small_model, max_weight=50.0, weight_tolerance=0.01,
            checkpoint=Checkpoint(path, config, resume=True),
        )
        assert [(p.weight, p.policy, p.metrics) for p in resumed] == [
            (p.weight, p.policy, p.metrics) for p in plain
        ]


class TestReplicationResume:
    def test_partial_campaign_resumes_identically(
        self, paper_provider, tmp_path
    ):
        kwargs = dict(
            provider=paper_provider,
            capacity=5,
            workload_factory=lambda: PoissonProcess(1 / 6),
            policy_factory=lambda: GreedyPolicy(paper_provider),
            n_requests=400,
            n_replications=4,
            base_seed=11,
        )
        plain = run_replications(**kwargs)
        path = tmp_path / "reps.json"
        config = {"reps": 1}
        run_replications(checkpoint=Checkpoint(path, config), **kwargs)
        doc = json.loads(path.read_text())
        assert set(doc["completed"]) == {"11", "12", "13", "14"}
        doc["completed"] = {k: doc["completed"][k] for k in ("11", "13")}
        path.write_text(json.dumps(doc))
        resumed = run_replications(
            checkpoint=Checkpoint(path, config, resume=True), **kwargs
        )
        assert resumed == plain


class TestKillAndResumeCLI:
    """The acceptance test: SIGKILL a sweep, resume, bit-identical output."""

    ARGS = [
        "frontier", "--max-weight", "50", "--weight-tolerance", "0.01",
    ]

    def _cli(self, extra, **popen_kwargs):
        env = dict(os.environ, PYTHONPATH="src")
        return subprocess.run(
            [sys.executable, "-m", "repro.cli", *self.ARGS, *extra],
            capture_output=True, text=True, env=env,
            cwd=Path(__file__).resolve().parents[2], **popen_kwargs,
        )

    def test_sigkilled_sweep_resumes_to_identical_output(self, tmp_path):
        reference = self._cli([])
        assert reference.returncode == 0

        ck = tmp_path / "front.json"
        env = dict(os.environ, PYTHONPATH="src")
        victim = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", *self.ARGS,
                "--checkpoint", str(ck),
            ],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env,
            cwd=Path(__file__).resolve().parents[2],
        )
        # Kill as soon as some -- but not necessarily all -- sub-solves
        # are checkpointed, emulating preemption mid-sweep.
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if victim.poll() is not None:
                break
            if ck.exists():
                try:
                    if len(json.loads(ck.read_text())["completed"]) >= 3:
                        break
                except (ValueError, KeyError):
                    pass  # caught the file mid-replace; retry
            time.sleep(0.01)
        if victim.poll() is None:
            victim.send_signal(signal.SIGKILL)
        victim.wait()
        assert ck.exists(), "no checkpoint was written before the kill"

        resumed = self._cli(["--checkpoint", str(ck), "--resume"])
        assert resumed.returncode == 0
        assert resumed.stdout == reference.stdout
