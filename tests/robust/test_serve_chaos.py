"""Chaos harness for the serving runtime (acceptance criteria).

Under seeded fault injection -- solver crashes/hangs/NaN policies,
on-disk artifact corruption, drift storms -- the server must never
return an action inconsistent with its admitted artifact, never leak an
untyped error, and every breaker/ladder transition must be observable.
"""

from __future__ import annotations

import pytest

from repro.dpm.presets import paper_system
from repro.obs.metrics import MetricsRegistry
from repro.obs.runtime import instrument
from repro.serve.artifact import ArtifactStore
from repro.serve.chaos import ChaosPlan, ChaosSolver
from repro.serve.server import ServingRuntime
from repro.serve.supervisor import CircuitBreaker, RetryPolicy


@pytest.fixture(scope="module")
def model():
    return paper_system(capacity=3)


def make_runtime(model, tmp_path, chaos_solver=None, **kwargs):
    kwargs.setdefault(
        "retry", RetryPolicy(attempts=2, base_delay=0.0, sleep=lambda s: None)
    )
    kwargs.setdefault(
        "breaker", CircuitBreaker(failure_threshold=2, reset_timeout=0.0)
    )
    kwargs.setdefault("drift_consecutive", 2)
    return ServingRuntime(
        model, 0.5, ArtifactStore(tmp_path), solve=chaos_solver, **kwargs
    )


class TestChaosSolver:
    def test_script_validated(self, model):
        with pytest.raises(ValueError, match="unknown chaos outcome"):
            ChaosSolver(model, 0.5, script=["ok", "explode"])
        with pytest.raises(ValueError, match="not both"):
            ChaosSolver(model, 0.5, script=["ok"], probabilities={"crash": 0.5})
        with pytest.raises(ValueError, match="explicit seed"):
            ChaosSolver(model, 0.5, probabilities={"crash": 0.5})

    def test_nan_outcome_rejected_at_compile(self, model, tmp_path):
        solver = ChaosSolver(model, 0.5, script=["nan"])
        runtime = make_runtime(model, tmp_path, solver)
        report = runtime.supervisor.resolve(model.requestor.rate)
        assert not report.ok
        assert report.failure == "rejected"
        assert "non-finite" in report.error
        assert runtime.store.load() is None  # nothing inadmissible persisted

    def test_seeded_outcomes_deterministic(self, model):
        a = ChaosSolver(model, 0.5, probabilities={"crash": 0.5}, seed=3)
        b = ChaosSolver(model, 0.5, probabilities={"crash": 0.5}, seed=3)
        for solver in (a, b):
            for _ in range(8):
                try:
                    solver(model.requestor.rate)
                except Exception:
                    pass
        assert a.outcomes == b.outcomes
        assert "crash" in a.outcomes and "ok" in a.outcomes


class TestBreakerLifecycle:
    def test_open_stale_halfopen_recovery(self, model, tmp_path):
        """The full arc: crashes open the breaker, the server keeps
        answering from the stale last-good table, the half-open probe
        succeeds and restores fresh serving."""
        solver = ChaosSolver(
            model, 0.5, script=["ok", "crash", "crash", "crash", "crash"]
        )
        with instrument(metrics=MetricsRegistry()) as ins:
            runtime = make_runtime(model, tmp_path, solver)
            assert runtime.bootstrap() == "fresh"

            # Two failed requests (2 attempts each, all crash) open it:
            # each failed request counts one breaker failure.
            runtime.server.mark_stale()
            r1 = runtime.supervisor.resolve(0.4)
            assert r1.failure == "crash"
            assert runtime.supervisor.breaker.state == "closed"
            r2 = runtime.supervisor.resolve(0.4)
            assert r2.failure == "crash"
            assert runtime.supervisor.breaker.n_opened == 1

            # Open breaker refuses without consuming script outcomes.
            outcomes_before = len(solver.outcomes)
            # reset_timeout=0 means it is immediately half-open, so use
            # a second runtime-level check: force a refusal first.
            runtime.supervisor.breaker._opened_at = float("inf")
            refused = runtime.supervisor.resolve(0.4)
            assert refused.failure == "breaker-open"
            assert len(solver.outcomes) == outcomes_before

            # Stale serving continues from the admitted v1 table.
            decision = runtime.decide("active", False, 1)
            assert decision.source == "stale"
            assert decision.version == 1
            assert decision.action == decision.artifact.action_for(
                "active", False, 1
            )

            # Allow the half-open probe; script is exhausted → "ok".
            runtime.supervisor.breaker._opened_at = 0.0
            assert runtime.supervisor.breaker.state == "half-open"
            probe = runtime.supervisor.resolve(
                0.4, install=runtime.server.install
            )
            assert probe.ok
            assert runtime.supervisor.breaker.state == "closed"
            assert runtime.server.source == "fresh"
            assert runtime.server.artifact.version == 2

            doc = ins.metrics.to_dict()
        assert doc["serve.breaker.opened"]["value"] == 1
        assert doc["serve.breaker.closed"]["value"] == 1
        assert doc["serve.resolve.refused"]["value"] == 1
        assert doc["serve.swaps"]["value"] == 2

    def test_halfopen_probe_failure_reopens(self, model, tmp_path):
        solver = ChaosSolver(model, 0.5, script=["ok"] + ["crash"] * 6)
        runtime = make_runtime(model, tmp_path, solver)
        runtime.bootstrap()
        runtime.supervisor.resolve(0.4)  # failed request #1
        runtime.supervisor.resolve(0.4)  # failed request #2 → opens
        assert runtime.supervisor.breaker.n_opened == 1
        # reset_timeout=0 means it is immediately half-open.
        assert runtime.supervisor.breaker.state == "half-open"
        probe = runtime.supervisor.resolve(0.4)  # half-open probe crashes
        assert not probe.ok
        runtime.supervisor.breaker._opened_at = float("inf")
        assert runtime.supervisor.breaker.state == "open"
        assert runtime.supervisor.breaker.n_opened == 2


class TestHangs:
    def test_hung_solver_abandoned_and_serving_unharmed(self, model, tmp_path):
        solver = ChaosSolver(
            model, 0.5, script=["ok", "hang", "hang"], hang_sleep=0.3
        )
        runtime = make_runtime(
            model,
            tmp_path,
            solver,
            attempt_timeout=0.05,
            retry=RetryPolicy(attempts=2, base_delay=0.0, sleep=lambda s: None),
        )
        runtime.bootstrap()
        report = runtime.supervisor.resolve(0.4)
        assert report.failure == "timeout"
        assert report.attempts == 2
        # The last-good table is untouched.
        assert runtime.decide("active", False, 1).version == 1


class TestSoakUnderChaos:
    def _soak(self, model, tmp_path, seed, duration=4000.0):
        solver = ChaosSolver(
            model,
            0.5,
            probabilities={"crash": 0.25, "hang": 0.05, "nan": 0.15},
            seed=seed,
            hang_sleep=0.15,
        )
        plan = ChaosPlan(
            model.requestor.rate,
            seed=seed,
            storm_period=duration / 8,
            corrupt_probability=0.01,
            reload_probability=0.02,
        )
        runtime = make_runtime(
            model,
            tmp_path,
            solver,
            attempt_timeout=0.05,
            breaker=CircuitBreaker(failure_threshold=3, reset_timeout=0.1),
        )
        runtime.bootstrap()
        report = runtime.soak(duration, seed=seed, chaos=plan)
        return runtime, plan, report

    @pytest.mark.parametrize("seed", [0, 1])
    def test_never_wrong_never_untyped(self, model, tmp_path, seed):
        """The headline acceptance criterion, two seeds."""
        with instrument(metrics=MetricsRegistry()) as ins:
            runtime, plan, report = self._soak(model, tmp_path / str(seed), seed)
            doc = ins.metrics.to_dict()
        assert report.selfcheck_violations == 0
        assert "serve.selfcheck.violations" not in doc
        assert report.arrivals > 200
        assert report.decisions > 0
        # Every decision came from an admitted table or the heuristic.
        assert sum(report.by_source.values()) == report.decisions
        # Corruption probes only ever saw typed rejections or clean admits.
        assert plan.reload_attempts == (
            plan.reload_rejections + plan.reload_successes
        )
        # The runtime never served the heuristic (it bootstrapped fresh
        # and stale always has the last-good table to fall back on).
        assert report.by_source["heuristic"] == 0

    def test_soak_is_replayable_from_seed(self, model, tmp_path):
        _, _, a = self._soak(model, tmp_path / "a", 5, duration=2000.0)
        _, _, b = self._soak(model, tmp_path / "b", 5, duration=2000.0)
        da, db = a.to_dict(), b.to_dict()
        # estimated_rate depends only on arrival times → equal too, but
        # drop anything wall-clock-ish just in case.
        assert da == db

    def test_corruption_actually_happens_and_is_survived(self, model, tmp_path):
        runtime, plan, report = self._soak(model, tmp_path, 0, duration=6000.0)
        assert plan.corruptions > 0
        assert plan.reload_attempts > 0
        assert plan.reload_rejections > 0  # probes did see corrupt files
        assert report.selfcheck_violations == 0
        # A corrupt store never poisons in-memory serving.
        assert runtime.server.artifact is not None
