"""The model-admission gate: checks, remediation, rejection semantics."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.ctmdp.model import CTMDP
from repro.ctmdp.policy_iteration import policy_iteration
from repro.dpm.presets import paper_system
from repro.dpm.service_requestor import ServiceRequestor
from repro.dpm.system import PowerManagedSystemModel
from repro.errors import InvalidModelError, ModelRejectedError
from repro.robust.admission import (
    FINDING_CODES,
    AdmissionReport,
    admit_ctmdp,
    admit_inputs,
    admit_model,
)
from repro.robust.fuzz import unconstrained_system


def chain(rates_by_pair, n, costs=None):
    """A one-action-per-state CTMDP from ``{(i, j): rate}``."""
    mdp = CTMDP(list(range(n)))
    for i in range(n):
        row = np.zeros(n)
        for (a, b), r in rates_by_pair.items():
            if a == i:
                row[b] = r
        cost = 1.0 + i if costs is None else costs[i]
        mdp.add_action(i, "a", rates=row, cost_rate=cost)
    return mdp


class TestPaperPreset:
    def test_full_admission_is_ok(self):
        report = admit_model(paper_system(), level="full", weight=1.0)
        assert report.verdict == "ok"
        assert report.ok
        assert report.repaired_model is None
        assert report.diagnostics["max_exit_rate"] > 1e4
        assert report.diagnostics["stiffness_ratio"] > 1.0
        assert report.diagnostics["unichain_policies_checked"] > 0

    def test_report_is_json_exportable(self):
        report = admit_model(paper_system(), level="full", weight=1.0)
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["verdict"] == "ok"
        assert payload["level"] == "full"
        assert isinstance(payload["diagnostics"]["canonical_shift"], int)

    def test_entry_level_skips_model_build(self):
        report = admit_model(paper_system(), level="entry")
        assert report.verdict == "ok"
        assert report.diagnostics == {}

    def test_unknown_level_rejected(self):
        with pytest.raises(InvalidModelError, match="admission level"):
            admit_model(paper_system(), level="paranoid")


class TestEntryGate:
    def test_capacity_zero(self):
        with pytest.raises(InvalidModelError, match="capacity"):
            PowerManagedSystemModel(
                paper_system().provider, ServiceRequestor(0.1), 0
            )

    def test_requestor_optional(self):
        admit_inputs(paper_system().provider, None, 3)

    def test_simulator_runs_the_gate(self):
        from repro.policies import AlwaysOnPolicy
        from repro.sim import PoissonProcess, simulate

        provider = paper_system().provider
        with pytest.raises(InvalidModelError, match="capacity"):
            simulate(
                provider=provider,
                capacity=0,
                workload=PoissonProcess(0.1),
                policy=AlwaysOnPolicy(provider),
                n_requests=10,
            )


class TestRemediation:
    """Extreme magnitudes: repaired exactly, bit-identical solves."""

    WEIGHT = 2.0

    @pytest.fixture(scope="class")
    def misscaled(self):
        base = paper_system(capacity=3)
        return PowerManagedSystemModel(
            base.provider.rescaled(40),
            ServiceRequestor(np.ldexp(base.requestor.rate, 40)),
            base.capacity,
        )

    def test_verdict_and_ladder(self, misscaled):
        report = admit_model(
            misscaled, level="standard", weight=self.WEIGHT,
        )
        assert report.verdict == "repaired"
        assert report.repaired_model is not None
        exponent = report.remediation["rate_scale_exponent"]
        assert report.repaired_model.rate_scale == np.ldexp(1.0, exponent)
        # The repaired chain sits in the canonical magnitude window.
        assert 0.5 <= report.diagnostics["repaired_max_exit_rate"] <= 4.0

    def test_rescaled_solve_is_bit_identical(self, misscaled):
        """The acceptance criterion: exact back-transformation.

        Where the unscaled solve succeeds, the repaired model must
        produce the identical policy, bias, and stationary distribution
        bit for bit, and a gain equal after the exact power-of-two
        back-shift.
        """
        report = admit_model(misscaled, level="standard", weight=self.WEIGHT)
        direct = policy_iteration(misscaled.build_ctmdp(self.WEIGHT))
        repaired = policy_iteration(
            report.repaired_model.build_ctmdp(self.WEIGHT)
        )
        scale = report.repaired_model.rate_scale
        assert repaired.policy.as_dict() == direct.policy.as_dict()
        assert np.array_equal(repaired.bias, direct.bias)
        assert np.array_equal(repaired.stationary, direct.stationary)
        assert repaired.gain / scale == direct.gain

    def test_metrics_need_no_back_transform(self, misscaled):
        """Extra cost channels stay in original units by design."""
        from repro.dpm.analysis import evaluate_dpm_policy

        report = admit_model(misscaled, level="standard", weight=self.WEIGHT)
        direct = policy_iteration(misscaled.build_ctmdp(self.WEIGHT))
        repaired = policy_iteration(
            report.repaired_model.build_ctmdp(self.WEIGHT)
        )
        m_direct = evaluate_dpm_policy(misscaled, direct.policy)
        m_repaired = evaluate_dpm_policy(
            report.repaired_model, repaired.policy
        )
        assert m_repaired.average_power == m_direct.average_power
        assert m_repaired.average_queue_length == m_direct.average_queue_length


class TestRejections:
    def test_nan_cost(self):
        mdp = chain({(0, 1): 1.0, (1, 0): 1.0}, 2, costs=[float("nan"), 1.0])
        with pytest.raises(ModelRejectedError, match="nonfinite-cost") as exc:
            admit_model(mdp)
        report = exc.value.report
        assert report.verdict == "rejected"
        assert any(f.code == "nonfinite-cost" for f in report.errors())
        # The exception carries the JSON-ready report.
        assert exc.value.report_dict["verdict"] == "rejected"

    def test_empty_action_set(self):
        mdp = CTMDP([0, 1])
        mdp.add_action(0, "a", rates=np.array([0.0, 1.0]), cost_rate=1.0)
        report = admit_model(mdp, raise_on_reject=False)
        assert report.verdict == "rejected"
        assert any(f.code == "empty-action-set" for f in report.findings)

    def test_extreme_dynamic_range(self):
        mdp = chain({(0, 1): 1e-300, (1, 0): 1e300}, 2)
        report = admit_model(mdp, raise_on_reject=False)
        assert report.verdict == "rejected"
        assert any(
            f.code == "extreme-dynamic-range" for f in report.errors()
        )

    def test_multichain_policy_at_full_level(self):
        """Satellite: a model reducible under an admissible policy.

        With the paper's action-validity constraints removed, the
        policy that never leaves the current mode induces one recurrent
        class per mode -- multichain, so average-cost evaluation is
        ill-posed and the full-level sweep must reject the model.
        """
        from repro.dpm.service_provider import ServiceProvider

        provider = ServiceProvider(
            ("on", "off"),
            np.array([[0.0, 2.0], [3.0, 0.0]]),
            np.array([1.0, 0.0]),
            np.array([2.0, 0.1]),
            np.zeros((2, 2)),
        )
        model = unconstrained_system(provider, ServiceRequestor(0.5), 1)
        report = admit_model(
            model, level="full", weight=1.0, raise_on_reject=False,
            sample_budget=5000, seed=0,
        )
        assert report.verdict == "rejected"
        assert any(f.code == "multichain-policy" for f in report.errors())

    def test_constrained_model_passes_the_same_sweep(self):
        """The paper's constraints are exactly what the sweep verifies."""
        report = admit_model(
            paper_system(capacity=1), level="full", weight=1.0,
            sample_budget=2000, seed=0,
        )
        assert not any(
            f.code == "multichain-policy" for f in report.findings
        )


class TestWarnings:
    def test_absorbing_state_flagged(self):
        mdp = chain({(0, 1): 1.0, (1, 2): 1.0}, 3)
        report = admit_ctmdp(mdp)
        assert report.verdict == "ok"  # warnings do not reject
        assert any(f.code == "zero-exit-state" for f in report.findings)

    def test_near_zero_rate_flagged(self):
        mdp = chain({(0, 1): 1.0, (1, 0): 1.0, (1, 2): 1e-12, (2, 0): 1.0}, 3)
        report = admit_ctmdp(mdp)
        finding = next(
            f for f in report.findings if f.code == "near-zero-rate"
        )
        assert finding.severity == "warning"
        assert finding.value == 1e-12

    def test_stiffness_recommends_slack(self):
        mdp = chain({(0, 1): 1e10, (1, 0): 1.0}, 2)
        report = admit_ctmdp(mdp)
        assert any(f.code == "high-stiffness" for f in report.findings)
        assert report.remediation["uniformization_slack"] > 1.0
        assert report.diagnostics["stiffness_ratio"] == 1e10

    def test_near_duplicate_actions_flagged(self):
        mdp = CTMDP([0, 1])
        for action in ("a", "b"):
            mdp.add_action(0, action, rates=np.array([0.0, 1.0]), cost_rate=1.0)
        mdp.add_action(1, "a", rates=np.array([1.0, 0.0]), cost_rate=2.0)
        report = admit_ctmdp(mdp)
        assert any(
            f.code == "near-duplicate-actions" and f.severity == "info"
            for f in report.findings
        )

    def test_ill_conditioned_evaluation_at_full(self):
        # Two blocks coupled only through a ~1e-16-relative rate: the
        # evaluation system is numerically singular.
        mdp = chain(
            {(0, 1): 1.0, (1, 0): 1.0, (1, 2): 1e-16,
             (2, 3): 1.0, (3, 2): 1.0, (2, 1): 1e-16},
            4,
        )
        report = admit_ctmdp(mdp, level="full")
        assert any(
            f.code == "ill-conditioned-evaluation" for f in report.findings
        )


class TestReportShape:
    def test_every_finding_code_is_documented(self):
        # The README troubleshooting table mirrors FINDING_CODES; keep
        # the registry authoritative.
        assert len(set(FINDING_CODES)) == len(FINDING_CODES)
        readme = open("README.md").read()
        for code in FINDING_CODES:
            assert f"`{code}`" in readme, f"{code} missing from README"

    def test_write_admission_report(self, tmp_path):
        from repro.obs.export import write_admission_report

        report = AdmissionReport(verdict="ok", level="standard")
        path = tmp_path / "report.json"
        write_admission_report(report, path, manifest={"run": "test"})
        payload = json.loads(path.read_text())
        assert payload["manifest"] == {"run": "test"}
        assert payload["admission"]["verdict"] == "ok"
