"""Numerical fault injection into the sparse/reuse solver ladder.

Satellite of the serving-runtime PR: the PR 4 harness covered the
parallel layer's crash/hang/NaN faults, but the post-PR-6 numerical
ladder (direct LU -> ILU-GMRES -> typed failure, plus the PR 8 reuse
cache's stale-LU rung) predates it. These tests arm
:class:`repro.robust.faultinject.NumericalFaultPlan` faults at each
rung's injection point and assert the rescue/fallback behavior the
ladder documents: correct results out of the surviving rungs, typed
:class:`~repro.errors.SolverError` when the ladder is exhausted, and
bit-identical sweep results when a warm-started solve hits an injected
singular reuse system and falls back cold.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.ctmdp.sparse import solve_sparse_with_fallback
from repro.dpm.optimizer import optimize_weighted, serialize_result
from repro.dpm.presets import paper_system
from repro.errors import SolverError
from repro.obs.metrics import MetricsRegistry
from repro.obs.runtime import instrument
from repro.robust.faultinject import (
    FaultInjectionError,
    NumericalFaultPlan,
    inject_numerical,
    numerical_fault,
)


def _well_conditioned_system(n: int = 40, seed: int = 0):
    """A diagonally dominant sparse system every rung can solve."""
    rng = np.random.default_rng(seed)
    a = sp.random(n, n, density=0.15, random_state=rng, format="lil")
    a.setdiag(np.asarray(np.abs(a).sum(axis=1)).ravel() + 1.0)
    b = rng.standard_normal(n)
    return sp.csr_array(a), b


class TestNumericalFaultPlan:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultInjectionError, match="unknown numerical"):
            NumericalFaultPlan().arm("segfault")

    def test_times_must_be_positive(self):
        with pytest.raises(FaultInjectionError, match=">= 1"):
            NumericalFaultPlan().arm("direct-fail", times=0)

    def test_consume_counts_down_and_records(self):
        plan = NumericalFaultPlan().arm("direct-fail", times=2)
        assert plan.consume("direct-fail")
        assert plan.consume("direct-fail")
        assert not plan.consume("direct-fail")
        assert plan.fired == {"direct-fail": 2}

    def test_no_plan_means_no_fault(self):
        assert not numerical_fault("direct-fail")

    def test_inject_restores_previous_plan(self):
        outer = NumericalFaultPlan().arm("direct-fail")
        with inject_numerical(outer):
            with inject_numerical(NumericalFaultPlan()):
                assert not numerical_fault("direct-fail")
            assert numerical_fault("direct-fail")
        assert not numerical_fault("direct-fail")


class TestSparseLadderFaults:
    def test_direct_fail_rescued_by_gmres(self):
        a, b = _well_conditioned_system()
        clean = solve_sparse_with_fallback(a, b)
        plan = NumericalFaultPlan().arm("direct-fail")
        registry = MetricsRegistry()
        with inject_numerical(plan), instrument(metrics=registry):
            rescued = solve_sparse_with_fallback(a, b)
        assert plan.fired == {"direct-fail": 1}
        assert np.allclose(rescued, clean, rtol=1e-8, atol=1e-10)
        doc = registry.to_dict()
        assert doc["solver.sparse.gmres_fallbacks"]["value"] == 1

    def test_ilu_breakdown_rescued_by_jacobi(self):
        a, b = _well_conditioned_system()
        clean = solve_sparse_with_fallback(a, b)
        plan = (
            NumericalFaultPlan()
            .arm("direct-fail")
            .arm("ilu-breakdown")
        )
        registry = MetricsRegistry()
        with inject_numerical(plan), instrument(metrics=registry):
            rescued = solve_sparse_with_fallback(a, b)
        assert plan.fired == {"direct-fail": 1, "ilu-breakdown": 1}
        assert np.allclose(rescued, clean, rtol=1e-8, atol=1e-10)
        # The rescue really ran on the Jacobi preconditioner.
        rows = registry.to_dict()["solver.sparse.krylov.residuals"]["records"]
        assert rows[-1]["preconditioner"] == "jacobi"
        assert rows[-1]["rung"] == "gmres"

    def test_krylov_stall_is_a_typed_failure(self):
        a, b = _well_conditioned_system()
        plan = (
            NumericalFaultPlan()
            .arm("direct-fail")
            .arm("krylov-stall")
        )
        with inject_numerical(plan):
            with pytest.raises(SolverError) as excinfo:
                solve_sparse_with_fallback(a, b)
        assert plan.fired["krylov-stall"] == 1
        assert excinfo.value.diagnostics["backend"] == "sparse"

    def test_faults_disarm_after_firing(self):
        a, b = _well_conditioned_system()
        clean = solve_sparse_with_fallback(a, b)
        plan = NumericalFaultPlan().arm("direct-fail")
        with inject_numerical(plan):
            solve_sparse_with_fallback(a, b)
            again = solve_sparse_with_fallback(a, b)
        assert np.array_equal(again, clean)  # direct rung, bit-identical


class TestReuseCacheFaults:
    """The PR 8 reuse cache under an injected singular stale-LU."""

    def test_cold_solve_surfaces_typed_error(self):
        model = paper_system(capacity=4)
        plan = NumericalFaultPlan().arm("stale-lu-singular")
        with inject_numerical(plan):
            with pytest.raises(SolverError) as excinfo:
                optimize_weighted(model, 0.5, backend="sparse")
        assert plan.fired == {"stale-lu-singular": 1}
        assert (
            excinfo.value.diagnostics["reason"] == "singular_reuse_system"
        )

    def test_warm_start_falls_back_cold_bit_identical(self):
        model = paper_system(capacity=4)
        clean = optimize_weighted(model, 0.5, backend="sparse")
        seed = optimize_weighted(model, 0.4, backend="sparse").policy
        plan = NumericalFaultPlan().arm("stale-lu-singular")
        registry = MetricsRegistry()
        with inject_numerical(plan), instrument(metrics=registry):
            warm = optimize_weighted(
                model, 0.5, backend="sparse", initial_policy=seed
            )
        assert plan.fired == {"stale-lu-singular": 1}
        # The advisory-seed contract held: the injected singular system
        # rejected the seed, the cold fallback ran, and the result is
        # bit-identical to an uninjected solve.
        assert serialize_result(warm) == serialize_result(clean)
        doc = registry.to_dict()
        assert doc["solver.reuse.warm_start_rejected"]["value"] == 1
