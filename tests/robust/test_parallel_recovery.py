"""Recovery-path tests for the fault-tolerant ``parallel_map``.

Every rung of the degradation ladder (crash -> retry, hang -> timeout ->
requeue, NaN -> validation -> retry, retry exhaustion -> serial
degradation) is driven deterministically via
:mod:`repro.robust.faultinject`, and in every scenario the results must
stay byte-identical to the serial run.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import WorkerFailureError
from repro.obs.metrics import MetricsRegistry
from repro.obs.runtime import active, instrument
from repro.robust.faultinject import FaultPlan, inject
from repro.sim.parallel import parallel_map

ITEMS = list(range(8))

#: Fast deterministic retry schedule for tests.
FAST = dict(n_jobs=2, backoff_s=0.001)


def _square(x):
    return x * x


def _instrumented_square(x):
    ins = active()
    if ins.metrics is not None:
        ins.metrics.counter("work.calls").inc()
        ins.metrics.series("work.rows").append(x=x)
    return x * x


def _run(plan=None, fn=_square, **kwargs):
    """Run ``parallel_map`` under a fresh registry; return (results, registry)."""
    registry = MetricsRegistry()
    kwargs = {**FAST, **kwargs}
    with instrument(metrics=registry):
        if plan is None:
            results = parallel_map(fn, ITEMS, **kwargs)
        else:
            with inject(plan):
                results = parallel_map(fn, ITEMS, **kwargs)
    return results, registry


def _count(registry, name):
    return registry.counter(name, profiling=True).value


SERIAL = [x * x for x in ITEMS]


class TestCrashRecovery:
    def test_crash_then_retry_succeeds(self):
        results, registry = _run(FaultPlan().add("crash", item=3))
        assert results == SERIAL
        assert _count(registry, "parallel.worker_crashes") == 1
        assert _count(registry, "parallel.retries") == 1
        assert _count(registry, "parallel.degraded_chunks") == 0

    def test_multiple_crashes_recovered(self):
        plan = FaultPlan().add("crash", item=1).add("crash", item=6)
        results, registry = _run(plan)
        assert results == SERIAL
        assert _count(registry, "parallel.worker_crashes") == 2
        assert _count(registry, "parallel.retries") == 2


class TestHangRecovery:
    def test_hang_hits_timeout_and_requeues(self):
        plan = FaultPlan().add("hang", item=2, seconds=30.0)
        results, registry = _run(plan, timeout_s=0.3)
        assert results == SERIAL
        assert _count(registry, "parallel.worker_timeouts") == 1
        assert _count(registry, "parallel.retries") == 1

    def test_no_timeout_detection_when_disabled_but_crashes_still_caught(self):
        # timeout_s=None turns off hang detection only; crash detection
        # does not depend on it.
        results, registry = _run(
            FaultPlan().add("crash", item=0), timeout_s=None
        )
        assert results == SERIAL
        assert _count(registry, "parallel.worker_crashes") == 1


class TestNanRecovery:
    def test_nan_rejected_by_default_validator_then_retried(self):
        results, registry = _run(FaultPlan().add("nan", item=5))
        assert results == SERIAL
        assert _count(registry, "parallel.validation_failures") == 1
        assert _count(registry, "parallel.retries") == 1


class TestSerialDegradation:
    def test_exhausted_retries_degrade_to_serial_parent(self):
        # The fault stays armed longer than the retry budget, so the
        # chunk degrades -- and the parent re-executes it successfully
        # because faults never fire outside workers.
        plan = FaultPlan().add("crash", item=2, times=5)
        results, registry = _run(plan, max_retries=1)
        assert results == SERIAL
        assert _count(registry, "parallel.worker_crashes") == 2
        assert _count(registry, "parallel.retries") == 1
        assert _count(registry, "parallel.degraded_chunks") == 1

    def test_worker_failure_error_when_serial_also_rejected(self):
        # A validator that rejects item 3's chunk forever fails all
        # pool attempts AND the serial re-execution.
        with pytest.raises(WorkerFailureError) as excinfo:
            _run(
                validate=lambda rs: 9 not in rs,
                max_retries=1,
            )
        diag = excinfo.value.diagnostics
        assert len(diag["chunks"]) == 1
        bad = diag["chunks"][0]
        assert bad["chunk"] == [3, 4]
        assert bad["failures"] == 2
        assert bad["history"][-1] == "serial re-execution rejected by validation"
        assert len(bad["history"]) == 3  # two pool attempts + serial


class TestByteIdentityUnderRecovery:
    """Recovery must not leak into results or deterministic metrics."""

    def _deterministic(self, registry):
        return json.dumps(
            registry.to_dict(deterministic_only=True), sort_keys=True
        )

    @pytest.mark.parametrize(
        "plan",
        [
            FaultPlan().add("crash", item=4),
            FaultPlan().add("nan", item=0),
            FaultPlan().add("crash", item=6, times=5),  # degrades
        ],
        ids=["crash", "nan", "degraded"],
    )
    def test_metrics_and_results_match_serial(self, plan):
        serial_results, serial_registry = _run(fn=_instrumented_square, n_jobs=1)
        results, registry = _run(plan, fn=_instrumented_square, max_retries=1)
        assert results == serial_results
        assert self._deterministic(registry) == self._deterministic(
            serial_registry
        )

    def test_recovery_counters_stay_out_of_deterministic_view(self):
        _, registry = _run(FaultPlan().add("crash", item=3))
        deterministic = registry.to_dict(deterministic_only=True)
        assert not any(name.startswith("parallel.") for name in deterministic)
        full = registry.to_dict()
        assert "parallel.worker_crashes" in full


class TestUninstrumentedRecovery:
    def test_recovery_works_without_registry(self):
        with inject(FaultPlan().add("crash", item=1)):
            assert parallel_map(_square, ITEMS, **FAST) == SERIAL
