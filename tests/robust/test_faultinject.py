"""Tests for the deterministic fault-injection harness."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.robust import faultinject
from repro.robust.faultinject import (
    Fault,
    FaultInjectionError,
    FaultPlan,
    inject,
    maybe_fault,
    nan_contaminated,
)


class TestFaultValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultInjectionError):
            Fault(kind="explode", item=0)

    def test_negative_item_rejected(self):
        with pytest.raises(FaultInjectionError):
            Fault(kind="crash", item=-1)

    def test_zero_times_rejected(self):
        with pytest.raises(FaultInjectionError):
            Fault(kind="nan", item=0, times=0)

    def test_errors_are_repro_errors(self):
        assert issubclass(FaultInjectionError, ReproError)


class TestFaultPlanArming:
    def test_fires_on_early_attempts_only(self):
        plan = FaultPlan().add("crash", item=3, times=2)
        assert plan.fault_for(3, 0) is not None
        assert plan.fault_for(3, 1) is not None
        assert plan.fault_for(3, 2) is None  # disarmed by arithmetic

    def test_other_items_unaffected(self):
        plan = FaultPlan().add("nan", item=3)
        assert plan.fault_for(4, 0) is None

    def test_add_chains(self):
        plan = FaultPlan().add("crash", item=0).add("hang", item=1)
        assert len(plan.faults) == 2


class TestInjectContext:
    def test_installs_and_restores(self):
        assert faultinject.active_plan() is None
        plan = FaultPlan().add("nan", item=0)
        with inject(plan):
            assert faultinject.active_plan() is plan
        assert faultinject.active_plan() is None

    def test_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with inject(FaultPlan()):
                raise RuntimeError("boom")
        assert faultinject.active_plan() is None

    def test_nested_plans_restore_outer(self):
        outer, inner = FaultPlan(), FaultPlan()
        with inject(outer):
            with inject(inner):
                assert faultinject.active_plan() is inner
            assert faultinject.active_plan() is outer


class TestMaybeFault:
    def test_noop_without_plan(self):
        assert maybe_fault(0, 0, 42) == 42

    def test_noop_outside_workers(self):
        # Even with an armed plan, the parent process is immune: the
        # serial degradation path must always make progress.
        with inject(FaultPlan().add("nan", item=0)):
            assert maybe_fault(0, 0, 42) == 42

    def test_nan_fires_in_worker(self, monkeypatch):
        monkeypatch.setattr(faultinject, "_in_worker", True)
        with inject(FaultPlan().add("nan", item=0)):
            result = maybe_fault(0, 0, 42)
        assert result != result  # NaN

    def test_disarmed_attempt_passes_through_in_worker(self, monkeypatch):
        monkeypatch.setattr(faultinject, "_in_worker", True)
        with inject(FaultPlan().add("nan", item=0, times=1)):
            assert maybe_fault(0, 1, 42) == 42


class TestNanContaminated:
    def test_detects_float_nan(self):
        assert nan_contaminated([1.0, float("nan"), 2.0])

    def test_clean_results_pass(self):
        assert not nan_contaminated([1.0, 2, "x", None])
