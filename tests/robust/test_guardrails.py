"""Tests for the solver guardrails: fallback ladder, budgets, cycles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ctmdp.policy import evaluate_policy
from repro.ctmdp.policy_iteration import _CycleDetector, policy_iteration
from repro.ctmdp.value_iteration import relative_value_iteration
from repro.errors import SolverError
from repro.obs.metrics import MetricsRegistry
from repro.obs.runtime import instrument
from repro.robust import guardrails
from repro.robust.guardrails import (
    guardrails_disabled,
    solve_with_fallback,
    system_diagnostics,
)


class TestSolveWithFallback:
    def test_healthy_system_uses_direct_solve(self):
        a = np.array([[2.0, 1.0], [1.0, 3.0]])
        b = np.array([3.0, 5.0])
        registry = MetricsRegistry()
        with instrument(metrics=registry):
            x = solve_with_fallback(a, b)
        np.testing.assert_array_equal(x, np.linalg.solve(a, b))
        assert "solver.lstsq_fallbacks" not in registry

    def test_singular_consistent_system_recovered_by_lstsq(self):
        # Duplicated equation: singular but consistent; lstsq returns
        # the exact minimum-norm solution and the counter records it.
        a = np.array([[1.0, 1.0], [1.0, 1.0]])
        b = np.array([2.0, 2.0])
        registry = MetricsRegistry()
        with instrument(metrics=registry):
            x = solve_with_fallback(a, b)
        assert np.allclose(a @ x, b)
        assert registry.counter("solver.lstsq_fallbacks").value == 1

    def test_inconsistent_system_raises_with_diagnostics(self):
        a = np.array([[1.0, 1.0], [1.0, 1.0]])
        b = np.array([1.0, 2.0])
        with pytest.raises(SolverError) as excinfo:
            solve_with_fallback(a, b, context={"iteration": 7})
        diag = excinfo.value.diagnostics
        assert diag["what"] == "linear system"
        assert diag["iteration"] == 7
        assert diag["shape"] == [2, 2]
        assert diag["rank"] == 1
        # Numerically singular: the smallest singular value may be a
        # few ulps above zero, so accept any astronomical conditioning.
        assert diag["condition_number"] > 1e12
        assert diag["lstsq_residual"] > guardrails.RESIDUAL_RTOL

    def test_forced_fallback_on_healthy_system(self, monkeypatch):
        # Monkeypatching the direct solver to fail exercises the ladder
        # on a well-posed system: lstsq must agree with the true answer.
        def broken(a, b):
            raise np.linalg.LinAlgError("injected")

        monkeypatch.setattr(guardrails, "_dense_solve", broken)
        a = np.array([[2.0, 0.0], [0.0, 4.0]])
        b = np.array([2.0, 8.0])
        x = solve_with_fallback(a, b)
        assert np.allclose(x, [1.0, 2.0])

    def test_guardrails_disabled_skips_acceptance(self, monkeypatch):
        # Bench-only escape hatch: the raw direct solution is returned
        # without the residual check (and restored afterwards).
        calls = []
        real = guardrails._relative_residual

        def spying(a, x, b, a_max=None):
            calls.append(1)
            return real(a, x, b, a_max=a_max)

        monkeypatch.setattr(guardrails, "_relative_residual", spying)
        a = np.eye(2)
        b = np.ones(2)
        with guardrails_disabled():
            solve_with_fallback(a, b)
        assert not calls
        solve_with_fallback(a, b)
        assert calls


class TestSystemDiagnostics:
    def test_reports_rank_and_conditioning(self):
        diag = system_diagnostics(np.diag([4.0, 2.0, 0.0]))
        assert diag["rank"] == 2
        assert diag["sigma_max"] == 4.0
        assert diag["condition_number"] == float("inf")

    def test_well_conditioned_matrix(self):
        diag = system_diagnostics(np.eye(3))
        assert diag["rank"] == 3
        assert diag["condition_number"] == pytest.approx(1.0)


class TestPolicyIterationWithFallback:
    """Acceptance: a degraded evaluation solve no longer aborts PI."""

    @pytest.fixture()
    def reference(self, paper_mdp):
        return policy_iteration(paper_mdp)

    def test_pi_completes_via_lstsq_when_direct_solver_broken(
        self, paper_mdp, reference, monkeypatch
    ):
        def broken(a, b):
            raise np.linalg.LinAlgError("injected")

        monkeypatch.setattr(guardrails, "_dense_solve", broken)
        registry = MetricsRegistry()
        with instrument(metrics=registry):
            degraded = policy_iteration(paper_mdp)
        assert degraded.policy == reference.policy
        assert degraded.gain == pytest.approx(reference.gain, rel=1e-9)
        # One fallback per evaluation solve, and PI evaluates at least
        # the initial policy plus one improvement round.
        assert registry.counter("solver.lstsq_fallbacks").value >= 2

    def test_evaluate_policy_survives_broken_direct_solver(
        self, paper_mdp, reference, monkeypatch
    ):
        healthy = evaluate_policy(reference.policy)
        monkeypatch.setattr(
            guardrails, "_dense_solve",
            lambda a, b: np.full(b.shape, np.nan),  # silent garbage
        )
        degraded = evaluate_policy(reference.policy)
        assert degraded.gain == pytest.approx(healthy.gain, rel=1e-9)


class TestBudgets:
    @pytest.mark.parametrize("backend", ["compiled", "reference"])
    def test_policy_iteration_time_budget(self, paper_mdp, backend):
        with pytest.raises(SolverError) as excinfo:
            policy_iteration(paper_mdp, backend=backend, time_budget_s=0.0)
        diag = excinfo.value.diagnostics
        assert diag["reason"] == "time_budget_exceeded"
        assert diag["iteration"] == 1
        assert diag["elapsed_s"] > 0.0
        assert len(diag["gain_history"]) == 1

    @pytest.mark.parametrize("backend", ["compiled", "reference"])
    def test_value_iteration_time_budget(self, paper_mdp, backend):
        with pytest.raises(SolverError) as excinfo:
            relative_value_iteration(
                paper_mdp, backend=backend, time_budget_s=0.0
            )
        assert excinfo.value.diagnostics["reason"] == "time_budget_exceeded"

    def test_no_budget_means_no_limit(self, paper_mdp):
        assert policy_iteration(paper_mdp, time_budget_s=None).iterations >= 1


class TestNonConvergenceDiagnostics:
    def test_policy_iteration_exhaustion_payload(self, paper_mdp):
        with pytest.raises(SolverError) as excinfo:
            policy_iteration(paper_mdp, max_iterations=0)
        diag = excinfo.value.diagnostics
        assert diag["reason"] == "max_iterations_exhausted"
        assert diag["policy"]  # the offending policy is included

    def test_value_iteration_exhaustion_payload(self, paper_mdp):
        with pytest.raises(SolverError) as excinfo:
            relative_value_iteration(paper_mdp, max_iterations=2)
        diag = excinfo.value.diagnostics
        assert diag["reason"] == "max_iterations_exhausted"
        assert len(diag["span_history"]) == 2


class TestCycleDetection:
    def test_revisit_raises_with_cycle_payload(self):
        detector = _CycleDetector()
        detector.check("policy-a", 0, [1.0], None)
        detector.check("policy-b", 1, [1.0, 0.9], None)
        with pytest.raises(SolverError) as excinfo:
            detector.check("policy-a", 2, [1.0, 0.9, 1.0], [["s", "a"]])
        diag = excinfo.value.diagnostics
        assert diag["reason"] == "policy_cycle"
        assert diag["first_seen"] == 0
        assert diag["cycle_length"] == 2
        assert diag["policy"] == [["s", "a"]]

    def test_healthy_solve_never_trips_the_detector(self, paper_mdp):
        # Converging PI re-selects its final policy on the last round;
        # the detector must not flag that as a cycle.
        result = policy_iteration(paper_mdp)
        assert result.iterations >= 1
