"""The adversarial fuzzer and its end-to-end invariant.

The headline test pushes 200+ seeded adversarial models through
admission -> policy iteration (both backends, cross-checked) -> value
iteration -> the simulator, asserting that every single run ends in a
finite, cross-checked solution or a typed :mod:`repro.errors`
exception -- zero NaN/inf escapes, zero untyped tracebacks.
"""

from __future__ import annotations

import json

import pytest

from repro.robust import fuzz

#: The acceptance criterion: the invariant holds over >= 200 models.
CORPUS_SIZE = 200


class TestCorpusInvariant:
    @pytest.fixture(scope="class")
    def summary(self):
        return fuzz.run_corpus(
            count=CORPUS_SIZE, base_seed=0, time_budget_s=20.0
        )

    def test_no_violations(self, summary):
        assert summary["n_failures"] == 0, summary["failures"][:3]

    def test_corpus_actually_exercises_every_path(self, summary):
        # A fuzzer whose cases all get rejected (or all solve) proves
        # nothing; require real mass on each terminal outcome.
        outcomes = summary["outcomes"]
        assert outcomes.get("solved", 0) >= 50
        assert outcomes.get("repaired", 0) >= 10
        assert outcomes.get("rejected", 0) >= 30

    def test_every_kind_is_generated(self):
        assert CORPUS_SIZE >= 2 * len(fuzz.KINDS)


class TestDeterminism:
    def test_specs_are_reproducible(self):
        for kind in fuzz.KINDS:
            assert fuzz.generate_spec(kind, 7) == fuzz.generate_spec(kind, 7)

    def test_specs_round_trip_through_json(self):
        for kind in fuzz.KINDS:
            spec = fuzz.generate_spec(kind, 3)
            assert json.loads(json.dumps(spec)) == spec

    def test_case_results_are_reproducible(self):
        spec = fuzz.generate_spec("baseline", 0)
        first = fuzz.run_case(spec)
        second = fuzz.run_case(spec)
        assert first == second

    def test_seed_from_run_id_is_stable(self):
        assert fuzz.seed_from_run_id("12345") == fuzz.seed_from_run_id("12345")
        assert fuzz.seed_from_run_id("12345") != fuzz.seed_from_run_id("12346")


class TestAdversarialKinds:
    def test_nan_cost_is_rejected(self):
        result = fuzz.run_case(fuzz.generate_spec("nan_cost", 1))
        assert result["outcome"] == "rejected"
        assert result["violations"] == []

    def test_disconnected_chain_never_solves_silently(self):
        result = fuzz.run_case(fuzz.generate_spec("disconnected_chain", 1))
        assert result["outcome"].startswith(("rejected", "typed-error"))
        assert result["violations"] == []

    def test_huge_rates_get_repaired(self):
        result = fuzz.run_case(fuzz.generate_spec("huge_rates", 2))
        assert result["outcome"] in ("repaired", "rejected")
        assert result["violations"] == []

    def test_unconstrained_kind_builds_reducible_models(self):
        spec = fuzz.generate_spec("unconstrained", 6)
        model, is_sys = fuzz.build_from_spec(spec)
        assert is_sys
        # Membership-only validity: every mode is admissible everywhere.
        state = model.states[0]
        assert set(model.valid_actions(state)) == set(model.provider.modes)


class TestReproducers:
    def test_failing_cases_are_dumped(self, tmp_path, monkeypatch):
        # Force a violation so the reproducer path is exercised.
        def broken_run_case(spec, time_budget_s=10.0, n_requests=150):
            return {
                "kind": spec["kind"], "seed": spec["seed"],
                "outcome": "untyped-error",
                "violations": ["injected for the reproducer test"],
            }

        monkeypatch.setattr(fuzz, "run_case", broken_run_case)
        summary = fuzz.run_corpus(
            count=2, base_seed=9, reproducer_dir=str(tmp_path)
        )
        assert summary["n_failures"] == 2
        dumps = sorted(tmp_path.glob("fuzz-*.json"))
        assert len(dumps) == 2
        payload = json.loads(dumps[0].read_text())
        # The dump alone reconstructs the model.
        fuzz.build_from_spec(payload["spec"])

    def test_cli_exit_codes(self, capsys):
        assert fuzz.main(["--count", "3", "--base-seed", "0"]) == 0
        out = json.loads(capsys.readouterr().out)
        assert out["count"] == 3
