"""Policy artifacts: compile, checksum, admit, atomic store."""

from __future__ import annotations

import dataclasses
import json
import math

import pytest

from repro.dpm.optimizer import optimize_weighted
from repro.dpm.presets import paper_system
from repro.errors import (
    ArtifactIntegrityError,
    ArtifactRejectedError,
    ArtifactSchemaError,
    ServeRequestError,
)
from repro.serve.artifact import (
    ARTIFACT_SCHEMA,
    ArtifactStore,
    PolicyArtifact,
    SimulatedCrash,
    compile_artifact,
    load_artifact,
    model_fingerprint,
    save_artifact,
    validate_artifact,
)


@pytest.fixture(scope="module")
def model():
    return paper_system(capacity=3)


@pytest.fixture(scope="module")
def artifact(model):
    result = optimize_weighted(model, 0.5)
    return compile_artifact(model, result, version=1)


class TestCompile:
    def test_covers_every_model_state(self, model, artifact):
        assert len(artifact.states) == model.n_states
        assert artifact.rate == model.requestor.rate
        assert artifact.fingerprint == model_fingerprint(model)

    def test_rejects_nan_metrics(self, model):
        result = optimize_weighted(model, 0.5)
        poisoned = dataclasses.replace(
            result,
            metrics=dataclasses.replace(
                result.metrics, average_power=math.nan
            ),
        )
        with pytest.raises(ArtifactRejectedError, match="non-finite"):
            compile_artifact(model, poisoned, version=1)

    def test_rejects_randomized_policy(self, model):
        result = optimize_weighted(model, 0.5)

        class FakeRandomized:
            pass

        fake = dataclasses.replace(result, policy=FakeRandomized())
        with pytest.raises(ArtifactRejectedError, match="deterministic"):
            compile_artifact(model, fake, version=1)

    def test_version_must_be_positive(self, model):
        result = optimize_weighted(model, 0.5)
        with pytest.raises(ArtifactSchemaError, match=">= 1"):
            compile_artifact(model, result, version=0)


class TestDocumentRoundtrip:
    def test_roundtrip_preserves_checksum(self, artifact):
        doc = artifact.to_document()
        clone = PolicyArtifact.from_document(doc)
        assert clone.checksum == artifact.checksum
        assert clone.states == artifact.states
        assert clone.actions == artifact.actions

    def test_schema_tag_checked(self, artifact):
        doc = artifact.to_document()
        doc["schema"] = "repro-policy/v999"
        with pytest.raises(ArtifactSchemaError, match="unknown artifact schema"):
            PolicyArtifact.from_document(doc)

    def test_missing_field_is_schema_error(self, artifact):
        doc = artifact.to_document()
        del doc["model"]
        with pytest.raises(ArtifactSchemaError, match="malformed"):
            PolicyArtifact.from_document(doc)

    def test_tampered_action_fails_checksum(self, artifact):
        doc = artifact.to_document()
        doc["actions"] = list(doc["actions"])
        doc["actions"][0] = "sleeping" if doc["actions"][0] != "sleeping" else "active"
        with pytest.raises(ArtifactIntegrityError, match="checksum"):
            PolicyArtifact.from_document(doc)

    def test_tampered_metric_fails_checksum(self, artifact):
        doc = artifact.to_document()
        doc["metrics"] = dict(doc["metrics"])
        doc["metrics"]["average_power"] *= 1.0000001
        with pytest.raises(ArtifactIntegrityError, match="checksum"):
            PolicyArtifact.from_document(doc)

    def test_schema_constant(self, artifact):
        assert artifact.to_document()["schema"] == ARTIFACT_SCHEMA == "repro-policy/v1"


class TestLookup:
    def test_stable_lookup_clamps_at_capacity(self, model, artifact):
        at_cap = artifact.action_for("active", False, model.capacity)
        beyond = artifact.action_for("active", False, model.capacity + 50)
        assert at_cap == beyond

    def test_transfer_lookup(self, artifact):
        action = artifact.action_for("active", True, 0)
        assert isinstance(action, str)

    def test_unknown_mode_is_typed(self, artifact):
        with pytest.raises(ServeRequestError, match="no joint state"):
            artifact.action_for("warp", False, 0)

    def test_transfer_in_inactive_mode_is_typed(self, artifact):
        with pytest.raises(ServeRequestError, match="no joint state"):
            artifact.action_for("sleeping", True, 0)

    def test_negative_count_is_typed(self, artifact):
        with pytest.raises(ServeRequestError, match=">= 0"):
            artifact.action_for("active", False, -1)

    def test_agrees_with_policy_table(self, model, artifact):
        assignment = artifact.assignment()
        for state, action in assignment.items():
            if state.queue.kind == "stable":
                assert (
                    artifact.action_for(state.mode, False, state.queue.index)
                    == action
                )


class TestValidate:
    def test_admits_own_model(self, model, artifact):
        rated = validate_artifact(artifact, model)
        assert rated.requestor.rate == artifact.rate

    def test_fingerprint_mismatch_rejected(self, artifact):
        other = paper_system(capacity=4)
        with pytest.raises(ArtifactRejectedError, match="different model"):
            validate_artifact(artifact, other)

    def test_invalid_policy_rejected(self, model, artifact):
        bad = PolicyArtifact(
            version=1,
            rate=artifact.rate,
            weight=artifact.weight,
            solver=artifact.solver,
            backend=artifact.backend,
            capacity=artifact.capacity,
            include_transfer_states=artifact.include_transfer_states,
            fingerprint=artifact.fingerprint,
            states=artifact.states,
            actions=["no-such-mode"] * len(artifact.actions),
            metrics=artifact.metrics,
        )
        with pytest.raises(ArtifactRejectedError, match="does not validate"):
            validate_artifact(bad, model)

    def test_nonfinite_stored_metrics_rejected(self, model, artifact):
        bad = PolicyArtifact(
            version=1,
            rate=artifact.rate,
            weight=artifact.weight,
            solver=artifact.solver,
            backend=artifact.backend,
            capacity=artifact.capacity,
            include_transfer_states=artifact.include_transfer_states,
            fingerprint=artifact.fingerprint,
            states=artifact.states,
            actions=artifact.actions,
            metrics={**artifact.metrics, "average_power": math.inf},
        )
        with pytest.raises(ArtifactRejectedError, match="non-finite"):
            validate_artifact(bad, model)


class TestStore:
    def test_save_load_roundtrip(self, tmp_path, artifact):
        store = ArtifactStore(tmp_path)
        assert store.load() is None
        store.save(artifact)
        loaded = store.load()
        assert loaded.checksum == artifact.checksum

    def test_corrupt_file_is_typed(self, tmp_path, artifact):
        store = ArtifactStore(tmp_path)
        store.save(artifact)
        data = store.path.read_bytes()
        store.path.write_bytes(data[: len(data) // 2])
        with pytest.raises((ArtifactIntegrityError, ArtifactSchemaError)):
            store.load()

    def test_garbage_file_is_typed(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.path.parent.mkdir(parents=True, exist_ok=True)
        store.path.write_bytes(b"\x00\xff not json")
        with pytest.raises(ArtifactIntegrityError, match="cannot read"):
            store.load()

    def test_valid_json_wrong_shape_is_schema_error(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.path.parent.mkdir(parents=True, exist_ok=True)
        store.path.write_text(json.dumps({"schema": "repro-policy/v1"}))
        with pytest.raises(ArtifactSchemaError):
            store.load()

    @pytest.mark.parametrize(
        "point", ["after-write", "after-fsync", "after-replace"]
    )
    def test_crash_at_any_point_leaves_loadable_state(
        self, tmp_path, model, artifact, point
    ):
        """The atomicity acceptance criterion: a kill at any injected
        point leaves either no artifact (crash before replace) or a
        complete new one -- never a torn file."""
        store = ArtifactStore(tmp_path)
        result = optimize_weighted(model, 2.0)
        second = compile_artifact(model, result, version=2)
        store.save(artifact)  # last-good
        store.crash_point = point
        with pytest.raises(SimulatedCrash):
            store.save(second)
        store.crash_point = None
        survivor = ArtifactStore(tmp_path).load()  # a fresh process
        assert survivor is not None
        assert survivor.checksum in (artifact.checksum, second.checksum)
        if point == "after-replace":
            assert survivor.checksum == second.checksum
        else:
            assert survivor.checksum == artifact.checksum
        validate_artifact(survivor, model)

    def test_crash_leftovers_swept(self, tmp_path, artifact):
        store = ArtifactStore(tmp_path)
        store.crash_point = "after-write"
        with pytest.raises(SimulatedCrash):
            store.save(artifact)
        assert list(tmp_path.glob("*.tmp"))
        store.crash_point = None
        store.save(artifact)
        assert not list(tmp_path.glob("*.tmp"))

    def test_path_level_helpers(self, tmp_path, artifact):
        path = tmp_path / "deep" / "policy-v1.json"
        save_artifact(artifact, path)
        assert load_artifact(path).checksum == artifact.checksum
        with pytest.raises(ArtifactIntegrityError, match="no artifact"):
            load_artifact(tmp_path / "missing.json")


class TestFingerprint:
    def test_rate_excluded_from_fingerprint(self):
        a = paper_system(arrival_rate=0.1, capacity=3)
        b = paper_system(arrival_rate=0.9, capacity=3)
        assert model_fingerprint(a) == model_fingerprint(b)

    def test_capacity_changes_fingerprint(self):
        a = paper_system(capacity=3)
        b = paper_system(capacity=4)
        assert model_fingerprint(a) != model_fingerprint(b)
