"""The hot-swap is provably gated on certification.

Acceptance criterion of the certification engine: a re-solve whose
solution fails (or crashes) independent certification must leave the
last-good artifact serving, the store untouched, and the breaker
informed -- and the bootstrap path must refuse a stored artifact that
cannot show (or earn) a valid certificate.
"""

from __future__ import annotations

import json

import pytest

from repro.certify import CertificationReport, certify_artifact
from repro.dpm.presets import paper_system
from repro.errors import CertificationError
from repro.obs.metrics import MetricsRegistry
from repro.obs.runtime import instrument
from repro.serve.artifact import ArtifactStore
from repro.serve.server import ServingRuntime
from repro.serve.supervisor import CircuitBreaker, RetryPolicy, Supervisor


@pytest.fixture(scope="module")
def model():
    return paper_system(capacity=3)


class FailedCertificate:
    """Stub report: certification came back with findings."""

    certified = False
    finding_codes = ["bellman-gap-exceeded", "lp-duality-gap"]


def make_supervisor(model, tmp_path, **kwargs):
    kwargs.setdefault(
        "retry", RetryPolicy(attempts=2, base_delay=0.01, sleep=lambda s: None)
    )
    kwargs.setdefault("breaker", CircuitBreaker(failure_threshold=3))
    return Supervisor(model, 0.5, ArtifactStore(tmp_path), **kwargs)


def make_runtime(model, store, **kwargs):
    kwargs.setdefault(
        "retry", RetryPolicy(attempts=2, base_delay=0.01, sleep=lambda s: None)
    )
    kwargs.setdefault("breaker", CircuitBreaker(failure_threshold=3))
    return ServingRuntime(model, 0.5, store, **kwargs)


class TestResolveGate:
    def test_failed_certificate_leaves_last_good_serving(self, model, tmp_path):
        supervisor = make_supervisor(model, tmp_path)
        first = supervisor.resolve(model.requestor.rate)
        assert first.ok
        good = supervisor.store.load()

        # From now on every solution fails certification.
        supervisor._certifier = lambda artifact: FailedCertificate()
        installed = []
        report = supervisor.resolve(
            model.requestor.rate * 2.0, install=installed.append
        )
        assert not report.ok
        assert report.failure == "uncertified"
        assert report.details["certification"] == FailedCertificate.finding_codes
        assert "bellman-gap-exceeded" in report.error
        # Nothing reached the server or the store; last-good serves on.
        assert installed == []
        assert supervisor.store.load().checksum == good.checksum
        assert supervisor.last_artifact.checksum == good.checksum
        assert supervisor.breaker.consecutive_failures == 1

    def test_certifier_crash_is_uncertified_not_raised(self, model, tmp_path):
        supervisor = make_supervisor(model, tmp_path)

        def explode(artifact):
            raise CertificationError("oracle melted")

        supervisor._certifier = explode
        report = supervisor.resolve(model.requestor.rate)
        assert report.failure == "uncertified"
        assert "CertificationError" in report.error
        assert supervisor.store.load() is None

    def test_uncertified_counter_flows(self, model, tmp_path):
        with instrument(metrics=MetricsRegistry()) as ins:
            supervisor = make_supervisor(model, tmp_path)
            supervisor._certifier = lambda artifact: FailedCertificate()
            supervisor.resolve(model.requestor.rate)
            doc = ins.metrics.to_dict()
        assert doc["serve.resolve.uncertified"]["value"] == 1
        assert doc["serve.resolve.failures"]["value"] == 1

    def test_certificate_sidecar_saved_and_bound(self, model, tmp_path):
        supervisor = make_supervisor(model, tmp_path)
        assert supervisor.resolve(model.requestor.rate).ok
        document = supervisor.store.load_certificate()
        assert document is not None
        report = CertificationReport.from_document(document)
        assert report.certified
        assert report.artifact_checksum == supervisor.store.load().checksum

    def test_certify_false_bypasses_the_gate(self, model, tmp_path):
        supervisor = make_supervisor(
            model,
            tmp_path,
            certify=False,
            certifier=lambda artifact: FailedCertificate(),
        )
        report = supervisor.resolve(model.requestor.rate)
        assert report.ok
        assert supervisor.store.load_certificate() is None


class TestBootstrapGate:
    def seed_store(self, model, tmp_path, rate=None):
        """A store holding a genuinely certified artifact."""
        supervisor = make_supervisor(model, tmp_path)
        assert supervisor.resolve(rate or model.requestor.rate).ok
        return supervisor.store

    def test_valid_sidecar_accepted_without_recertifying(self, model, tmp_path):
        store = self.seed_store(model, tmp_path)
        calls = []

        def spy(artifact):
            calls.append(artifact)
            return certify_artifact(artifact, model)

        runtime = make_runtime(model, store, certifier=spy)
        assert runtime.bootstrap(initial_solve=False) == "fresh"
        assert runtime.bootstrap_source == "stored"
        assert calls == []  # the persisted certificate carried the proof

    def test_missing_sidecar_triggers_recertification(self, model, tmp_path):
        store = self.seed_store(model, tmp_path)
        store.cert_path.unlink()
        calls = []

        def spy(artifact):
            calls.append(artifact)
            return certify_artifact(artifact, model)

        runtime = make_runtime(model, store, certifier=spy)
        assert runtime.bootstrap(initial_solve=False) == "fresh"
        assert len(calls) == 1
        assert store.load_certificate() is not None  # re-persisted

    def test_corrupt_sidecar_falls_back_to_recertification(self, model, tmp_path):
        store = self.seed_store(model, tmp_path)
        store.cert_path.write_text("{not json")
        runtime = make_runtime(model, store)
        assert runtime.bootstrap(initial_solve=False) == "fresh"
        document = store.load_certificate()
        assert json.loads(store.cert_path.read_text()) == document

    def test_foreign_certificate_not_trusted(self, model, tmp_path):
        # A sidecar bound to a *different* artifact checksum must not
        # vouch for the stored one: bootstrap re-certifies.
        store = self.seed_store(model, tmp_path)
        document = store.load_certificate()
        report = CertificationReport.from_document(document)
        stored = store.load()
        forged = CertificationReport(
            mode=report.mode,
            rate=report.rate,
            weight=report.weight,
            n_states=report.n_states,
            tolerance=report.tolerance,
            claimed=report.claimed,
            checks=report.checks,
            policy_checksum=report.policy_checksum,
            fingerprint=report.fingerprint,
            artifact_checksum="0" * 64,
        )
        store.save_certificate(forged.to_document())
        calls = []

        def spy(artifact):
            calls.append(artifact)
            return certify_artifact(artifact, model)

        runtime = make_runtime(model, store, certifier=spy)
        assert runtime.bootstrap(initial_solve=False) == "fresh"
        assert len(calls) == 1
        fresh = CertificationReport.from_document(store.load_certificate())
        assert fresh.artifact_checksum == stored.checksum

    def test_uncertifiable_stored_artifact_resolves_fresh(self, model, tmp_path):
        # Seed at a drifted rate so the bootstrap's fresh solve (at the
        # base rate) yields a *different* artifact than the stored one.
        store = self.seed_store(model, tmp_path, rate=model.requestor.rate * 2)
        stored = store.load()
        store.cert_path.unlink()

        def certifier(artifact):
            if artifact.checksum == stored.checksum:
                return FailedCertificate()
            return certify_artifact(artifact, model)

        runtime = make_runtime(model, store, certifier=certifier)
        assert runtime.bootstrap(initial_solve=True) == "fresh"
        assert runtime.bootstrap_source == "solved"
        assert "failed certification" in runtime.bootstrap_error
        assert store.load().checksum != stored.checksum

    def test_certify_false_skips_bootstrap_check(self, model, tmp_path):
        store = self.seed_store(model, tmp_path)
        store.cert_path.unlink()
        calls = []

        def spy(artifact):
            calls.append(artifact)
            return certify_artifact(artifact, model)

        runtime = make_runtime(model, store, certify=False, certifier=spy)
        assert runtime.bootstrap(initial_solve=False) == "fresh"
        assert calls == []
