"""Supervised re-solves: retry, watchdog, breaker, hot-swap."""

from __future__ import annotations

import time

import pytest

from repro.dpm.adaptive import DriftDetector, solve_rated
from repro.dpm.presets import paper_system
from repro.errors import ArtifactError, SolverError
from repro.obs.metrics import MetricsRegistry
from repro.obs.runtime import instrument
from repro.serve.artifact import ArtifactStore, compile_artifact
from repro.serve.supervisor import (
    BREAKER_STATES,
    CircuitBreaker,
    RetryPolicy,
    Supervisor,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


@pytest.fixture(scope="module")
def model():
    return paper_system(capacity=3)


def make_supervisor(model, tmp_path, **kwargs):
    kwargs.setdefault(
        "retry", RetryPolicy(attempts=3, base_delay=0.01, sleep=lambda s: None)
    )
    kwargs.setdefault("breaker", CircuitBreaker(failure_threshold=2))
    return Supervisor(model, 0.5, ArtifactStore(tmp_path), **kwargs)


class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout=10.0, clock=clock)
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.n_opened == 1

    def test_half_open_admits_one_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=5.0, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(4.9)
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.state == "half-open"
        assert breaker.allow()

    def test_half_open_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout=1.0, clock=clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(1.5)
        assert breaker.state == "half-open"
        breaker.record_failure()  # the probe failed
        assert breaker.state == "open"
        assert breaker.n_opened == 2

    def test_half_open_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(2.0)
        assert breaker.state == "half-open"
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()
        assert breaker.n_closed == 1
        assert breaker.consecutive_failures == 0

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_state_gauge_published(self):
        clock = FakeClock()
        with instrument(metrics=MetricsRegistry()) as ins:
            breaker = CircuitBreaker(
                failure_threshold=1, reset_timeout=1.0, clock=clock
            )
            breaker.record_failure()
            doc = ins.metrics.to_dict()
            assert doc["serve.breaker.state"]["value"] == BREAKER_STATES["open"]
            assert doc["serve.breaker.opened"]["value"] == 1

    def test_invalid_parameters_typed(self):
        with pytest.raises(ArtifactError, match=">= 1"):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ArtifactError, match=">= 0"):
            CircuitBreaker(reset_timeout=-1.0)


class TestRetryPolicy:
    def test_exponential_backoff_schedule(self):
        retry = RetryPolicy(attempts=4, base_delay=0.1, multiplier=2.0)
        assert retry.delay_before(1) == 0.0
        assert retry.delay_before(2) == pytest.approx(0.1)
        assert retry.delay_before(3) == pytest.approx(0.2)
        assert retry.delay_before(4) == pytest.approx(0.4)

    def test_invalid_parameters_typed(self):
        with pytest.raises(ArtifactError, match=">= 1"):
            RetryPolicy(attempts=0)
        with pytest.raises(ArtifactError, match="invalid backoff"):
            RetryPolicy(base_delay=-0.1)
        with pytest.raises(ArtifactError, match="invalid backoff"):
            RetryPolicy(multiplier=0.5)


class TestSupervisorResolve:
    def test_success_installs_and_persists(self, model, tmp_path):
        sup = make_supervisor(model, tmp_path)
        installed = []
        report = sup.resolve(model.requestor.rate, install=installed.append)
        assert report.ok
        assert report.attempts == 1
        assert report.artifact_version == 1
        assert installed and installed[0] is sup.last_artifact
        assert sup.store.load().checksum == sup.last_artifact.checksum

    def test_versions_increment_across_resolves(self, model, tmp_path):
        sup = make_supervisor(model, tmp_path)
        assert sup.resolve(1 / 6).artifact_version == 1
        assert sup.resolve(0.25).artifact_version == 2
        assert sup.last_artifact.version == 2

    def test_detector_rebased_on_success(self, model, tmp_path):
        sup = make_supervisor(model, tmp_path)
        detector = DriftDetector(reference_rate=1 / 6, threshold=0.25)
        sup.resolve(0.3, detector=detector)
        assert detector.reference_rate == pytest.approx(0.3)

    def test_crash_retries_then_succeeds(self, model, tmp_path):
        calls = []

        def flaky(rate, seed=None):
            calls.append(rate)
            if len(calls) < 3:
                raise SolverError("chaos", diagnostics={"reason": "chaos"})
            return solve_rated(model, rate, 0.5)

        slept = []
        sup = make_supervisor(
            model,
            tmp_path,
            solve=flaky,
            retry=RetryPolicy(attempts=3, base_delay=0.01, sleep=slept.append),
        )
        report = sup.resolve(1 / 6)
        assert report.ok
        assert report.attempts == 3
        assert slept == pytest.approx([0.01, 0.02])
        assert sup.breaker.state == "closed"

    def test_exhausted_retries_fail_closed(self, model, tmp_path):
        def always_crash(rate, seed=None):
            raise SolverError("chaos", diagnostics={"reason": "chaos"})

        with instrument(metrics=MetricsRegistry()) as ins:
            sup = make_supervisor(model, tmp_path, solve=always_crash)
            report = sup.resolve(1 / 6)
        assert not report.ok
        assert report.failure == "crash"
        assert "SolverError" in report.error
        assert report.attempts == 3
        assert sup.last_artifact is None
        assert sup.store.load() is None
        doc = ins.metrics.to_dict()
        assert doc["serve.resolve.attempts"]["value"] == 3
        assert doc["serve.resolve.retries"]["value"] == 2
        assert doc["serve.resolve.failures"]["value"] == 1

    def test_raw_numerical_crash_is_contained(self, model, tmp_path):
        def numpy_blowup(rate, seed=None):
            raise FloatingPointError("overflow in solve")

        sup = make_supervisor(model, tmp_path, solve=numpy_blowup)
        report = sup.resolve(1 / 6)
        assert report.failure == "crash"
        assert "FloatingPointError" in report.error

    def test_hung_solve_abandoned_at_timeout(self, model, tmp_path):
        def hang(rate, seed=None):
            time.sleep(0.5)
            return solve_rated(model, rate, 0.5)

        with instrument(metrics=MetricsRegistry()) as ins:
            sup = make_supervisor(
                model,
                tmp_path,
                solve=hang,
                retry=RetryPolicy(attempts=2, base_delay=0.0, sleep=lambda s: None),
                attempt_timeout=0.05,
            )
            report = sup.resolve(1 / 6)
        assert not report.ok
        assert report.failure == "timeout"
        assert ins.metrics.to_dict()["serve.resolve.timeouts"]["value"] == 2

    def test_rejected_result_not_retried(self, model, tmp_path):
        calls = []

        def wrong_model_result(rate, seed=None):
            calls.append(rate)
            other = paper_system(capacity=4)
            return solve_rated(other, rate, 0.5)

        sup = make_supervisor(model, tmp_path, solve=wrong_model_result)
        report = sup.resolve(1 / 6)
        assert not report.ok
        assert report.failure == "rejected"
        assert len(calls) == 1  # deterministic failure: no second attempt
        assert sup.store.load() is None

    def test_breaker_open_refuses_without_attempting(self, model, tmp_path):
        calls = []

        def crash(rate, seed=None):
            calls.append(rate)
            raise SolverError("chaos", diagnostics={"reason": "chaos"})

        with instrument(metrics=MetricsRegistry()) as ins:
            sup = make_supervisor(
                model,
                tmp_path,
                solve=crash,
                breaker=CircuitBreaker(failure_threshold=1, reset_timeout=60.0),
            )
            sup.resolve(1 / 6)  # opens the breaker
            attempts_before = len(calls)
            refused = sup.resolve(1 / 6)
        assert refused.failure == "breaker-open"
        assert refused.attempts == 0
        assert len(calls) == attempts_before
        assert ins.metrics.to_dict()["serve.resolve.refused"]["value"] == 1

    def test_recovery_after_breaker_reset(self, model, tmp_path):
        clock = FakeClock()
        fail = {"on": True}

        def sometimes(rate, seed=None):
            if fail["on"]:
                raise SolverError("chaos", diagnostics={"reason": "chaos"})
            return solve_rated(model, rate, 0.5)

        sup = make_supervisor(
            model,
            tmp_path,
            solve=sometimes,
            retry=RetryPolicy(attempts=1, sleep=lambda s: None),
            breaker=CircuitBreaker(
                failure_threshold=1, reset_timeout=5.0, clock=clock
            ),
        )
        assert sup.resolve(1 / 6).failure == "crash"
        assert sup.resolve(1 / 6).failure == "breaker-open"
        clock.advance(6.0)
        fail["on"] = False
        report = sup.resolve(1 / 6)  # the half-open probe
        assert report.ok
        assert sup.breaker.state == "closed"

    def test_seed_from_last_artifact(self, model, tmp_path):
        seeds = []

        def recording(rate, seed=None):
            seeds.append(seed)
            return solve_rated(model, rate, 0.5, initial_policy=seed)

        sup = make_supervisor(model, tmp_path, solve=recording)
        sup.resolve(1 / 6)
        sup.resolve(0.2)
        assert seeds[0] is None
        assert seeds[1] is not None  # warm-started from artifact v1

    def test_failure_keeps_last_good_artifact(self, model, tmp_path):
        sup = make_supervisor(model, tmp_path)
        sup.resolve(1 / 6)
        good = sup.last_artifact

        def crash(rate, seed=None):
            raise SolverError("chaos", diagnostics={"reason": "chaos"})

        sup._solve = crash
        report = sup.resolve(0.4)
        assert not report.ok
        assert sup.last_artifact is good
        assert sup.store.load().checksum == good.checksum

    def test_history_records_every_request(self, model, tmp_path):
        sup = make_supervisor(model, tmp_path)
        sup.resolve(1 / 6)
        sup.resolve(0.2)
        assert len(sup.history) == 2
        assert all(r.ok for r in sup.history)
