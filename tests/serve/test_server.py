"""Degradation ladder, runtime lifecycle, and the JSON-lines protocol."""

from __future__ import annotations

import json

import pytest

from repro.dpm.adaptive import solve_rated
from repro.dpm.model_policies import n_policy_assignment
from repro.dpm.optimizer import optimize_weighted
from repro.dpm.presets import paper_system
from repro.errors import ServeRequestError, SolverError
from repro.obs.metrics import MetricsRegistry
from repro.obs.runtime import instrument
from repro.serve.artifact import ArtifactStore, compile_artifact
from repro.serve.server import SOURCE_LEVELS, PolicyServer, ServingRuntime
from repro.serve.supervisor import CircuitBreaker, RetryPolicy


@pytest.fixture(scope="module")
def model():
    return paper_system(capacity=3)


@pytest.fixture(scope="module")
def artifact(model):
    return compile_artifact(model, optimize_weighted(model, 0.5), version=1)


def make_runtime(model, tmp_path, **kwargs):
    kwargs.setdefault(
        "retry", RetryPolicy(attempts=2, base_delay=0.0, sleep=lambda s: None)
    )
    kwargs.setdefault("breaker", CircuitBreaker(failure_threshold=2))
    return ServingRuntime(model, 0.5, ArtifactStore(tmp_path), **kwargs)


class TestPolicyServerLadder:
    def test_starts_on_heuristic_rung(self, model):
        server = PolicyServer(model)
        assert server.source == "heuristic"
        decision = server.decide("active", False, 0)
        assert decision.source == "heuristic"
        assert decision.version is None
        assert decision.artifact is None

    def test_heuristic_matches_n_policy(self, model):
        server = PolicyServer(model, heuristic_n=1)
        table = n_policy_assignment(model, 1)
        for state, action in table.items():
            got = server.decide(
                state.mode, state.queue.kind == "transfer",
                state.queue.index - 1 if state.queue.kind == "transfer" else state.queue.index,
            )
            assert got.action == action

    def test_install_moves_to_fresh(self, model, artifact):
        server = PolicyServer(model)
        server.install(artifact)
        assert server.source == "fresh"
        decision = server.decide("active", False, 1)
        assert decision.source == "fresh"
        assert decision.version == 1
        assert decision.artifact is artifact
        assert decision.action == artifact.action_for("active", False, 1)

    def test_mark_stale_keeps_serving_from_table(self, model, artifact):
        server = PolicyServer(model)
        server.install(artifact)
        server.mark_stale()
        assert server.source == "stale"
        decision = server.decide("active", False, 1)
        assert decision.source == "stale"
        assert decision.action == artifact.action_for("active", False, 1)
        server.mark_fresh()
        assert server.source == "fresh"

    def test_mark_stale_without_artifact_is_noop(self, model):
        server = PolicyServer(model)
        server.mark_stale()
        assert server.source == "heuristic"

    def test_typed_rejection_on_bad_request(self, model, artifact):
        server = PolicyServer(model)
        with pytest.raises(ServeRequestError):
            server.decide("warp", False, 0)
        server.install(artifact)
        with pytest.raises(ServeRequestError):
            server.decide("warp", False, 0)
        with pytest.raises(ServeRequestError, match=">= 0"):
            server.decide("active", False, -2)

    def test_decision_counters_and_gauges(self, model, artifact):
        with instrument(metrics=MetricsRegistry()) as ins:
            server = PolicyServer(model)
            server.decide("active", False, 0)
            server.install(artifact)
            server.decide("active", False, 0)
            server.mark_stale()
            server.decide("active", False, 0)
            doc = ins.metrics.to_dict()
        assert doc["serve.decisions"]["value"] == 3
        assert doc["serve.decisions.heuristic"]["value"] == 1
        assert doc["serve.decisions.fresh"]["value"] == 1
        assert doc["serve.decisions.stale"]["value"] == 1
        assert doc["serve.staleness"]["value"] == SOURCE_LEVELS["stale"]
        assert doc["serve.artifact.version"]["value"] == 1.0
        assert "serve.lookup_latency_s" in doc
        assert server.n_decisions == 3
        assert server.n_swaps == 1


class TestRuntimeBootstrap:
    def test_bootstrap_from_store(self, model, tmp_path, artifact):
        ArtifactStore(tmp_path).save(artifact)
        runtime = make_runtime(model, tmp_path)
        assert runtime.bootstrap() == "fresh"
        assert runtime.bootstrap_source == "stored"
        assert runtime.supervisor.last_artifact.checksum == artifact.checksum
        assert runtime.detector.reference_rate == pytest.approx(artifact.rate)

    def test_bootstrap_solves_when_store_empty(self, model, tmp_path):
        runtime = make_runtime(model, tmp_path)
        assert runtime.bootstrap() == "fresh"
        assert runtime.bootstrap_source == "solved"
        assert runtime.store.load() is not None

    def test_bootstrap_skips_solve_when_disabled(self, model, tmp_path):
        runtime = make_runtime(model, tmp_path)
        assert runtime.bootstrap(initial_solve=False) == "heuristic"
        assert runtime.bootstrap_source == "heuristic"
        assert runtime.health() == "degraded"

    def test_bootstrap_rejects_corrupt_store_then_solves(
        self, model, tmp_path, artifact
    ):
        store = ArtifactStore(tmp_path)
        store.save(artifact)
        data = store.path.read_bytes()
        store.path.write_bytes(data[: len(data) // 2])
        runtime = make_runtime(model, tmp_path)
        assert runtime.bootstrap() == "fresh"
        assert runtime.bootstrap_source == "solved"
        assert runtime.bootstrap_error is not None

    def test_bootstrap_rejects_foreign_artifact(self, model, tmp_path):
        other = paper_system(capacity=4)
        foreign = compile_artifact(other, optimize_weighted(other, 0.5), version=1)
        ArtifactStore(tmp_path).save(foreign)
        runtime = make_runtime(model, tmp_path)
        runtime.bootstrap(initial_solve=False)
        assert runtime.bootstrap_source == "heuristic"
        assert "ArtifactRejectedError" in runtime.bootstrap_error

    def test_bootstrap_heuristic_when_solver_down(self, model, tmp_path):
        def crash(rate, seed=None):
            raise SolverError("chaos", diagnostics={"reason": "chaos"})

        runtime = make_runtime(model, tmp_path, solve=crash)
        assert runtime.bootstrap() == "heuristic"
        assert runtime.bootstrap_source == "heuristic"
        assert runtime.health() == "degraded"
        # Serving still works on the heuristic rung.
        assert runtime.decide("active", False, 0).source == "heuristic"


class TestRuntimeAdaptation:
    def _feed_arrivals(self, runtime, rate, n=60, start=0.0):
        """Deterministic arrivals at an exact inter-arrival spacing."""
        t = start
        for _ in range(n):
            t += 1.0 / rate
            runtime.observe_arrival(t)
        return t

    def test_no_adapt_before_warmup(self, model, tmp_path):
        runtime = make_runtime(model, tmp_path)
        runtime.bootstrap()
        runtime.observe_arrival(1.0)
        assert runtime.maybe_adapt() is None

    def test_no_adapt_without_drift(self, model, tmp_path):
        runtime = make_runtime(model, tmp_path)
        runtime.bootstrap()
        self._feed_arrivals(runtime, model.requestor.rate)
        assert runtime.maybe_adapt() is None
        assert runtime.server.source == "fresh"

    def test_confirmed_drift_resolves_and_swaps(self, model, tmp_path):
        runtime = make_runtime(model, tmp_path, drift_consecutive=2)
        runtime.bootstrap()
        v1 = runtime.server.artifact.version
        drifted = model.requestor.rate * 3.0
        t = self._feed_arrivals(runtime, drifted)
        report = None
        for _ in range(4):
            report = runtime.maybe_adapt()
            if report is not None:
                break
            t = self._feed_arrivals(runtime, drifted, n=10, start=t)
        assert report is not None and report.ok
        assert runtime.server.artifact.version == v1 + 1
        assert runtime.server.source == "fresh"
        assert runtime.server.artifact.rate == pytest.approx(drifted, rel=0.2)

    def test_failed_resolve_leaves_stale_flag(self, model, tmp_path):
        calls = {"n": 0}

        def crash_after_first(rate, seed=None):
            calls["n"] += 1
            if calls["n"] == 1:
                return solve_rated(model, rate, 0.5)
            raise SolverError("chaos", diagnostics={"reason": "chaos"})

        runtime = make_runtime(
            model, tmp_path, solve=crash_after_first, drift_consecutive=2
        )
        runtime.bootstrap()
        drifted = model.requestor.rate * 3.0
        t = self._feed_arrivals(runtime, drifted)
        report = None
        for _ in range(4):
            report = runtime.maybe_adapt()
            if report is not None:
                break
            t = self._feed_arrivals(runtime, drifted, n=10, start=t)
        assert report is not None and not report.ok
        assert runtime.server.source == "stale"
        assert runtime.health() == "stale"
        # Answers still come from the admitted (v1) table.
        decision = runtime.decide("active", False, 1)
        assert decision.source == "stale"
        assert decision.version == 1

    def test_background_resolve_swaps_eventually(self, model, tmp_path):
        runtime = make_runtime(model, tmp_path, drift_consecutive=2)
        runtime.bootstrap()
        drifted = model.requestor.rate * 3.0
        t = self._feed_arrivals(runtime, drifted)
        for _ in range(6):
            runtime.maybe_adapt(background=True)
            runtime.join_background(timeout=10.0)
            if runtime.server.artifact.version > 1:
                break
            t = self._feed_arrivals(runtime, drifted, n=10, start=t)
        assert runtime.server.artifact.version == 2
        assert runtime.server.source == "fresh"


class TestStatusAndHealth:
    def test_status_document_shape(self, model, tmp_path):
        runtime = make_runtime(model, tmp_path)
        runtime.bootstrap()
        runtime.decide("active", False, 0)
        status = runtime.status()
        assert status["source"] == "fresh"
        assert status["health"] == "ok"
        assert status["artifact_version"] == 1
        assert status["breaker"] == "closed"
        assert status["decisions"] == 1
        assert status["decisions_by_source"]["fresh"] == 1
        assert status["bootstrap"] == "solved"
        json.dumps(status)  # must be wire-serializable

    def test_health_ladder(self, model, tmp_path, artifact):
        runtime = make_runtime(model, tmp_path)
        assert runtime.health() == "degraded"
        runtime.server.install(artifact)
        assert runtime.health() == "ok"
        runtime.server.mark_stale()
        assert runtime.health() == "stale"


class TestProtocol:
    def _runtime(self, model, tmp_path):
        runtime = make_runtime(model, tmp_path)
        runtime.bootstrap()
        return runtime

    def test_decide_roundtrip(self, model, tmp_path):
        runtime = self._runtime(model, tmp_path)
        response = runtime._handle_request_line(
            b'{"mode": "active", "transfer": false, "count": 1}\n'
        )
        assert response["source"] == "fresh"
        assert response["version"] == 1
        assert response["action"] == runtime.server.artifact.action_for(
            "active", False, 1
        )

    def test_decide_defaults(self, model, tmp_path):
        runtime = self._runtime(model, tmp_path)
        response = runtime._handle_request_line(b'{"mode": "active"}\n')
        assert "action" in response

    def test_health_op(self, model, tmp_path):
        runtime = self._runtime(model, tmp_path)
        response = runtime._handle_request_line(b'{"op": "health"}\n')
        assert response["health"] == "ok"

    @pytest.mark.parametrize(
        "line",
        [
            b"not json\n",
            b"[1, 2]\n",
            b'{"op": "launch-missiles"}\n',
            b"{}\n",
            b'{"mode": 7}\n',
            b'{"mode": "active", "transfer": "yes"}\n',
            b'{"mode": "active", "count": 1.5}\n',
            b'{"mode": "warp"}\n',
            b'{"mode": "active", "count": -3}\n',
        ],
    )
    def test_malformed_requests_get_typed_errors(self, model, tmp_path, line):
        runtime = self._runtime(model, tmp_path)
        response = runtime._handle_request_line(line)
        assert set(response) == {"error"}
        assert response["error"]["type"] == "ServeRequestError"
        assert isinstance(response["error"]["message"], str)
        json.dumps(response)


class TestSoak:
    def test_soak_is_deterministic(self, model, tmp_path):
        a = make_runtime(model, tmp_path / "a")
        a.bootstrap()
        b = make_runtime(model, tmp_path / "b")
        b.bootstrap()
        ra = a.soak(600.0, seed=7)
        rb = b.soak(600.0, seed=7)
        assert ra.to_dict() == rb.to_dict()
        assert ra.arrivals > 0
        assert ra.selfcheck_violations == 0

    def test_soak_serves_only_fresh_without_chaos(self, model, tmp_path):
        runtime = make_runtime(model, tmp_path)
        runtime.bootstrap()
        report = runtime.soak(600.0, seed=1)
        assert report.by_source["heuristic"] == 0
        assert report.by_source["fresh"] == report.decisions
        assert report.final_status["health"] == "ok"
