"""Qualitative claims of Section V, asserted analytically.

- Figure 4's shape: the CTMDP-optimal tradeoff curve dominates the
  N-policy curve.
- The two-state-server remark: with only {active, sleeping} the
  N-policies are optimal -- the CTMDP optimum cannot beat the N-policy
  at its own delay level.
- The three-state advantage: with the waiting mode available the
  optimum strictly beats the N-policy somewhere.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dpm.analysis import evaluate_dpm_policy
from repro.dpm.model_policies import as_policy, n_policy_assignment
from repro.dpm.optimizer import optimize_constrained, sweep_weights
from repro.dpm.presets import (
    PAPER_SWITCHING_ENERGY,
    PAPER_SWITCHING_TIMES,
    paper_system,
)
from repro.dpm.service_provider import ServiceProvider
from repro.dpm.service_requestor import ServiceRequestor
from repro.dpm.system import PowerManagedSystemModel


def two_state_paper_system() -> PowerManagedSystemModel:
    """The paper's server reduced to {active, sleeping}."""
    idx = [0, 2]  # active, sleeping
    provider = ServiceProvider.from_switching_times(
        modes=("active", "sleeping"),
        switching_times=PAPER_SWITCHING_TIMES[np.ix_(idx, idx)],
        service_rates=(1 / 1.5, 0.0),
        power=(40.0, 0.1),
        switching_energy=PAPER_SWITCHING_ENERGY[np.ix_(idx, idx)],
    )
    return PowerManagedSystemModel(provider, ServiceRequestor(1 / 6), capacity=5)


class TestFigure4Dominance:
    def test_optimal_dominates_every_npolicy(self, paper_model):
        mdp = paper_model.build_ctmdp(0.0)
        for n in range(1, 6):
            npol = evaluate_dpm_policy(
                paper_model, as_policy(mdp, n_policy_assignment(paper_model, n))
            )
            # The constrained optimum at the N-policy's delay level uses
            # no more power.
            optimal = optimize_constrained(
                paper_model, npol.average_queue_length
            )
            assert (
                optimal.metrics.average_power <= npol.average_power + 1e-6
            ), f"N={n}"

    def test_strict_improvement_somewhere(self, paper_model):
        # With three server states the optimum beats the N-policy family
        # strictly at at least one delay level (the paper's Figure 4).
        mdp = paper_model.build_ctmdp(0.0)
        improvements = []
        for n in range(1, 6):
            npol = evaluate_dpm_policy(
                paper_model, as_policy(mdp, n_policy_assignment(paper_model, n))
            )
            optimal = optimize_constrained(paper_model, npol.average_queue_length)
            improvements.append(npol.average_power - optimal.metrics.average_power)
        assert max(improvements) > 0.1  # at least 0.1 W somewhere


class TestTwoStateNPolicyOptimality:
    def test_npolicy_matches_optimum_for_two_state_server(self):
        model = two_state_paper_system()
        mdp = model.build_ctmdp(0.0)
        for n in (1, 3, 5):
            npol = evaluate_dpm_policy(
                model, as_policy(mdp, n_policy_assignment(model, n))
            )
            optimal = optimize_constrained(model, npol.average_queue_length)
            # Section V: for a 2-state SP the N-policy is power-optimal
            # at its own performance level.
            assert optimal.metrics.average_power == pytest.approx(
                npol.average_power, rel=0.01
            ), f"N={n}"


class TestTradeoffCurveShape:
    def test_weight_sweep_traces_pareto_frontier(self, paper_model):
        results = sweep_weights(paper_model, [0.05, 0.2, 0.5, 1.0, 2.0, 5.0, 20.0])
        points = sorted(
            {
                (
                    round(r.metrics.average_queue_length, 6),
                    round(r.metrics.average_power, 6),
                )
                for r in results
            }
        )
        # Along the frontier: more delay, less power.
        for (d1, p1), (d2, p2) in zip(points, points[1:]):
            assert d2 > d1
            assert p2 <= p1 + 1e-9
