"""Distribution-level model/simulation agreement.

The mean-level agreement tests show first moments match; here the whole
*occupancy distribution* (fraction of time with k requests in the
system) and the *mode residency* are compared between the analytic
stationary distribution and the recorded simulation timeline -- the
strongest practical statement of the paper's "matches the real
situation very well".
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ctmdp.policy_iteration import policy_iteration
from repro.dpm.analysis import state_probabilities
from repro.policies import OptimalCTMDPPolicy
from repro.sim import PoissonProcess, simulate
from repro.sim.recorder import TimelineRecorder


@pytest.fixture(scope="module")
def solved(paper_model, paper_mdp):
    return policy_iteration(paper_mdp).policy


@pytest.fixture(scope="module")
def analytic(paper_model, solved):
    return state_probabilities(solved)


@pytest.fixture(scope="module")
def recorded(paper_model, solved):
    recorder = TimelineRecorder()
    result = simulate(
        provider=paper_model.provider,
        capacity=paper_model.capacity,
        workload=PoissonProcess(paper_model.requestor.rate),
        policy=OptimalCTMDPPolicy(solved, paper_model.capacity),
        n_requests=40_000,
        seed=21,
        recorder=recorder,
    )
    return recorder, result


def occupancy_residency(recorder, elapsed) -> np.ndarray:
    """Fraction of time at each occupancy level, from the queue steps."""
    steps = recorder.queue_steps
    residency = np.zeros(16)
    for (t0, level), (t1, _) in zip(steps, steps[1:]):
        residency[level] += t1 - t0
    last_time, last_level = steps[-1]
    residency[last_level] += elapsed - last_time
    return residency / residency.sum()


class TestOccupancyDistribution:
    def test_simulated_occupancy_matches_stationary(
        self, paper_model, analytic, recorded
    ):
        recorder, result = recorded
        simulated = occupancy_residency(recorder, result.elapsed)
        # Analytic marginal over the delay cost C_sq (occupancy):
        # stable q_i contributes at level i, transfer q_{i->i-1} at i-1.
        expected = np.zeros(16)
        for state, prob in analytic.items():
            expected[state.queue.waiting_count] += prob
        for level in range(6):
            assert simulated[level] == pytest.approx(
                expected[level], abs=0.01
            ), f"occupancy level {level}"

    def test_mode_residency_matches_stationary(
        self, paper_model, analytic, recorded
    ):
        recorder, result = recorded
        for mode in paper_model.provider.modes:
            expected = sum(
                prob for state, prob in analytic.items() if state.mode == mode
            )
            simulated = recorder.busy_fraction(mode)
            assert simulated == pytest.approx(expected, abs=0.015), mode

    def test_distribution_l1_distance_small(self, analytic, recorded):
        recorder, result = recorded
        simulated = occupancy_residency(recorder, result.elapsed)
        expected = np.zeros(16)
        for state, prob in analytic.items():
            expected[state.queue.waiting_count] += prob
        l1 = float(np.abs(simulated - expected).sum())
        assert l1 < 0.03
