"""The paper's central validation: analytic model ~= event simulation.

Section V: "we also calculated the functional value of the queue length
and energy cost ... and found that the functional value and the
simulated value are almost the same. This shows that our stochastic
model of the power-managed system matches the real situation very
well." These tests assert that agreement for the optimal policy and for
every N-policy, and quantify that the no-transfer-state ablation model
is *worse* at predicting reality.
"""

from __future__ import annotations

import pytest

from repro.dpm.analysis import evaluate_dpm_policy
from repro.dpm.model_policies import as_policy, greedy_assignment, n_policy_assignment
from repro.dpm.optimizer import optimize_weighted
from repro.dpm.presets import paper_system
from repro.policies import GreedyPolicy, NPolicy, OptimalCTMDPPolicy
from repro.sim import PoissonProcess, simulate

N_REQUESTS = 30_000
SEED = 17


def run_sim(model, policy, **kwargs):
    return simulate(
        provider=model.provider,
        capacity=model.capacity,
        workload=PoissonProcess(model.requestor.rate),
        policy=policy,
        n_requests=N_REQUESTS,
        seed=SEED,
        **kwargs,
    )


class TestOptimalPolicyAgreement:
    @pytest.fixture(scope="class", params=[0.3, 1.0, 3.0])
    def pair(self, request, paper_model):
        result = optimize_weighted(paper_model, request.param)
        sim = run_sim(
            paper_model, OptimalCTMDPPolicy(result.policy, paper_model.capacity)
        )
        return result.metrics, sim

    def test_power_agreement(self, pair):
        analytic, sim = pair
        assert sim.average_power == pytest.approx(analytic.average_power, rel=0.03)

    def test_queue_length_agreement(self, pair):
        analytic, sim = pair
        assert sim.average_queue_length == pytest.approx(
            analytic.average_queue_length, rel=0.05
        )

    def test_waiting_time_agreement(self, pair):
        analytic, sim = pair
        assert sim.average_waiting_time == pytest.approx(
            analytic.average_waiting_time, rel=0.05
        )


class TestNPolicyAgreement:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5])
    def test_power_and_queue_length(self, paper_model, n):
        mdp = paper_model.build_ctmdp(0.0)
        analytic = evaluate_dpm_policy(
            paper_model, as_policy(mdp, n_policy_assignment(paper_model, n))
        )
        sim = run_sim(paper_model, NPolicy(n, paper_model.provider))
        assert sim.average_power == pytest.approx(analytic.average_power, rel=0.04)
        assert sim.average_queue_length == pytest.approx(
            analytic.average_queue_length, rel=0.06
        )


class TestTransferStateAblation:
    """Without transfer states the model mispredicts the simulator.

    The ablation model (in the spirit of [11]) lets the SP power down
    mid-service; simulated with preemptive semantics, its analytic
    queue-length prediction degrades visibly compared to the
    transfer-state model's near-exact agreement on its own optimal
    policy.
    """

    def test_transfer_model_agrees_with_its_simulation(self, paper_model):
        result = optimize_weighted(paper_model, 1.0)
        sim = run_sim(
            paper_model, OptimalCTMDPPolicy(result.policy, paper_model.capacity)
        )
        rel_err = abs(
            sim.average_queue_length - result.metrics.average_queue_length
        ) / result.metrics.average_queue_length
        assert rel_err < 0.05

    def test_ablation_model_mispredicts_simulation(self):
        ablated = paper_system(include_transfer_states=False)
        result = optimize_weighted(ablated, 1.0)
        sim = run_sim(
            ablated,
            OptimalCTMDPPolicy(result.policy, ablated.capacity),
            busy_powerdown="preempt",
        )
        power_err = abs(
            sim.average_power - result.metrics.average_power
        ) / result.metrics.average_power
        queue_err = abs(
            sim.average_queue_length - result.metrics.average_queue_length
        ) / max(result.metrics.average_queue_length, 1e-9)
        # The lumped model is measurably off on at least one metric.
        assert max(power_err, queue_err) > 0.05


class TestGreedyAgreement:
    def test_greedy(self, paper_model):
        mdp = paper_model.build_ctmdp(0.0)
        analytic = evaluate_dpm_policy(
            paper_model, as_policy(mdp, greedy_assignment(paper_model))
        )
        sim = run_sim(paper_model, GreedyPolicy(paper_model.provider))
        assert sim.average_power == pytest.approx(analytic.average_power, rel=0.04)
