"""All three solvers find the same optimum on the paper's model.

Policy iteration (the paper's algorithm), the occupation-measure LP
([11]'s approach) and relative value iteration (on a softened model --
the stiff self-switch stand-in makes VI impractical otherwise, which the
solver bench quantifies) must agree on the optimal gain across weights.
"""

from __future__ import annotations

import pytest

from repro.ctmdp.linear_program import solve_average_cost_lp
from repro.ctmdp.policy_iteration import policy_iteration
from repro.ctmdp.value_iteration import relative_value_iteration
from repro.dpm.analysis import evaluate_dpm_policy
from repro.dpm.presets import paper_system


class TestSolverAgreement:
    @pytest.mark.parametrize("weight", [0.0, 0.5, 1.0, 5.0])
    def test_pi_equals_lp(self, paper_model, weight):
        mdp = paper_model.build_ctmdp(weight)
        pi = policy_iteration(mdp)
        lp = solve_average_cost_lp(mdp)
        assert pi.gain == pytest.approx(lp.gain, rel=1e-7)

    @pytest.mark.parametrize("weight", [0.5, 2.0])
    def test_pi_equals_vi_on_soft_model(self, weight):
        model = paper_system(self_switch_rate=50.0)
        mdp = model.build_ctmdp(weight)
        pi = policy_iteration(mdp)
        vi = relative_value_iteration(mdp, span_tolerance=1e-9)
        assert vi.gain == pytest.approx(pi.gain, rel=1e-5)

    def test_policies_induce_identical_metrics(self, paper_model):
        mdp = paper_model.build_ctmdp(1.0)
        pi_policy = policy_iteration(mdp).policy
        lp_policy = solve_average_cost_lp(mdp).deterministic_policy
        a = evaluate_dpm_policy(paper_model, pi_policy)
        b = evaluate_dpm_policy(paper_model, lp_policy)
        assert a.average_power == pytest.approx(b.average_power, rel=1e-6)
        assert a.average_queue_length == pytest.approx(
            b.average_queue_length, rel=1e-6
        )

    def test_softening_self_switch_barely_moves_the_answer(self):
        # The 1e4 stand-in vs 100: gains agree within a fraction of a
        # percent, confirming the stand-in does not distort the model.
        hard = policy_iteration(paper_system().build_ctmdp(1.0)).gain
        soft = policy_iteration(
            paper_system(self_switch_rate=100.0).build_ctmdp(1.0)
        ).gain
        assert soft == pytest.approx(hard, rel=5e-3)
