"""Tests for the repro-dpm command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestSolveCommand:
    def test_weighted_solve(self, capsys):
        assert main(["solve", "--weight", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "weighted optimum" in out
        assert "average power [W]" in out

    def test_constrained_solve(self, capsys):
        assert main(["solve", "--max-queue-length", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "constrained optimum" in out

    def test_show_policy_prints_table(self, capsys):
        assert main(["solve", "--show-policy"]) == 0
        out = capsys.readouterr().out
        assert "system state" in out
        assert "(active,q0)" in out

    def test_custom_rate_and_capacity(self, capsys):
        assert main(["solve", "--rate", "0.25", "--capacity", "3"]) == 0


class TestSimulateCommand:
    def test_optimal_policy(self, capsys):
        assert main(["simulate", "--requests", "500", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "PM invocations" in out

    @pytest.mark.parametrize(
        "policy", ["greedy", "always-on", "npolicy:3", "timeout:2.5"]
    )
    def test_named_policies(self, capsys, policy):
        assert main(["simulate", "--policy", policy, "--requests", "300"]) == 0

    def test_unknown_policy_fails(self, capsys):
        assert main(["simulate", "--policy", "magic", "--requests", "10"]) == 2

    def test_json_output(self, tmp_path, capsys):
        out_file = tmp_path / "result.json"
        assert (
            main(
                [
                    "simulate",
                    "--requests",
                    "300",
                    "--json-out",
                    str(out_file),
                ]
            )
            == 0
        )
        from repro.sim.trace_io import load_result

        result = load_result(out_file)
        assert result.n_generated == 300


class TestFrontierCommand:
    def test_prints_frontier(self, capsys):
        assert main(["frontier", "--max-weight", "50"]) == 0
        out = capsys.readouterr().out
        assert "power [W]" in out
        assert out.count("\n") >= 5


class TestDescribeCommand:
    def test_prints_figures(self, capsys):
        assert main(["describe"]) == 0
        out = capsys.readouterr().out
        assert "active -> waiting  rate=10" in out
        assert "q1 -> q1->0" in out
        assert "joint state space: 23 states" in out

    def test_custom_capacity(self, capsys):
        assert main(["describe", "--capacity", "2"]) == 0
        out = capsys.readouterr().out
        assert "joint state space: 11 states" in out


class TestExperimentsCommand:
    def test_table1_small(self, capsys):
        assert main(["experiments", "table1", "--requests", "1500"]) == 0
        out = capsys.readouterr().out
        assert "error [%]" in out

    def test_csv_export(self, tmp_path, capsys):
        out_file = tmp_path / "table1.csv"
        assert (
            main(
                [
                    "experiments",
                    "table1",
                    "--requests",
                    "1500",
                    "--csv-out",
                    str(out_file),
                ]
            )
            == 0
        )
        from repro.experiments.export import read_rows

        rows = read_rows(out_file)
        assert len(rows) == 6
        assert "error_percent" in rows[0]


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_exhibit_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiments", "figure9"])
