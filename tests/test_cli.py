"""Tests for the repro-dpm command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestSolveCommand:
    def test_weighted_solve(self, capsys):
        assert main(["solve", "--weight", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "weighted optimum" in out
        assert "average power [W]" in out

    def test_constrained_solve(self, capsys):
        assert main(["solve", "--max-queue-length", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "constrained optimum" in out

    def test_show_policy_prints_table(self, capsys):
        assert main(["solve", "--show-policy"]) == 0
        out = capsys.readouterr().out
        assert "system state" in out
        assert "(active,q0)" in out

    def test_custom_rate_and_capacity(self, capsys):
        assert main(["solve", "--rate", "0.25", "--capacity", "3"]) == 0


class TestSimulateCommand:
    def test_optimal_policy(self, capsys):
        assert main(["simulate", "--requests", "500", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "PM invocations" in out

    @pytest.mark.parametrize(
        "policy", ["greedy", "always-on", "npolicy:3", "timeout:2.5"]
    )
    def test_named_policies(self, capsys, policy):
        assert main(["simulate", "--policy", policy, "--requests", "300"]) == 0

    def test_unknown_policy_fails(self, capsys):
        assert main(["simulate", "--policy", "magic", "--requests", "10"]) == 2

    def test_json_output(self, tmp_path, capsys):
        out_file = tmp_path / "result.json"
        assert (
            main(
                [
                    "simulate",
                    "--requests",
                    "300",
                    "--json-out",
                    str(out_file),
                ]
            )
            == 0
        )
        from repro.sim.trace_io import load_result

        result = load_result(out_file)
        assert result.n_generated == 300


class TestFrontierCommand:
    def test_prints_frontier(self, capsys):
        assert main(["frontier", "--max-weight", "50"]) == 0
        out = capsys.readouterr().out
        assert "power [W]" in out
        assert out.count("\n") >= 5


class TestDescribeCommand:
    def test_prints_figures(self, capsys):
        assert main(["describe"]) == 0
        out = capsys.readouterr().out
        assert "active -> waiting  rate=10" in out
        assert "q1 -> q1->0" in out
        assert "joint state space: 23 states" in out

    def test_custom_capacity(self, capsys):
        assert main(["describe", "--capacity", "2"]) == 0
        out = capsys.readouterr().out
        assert "joint state space: 11 states" in out


class TestExperimentsCommand:
    def test_table1_small(self, capsys):
        assert main(["experiments", "table1", "--requests", "1500"]) == 0
        out = capsys.readouterr().out
        assert "error [%]" in out

    def test_csv_export(self, tmp_path, capsys):
        out_file = tmp_path / "table1.csv"
        assert (
            main(
                [
                    "experiments",
                    "table1",
                    "--requests",
                    "1500",
                    "--csv-out",
                    str(out_file),
                ]
            )
            == 0
        )
        from repro.experiments.export import read_rows

        rows = read_rows(out_file)
        assert len(rows) == 6
        assert "error_percent" in rows[0]


class TestReplications:
    def test_summary_table_printed(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--policy",
                    "greedy",
                    "--requests",
                    "300",
                    "--replications",
                    "3",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "3 replications (seeds 0..2)" in out
        assert "std error" in out
        assert "average_power" in out

    def test_parallel_matches_serial(self, capsys):
        argv = [
            "simulate", "--policy", "npolicy:2", "--requests", "300",
            "--replications", "4", "--seed", "5",
        ]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_single_replication_prints_no_summary(self, capsys):
        assert main(["simulate", "--requests", "200"]) == 0
        assert "replications" not in capsys.readouterr().out


class TestObservabilityFlags:
    def test_solve_writes_convergence_metrics(self, tmp_path, capsys):
        path = tmp_path / "metrics.json"
        assert main(["solve", "--metrics-out", str(path)]) == 0
        from repro.obs.export import read_metrics

        data = read_metrics(path)
        assert data["manifest"]["argv"][0] == "solve"
        conv = data["metrics"]["solver.policy_iteration.convergence"]
        rows = conv["records"]
        assert len(rows) >= 2
        assert {"iteration", "residual", "policy_changes"} <= set(rows[-1])
        assert rows[-1]["policy_changes"] == 0  # converged
        assert data["metrics"]["solver.policy_iteration.solves"]["value"] == 1

    def test_simulate_writes_metrics_and_trace(self, tmp_path, capsys):
        m_path, t_path = tmp_path / "m.json", tmp_path / "t.jsonl"
        assert (
            main(
                [
                    "simulate",
                    "--policy",
                    "greedy",
                    "--requests",
                    "400",
                    "--metrics-out",
                    str(m_path),
                    "--trace-out",
                    str(t_path),
                ]
            )
            == 0
        )
        from repro.obs.export import read_metrics, read_trace

        metrics = read_metrics(m_path)["metrics"]
        assert metrics["sim.requests.generated"]["value"] == 400
        assert metrics["sim.events"]["value"] > 400
        assert metrics["sim.queue_occupancy"]["count"] > 0
        assert metrics["sim.waiting_time_s"]["count"] > 0
        assert metrics["sim.pm.invocations"]["value"] > 0
        manifest, spans = read_trace(t_path)
        assert manifest["seed"] == 0
        out = capsys.readouterr().out
        assert f"metrics written to {m_path}" in out

    def test_log_level_accepted(self, capsys):
        assert main(["describe", "--log-level", "info"]) == 0

    def test_experiments_metrics_identical_across_jobs(self, tmp_path, capsys):
        import json

        paths = {}
        for jobs in ("1", "2"):
            paths[jobs] = tmp_path / f"m{jobs}.json"
            assert (
                main(
                    [
                        "experiments",
                        "table1",
                        "--requests",
                        "800",
                        "--jobs",
                        jobs,
                        "--metrics-out",
                        str(paths[jobs]),
                    ]
                )
                == 0
            )

        def deterministic(path):
            metrics = json.load(open(path))["metrics"]
            out = {}
            for name, payload in metrics.items():
                if payload.get("profiling"):
                    continue
                if payload.get("type") == "series":
                    drop = set(payload.get("profiling_fields", ()))
                    payload = dict(payload)
                    payload["records"] = [
                        {k: v for k, v in r.items() if k not in drop}
                        for r in payload["records"]
                    ]
                out[name] = payload
            return json.dumps(out, sort_keys=True)

        assert deterministic(paths["1"]) == deterministic(paths["2"])


class TestExitCodes:
    """Library failures map to distinct exit codes + one-line messages."""

    def test_mapping_most_specific_first(self):
        from repro import errors
        from repro.cli import exit_code_for

        assert exit_code_for(errors.InvalidGeneratorError("x")) == 3
        assert exit_code_for(errors.NotIrreducibleError("x")) == 3
        assert exit_code_for(errors.InvalidModelError("x")) == 3
        assert exit_code_for(errors.InvalidPolicyError("x")) == 3
        assert exit_code_for(errors.SolverError("x")) == 4
        assert exit_code_for(errors.InfeasibleConstraintError("x")) == 5
        assert exit_code_for(errors.SimulationError("x")) == 6
        assert exit_code_for(errors.CheckpointError("x")) == 7
        assert exit_code_for(errors.WorkerFailureError("x")) == 8
        assert exit_code_for(errors.ReproError("x")) == 9

    def test_infeasible_constraint_exits_5(self, capsys):
        assert main(["solve", "--max-queue-length", "1e-9"]) == 5
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert err.count("\n") == 1  # one line, no traceback

    def test_solver_error_exits_4(self, capsys):
        assert main(["frontier", "--max-weight", "-1"]) == 4
        assert "error: max_weight must be positive" in capsys.readouterr().err

    def test_checkpoint_error_exits_7(self, capsys):
        assert main(["frontier", "--resume"]) == 7
        assert "error: --resume requires --checkpoint" in capsys.readouterr().err

    def test_debug_reraises_with_traceback(self):
        from repro.errors import InfeasibleConstraintError

        with pytest.raises(InfeasibleConstraintError):
            main(["solve", "--max-queue-length", "1e-9", "--debug"])


class TestCheckpointFlags:
    def test_frontier_checkpoint_resume_identical(self, tmp_path, capsys):
        args = [
            "frontier", "--max-weight", "50", "--weight-tolerance", "0.01",
        ]
        assert main(args) == 0
        reference = capsys.readouterr().out
        ck = tmp_path / "front.json"
        assert main(args + ["--checkpoint", str(ck)]) == 0
        assert capsys.readouterr().out == reference
        # Resume from the completed checkpoint: no re-solves, same output.
        assert main(args + ["--checkpoint", str(ck), "--resume"]) == 0
        assert capsys.readouterr().out == reference

    def test_mismatched_config_rejected(self, tmp_path, capsys):
        ck = tmp_path / "front.json"
        base = ["frontier", "--weight-tolerance", "0.01", "--checkpoint", str(ck)]
        assert main(base + ["--max-weight", "50"]) == 0
        capsys.readouterr()
        assert main(base + ["--max-weight", "60", "--resume"]) == 7
        assert "different configuration" in capsys.readouterr().err

    def test_simulate_replications_checkpoint(self, tmp_path, capsys):
        args = [
            "simulate", "--policy", "greedy", "--requests", "300",
            "--replications", "3",
        ]
        assert main(args) == 0
        reference = capsys.readouterr().out
        ck = tmp_path / "reps.json"
        assert main(args + ["--checkpoint", str(ck)]) == 0
        assert capsys.readouterr().out == reference
        assert main(args + ["--checkpoint", str(ck), "--resume"]) == 0
        assert capsys.readouterr().out == reference


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_exhibit_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiments", "figure9"])

    def test_observability_flags_after_subcommand(self):
        args = build_parser().parse_args(
            ["solve", "--metrics-out", "m.json", "--log-level", "debug"]
        )
        assert args.metrics_out == "m.json"
        assert args.log_level == "debug"
        assert args.trace_out is None

    def test_observability_flags_default_off(self):
        args = build_parser().parse_args(["frontier"])
        assert args.metrics_out is None
        assert args.trace_out is None
        assert args.log_level is None


class TestValidateCommand:
    """The admission-gate subcommand and its exit-code taxonomy."""

    MISSCALED = {
        "provider": {
            "modes": ["on", "off"],
            "switching_rates": [[0, 1e12], [1e11, 0]],
            "service_rates": [1e12, 0],
            "power": [2.0, 0.1],
            "switching_energy": [[0, 0.1], [0.5, 0]],
            "self_switch_rate": 1e15,
        },
        "arrival_rate": 1e11,
        "capacity": 3,
    }

    def test_paper_preset_is_ok(self, capsys):
        assert main(["validate"]) == 0
        out = capsys.readouterr().out
        assert "verdict: ok" in out
        assert "stiffness_ratio" in out

    def test_json_output(self, capsys):
        import json

        assert main(["validate", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["verdict"] == "ok"
        assert payload["level"] == "full"

    def test_repaired_config_exits_10(self, tmp_path, capsys):
        import json

        from repro.cli import EXIT_REPAIRED

        path = tmp_path / "model.json"
        path.write_text(json.dumps(self.MISSCALED))
        assert main(["validate", str(path)]) == EXIT_REPAIRED
        out = capsys.readouterr().out
        assert "verdict: repaired" in out
        assert "extreme-rate-scale" in out
        assert "rate_scale_exponent" in out

    def test_malformed_config_exits_3(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text('{"provider": 3}')
        assert main(["validate", str(path)]) == 3
        assert "error:" in capsys.readouterr().err

    def test_rejected_config_exits_3(self, tmp_path, capsys):
        import copy
        import json

        config = copy.deepcopy(self.MISSCALED)
        config["capacity"] = 0
        path = tmp_path / "rejected.json"
        path.write_text(json.dumps(config))
        assert main(["validate", str(path)]) == 3

    def test_report_out(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "report.json"
        assert main(["validate", "--report-out", str(out_path)]) == 0
        payload = json.loads(out_path.read_text())
        assert payload["admission"]["verdict"] == "ok"
        assert "manifest" in payload

    def test_level_entry_is_cheap(self, capsys):
        assert main(["validate", "--level", "entry"]) == 0
        assert "verdict: ok" in capsys.readouterr().out


class TestProfileFlagAndCommand:
    """--profile-out capture plus the ``repro profile`` renderer."""

    def test_solve_writes_profile(self, tmp_path, capsys):
        path = tmp_path / "profile.json"
        assert main(["solve", "--profile-out", str(path)]) == 0
        from repro.obs.profile import read_profile, top_self_phase

        profile = read_profile(path)
        assert profile["schema"] == "repro-profile/v1"
        assert profile["tree"]
        assert top_self_phase(profile)["self_s"] >= 0.0
        assert f"profile written to {path}" in capsys.readouterr().out

    def test_profile_command_renders(self, tmp_path, capsys):
        path = tmp_path / "profile.json"
        assert main(["solve", "--profile-out", str(path)]) == 0
        capsys.readouterr()
        assert main(["profile", str(path)]) == 0
        out = capsys.readouterr().out
        assert "phase tree (wall-clock):" in out
        assert "hot phases" in out
        assert main(["profile", str(path), "--sort", "cum"]) == 0

    def test_profile_and_trace_agree(self, tmp_path, capsys):
        """Acceptance: the profile's top self-time phase is a span the
        trace recorded, and the instrumented run leaves an auditable
        backend decision + Krylov residual rows in the metrics."""
        import json

        m, t, p = (tmp_path / n for n in ("m.json", "t.jsonl", "p.json"))
        assert (
            main(
                [
                    "solve",
                    "--capacity",
                    "600",
                    "--backend",
                    "sparse",
                    "--metrics-out",
                    str(m),
                    "--trace-out",
                    str(t),
                    "--profile-out",
                    str(p),
                ]
            )
            == 0
        )
        from repro.obs.export import read_metrics, read_trace
        from repro.obs.profile import read_profile, top_self_phase

        metrics = read_metrics(m)["metrics"]
        (decision,) = metrics["solver.backend.decisions"]["records"]
        assert decision["resolved"] == "sparse"
        assert decision["reason"]
        rows = metrics["solver.sparse.krylov.residuals"]["records"]
        assert rows and all(r["residuals"] for r in rows)
        _, spans = read_trace(t)
        span_names = {s["name"] for s in spans}
        assert "sparse_solve" in span_names
        top = top_self_phase(read_profile(p))
        assert top["name"] in span_names


class TestBenchReportCommand:
    def _bench_dir(self, root, solve_s):
        from repro.obs.benchtrack import record_suite

        root.mkdir(exist_ok=True)
        record_suite(
            root / "BENCH_demo.json",
            "suite",
            {"solve_s": solve_s, "n_states": 10},
            manifest={},
        )
        return root

    def test_trend_mode(self, tmp_path, capsys):
        bench = self._bench_dir(tmp_path / "bench", 1.0)
        assert main(["bench-report", "--bench-dir", str(bench)]) == 0
        out = capsys.readouterr().out
        assert "BENCH_demo.json" in out
        assert "suite.solve_s" in out

    def test_check_requires_baseline(self, capsys):
        assert main(["bench-report", "--check"]) == 2
        assert "--check needs --baseline" in capsys.readouterr().err

    def test_self_compare_passes_check(self, tmp_path, capsys):
        bench = self._bench_dir(tmp_path / "bench", 1.0)
        assert (
            main(
                [
                    "bench-report",
                    "--bench-dir",
                    str(bench),
                    "--baseline",
                    str(bench),
                    "--check",
                ]
            )
            == 0
        )
        assert "check passed" in capsys.readouterr().out

    def test_synthetic_regression_fails_check(self, tmp_path, capsys):
        from repro.cli import EXIT_BENCH_REGRESSION

        baseline = self._bench_dir(tmp_path / "baseline", 1.0)
        current = self._bench_dir(tmp_path / "current", 1.25)
        assert (
            main(
                [
                    "bench-report",
                    "--bench-dir",
                    str(current),
                    "--baseline",
                    str(baseline),
                    "--check",
                ]
            )
            == EXIT_BENCH_REGRESSION
        )
        captured = capsys.readouterr()
        assert "regressed" in captured.out
        assert "FAILED" in captured.err

    def test_only_filter(self, tmp_path, capsys):
        baseline = self._bench_dir(tmp_path / "baseline", 1.0)
        current = self._bench_dir(tmp_path / "current", 1.25)
        assert (
            main(
                [
                    "bench-report",
                    "--bench-dir",
                    str(current),
                    "--baseline",
                    str(baseline),
                    "--only",
                    "n_states",
                    "--check",
                ]
            )
            == 0
        )


class TestValidateObservability:
    def test_metrics_and_trace_passthrough(self, tmp_path, capsys):
        m, t = tmp_path / "m.json", tmp_path / "t.jsonl"
        assert (
            main(
                [
                    "validate",
                    "--metrics-out",
                    str(m),
                    "--trace-out",
                    str(t),
                ]
            )
            == 0
        )
        from repro.obs.export import read_metrics, read_trace

        metrics = read_metrics(m)["metrics"]
        assert metrics["admission.gates"]["value"] >= 1
        verdicts = [
            n for n in metrics if n.startswith("admission.verdict.")
        ]
        assert verdicts
        _, spans = read_trace(t)
        names = {s["name"] for s in spans}
        assert "admission.gate" in names
        assert "admission.structural" in names


class TestServeCommand:
    """The policy-serving runtime behind `repro-dpm serve`."""

    def test_soak_run_healthy(self, tmp_path, capsys):
        assert (
            main(
                [
                    "serve", "--duration", "600", "--seed", "3",
                    "--artifact-dir", str(tmp_path / "artifacts"),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "bootstrap: serving from the 'fresh' rung" in out
        assert "health: ok" in out
        # The admitted artifact was persisted for the next process.
        assert (tmp_path / "artifacts" / "policy.json").exists()

    def test_bootstrap_reuses_stored_artifact(self, tmp_path, capsys):
        art = str(tmp_path / "artifacts")
        assert main(["serve", "--duration", "60", "--artifact-dir", art]) == 0
        capsys.readouterr()
        assert main(["serve", "--duration", "60", "--artifact-dir", art]) == 0
        assert "(source: stored)" in capsys.readouterr().out

    def test_json_out_report(self, tmp_path, capsys):
        report = tmp_path / "soak.json"
        assert (
            main(
                [
                    "serve", "--duration", "600",
                    "--artifact-dir", str(tmp_path / "artifacts"),
                    "--json-out", str(report),
                ]
            )
            == 0
        )
        import json

        doc = json.loads(report.read_text())
        assert doc["selfcheck_violations"] == 0
        assert doc["decisions"] > 0
        assert doc["final_status"]["health"] == "ok"

    def test_degraded_serving_exits_13(self, tmp_path, capsys):
        assert (
            main(
                [
                    "serve", "--duration", "60", "--no-initial-solve",
                    "--artifact-dir", str(tmp_path / "artifacts"),
                ]
            )
            == 13
        )
        out = capsys.readouterr().out
        assert "'heuristic' rung" in out
        assert "health: degraded" in out

    def test_chaos_soak_survives(self, tmp_path, capsys):
        report = tmp_path / "soak.json"
        code = main(
            [
                "serve", "--chaos", "--duration", "6000",
                "--seed", "0", "--chaos-seed", "0",
                "--artifact-dir", str(tmp_path / "artifacts"),
                "--json-out", str(report),
            ]
        )
        import json

        doc = json.loads(report.read_text())
        assert doc["selfcheck_violations"] == 0
        assert code in (0, 13)  # degraded-but-honest is acceptable
        assert doc["chaos"]["reload_attempts"] == (
            doc["chaos"]["reload_rejections"] + doc["chaos"]["reload_successes"]
        )


class TestServeExitCodes:
    def test_artifact_and_request_error_codes(self):
        from repro import errors
        from repro.cli import exit_code_for

        assert exit_code_for(errors.ArtifactError("x")) == 12
        assert exit_code_for(errors.ArtifactIntegrityError("x")) == 12
        assert exit_code_for(errors.ArtifactRejectedError("x")) == 12
        assert exit_code_for(errors.ArtifactSchemaError("x")) == 12
        assert exit_code_for(errors.ServeRequestError("x")) == 3


class TestBackendInCheckpointConfig:
    """Resuming under a different solver backend must be rejected."""

    def test_frontier_resume_different_backend_rejected(self, tmp_path, capsys):
        ck = tmp_path / "front.json"
        base = ["frontier", "--weight-tolerance", "0.01", "--max-weight", "50",
                "--checkpoint", str(ck)]
        assert main(base) == 0
        capsys.readouterr()
        assert main(base + ["--backend", "dense", "--resume"]) == 7
        assert "different configuration" in capsys.readouterr().err

    def test_simulate_resume_different_backend_rejected(self, tmp_path, capsys):
        ck = tmp_path / "reps.json"
        base = [
            "simulate", "--policy", "greedy", "--requests", "300",
            "--replications", "2", "--checkpoint", str(ck),
        ]
        assert main(base) == 0
        capsys.readouterr()
        assert main(base + ["--backend", "dense", "--resume"]) == 7
        assert "different configuration" in capsys.readouterr().err


class TestCertifyCommand:
    """The proof-carrying certify subcommand and its exit code."""

    def test_weighted_solve_certifies(self, capsys):
        assert main(["certify", "--weight", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "verdict: certified" in out
        assert "bellman" in out and "consensus" in out

    def test_constrained_solve_certifies(self, capsys):
        assert main(["certify", "--max-queue-length", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "verdict: certified" in out
        assert "(mode: constrained" in out

    def test_json_document_round_trips(self, capsys):
        import json

        from repro.certify import CERT_SCHEMA, CertificationReport

        assert main(["certify", "--weight", "0.5", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == CERT_SCHEMA
        assert CertificationReport.from_document(doc).certified

    def test_cert_out_writes_certificate(self, tmp_path, capsys):
        import json

        path = tmp_path / "policy.cert.json"
        assert main([
            "certify", "--weight", "0.5", "--cert-out", str(path),
        ]) == 0
        assert f"certificate written to {path}" in capsys.readouterr().out
        assert json.loads(path.read_text())["verdict"] == "certified"

    def test_checks_subset(self, capsys):
        assert main([
            "certify", "--weight", "0.5", "--checks", "bellman,exact",
        ]) == 0
        out = capsys.readouterr().out
        assert "bellman" in out and "lp" not in out.splitlines()

    def test_corrupt_artifact_exits_14(self, tmp_path, capsys):
        import dataclasses

        from repro.cli import EXIT_CERTIFICATION
        from repro.dpm.optimizer import OptimizationResult, optimize_weighted
        from repro.dpm.presets import paper_system
        from repro.serve.artifact import compile_artifact, save_artifact

        model = paper_system(capacity=3)
        honest = optimize_weighted(model, 1.0)
        lying = OptimizationResult(
            policy=honest.policy,
            metrics=dataclasses.replace(
                honest.metrics,
                average_power=honest.metrics.average_power * 1.05,
            ),
            weight=honest.weight,
        )
        path = tmp_path / "artifact.json"
        save_artifact(compile_artifact(model, lying, version=1), path)
        code = main(["certify", "--capacity", "3", "--artifact", str(path)])
        assert code == EXIT_CERTIFICATION == 14
        out = capsys.readouterr().out
        assert "verdict: failed" in out
        assert "claimed-gain-mismatch" in out

    def test_certification_error_maps_to_14(self):
        from repro import errors
        from repro.cli import exit_code_for

        assert exit_code_for(errors.CertificationError("x")) == 14
        assert exit_code_for(errors.CertificationFailedError("x")) == 14
        # Still more specific than the family root.
        assert exit_code_for(errors.ReproError("x")) == 9


class TestValidateUnichain:
    def test_opt_in_sweep_reports_ok(self, capsys):
        assert main([
            "validate", "--unichain", "--unichain-budget", "20",
        ]) == 0
        out = capsys.readouterr().out
        assert "unichain: ok" in out
        assert "sampled" in out

    def test_json_carries_unichain_block(self, capsys):
        import json

        assert main([
            "validate", "--unichain", "--unichain-budget", "20", "--json",
        ]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["unichain"]["ok"] is True
        assert doc["unichain"]["n_policies_checked"] == 20
        assert doc["unichain"]["exhaustive"] is False

    def test_without_flag_no_sweep(self, capsys):
        assert main(["validate"]) == 0
        assert "unichain: " not in capsys.readouterr().out
