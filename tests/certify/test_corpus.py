"""The adversarial corpus: zero false certifications, at every seed."""

from __future__ import annotations

import json

import pytest

from repro.certify import (
    CORRUPTION_KINDS,
    build_corpus,
    certify_result,
)
from repro.certify.corpus import main as corpus_main
from repro.dpm.optimizer import optimize_weighted
from repro.dpm.presets import paper_system
from repro.errors import CertificationError


@pytest.fixture(scope="module")
def model():
    return paper_system(capacity=3)


@pytest.fixture(scope="module")
def corpus(model):
    return build_corpus(model, weight=0.5, seed=0)


class TestZeroFalseCertifications:
    def test_honest_base_certifies(self, model):
        base = optimize_weighted(model, 0.5)
        assert certify_result(model, base).certified

    def test_every_member_rejected_with_typed_finding(self, model, corpus):
        assert {m.kind for m in corpus} == set(CORRUPTION_KINDS)
        for member in corpus:
            report = member.certify(model)
            assert not report.certified, (
                f"{member.kind} falsely certified: {member.description}"
            )
            assert report.finding_codes, member.kind

    @pytest.mark.parametrize("seed", (7, 40))
    def test_rejection_holds_across_seeds(self, model, seed):
        for member in build_corpus(
            model, weight=0.5, seed=seed,
            kinds=("gain-perturbation", "invalid-action"),
        ):
            report = member.certify(model)
            assert not report.certified, member.description

    def test_expected_findings_per_kind(self, model, corpus):
        expected = {
            "action-flip": "lp-duality-gap",
            "gain-perturbation": "claimed-gain-mismatch",
            "stale-ghost": "lp-duality-gap",
            "invalid-action": "invalid-policy",
        }
        for member in corpus:
            report = member.certify(model)
            assert expected[member.kind] in report.finding_codes, (
                member.kind,
                report.finding_codes,
            )


class TestCorpusConstruction:
    def test_deterministic_in_seed(self, model, corpus):
        again = build_corpus(model, weight=0.5, seed=0)
        assert [(m.kind, m.assignment, m.claimed_metrics) for m in corpus] == [
            (m.kind, m.assignment, m.claimed_metrics) for m in again
        ]

    def test_kinds_filter(self, model):
        members = build_corpus(
            model, weight=0.5, seed=0, kinds=("invalid-action",)
        )
        assert [m.kind for m in members] == ["invalid-action"]

    def test_unknown_kind_rejected(self, model):
        with pytest.raises(CertificationError, match="unknown"):
            build_corpus(model, kinds=("action-flip", "entropy-storm"))

    def test_members_carry_provenance(self, corpus):
        for member in corpus:
            assert member.seed == 0
            assert member.description
            assert member.weight == 0.5


class TestCorpusMain:
    def test_ci_entry_point_writes_certificates(self, tmp_path, capsys):
        code = corpus_main(["--seed", "0", "--out", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "base certified" in out
        written = sorted(p.name for p in tmp_path.glob("*.cert.json"))
        assert written == sorted(
            f"seed0-{name}.cert.json"
            for name in ("base",) + CORRUPTION_KINDS
        )
        base_doc = json.loads((tmp_path / "seed0-base.cert.json").read_text())
        assert base_doc["verdict"] == "certified"
        flip_doc = json.loads(
            (tmp_path / "seed0-action-flip.cert.json").read_text()
        )
        assert flip_doc["verdict"] == "failed"
