"""The certification engine: honest solves certify, everything else fails."""

from __future__ import annotations

import pytest

from repro.certify import (
    CHECK_NAMES,
    certify_artifact,
    certify_result,
    certify_solution,
    require_certified,
)
from repro.dpm.optimizer import (
    optimize_constrained,
    optimize_weighted,
)
from repro.dpm.presets import paper_system
from repro.errors import CertificationError, CertificationFailedError
from repro.obs.metrics import MetricsRegistry
from repro.obs.runtime import instrument
from repro.serve.artifact import compile_artifact


@pytest.fixture(scope="module")
def model():
    return paper_system(capacity=3)


@pytest.fixture(scope="module")
def solved(model):
    return optimize_weighted(model, 0.5)


class TestWeightedCertification:
    @pytest.mark.parametrize("solver", ("policy_iteration", "linear_program"))
    def test_every_solver_earns_a_certificate(self, model, solver):
        result = optimize_weighted(model, 0.5, solver=solver)
        report = certify_result(model, result)
        assert report.certified, report.finding_codes
        assert [c.name for c in report.checks] == list(CHECK_NAMES)
        assert not any(c.status == "failed" for c in report.checks)
        assert report.check("lp").status == "passed"

    def test_lp_rounding_in_transient_states_does_not_fail(self, model):
        # The LP's deterministic rounding picks an arbitrary action in
        # zero-occupancy (transient) states, so the policy can violate
        # the Bellman *bound* while its gain is still optimal. The
        # bellman check must abstain (no false rejection); the LP
        # duality check certifies.
        result = optimize_weighted(model, 0.5, solver="linear_program")
        report = certify_result(model, result)
        assert report.certified, report.finding_codes
        bellman = report.check("bellman")
        if bellman.status == "skipped":  # the rounding hit a transient state
            assert "inconclusive" in bellman.data["reason"]
            assert bellman.data["dual_feasible"] is False

    def test_value_iteration_policy_certifies(self, model):
        # optimize_weighted's VI path demands span 1e-9, below this
        # model's float plateau -- drive VI directly at an achievable
        # tolerance and certify the policy it lands on.
        from repro.ctmdp.value_iteration import relative_value_iteration

        mdp = model.build_ctmdp(0.5)
        vi = relative_value_iteration(mdp, span_tolerance=5e-8)
        report = certify_solution(model, vi.policy, weight=0.5)
        assert report.certified, report.finding_codes
        assert report.check("bellman").status == "passed"

    def test_report_carries_the_operating_point(self, model, solved):
        report = certify_result(model, solved)
        assert report.mode == "weighted"
        assert report.weight == pytest.approx(0.5)
        assert report.rate == pytest.approx(model.requestor.rate)
        assert report.claimed["gain"] == pytest.approx(
            solved.metrics.average_power
            + 0.5 * solved.metrics.average_queue_length
        )

    def test_check_subset_preserves_canonical_order(self, model, solved):
        report = certify_result(model, solved, checks=("exact", "bellman"))
        assert [c.name for c in report.checks] == ["bellman", "exact"]
        assert report.certified

    def test_exact_skipped_above_state_limit(self, model, solved):
        report = certify_result(model, solved, exact_state_limit=5)
        exact = report.check("exact")
        assert exact.status == "skipped"
        assert "limit" in exact.data["reason"]
        assert report.certified  # skips don't block the verdict

    def test_wrong_claim_fails_with_typed_finding(self, model, solved):
        report = certify_solution(
            model,
            solved.policy,
            weight=0.5,
            claimed_metrics={
                "average_power": solved.metrics.average_power * 1.05,
                "average_queue_length": solved.metrics.average_queue_length,
            },
        )
        assert not report.certified
        assert "claimed-gain-mismatch" in report.finding_codes

    def test_suboptimal_policy_fails_bellman_and_lp(self, model):
        lazy = optimize_weighted(model, 50.0)  # optimal for w=50, not 0.5
        report = certify_solution(model, lazy.policy, weight=0.5)
        assert not report.certified
        assert "bellman-gap-exceeded" in report.finding_codes
        assert "lp-duality-gap" in report.finding_codes

    def test_invalid_policy_is_a_finding_not_a_crash(self, model, solved):
        table = solved.policy.as_dict()
        table[next(iter(table))] = "warp-drive"
        report = certify_solution(model, table, weight=0.5)
        assert not report.certified
        assert report.finding_codes == ["invalid-policy"]

    def test_no_claimed_metrics_still_certifies(self, model, solved):
        report = certify_solution(model, solved.policy, weight=0.5)
        assert report.certified
        assert report.claimed == {}


class TestConstrainedCertification:
    def test_constrained_solution_certifies(self, model):
        result = optimize_constrained(model, 1.0)
        report = certify_result(
            model, result, constraints={"queue_length": 1.0}
        )
        assert report.certified, report.finding_codes
        assert report.mode == "constrained"
        assert report.weight is None
        assert report.check("bellman").status == "skipped"
        assert report.check("lp").status == "passed"

    def test_bound_violation_detected(self, model):
        # A policy solved under a loose bound, claimed under a tight one.
        loose = optimize_constrained(model, 3.0)
        report = certify_result(
            model, loose, constraints={"queue_length": 0.4}
        )
        assert not report.certified
        assert "lp-constraint-violated" in report.finding_codes

    def test_constrained_result_requires_bounds(self, model):
        result = optimize_constrained(model, 1.0)
        with pytest.raises(CertificationError, match="constraints"):
            certify_result(model, result)


class TestEngineContracts:
    def test_unknown_check_rejected(self, model, solved):
        with pytest.raises(CertificationError, match="unknown"):
            certify_result(model, solved, checks=("bellman", "vibes"))

    def test_missing_objective_rejected(self, model, solved):
        with pytest.raises(CertificationError, match="weight"):
            certify_solution(model, solved.policy)

    def test_bad_tolerance_rejected(self, model, solved):
        with pytest.raises(CertificationError, match="tolerance"):
            certify_result(model, solved, tolerance=0.0)

    def test_require_certified_passes_through(self, model, solved):
        report = certify_result(model, solved)
        assert require_certified(report) is report

    def test_require_certified_raises_with_report(self, model):
        lazy = optimize_weighted(model, 50.0)
        report = certify_solution(model, lazy.policy, weight=0.5)
        with pytest.raises(CertificationFailedError) as excinfo:
            require_certified(report)
        assert excinfo.value.report is report
        assert "bellman-gap-exceeded" in str(excinfo.value)

    def test_metrics_counters_flow(self, model, solved):
        with instrument(metrics=MetricsRegistry()) as ins:
            certify_result(model, solved)
            lazy = optimize_weighted(model, 50.0)
            certify_solution(model, lazy.policy, weight=0.5)
        doc = ins.metrics.to_dict()
        assert doc["certify.runs"]["value"] == 2
        assert doc["certify.certified"]["value"] == 1
        assert doc["certify.failed"]["value"] == 1
        assert doc["certify.checks.passed"]["value"] >= 4


class TestArtifactCertification:
    def test_genuine_artifact_certifies_and_links(self, model, solved):
        artifact = compile_artifact(model, solved, version=1)
        report = certify_artifact(artifact, model)
        assert report.certified
        assert report.artifact_checksum == artifact.checksum

    def test_foreign_model_refused(self, model, solved):
        artifact = compile_artifact(model, solved, version=1)
        other = paper_system(capacity=4)
        with pytest.raises(CertificationError, match="fingerprint"):
            certify_artifact(artifact, other)
