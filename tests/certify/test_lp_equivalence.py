"""LP-vs-policy-iteration equivalence on the paper's operating points.

The certification engine's LP oracle is only as good as the claim that
the occupation-measure LP and the paper's policy-iteration solver agree
on the optimal gain. This pins that equivalence down across Table 1
arrival rates and a spread of Figure 4 weights: at every operating
point the PI solution must earn an LP duality-gap certificate within
tolerance, and the constrained variant must satisfy its bound exactly
at the LP optimum.
"""

from __future__ import annotations

import pytest

from repro.certify import certify_result
from repro.certify.duality import check_lp
from repro.ctmdp.linear_program import solve_average_cost_lp
from repro.dpm.adaptive import rated_model
from repro.dpm.optimizer import optimize_constrained, optimize_weighted
from repro.dpm.presets import paper_system
from repro.experiments.setup import (
    INPUT_RATES,
    QUEUE_LENGTH_BOUND,
)

#: A spread of Figure 4 weights covering lazy through eager policies.
WEIGHTS = (0.05, 0.5, 2.5)

TOLERANCE = 1e-6


@pytest.fixture(scope="module")
def model():
    return paper_system(capacity=3)


class TestTable1OperatingPoints:
    @pytest.mark.parametrize("rate", INPUT_RATES)
    def test_pi_gain_matches_lp_optimum(self, model, rate):
        rated = rated_model(model, rate)
        result = optimize_weighted(rated, 0.5)
        report = certify_result(rated, result, tolerance=TOLERANCE)
        assert report.certified, (rate, report.finding_codes)
        lp = report.check("lp")
        gain = report.check("bellman").data["gain"]
        assert abs(lp.data["duality_gap"]) <= TOLERANCE * max(1.0, abs(gain))

    @pytest.mark.parametrize("weight", WEIGHTS)
    def test_equivalence_across_weights(self, model, weight):
        result = optimize_weighted(model, weight)
        mdp = model.build_ctmdp(weight)
        lp = solve_average_cost_lp(mdp)
        pi_gain = (
            result.metrics.average_power
            + weight * result.metrics.average_queue_length
        )
        scale = max(1.0, abs(pi_gain))
        assert lp.gain == pytest.approx(pi_gain, abs=TOLERANCE * scale)
        check = check_lp(mdp, result.policy, pi_gain, TOLERANCE, scale)
        assert check.status == "passed", check.findings
        assert check.data["lp_status"] == "optimal"
        # The LP's own primal-dual gap closes to machine precision.
        assert abs(check.data["lp_internal_gap"]) < 1e-9

    def test_constrained_optimum_certifies_on_the_paper_bound(self, model):
        result = optimize_constrained(model, QUEUE_LENGTH_BOUND)
        report = certify_result(
            model,
            result,
            constraints={"queue_length": QUEUE_LENGTH_BOUND},
            tolerance=TOLERANCE,
        )
        assert report.certified, report.finding_codes
        lp = report.check("lp")
        assert lp.status == "passed"
        scale = max(1.0, abs(result.metrics.average_power))
        assert abs(lp.data["duality_gap"]) <= TOLERANCE * scale
