"""Certificate format: verdicts, round-trips, tamper detection."""

from __future__ import annotations

import pytest

from repro.certify import (
    CERT_SCHEMA,
    CertFinding,
    CertificationReport,
    CheckResult,
    policy_table_checksum,
)
from repro.dpm.presets import paper_system
from repro.dpm.optimizer import optimize_weighted
from repro.errors import CertificationError


def make_report(checks):
    return CertificationReport(
        mode="weighted",
        rate=1 / 6,
        weight=0.5,
        n_states=23,
        tolerance=1e-6,
        claimed={"gain": 10.0},
        checks=checks,
        policy_checksum="abc123",
    )


class TestVerdict:
    def test_all_passed_certifies(self):
        report = make_report([CheckResult("bellman", "passed")])
        assert report.certified
        assert report.verdict == "certified"

    def test_any_failed_fails(self):
        report = make_report([
            CheckResult("bellman", "passed"),
            CheckResult(
                "lp", "failed",
                findings=[CertFinding("lp-duality-gap", "gap", value=0.1)],
            ),
        ])
        assert not report.certified
        assert report.finding_codes == ["lp-duality-gap"]

    def test_all_skipped_certifies_nothing(self):
        report = make_report([
            CheckResult("bellman", "skipped"),
            CheckResult("lp", "skipped"),
        ])
        assert not report.certified

    def test_skips_beside_passes_are_fine(self):
        report = make_report([
            CheckResult("bellman", "passed"),
            CheckResult("exact", "skipped"),
        ])
        assert report.certified

    def test_invalid_status_typed(self):
        with pytest.raises(CertificationError, match="status"):
            CheckResult("bellman", "maybe")

    def test_check_lookup(self):
        report = make_report([CheckResult("bellman", "passed")])
        assert report.check("bellman").status == "passed"
        assert report.check("missing") is None


class TestDocumentRoundTrip:
    def test_round_trip_preserves_everything(self):
        report = make_report([
            CheckResult(
                "bellman", "failed",
                findings=[CertFinding(
                    "bellman-gap-exceeded", "gap", state="S", value=0.5,
                )],
                data={"gain": 10.0},
            ),
        ])
        doc = report.to_document()
        assert doc["schema"] == CERT_SCHEMA
        loaded = CertificationReport.from_document(doc)
        assert loaded == report
        assert loaded.findings[0].state == "S"

    def test_checksum_tamper_detected(self):
        doc = make_report([CheckResult("bellman", "passed")]).to_document()
        doc["claimed"]["gain"] = 1.0
        with pytest.raises(CertificationError, match="checksum"):
            CertificationReport.from_document(doc)

    def test_forged_verdict_detected(self):
        # Re-checksum a document whose verdict contradicts its checks:
        # the parser recomputes the verdict and refuses.
        report = make_report([
            CheckResult(
                "lp", "failed",
                findings=[CertFinding("lp-duality-gap", "gap")],
            ),
        ])
        doc = report.to_document()
        doc["verdict"] = "certified"
        from repro.certify.report import _checksum

        doc["checksum"] = _checksum(doc)
        with pytest.raises(CertificationError, match="verdict"):
            CertificationReport.from_document(doc)

    def test_unknown_schema_rejected(self):
        doc = make_report([CheckResult("bellman", "passed")]).to_document()
        doc["schema"] = "repro-cert/v999"
        with pytest.raises(CertificationError, match="schema"):
            CertificationReport.from_document(doc)

    def test_missing_checksum_rejected(self):
        doc = make_report([CheckResult("bellman", "passed")]).to_document()
        del doc["checksum"]
        with pytest.raises(CertificationError, match="checksum"):
            CertificationReport.from_document(doc)

    def test_non_object_rejected(self):
        with pytest.raises(CertificationError, match="object"):
            CertificationReport.from_document([1, 2, 3])


class TestPolicyChecksum:
    @pytest.fixture(scope="class")
    def solved(self):
        model = paper_system(capacity=3)
        result = optimize_weighted(model, 0.5)
        return model.build_ctmdp(0.5), result.policy

    def test_deterministic_and_stable(self, solved):
        mdp, policy = solved
        assert policy_table_checksum(mdp, policy) == policy_table_checksum(
            mdp, policy.as_dict()
        )

    def test_sensitive_to_one_action(self, solved):
        mdp, policy = solved
        table = policy.as_dict()
        state = next(
            s for s in mdp.states if len(mdp.actions(s)) > 1
        )
        other = next(a for a in mdp.actions(state) if a != table[state])
        flipped = dict(table)
        flipped[state] = other
        assert policy_table_checksum(mdp, table) != policy_table_checksum(
            mdp, flipped
        )
