"""Structural tests of the joint SYS model against Section III.

These tests pin down the paper's four SQ transition types, the state-
space composition ``X = S x Q_stable U S_active x Q_transfer``, the
three action-validity constraints, and the tensor (Kronecker) structure
of the stable-stable block.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dpm.presets import paper_system
from repro.dpm.service_queue import stable, transfer
from repro.dpm.system import PowerManagedSystemModel, SystemState
from repro.errors import InvalidModelError
from repro.markov.tensor import tensor_sum


@pytest.fixture
def model(paper_model) -> PowerManagedSystemModel:
    return paper_model


LAM = 1.0 / 6.0
MU = 1.0 / 1.5


class TestStateSpace:
    def test_composition(self, model):
        # 3 modes x 6 stable + 1 active mode x 5 transfer = 23.
        assert model.n_states == 23
        stable_count = sum(1 for x in model.states if x.queue.is_stable)
        transfer_count = sum(1 for x in model.states if x.queue.is_transfer)
        assert stable_count == 18
        assert transfer_count == 5

    def test_transfer_states_only_for_active_modes(self, model):
        for x in model.states:
            if x.queue.is_transfer:
                assert model.provider.is_active(x.mode)

    def test_without_transfer_states(self):
        m = paper_system(include_transfer_states=False)
        assert m.n_states == 18
        assert all(x.queue.is_stable for x in m.states)

    def test_capacity_validation(self, paper_provider):
        from repro.dpm.service_requestor import ServiceRequestor

        with pytest.raises(InvalidModelError):
            PowerManagedSystemModel(paper_provider, ServiceRequestor(1.0), 0)

    def test_unknown_state_raises(self, model):
        with pytest.raises(InvalidModelError):
            model.index_of(SystemState("active", stable(99)))


class TestTransitionTypes:
    """The four SQ transition classes of Section III."""

    def test_type1_arrival_in_stable_state(self, model):
        rates = model.transition_rates(SystemState("sleeping", stable(2)), "sleeping")
        assert rates[SystemState("sleeping", stable(3))] == pytest.approx(LAM)

    def test_type1_no_arrival_transition_when_full(self, model):
        rates = model.transition_rates(SystemState("sleeping", stable(5)), "active")
        assert SystemState("sleeping", stable(6)) not in rates

    def test_type2_service_completion_to_transfer(self, model):
        rates = model.transition_rates(SystemState("active", stable(3)), "active")
        assert rates[SystemState("active", transfer(3))] == pytest.approx(MU)

    def test_type2_absent_for_inactive_modes(self, model):
        rates = model.transition_rates(SystemState("waiting", stable(3)), "waiting")
        assert all(not dest.queue.is_transfer for dest in rates)

    def test_type2_absent_at_empty_queue(self, model):
        rates = model.transition_rates(SystemState("active", stable(0)), "active")
        assert all(not dest.queue.is_transfer for dest in rates)

    def test_type3_transfer_resolution_at_switch_rate(self, model):
        rates = model.transition_rates(SystemState("active", transfer(3)), "sleeping")
        dest = SystemState("sleeping", stable(2))
        assert rates[dest] == pytest.approx(1.0 / 0.2)  # chi(active, sleeping)

    def test_type3_self_switch_uses_standin_rate(self, model):
        rates = model.transition_rates(SystemState("active", transfer(3)), "active")
        dest = SystemState("active", stable(2))
        assert rates[dest] == pytest.approx(model.provider.self_switch_rate)

    def test_type4_arrival_in_transfer_state(self, model):
        rates = model.transition_rates(SystemState("active", transfer(2)), "sleeping")
        assert rates[SystemState("active", transfer(3))] == pytest.approx(LAM)

    def test_type4_boundary_drops_arrival(self, model):
        # q_{Q -> Q-1}: the paper leaves this arrival unspecified; we drop it.
        rates = model.transition_rates(SystemState("active", transfer(5)), "active")
        assert all(dest.queue.index <= 5 for dest in rates)

    def test_sp_switch_in_stable_state(self, model):
        rates = model.transition_rates(SystemState("sleeping", stable(1)), "active")
        dest = SystemState("active", stable(1))
        assert rates[dest] == pytest.approx(1.0 / 1.1)

    def test_stay_in_stable_state_has_no_sp_transition(self, model):
        rates = model.transition_rates(SystemState("sleeping", stable(1)), "sleeping")
        assert all(dest.mode == "sleeping" for dest in rates)


class TestActionConstraints:
    def test_constraint1_no_powerdown_in_stable_states(self, model):
        # Active SP, stable queue: inactive destinations forbidden.
        for i in range(6):
            actions = model.valid_actions(SystemState("active", stable(i)))
            assert actions == ["active"]

    def test_constraint1_dropped_without_transfer_states(self):
        m = paper_system(include_transfer_states=False)
        actions = m.valid_actions(SystemState("active", stable(2)))
        assert "sleeping" in actions

    def test_constraint2_full_queue_forces_progress(self, model):
        # waiting at q_Q: only 'active' (sleeping has longer wakeup,
        # staying is no progress).
        assert model.valid_actions(SystemState("waiting", stable(5))) == ["active"]
        # sleeping at q_Q: 'active' or the shorter-wakeup 'waiting'.
        assert model.valid_actions(SystemState("sleeping", stable(5))) == [
            "active",
            "waiting",
        ]

    def test_constraint2_only_at_full_queue(self, model):
        actions = model.valid_actions(SystemState("waiting", stable(4)))
        assert set(actions) == {"active", "waiting", "sleeping"}

    def test_constraint3_no_slower_active_at_full_transfer(self):
        # Build a 2-active-mode provider: 'fast' and 'slow'.
        import numpy as np

        from repro.dpm.service_provider import ServiceProvider
        from repro.dpm.service_requestor import ServiceRequestor

        sp = ServiceProvider(
            ("fast", "slow", "off"),
            switching_rates=np.array(
                [[0.0, 5.0, 5.0], [5.0, 0.0, 5.0], [2.0, 2.0, 0.0]]
            ),
            service_rates=(2.0, 1.0, 0.0),
            power=(10.0, 5.0, 0.0),
            switching_energy=np.zeros((3, 3)),
        )
        m = PowerManagedSystemModel(sp, ServiceRequestor(1.0), capacity=3)
        # In transfer q_{Q->Q-1} from 'fast', 'slow' is forbidden.
        actions_full = m.valid_actions(SystemState("fast", transfer(3)))
        assert "slow" not in actions_full
        # But allowed in a non-boundary transfer state.
        actions_inner = m.valid_actions(SystemState("fast", transfer(2)))
        assert "slow" in actions_inner

    def test_transfer_states_allow_powerdown(self, model):
        actions = model.valid_actions(SystemState("active", transfer(1)))
        assert set(actions) == {"active", "waiting", "sleeping"}

    def test_fastest_active_always_valid(self, model):
        for state in model.states:
            assert model.is_valid_action(state, "active")


class TestCosts:
    def test_effective_power_includes_switch_energy(self, model):
        # pow(active) + chi(active, sleeping) * ene(active, sleeping).
        got = model.effective_power_rate(SystemState("active", transfer(1)), "sleeping")
        assert got == pytest.approx(40.0 + (1.0 / 0.2) * 0.5)

    def test_effective_power_stay_is_mode_power(self, model):
        got = model.effective_power_rate(SystemState("waiting", stable(0)), "waiting")
        assert got == pytest.approx(15.0)

    def test_delay_cost_follows_waiting_count(self, model):
        assert model.delay_cost(SystemState("active", stable(4))) == 4.0
        assert model.delay_cost(SystemState("active", transfer(4))) == 3.0

    def test_loss_rate_only_at_capacity(self, model):
        assert model.loss_rate(SystemState("sleeping", stable(5))) == pytest.approx(LAM)
        assert model.loss_rate(SystemState("active", transfer(5))) == pytest.approx(LAM)
        assert model.loss_rate(SystemState("sleeping", stable(4))) == 0.0


class TestBuildCTMDP:
    def test_negative_weight_rejected(self, model):
        with pytest.raises(InvalidModelError):
            model.build_ctmdp(-1.0)

    def test_rows_conserve(self, paper_mdp):
        for state, action in paper_mdp.state_action_pairs():
            row = paper_mdp.generator_row(state, action)
            assert row.sum() == pytest.approx(0.0, abs=1e-9)

    def test_cost_rate_combines_power_and_weighted_delay(self, model):
        mdp = model.build_ctmdp(weight=2.0)
        state = SystemState("active", stable(3))
        data = mdp.data(state, "active")
        assert data.cost_rate == pytest.approx(40.0 + 2.0 * 3.0)

    def test_impulse_costs_are_switch_energies(self, model, paper_mdp):
        state = SystemState("active", transfer(2))
        data = paper_mdp.data(state, "sleeping")
        dest = model.index_of(SystemState("sleeping", stable(1)))
        assert data.impulse_costs[dest] == pytest.approx(0.5)

    def test_extra_cost_channels_present(self, paper_mdp):
        state, action = paper_mdp.state_action_pairs()[0]
        extras = paper_mdp.data(state, action).extra_costs
        assert set(extras) == {"power", "queue_length", "loss"}

    def test_induced_chains_are_connected_for_all_single_action_rows(
        self, model, paper_mdp
    ):
        # Any valid policy must induce a unichain process; spot-check the
        # 'first action everywhere' policy used to seed policy iteration.
        from repro.ctmdp.policy import Policy
        from repro.markov.classify import classify_states

        assignment = {s: paper_mdp.actions(s)[0] for s in paper_mdp.states}
        g = Policy(paper_mdp, assignment).generator_matrix()
        kinds = classify_states(g)
        recurrent_classes = {
            frozenset(c)
            for c in __import__(
                "repro.markov.classify", fromlist=["communicating_classes"]
            ).communicating_classes(g)
            if all(kinds[i] == "recurrent" for i in c)
        }
        assert len(recurrent_classes) == 1


class TestTensorStructure:
    """The stable-stable block follows the paper's Kronecker layout."""

    def test_inactive_mode_block_is_tensor_sum(self, model):
        # For a policy that keeps every mode fixed (action = own mode),
        # inactive modes have no service and no switches: the joint
        # stable-block dynamics restricted to one inactive mode is the
        # pure-birth arrival chain; across modes it is
        # G_SP(stay)=0 (+) G_arrivals -- verified entry-wise here.
        q = model.capacity
        arrivals = np.zeros((q + 1, q + 1))
        for i in range(q):
            arrivals[i, i + 1] = LAM
        np.fill_diagonal(arrivals, -arrivals.sum(axis=1))
        joint = tensor_sum(np.zeros((1, 1)), arrivals)  # one mode, stay put
        for i in range(q + 1):
            rates = model.transition_rates(
                SystemState("sleeping", stable(i)), "sleeping"
            )
            for j in range(q + 1):
                expected = joint[i, j] if i != j else 0.0
                got = rates.get(SystemState("sleeping", stable(j)), 0.0)
                if i != j:
                    assert got == pytest.approx(expected)

    def test_sp_switch_appears_as_identity_block(self, model):
        # Under action 'active' from 'sleeping', every queue level gets
        # the same chi rate: G_SP(a) (x) I_Q structure.
        chi = model.provider.switching_rate("sleeping", "active")
        for i in range(model.capacity + 1):
            rates = model.transition_rates(
                SystemState("sleeping", stable(i)), "active"
            )
            assert rates[SystemState("active", stable(i))] == pytest.approx(chi)
