"""Property-based tests (hypothesis) for the DPM system layer.

Random multi-mode providers and arrival rates must always yield a
well-formed joint model: valid generator rows, a solvable policy
optimization, physically sensible metrics, and model/simulator
agreement on the optimal policy's power within statistical tolerance.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ctmdp.policy_iteration import policy_iteration
from repro.dpm.analysis import evaluate_dpm_policy
from repro.dpm.service_provider import ServiceProvider
from repro.dpm.service_requestor import ServiceRequestor
from repro.dpm.system import PowerManagedSystemModel


@st.composite
def random_models(draw):
    """A random DPM model: 2-4 modes, exactly one active, random rates."""
    seed = draw(st.integers(0, 10_000))
    n_modes = draw(st.integers(2, 4))
    # Capacity >= 3: at tiny capacities the documented transfer-boundary
    # substitution (the model drops the arrival the simulator physically
    # accepts; DESIGN.md section 4) stops being negligible, which is a
    # known model-approximation property rather than a bug.
    capacity = draw(st.integers(3, 6))
    rng = np.random.default_rng(seed)
    modes = ["active"] + [f"low{k}" for k in range(n_modes - 1)]
    times = rng.uniform(0.05, 3.0, (n_modes, n_modes))
    energy = rng.uniform(0.0, 5.0, (n_modes, n_modes))
    # Power strictly decreasing with depth keeps the model meaningful.
    power = np.sort(rng.uniform(0.1, 50.0, n_modes))[::-1]
    service_rates = [float(rng.uniform(0.3, 3.0))] + [0.0] * (n_modes - 1)
    provider = ServiceProvider.from_switching_times(
        modes=modes,
        switching_times=times,
        service_rates=service_rates,
        power=power,
        switching_energy=energy,
    )
    arrival_rate = float(rng.uniform(0.05, 0.9) * service_rates[0])
    return PowerManagedSystemModel(
        provider, ServiceRequestor(arrival_rate), capacity
    )


class TestRandomModels:
    @given(model=random_models())
    @settings(max_examples=20, deadline=None)
    def test_ctmdp_rows_conserve_and_solve(self, model):
        mdp = model.build_ctmdp(weight=1.0)
        for state, action in mdp.state_action_pairs():
            row = mdp.generator_row(state, action)
            assert row.sum() == pytest.approx(0.0, abs=1e-6)
            assert all(r >= 0 for k, r in enumerate(row) if k != mdp.index_of(state))
        result = policy_iteration(mdp)
        assert np.isfinite(result.gain)
        assert result.iterations <= 30

    @given(model=random_models())
    @settings(max_examples=15, deadline=None)
    def test_optimal_metrics_physical(self, model):
        result = policy_iteration(model.build_ctmdp(weight=1.0))
        metrics = evaluate_dpm_policy(model, result.policy)
        max_power = max(
            model.provider.power_rate(m) for m in model.provider.modes
        )
        # Switching-energy folding can push effective power above mode
        # power, but not beyond one switch's worth per mean switch time.
        assert 0 <= metrics.average_power <= max_power + 120.0
        assert 0 <= metrics.average_queue_length <= model.capacity
        assert 0 <= metrics.loss_rate <= model.requestor.rate + 1e-12
        assert metrics.accepted_rate >= 0

    @given(model=random_models())
    @settings(max_examples=10, deadline=None)
    def test_weight_monotonicity(self, model):
        lazy = policy_iteration(model.build_ctmdp(weight=0.0))
        eager = policy_iteration(model.build_ctmdp(weight=10.0))
        m_lazy = evaluate_dpm_policy(model, lazy.policy)
        m_eager = evaluate_dpm_policy(model, eager.policy)
        assert m_eager.average_queue_length <= m_lazy.average_queue_length + 1e-9
        assert m_eager.average_power >= m_lazy.average_power - 1e-9

    @given(model=random_models(), seed=st.integers(0, 100))
    @settings(max_examples=5, deadline=None)
    def test_model_matches_simulation(self, model, seed):
        from repro.policies import OptimalCTMDPPolicy
        from repro.sim import PoissonProcess, simulate

        result = policy_iteration(model.build_ctmdp(weight=1.0))
        metrics = evaluate_dpm_policy(model, result.policy)
        sim = simulate(
            provider=model.provider,
            capacity=model.capacity,
            workload=PoissonProcess(model.requestor.rate),
            policy=OptimalCTMDPPolicy(result.policy, model.capacity),
            n_requests=6000,
            seed=seed,
        )
        # Statistical tolerance for a 6000-request run over arbitrary
        # parameter corners; the paper-setup agreement (~1%) is asserted
        # tightly in the integration suite. The queue-length estimator
        # mixes slowly at saturated corners (lambda near capacity), so
        # its tolerance is wider than the power tolerance.
        assert sim.average_power == pytest.approx(
            metrics.average_power, rel=0.2
        )
        assert sim.average_queue_length == pytest.approx(
            metrics.average_queue_length, rel=0.35, abs=0.05
        )
