"""Tests for heuristic policy assignments on the joint model."""

from __future__ import annotations

import pytest

from repro.dpm.analysis import evaluate_dpm_policy
from repro.dpm.model_policies import (
    always_on_assignment,
    as_policy,
    default_valid_action,
    greedy_assignment,
    n_policy_assignment,
)
from repro.dpm.service_queue import stable, transfer
from repro.dpm.system import SystemState
from repro.errors import InvalidPolicyError


class TestNPolicyAssignment:
    def test_respects_model_constraints(self, paper_model):
        for n in range(1, 6):
            assignment = n_policy_assignment(paper_model, n)
            for state, action in assignment.items():
                assert paper_model.is_valid_action(state, action), (state, action)

    def test_wakes_at_threshold(self, paper_model):
        assignment = n_policy_assignment(paper_model, 3)
        assert assignment[SystemState("sleeping", stable(2))] == "sleeping"
        assert assignment[SystemState("sleeping", stable(3))] == "active"
        assert assignment[SystemState("sleeping", stable(4))] == "active"

    def test_sleeps_when_system_empties(self, paper_model):
        assignment = n_policy_assignment(paper_model, 3)
        assert assignment[SystemState("active", transfer(1))] == "sleeping"
        # Work remaining: keep serving.
        assert assignment[SystemState("active", transfer(2))] == "active"

    def test_active_states_keep_serving(self, paper_model):
        assignment = n_policy_assignment(paper_model, 2)
        for i in range(6):
            assert assignment[SystemState("active", stable(i))] == "active"

    def test_n_bounds_checked(self, paper_model):
        with pytest.raises(InvalidPolicyError):
            n_policy_assignment(paper_model, 0)
        with pytest.raises(InvalidPolicyError):
            n_policy_assignment(paper_model, 6)

    def test_mode_sanity_checks(self, paper_model):
        with pytest.raises(InvalidPolicyError, match="is active"):
            n_policy_assignment(paper_model, 2, sleep_mode="active")
        with pytest.raises(InvalidPolicyError, match="is inactive"):
            n_policy_assignment(paper_model, 2, active_mode="waiting")

    def test_larger_n_saves_power_costs_delay(self, paper_model):
        mdp = paper_model.build_ctmdp(0.0)
        prev_power = None
        prev_delay = None
        for n in range(1, 6):
            metrics = evaluate_dpm_policy(
                paper_model, as_policy(mdp, n_policy_assignment(paper_model, n))
            )
            if prev_power is not None:
                assert metrics.average_power < prev_power
                assert metrics.average_queue_length > prev_delay
            prev_power = metrics.average_power
            prev_delay = metrics.average_queue_length


class TestGreedyAndAlwaysOn:
    def test_greedy_is_n1(self, paper_model):
        assert greedy_assignment(paper_model) == n_policy_assignment(paper_model, 1)

    def test_always_on_targets_active_everywhere(self, paper_model):
        assignment = always_on_assignment(paper_model)
        assert set(assignment.values()) == {"active"}

    def test_always_on_is_most_powerful_and_fastest(self, paper_model):
        mdp = paper_model.build_ctmdp(0.0)
        on = evaluate_dpm_policy(
            paper_model, as_policy(mdp, always_on_assignment(paper_model))
        )
        greedy = evaluate_dpm_policy(
            paper_model, as_policy(mdp, greedy_assignment(paper_model))
        )
        assert on.average_power > greedy.average_power
        assert on.average_queue_length < greedy.average_queue_length


class TestDefaultValidAction:
    def test_stays_when_valid(self, paper_model):
        state = SystemState("sleeping", stable(0))
        assert default_valid_action(paper_model, state) == "sleeping"

    def test_falls_back_to_fastest_active(self, paper_model):
        # waiting at q_Q cannot stay (constraint 2, strict form).
        state = SystemState("waiting", stable(5))
        assert default_valid_action(paper_model, state) == "active"

    def test_invalid_explicit_assignment_rejected(self, paper_model):
        from repro.dpm.model_policies import _complete

        with pytest.raises(InvalidPolicyError, match="invalid action"):
            _complete(
                paper_model,
                {SystemState("active", stable(2)): "sleeping"},  # constraint 1
            )
