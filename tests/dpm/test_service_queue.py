"""Tests for the SQ state space (stable and transfer states)."""

from __future__ import annotations

import pytest

from repro.dpm.service_queue import (
    QueueState,
    queue_states,
    stable,
    stable_states,
    transfer,
    transfer_states,
)
from repro.errors import InvalidModelError


class TestQueueState:
    def test_stable_waiting_count(self):
        assert stable(3).waiting_count == 3
        assert stable(0).waiting_count == 0

    def test_transfer_waiting_count_is_paper_convention(self):
        # C_sq = i for transfer state q_{i+1 -> i}: the completed request
        # has departed.
        assert transfer(1).waiting_count == 0
        assert transfer(4).waiting_count == 3

    def test_kind_flags(self):
        assert stable(1).is_stable and not stable(1).is_transfer
        assert transfer(1).is_transfer and not transfer(1).is_stable

    def test_repr_is_paper_notation(self):
        assert repr(stable(2)) == "q2"
        assert repr(transfer(3)) == "q3->2"

    def test_invalid_kind_rejected(self):
        with pytest.raises(InvalidModelError):
            QueueState("limbo", 1)

    def test_invalid_indices_rejected(self):
        with pytest.raises(InvalidModelError):
            stable(-1)
        with pytest.raises(InvalidModelError):
            transfer(0)

    def test_hashable_and_ordered(self):
        assert len({stable(1), stable(1), transfer(1)}) == 2
        assert stable(1) < stable(2)


class TestEnumerations:
    def test_stable_states_count(self):
        assert len(stable_states(5)) == 6
        assert stable_states(5)[0] == stable(0)
        assert stable_states(5)[-1] == stable(5)

    def test_transfer_states_count(self):
        assert len(transfer_states(5)) == 5
        assert transfer_states(5)[0] == transfer(1)
        assert transfer_states(5)[-1] == transfer(5)

    def test_queue_states_with_and_without_transfer(self):
        assert len(queue_states(5)) == 11
        assert len(queue_states(5, include_transfer=False)) == 6

    def test_capacity_must_be_positive(self):
        with pytest.raises(InvalidModelError):
            stable_states(0)
        with pytest.raises(InvalidModelError):
            transfer_states(0)
