"""Tests for analytic policy evaluation on the SYS model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ctmdp.policy import Policy
from repro.dpm.analysis import evaluate_dpm_policy, state_probabilities
from repro.dpm.model_policies import always_on_assignment, as_policy
from repro.dpm.presets import paper_system
from repro.queueing.mm1k import MM1KQueue

LAM = 1.0 / 6.0
MU = 1.0 / 1.5


class TestAlwaysOnAgainstMM1K:
    """Always-on reduces the SYS model to a plain M/M/1/K queue, so the
    closed-form results must be reproduced (up to the negligible
    self-switch dwell)."""

    @pytest.fixture(scope="class")
    def metrics(self):
        model = paper_system()
        mdp = model.build_ctmdp(0.0)
        policy = as_policy(mdp, always_on_assignment(model))
        return evaluate_dpm_policy(model, policy)

    @pytest.fixture(scope="class")
    def reference(self):
        return MM1KQueue(LAM, MU, capacity=5)

    def test_queue_length_matches_mm1k(self, metrics, reference):
        assert metrics.average_queue_length == pytest.approx(
            reference.mean_number_in_system(), rel=1e-3
        )

    def test_loss_rate_matches_mm1k(self, metrics, reference):
        expected = LAM * reference.blocking_probability()
        assert metrics.loss_rate == pytest.approx(expected, rel=1e-3)

    def test_waiting_time_matches_mm1k(self, metrics, reference):
        assert metrics.average_waiting_time == pytest.approx(
            reference.mean_sojourn_time(), rel=1e-3
        )

    def test_power_is_active_power(self, metrics):
        # Never switches: exactly the active-mode power.
        assert metrics.average_power == pytest.approx(40.0, rel=1e-6)

    def test_accepted_rate_consistent(self, metrics):
        assert metrics.accepted_rate == pytest.approx(
            LAM - metrics.loss_rate, abs=1e-12
        )

    def test_paper_approximation_uses_raw_lambda(self, metrics):
        assert metrics.paper_waiting_time_approximation == pytest.approx(
            metrics.average_queue_length / LAM
        )


class TestWakeupLatency:
    def test_always_on_has_no_inactive_states_occupied(self, paper_model):
        from repro.dpm.analysis import wakeup_latency
        from repro.dpm.model_policies import always_on_assignment, as_policy

        mdp = paper_model.build_ctmdp(0.0)
        policy = as_policy(mdp, always_on_assignment(paper_model))
        latencies = wakeup_latency(paper_model, policy)
        # Keyed by inactive-mode states only.
        assert all(not paper_model.provider.is_active(s.mode) for s in latencies)
        # Under always-on every inactive state immediately heads active:
        # the latency is just the switch time to active.
        from repro.dpm.service_queue import stable
        from repro.dpm.system import SystemState

        assert latencies[SystemState("sleeping", stable(0))] == pytest.approx(1.1)
        assert latencies[SystemState("waiting", stable(0))] == pytest.approx(0.5)

    def test_lazier_policies_wait_longer(self, paper_model):
        from repro.dpm.analysis import wakeup_latency
        from repro.dpm.model_policies import as_policy, n_policy_assignment
        from repro.dpm.service_queue import stable
        from repro.dpm.system import SystemState

        mdp = paper_model.build_ctmdp(0.0)
        state = SystemState("sleeping", stable(1))
        lat1 = wakeup_latency(
            paper_model, as_policy(mdp, n_policy_assignment(paper_model, 1))
        )[state]
        lat4 = wakeup_latency(
            paper_model, as_policy(mdp, n_policy_assignment(paper_model, 4))
        )[state]
        # N=1 wakes immediately from (sleeping, q1); N=4 waits for three
        # more arrivals (~18 s) first.
        assert lat1 == pytest.approx(1.1)
        assert lat4 > lat1 + 10.0


class TestStateProbabilities:
    def test_probabilities_normalize(self, paper_model, paper_mdp):
        from repro.ctmdp.policy_iteration import policy_iteration

        policy = policy_iteration(paper_mdp).policy
        probs = state_probabilities(policy)
        assert sum(probs.values()) == pytest.approx(1.0)
        assert all(p >= -1e-12 for p in probs.values())

    def test_keyed_by_system_state(self, paper_model, paper_mdp):
        from repro.ctmdp.policy_iteration import policy_iteration

        policy = policy_iteration(paper_mdp).policy
        probs = state_probabilities(policy)
        assert set(probs) == set(paper_model.states)
