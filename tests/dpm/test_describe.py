"""Tests pinning Figures 1 and 2 (Examples 4.1 and 4.3) in text form."""

from __future__ import annotations

import pytest

from repro.dpm.describe import (
    describe_service_provider,
    describe_service_queue,
    describe_system,
    transition_counts,
)
from repro.dpm.model_policies import greedy_assignment
from repro.errors import InvalidPolicyError


class TestFigure1:
    """Example 4.1: policy {<A, wait>, <W, sleep>, <S, wakeup>}."""

    def test_example_4_1_edges(self, paper_provider):
        lines = describe_service_provider(
            paper_provider,
            {"active": "waiting", "waiting": "sleeping", "sleeping": "active"},
        )
        assert lines == [
            "active -> waiting  rate=10",
            "waiting -> sleeping  rate=10",
            "sleeping -> active  rate=0.909091",
        ]

    def test_self_targets_draw_no_edge(self, paper_provider):
        lines = describe_service_provider(
            paper_provider,
            {"active": "active", "waiting": "waiting", "sleeping": "sleeping"},
        )
        assert lines == []

    def test_missing_mode_rejected(self, paper_provider):
        with pytest.raises(InvalidPolicyError, match="no action chosen"):
            describe_service_provider(paper_provider, {"active": "waiting"})


class TestFigure2:
    """Example 4.3: SP active, PM issues *sleep* in every transfer state."""

    @pytest.fixture(scope="class")
    def lines(self):
        from repro.dpm.presets import paper_system

        # The example uses queue length 2.
        return describe_service_queue(
            paper_system(capacity=2), sp_mode="active", transfer_action="sleeping"
        )

    def test_arrival_chain(self, lines):
        assert "q0 -> q1  rate=0.166667" in lines
        assert "q1 -> q2  rate=0.166667" in lines

    def test_service_to_transfer(self, lines):
        assert "q1 -> q1->0  rate=0.666667" in lines
        assert "q2 -> q2->1  rate=0.666667" in lines

    def test_transfer_resolution_at_sleep_rate(self, lines):
        # chi(active, sleeping) = 1/0.2 = 5; the SP leaves toward sleep.
        assert "q1->0 -> q0  rate=5  (SP -> sleeping)" in lines
        assert "q2->1 -> q1  rate=5  (SP -> sleeping)" in lines

    def test_transfer_arrival_edge(self, lines):
        assert "q1->0 -> q2->1  rate=0.166667" in lines

    def test_boundary_transfer_has_no_arrival_edge(self, lines):
        assert not any(line.startswith("q2->1 -> q3->2") for line in lines)

    def test_edge_count_matches_section_iii(self, lines):
        # Q=2: arrivals 2 (stable) + 1 (transfer), service 2, resolution 2.
        assert len(lines) == 7


class TestDescribeSystem:
    def test_full_listing_covers_every_state(self, paper_model):
        assignment = greedy_assignment(paper_model)
        lines = describe_system(paper_model, assignment)
        # Every non-absorbing state appears as a source.
        sources = {line.split(" -> ")[0] for line in lines}
        assert len(sources) >= paper_model.n_states - 1

    def test_missing_state_rejected(self, paper_model):
        with pytest.raises(InvalidPolicyError, match="misses"):
            describe_system(paper_model, {})

    def test_transition_counts(self, paper_model):
        counts = transition_counts(paper_model, greedy_assignment(paper_model))
        # Type 2 (service -> transfer): active states q1..q5.
        assert counts["service"] == 5
        # Type 3: every transfer state resolves exactly once.
        assert counts["transfer_resolution"] == 5
        assert counts["arrival"] > 0
        assert counts["sp_switch"] > 0
