"""Tests for the service-provider model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dpm.service_provider import ServiceProvider
from repro.errors import InvalidModelError


@pytest.fixture
def sp(paper_provider) -> ServiceProvider:
    return paper_provider


class TestConstruction:
    def test_paper_switching_rates_from_times(self, sp):
        # Eqn 4.1(a): active->waiting takes 0.1 s on average.
        assert sp.switching_rate("active", "waiting") == pytest.approx(10.0)
        assert sp.switching_rate("sleeping", "active") == pytest.approx(1 / 1.1)

    def test_switching_time_round_trip(self, sp):
        assert sp.switching_time("waiting", "active") == pytest.approx(0.5)

    def test_self_switch_is_fast(self, sp):
        assert sp.switching_time("active", "active") <= 1e-3

    def test_rejects_duplicate_modes(self):
        with pytest.raises(InvalidModelError, match="unique"):
            ServiceProvider(
                ("a", "a"),
                np.ones((2, 2)),
                (1.0, 0.0),
                (1.0, 1.0),
                np.zeros((2, 2)),
            )

    def test_rejects_nonpositive_switch_rate(self):
        chi = np.array([[0.0, 0.0], [1.0, 0.0]])
        with pytest.raises(InvalidModelError, match="positive"):
            ServiceProvider(("a", "b"), chi, (1.0, 0.0), (1.0, 1.0), np.zeros((2, 2)))

    def test_rejects_all_inactive(self):
        with pytest.raises(InvalidModelError, match="active"):
            ServiceProvider(
                ("a", "b"),
                np.ones((2, 2)),
                (0.0, 0.0),
                (1.0, 1.0),
                np.zeros((2, 2)),
            )

    def test_rejects_negative_power(self):
        with pytest.raises(InvalidModelError, match="power"):
            ServiceProvider(
                ("a", "b"),
                np.ones((2, 2)),
                (1.0, 0.0),
                (-1.0, 1.0),
                np.zeros((2, 2)),
            )

    def test_rejects_bad_switching_times(self):
        with pytest.raises(InvalidModelError, match="positive"):
            ServiceProvider.from_switching_times(
                ("a", "b"),
                np.array([[0.0, -0.1], [0.5, 0.0]]),
                (1.0, 0.0),
                (1.0, 1.0),
                np.zeros((2, 2)),
            )

    def test_unknown_mode_raises(self, sp):
        with pytest.raises(InvalidModelError, match="unknown mode"):
            sp.index_of("hibernate")


class TestModeQueries:
    def test_active_inactive_split(self, sp):
        assert sp.active_modes == ("active",)
        assert sp.inactive_modes == ("waiting", "sleeping")
        assert sp.is_active("active")
        assert not sp.is_active("waiting")

    def test_service_rates(self, sp):
        assert sp.service_rate("active") == pytest.approx(1 / 1.5)
        assert sp.service_rate("sleeping") == 0.0

    def test_power_rates(self, sp):
        assert sp.power_rate("active") == 40.0
        assert sp.power_rate("waiting") == 15.0
        assert sp.power_rate("sleeping") == pytest.approx(0.1)

    def test_switching_energy(self, sp):
        # Eqn 4.1(b): sleeping->active costs 11 J; self switches free.
        assert sp.switching_energy("sleeping", "active") == 11.0
        assert sp.switching_energy("active", "active") == 0.0

    def test_wakeup_times(self, sp):
        assert sp.wakeup_time("active") == 0.0
        assert sp.wakeup_time("waiting") == pytest.approx(0.5)
        assert sp.wakeup_time("sleeping") == pytest.approx(1.1)

    def test_service_times(self, sp):
        assert sp.service_time("active") == pytest.approx(1.5)
        assert sp.service_time("sleeping") == np.inf

    def test_mode_selection_helpers(self, sp):
        assert sp.deepest_sleep_mode() == "sleeping"
        assert sp.fastest_active_mode() == "active"


class TestGeneratorMatrix:
    def test_only_action_destination_enabled(self, sp):
        g = sp.generator_matrix("sleeping")
        i_a, i_w, i_s = 0, 1, 2
        assert g[i_a, i_s] == pytest.approx(1 / 0.2)
        assert g[i_w, i_s] == pytest.approx(1 / 0.1)
        assert g[i_a, i_w] == 0.0
        # Destination row stays put.
        np.testing.assert_allclose(g[i_s], 0.0)

    def test_rows_sum_to_zero(self, sp):
        for mode in sp.modes:
            g = sp.generator_matrix(mode)
            np.testing.assert_allclose(g.sum(axis=1), 0.0, atol=1e-12)
