"""Tests for the cost model (Eqn. 3.1) and the service requestor."""

from __future__ import annotations

import pytest

from repro.dpm.cost import LOSS, POWER, QUEUE_LENGTH, CostRates, weighted_cost
from repro.dpm.service_requestor import ServiceRequestor
from repro.errors import InvalidModelError


class TestWeightedCost:
    def test_eqn_3_1(self):
        assert weighted_cost(power=10.0, delay=3.0, weight=2.0) == 16.0

    def test_zero_weight_is_pure_power(self):
        assert weighted_cost(10.0, 99.0, 0.0) == 10.0

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            weighted_cost(1.0, 1.0, -0.1)


class TestCostRates:
    def test_combined(self):
        rates = CostRates(power=5.0, queue_length=2.0, loss=0.1)
        assert rates.combined(3.0) == pytest.approx(11.0)

    def test_as_extra_costs_channels(self):
        rates = CostRates(power=5.0, queue_length=2.0, loss=0.1)
        extras = rates.as_extra_costs()
        assert extras == {POWER: 5.0, QUEUE_LENGTH: 2.0, LOSS: 0.1}


class TestServiceRequestor:
    def test_rate_and_mean(self):
        sr = ServiceRequestor(0.25)
        assert sr.rate == 0.25
        assert sr.mean_interarrival_time == 4.0

    def test_with_rate_returns_new_instance(self):
        sr = ServiceRequestor(1.0)
        sr2 = sr.with_rate(2.0)
        assert sr2.rate == 2.0
        assert sr.rate == 1.0

    def test_nonpositive_rate_rejected(self):
        with pytest.raises(InvalidModelError):
            ServiceRequestor(0.0)
        with pytest.raises(InvalidModelError):
            ServiceRequestor(-1.0)
