"""Tests for the exact Pareto-frontier builder."""

from __future__ import annotations

import pytest

from repro.dpm.pareto import (
    deterministic_frontier,
    dominated_by_frontier,
    randomized_frontier,
)
from repro.errors import SolverError


@pytest.fixture(scope="module")
def frontier(paper_model):
    return deterministic_frontier(paper_model, max_weight=100.0)


class TestDeterministicFrontier:
    def test_sorted_and_pareto_ordered(self, frontier):
        delays = [p.delay for p in frontier]
        powers = [p.power for p in frontier]
        assert delays == sorted(delays)
        assert powers == sorted(powers, reverse=True)

    def test_no_duplicate_points(self, frontier):
        keys = {(round(p.power, 9), round(p.delay, 9)) for p in frontier}
        assert len(keys) == len(frontier)

    def test_contains_both_extremes(self, frontier):
        # Weight 0 (power miser) and huge weight (delay miser) endpoints.
        assert frontier[0].weight > frontier[-1].weight or frontier[
            0
        ].weight == pytest.approx(100.0, rel=1.0)
        assert frontier[-1].weight == 0.0

    def test_supersedes_any_grid_sweep(self, paper_model, frontier):
        # Every point a weight grid can find is already on the frontier.
        from repro.dpm.optimizer import sweep_weights

        for result in sweep_weights(paper_model, [0.1, 0.7, 1.2, 3.0, 30.0]):
            assert dominated_by_frontier(
                frontier,
                result.metrics.average_power,
                result.metrics.average_queue_length,
                slack=1e-6,
            )

    def test_policies_are_attached_and_consistent(self, paper_model, frontier):
        from repro.dpm.analysis import evaluate_dpm_policy

        point = frontier[len(frontier) // 2]
        metrics = evaluate_dpm_policy(paper_model, point.policy)
        assert metrics.average_power == pytest.approx(point.power)

    def test_richer_than_a_coarse_grid(self, frontier):
        # The paper-model frontier has at least 4 distinct points.
        assert len(frontier) >= 4

    def test_invalid_max_weight(self, paper_model):
        with pytest.raises(SolverError):
            deterministic_frontier(paper_model, max_weight=0.0)


class TestRandomizedFrontier:
    def test_hull_below_deterministic_curve(self, paper_model, frontier):
        # At a delay strictly between two deterministic vertices the
        # randomized optimum must not exceed the interpolating vertex
        # power (and typically improves on it).
        import bisect

        inner = [p for p in frontier if frontier[0].delay < p.delay]
        assert inner
        left, right = frontier[0], inner[0]  # left: lower delay, more power
        mid_delay = 0.5 * (left.delay + right.delay)
        (hull_point,) = randomized_frontier(paper_model, [mid_delay])
        # Never worse than the vertex that satisfies the bound (left).
        assert hull_point.average_power <= left.power + 1e-6
        # And at most the linear interpolation between the vertices.
        t = (mid_delay - left.delay) / (right.delay - left.delay)
        interpolated = left.power + t * (right.power - left.power)
        assert hull_point.average_power <= interpolated + 1e-6

    def test_monotone_in_bound(self, paper_model):
        loose, tight = randomized_frontier(paper_model, [2.0, 0.8])
        assert tight.average_power >= loose.average_power - 1e-9
