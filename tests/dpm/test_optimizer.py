"""Tests for the policy-optimization workflow (Figure 3)."""

from __future__ import annotations

import pytest

from repro.dpm.optimizer import (
    find_weight_for_constraint,
    optimize_constrained,
    optimize_weighted,
    sweep_weights,
)
from repro.errors import InfeasibleConstraintError, SolverError


class TestOptimizeWeighted:
    def test_solvers_agree_on_gain(self, paper_model):
        results = {
            solver: optimize_weighted(paper_model, 1.0, solver=solver)
            for solver in ("policy_iteration", "linear_program")
        }
        powers = {s: r.metrics.average_power for s, r in results.items()}
        assert powers["policy_iteration"] == pytest.approx(
            powers["linear_program"], rel=1e-6
        )

    def test_unknown_solver_rejected(self, paper_model):
        with pytest.raises(SolverError, match="unknown solver"):
            optimize_weighted(paper_model, 1.0, solver="quantum")

    def test_weight_zero_minimizes_power_only(self, paper_model):
        r0 = optimize_weighted(paper_model, 0.0)
        r5 = optimize_weighted(paper_model, 5.0)
        assert r0.metrics.average_power <= r5.metrics.average_power + 1e-9

    def test_result_carries_weight(self, paper_model):
        assert optimize_weighted(paper_model, 2.5).weight == 2.5


class TestSweepWeights:
    def test_tradeoff_monotone(self, paper_model):
        results = sweep_weights(paper_model, [0.1, 0.5, 1.0, 2.0, 5.0])
        powers = [r.metrics.average_power for r in results]
        delays = [r.metrics.average_queue_length for r in results]
        for i in range(len(results) - 1):
            assert powers[i + 1] >= powers[i] - 1e-9
            assert delays[i + 1] <= delays[i] + 1e-9


class TestConstrained:
    def test_lp_hits_bound_or_better(self, paper_model):
        result = optimize_constrained(paper_model, 1.0)
        assert result.metrics.average_queue_length <= 1.0 + 1e-6
        assert result.weight is None

    def test_tighter_bound_costs_power(self, paper_model):
        loose = optimize_constrained(paper_model, 2.0)
        tight = optimize_constrained(paper_model, 0.6)
        assert tight.metrics.average_power >= loose.metrics.average_power - 1e-9

    def test_infeasible_bound_raises(self, paper_model):
        # Queue length can never be negative.
        with pytest.raises(InfeasibleConstraintError):
            optimize_constrained(paper_model, -0.5)

    def test_lp_beats_or_matches_weight_bisection(self, paper_model):
        # The randomized constrained optimum is at least as good as the
        # best deterministic policy found by weight tuning.
        lp = optimize_constrained(paper_model, 1.0)
        det = find_weight_for_constraint(paper_model, 1.0)
        assert lp.metrics.average_power <= det.metrics.average_power + 1e-9


class TestFindWeightForConstraint:
    def test_constraint_satisfied(self, paper_model):
        result = find_weight_for_constraint(paper_model, 1.0)
        assert result.metrics.average_queue_length <= 1.0 + 1e-9
        assert result.weight is not None

    def test_loose_bound_returns_weight_zero(self, paper_model):
        result = find_weight_for_constraint(paper_model, 100.0)
        assert result.weight == 0.0

    def test_unreachable_bound_raises(self, paper_model):
        with pytest.raises(InfeasibleConstraintError):
            find_weight_for_constraint(
                paper_model, 0.0, weight_upper_bound=10.0
            )
