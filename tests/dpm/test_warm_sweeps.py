"""Cross-solve reuse: warm-started sweeps, skeleton/overlay, caching.

The warm-start contract (DESIGN §12): seeding a solve with a
neighboring weight's converged policy never changes the result -- only
the number of improvement rounds. This suite asserts it property-style
over randomized admitted models and weight grids, plus the
skeleton/overlay bit-identity and the ``(weight, backend)`` LRU
semantics of :meth:`PowerManagedSystemModel.build_ctmdp`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ctmdp.policy import Policy
from repro.ctmdp.policy_iteration import policy_iteration
from repro.dpm.optimizer import (
    find_weight_for_constraint,
    optimize_weighted,
    sweep_weights,
)
from repro.dpm.pareto import deterministic_frontier
from repro.dpm.presets import paper_system
from repro.dpm.system import PowerManagedSystemModel
from repro.obs.metrics import MetricsRegistry
from repro.obs.runtime import instrument
from repro.robust.admission import admit_model
from repro.robust.fuzz import build_from_spec, generate_spec

#: Randomized-model corpus for the property tests: seeded jitters of
#: the paper system plus fuzzer SYS specs, all admission-checked.
RANDOM_MODEL_SEEDS = (3, 17, 29)
FUZZ_SYS_SPECS = (
    ("baseline", 12),
    ("paper_perturbed", 11),
    ("near_duplicate_actions", 7),
)


def _random_admitted_model(seed: int) -> PowerManagedSystemModel:
    """A parameter-jittered paper system that passes admission."""
    rng = np.random.default_rng(seed)
    model = paper_system(
        arrival_rate=float(rng.uniform(0.2, 1.2)),
        capacity=int(rng.integers(2, 7)),
    )
    report = admit_model(model, raise_on_reject=False)
    assert report.verdict != "rejected"
    return model


def _fuzz_sys_model(kind: str, seed: int) -> PowerManagedSystemModel:
    model, is_sys = build_from_spec(generate_spec(kind, seed))
    assert is_sys
    report = admit_model(model, raise_on_reject=False)
    assert report.verdict != "rejected"
    if report.repaired_model is not None:
        return report.repaired_model
    return model


def _weight_grid(rng: np.random.Generator) -> "list[float]":
    lo = float(rng.uniform(0.0, 0.2))
    hi = float(rng.uniform(1.0, 8.0))
    return list(np.linspace(lo, hi, int(rng.integers(5, 9))))


def _sweep_fingerprint(results):
    return [
        (r.weight, r.policy.as_dict(), r.metrics) for r in results
    ]


class TestWarmSweepProperty:
    """Satellite: randomized models x weight grids, warm == cold."""

    @pytest.mark.parametrize("seed", RANDOM_MODEL_SEEDS)
    def test_warm_sweep_bit_identical_and_no_slower(self, seed):
        model = _random_admitted_model(seed)
        weights = _weight_grid(np.random.default_rng(seed + 1000))
        cold = sweep_weights(model, weights, warm_start=False)
        warm = sweep_weights(model, weights)
        assert _sweep_fingerprint(warm) == _sweep_fingerprint(cold)
        # Per-weight iteration counts: the warm chain must never take
        # more improvement rounds than a cold start (optimize_weighted
        # doesn't expose iterations, so replay the chain directly).
        previous = None
        for w, cold_result in zip(weights, cold):
            mdp = model.build_ctmdp(w)
            cold_pi = policy_iteration(mdp)
            warm_pi = policy_iteration(mdp, initial_policy=previous)
            assert warm_pi.policy.as_dict() == cold_pi.policy.as_dict()
            assert warm_pi.gain == cold_pi.gain
            np.testing.assert_array_equal(warm_pi.bias, cold_pi.bias)
            assert warm_pi.iterations <= cold_pi.iterations
            assert cold_pi.policy.as_dict() == cold_result.policy.as_dict()
            previous = Policy._trusted(mdp, warm_pi.policy.as_dict())

    @pytest.mark.parametrize("kind,seed", FUZZ_SYS_SPECS)
    def test_warm_sweep_on_fuzz_models(self, kind, seed):
        model = _fuzz_sys_model(kind, seed)
        weights = _weight_grid(np.random.default_rng(seed))
        cold = sweep_weights(model, weights, warm_start=False)
        warm = sweep_weights(model, weights)
        assert _sweep_fingerprint(warm) == _sweep_fingerprint(cold)

    def test_warm_sweep_seeds_counted(self):
        model = paper_system(capacity=3)
        weights = [0.0, 0.5, 1.0, 2.0]
        metrics = MetricsRegistry()
        with instrument(metrics=metrics):
            sweep_weights(model, weights)
        doc = metrics.to_dict()
        # First solve is cold, every later one is seeded.
        assert doc["solver.reuse.warm_start_seeds"]["value"] == len(weights) - 1
        assert "solver.reuse.warm_start_rejected" not in doc

    def test_parallel_sweep_stays_cold_and_identical(self):
        model = paper_system(capacity=2)
        weights = [0.0, 1.0, 3.0]
        serial = sweep_weights(model, weights)
        pooled = sweep_weights(model, weights, n_jobs=2)
        assert _sweep_fingerprint(serial) == _sweep_fingerprint(pooled)

    def test_stale_seed_falls_back_to_cold(self):
        # A policy from a structurally different model must be rejected
        # and re-solved cold, not crash or corrupt the result. The
        # capacity-2 policy's assignment lacks the q3..q6 states of the
        # capacity-6 model, so the solver's row lookup fails.
        big = paper_system(capacity=6)
        small = paper_system(capacity=2)
        foreign = optimize_weighted(small, 1.0).policy
        metrics = MetricsRegistry()
        with instrument(metrics=metrics):
            warm = optimize_weighted(big, 1.0, initial_policy=foreign)
        cold = optimize_weighted(big, 1.0)
        assert warm.policy.as_dict() == cold.policy.as_dict()
        assert warm.metrics == cold.metrics
        doc = metrics.to_dict()
        assert doc["solver.reuse.warm_start_rejected"]["value"] == 1

    def test_seeded_solver_failure_falls_back_to_cold(self, monkeypatch):
        # A seeded improvement path can wander into a (numerically)
        # multichain policy whose evaluation system is singular -- a
        # SolverError a cold start never sees. The warm solve must then
        # retry cold, not surface the failure.
        import repro.dpm.optimizer as optimizer_module
        from repro.errors import SolverError

        real = optimizer_module.policy_iteration

        def fragile(mdp, initial_policy=None, **kwargs):
            if initial_policy is not None:
                raise SolverError("singular evaluation system")
            return real(mdp, initial_policy=initial_policy, **kwargs)

        monkeypatch.setattr(optimizer_module, "policy_iteration", fragile)
        model = paper_system(capacity=3)
        cold = sweep_weights(model, [0.0, 1.0, 2.0], warm_start=False)
        metrics = MetricsRegistry()
        with instrument(metrics=metrics):
            warm = sweep_weights(model, [0.0, 1.0, 2.0])
        assert _sweep_fingerprint(warm) == _sweep_fingerprint(cold)
        doc = metrics.to_dict()
        assert doc["solver.reuse.warm_start_rejected"]["value"] == 2

    def test_cold_solver_failure_still_raises(self, monkeypatch):
        import repro.dpm.optimizer as optimizer_module
        from repro.errors import SolverError

        def always_broken(mdp, initial_policy=None, **kwargs):
            raise SolverError("genuinely unsolvable")

        monkeypatch.setattr(
            optimizer_module, "policy_iteration", always_broken
        )
        with pytest.raises(SolverError, match="genuinely unsolvable"):
            optimize_weighted(paper_system(capacity=2), 1.0)


class TestWarmFrontier:
    def test_frontier_warm_matches_cold(self):
        model = paper_system(capacity=3)
        cold = deterministic_frontier(
            model, max_weight=50.0, weight_tolerance=0.01, warm_start=False
        )
        warm = deterministic_frontier(
            model, max_weight=50.0, weight_tolerance=0.01
        )
        assert [(p.weight, p.policy, p.metrics) for p in warm] == [
            (p.weight, p.policy, p.metrics) for p in cold
        ]

    def test_constrained_search_warm_matches_cold(self):
        model = paper_system(capacity=3)
        cold = find_weight_for_constraint(model, 1.5, warm_start=False)
        warm = find_weight_for_constraint(model, 1.5)
        assert warm.weight == cold.weight
        assert warm.policy.as_dict() == cold.policy.as_dict()
        assert warm.metrics == cold.metrics


class TestSkeletonOverlay:
    """The split sparse build must equal the single-pass one bit-for-bit."""

    @pytest.mark.parametrize("weight", [0.0, 0.3, 1.0, 7.5])
    def test_overlay_costs_match_cold_build(self, weight):
        warm_model = paper_system(capacity=8)
        warm_model.build_ctmdp(0.125, backend="sparse")  # primes skeleton
        overlaid = warm_model.build_ctmdp(weight, backend="sparse")
        cold_model = paper_system(capacity=8)
        cold = cold_model.build_ctmdp(weight, backend="sparse")
        np.testing.assert_array_equal(overlaid.cost, cold.cost)
        np.testing.assert_array_equal(
            overlaid.generator.data, cold.generator.data
        )
        np.testing.assert_array_equal(
            overlaid.generator.indices, cold.generator.indices
        )
        g_w, c_w, s_w = overlaid.canonical()
        g_c, c_c, s_c = cold.canonical()
        assert s_w == s_c
        np.testing.assert_array_equal(c_w, c_c)
        np.testing.assert_array_equal(g_w.data, g_c.data)

    def test_siblings_share_structural_arrays(self):
        model = paper_system(capacity=8)
        a = model.build_ctmdp(0.5, backend="sparse")
        b = model.build_ctmdp(2.0, backend="sparse")
        assert a.generator is b.generator
        assert a.canonical()[0] is b.canonical()[0]
        assert a.cost is not b.cost

    def test_skeleton_counters(self):
        model = paper_system(capacity=4)
        metrics = MetricsRegistry()
        with instrument(metrics=metrics):
            model.build_ctmdp(0.5, backend="sparse")
            model.build_ctmdp(2.0, backend="sparse")
            model.build_ctmdp(9.0, backend="sparse")
        doc = metrics.to_dict()
        assert doc["solver.reuse.skeleton_builds"]["value"] == 1
        assert doc["solver.reuse.skeleton_hits"]["value"] == 2

    def test_sparse_solution_matches_dense(self):
        model = paper_system(capacity=8)
        model.build_ctmdp(0.25, backend="sparse")  # prime the skeleton
        dense = optimize_weighted(model, 1.0, backend="dense")
        sparse = optimize_weighted(model, 1.0, backend="sparse")
        assert sparse.policy.as_dict() == dense.policy.as_dict()
        # Sparse evaluation is a different factorization, so metrics
        # agree to solver precision, not bit-for-bit.
        assert sparse.metrics.average_power == pytest.approx(
            dense.metrics.average_power, rel=1e-9
        )
        assert sparse.metrics.average_queue_length == pytest.approx(
            dense.metrics.average_queue_length, rel=1e-9
        )


class TestBuildCache:
    """Satellite: the LRU key is (weight, backend), not the weight."""

    def test_dense_and_sparse_builds_coexist(self):
        model = paper_system(capacity=4)
        dense = model.build_ctmdp(1.0, backend="dense")
        sparse = model.build_ctmdp(1.0, backend="sparse")
        # Neither build evicted the other: both hit the cache again.
        assert model.build_ctmdp(1.0, backend="dense") is dense
        assert model.build_ctmdp(1.0, backend="sparse") is sparse

    def test_lru_eviction_is_per_pair(self):
        model = paper_system(capacity=2)
        first = model.build_ctmdp(0.0, backend="sparse")
        for k in range(model.CTMDP_CACHE_SIZE - 1):
            model.build_ctmdp(float(k + 1), backend="sparse")
        assert model.build_ctmdp(0.0, backend="sparse") is first  # still hot
        for k in range(model.CTMDP_CACHE_SIZE):
            model.build_ctmdp(float(k + 100), backend="dense")
        assert model.build_ctmdp(0.0, backend="sparse") is not first

    def test_clear_caches_forces_rebuild(self):
        model = paper_system(capacity=4)
        before = model.build_ctmdp(1.0, backend="sparse")
        model.clear_caches()
        after = model.build_ctmdp(1.0, backend="sparse")
        assert after is not before
        np.testing.assert_array_equal(after.cost, before.cost)
        np.testing.assert_array_equal(
            after.generator.data, before.generator.data
        )

    def test_pickle_drops_skeleton_but_round_trips(self):
        import pickle

        model = paper_system(capacity=4)
        original = model.build_ctmdp(1.0, backend="sparse")
        clone = pickle.loads(pickle.dumps(model))
        assert clone._sparse_skeleton is None
        rebuilt = clone.build_ctmdp(1.0, backend="sparse")
        np.testing.assert_array_equal(rebuilt.cost, original.cost)
        np.testing.assert_array_equal(
            rebuilt.generator.data, original.generator.data
        )


class TestClearCachesCycles:
    """Satellite: ``clear_caches()`` against the skeleton/overlay cache
    under repeated solve/clear cycles (only the happy path was tested).
    """

    def test_repeated_sweep_clear_cycles_bit_identical(self):
        from repro.dpm.optimizer import serialize_result

        model = paper_system(capacity=4)
        weights = [0.2, 1.0, 5.0]
        baseline = [
            serialize_result(r)
            for r in sweep_weights(model, weights, backend="sparse")
        ]
        model.clear_caches()
        metrics = MetricsRegistry()
        with instrument(metrics=metrics):
            for _ in range(3):
                results = sweep_weights(model, weights, backend="sparse")
                assert [serialize_result(r) for r in results] == baseline
                model.clear_caches()
        # Each cycle rebuilt the skeleton exactly once (the overlay
        # cache was genuinely dropped, not silently reused), and every
        # weight after the first in a cycle hit the rebuilt skeleton.
        doc = metrics.to_dict()
        assert doc["solver.reuse.skeleton_builds"]["value"] == 3
        assert doc["solver.reuse.skeleton_hits"]["value"] == 3 * (
            len(weights) - 1
        )

    def test_clear_between_solves_does_not_change_results(self):
        from repro.dpm.optimizer import serialize_result

        model = paper_system(capacity=4)
        cached = optimize_weighted(model, 1.0, backend="sparse")
        model.clear_caches()
        rebuilt = optimize_weighted(model, 1.0, backend="sparse")
        assert serialize_result(rebuilt) == serialize_result(cached)

    def test_clear_caches_is_idempotent(self):
        model = paper_system(capacity=3)
        model.clear_caches()
        model.clear_caches()
        result = optimize_weighted(model, 1.0, backend="sparse")
        assert result.metrics.average_power > 0
