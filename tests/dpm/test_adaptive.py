"""Tests for online rate estimation and adaptive re-solving."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dpm.adaptive import AdaptivePolicySolver, AdaptiveRateEstimator
from repro.dpm.presets import paper_system
from repro.errors import InvalidModelError


class TestAdaptiveRateEstimator:
    def test_initial_rate_before_samples(self):
        est = AdaptiveRateEstimator(initial_rate=2.5)
        assert est.rate() == 2.5
        assert not est.warmed_up

    def test_exact_rate_for_regular_arrivals(self):
        est = AdaptiveRateEstimator(window=10)
        for k in range(11):
            est.observe_arrival(2.0 * k)  # one arrival every 2 s
        assert est.rate() == pytest.approx(0.5)
        assert est.warmed_up
        assert est.mean_interarrival() == pytest.approx(2.0)

    def test_window_slides(self):
        est = AdaptiveRateEstimator(window=5)
        t = 0.0
        for _ in range(6):
            t += 10.0
            est.observe_arrival(t)
        for _ in range(5):  # five fast gaps push out all slow ones
            t += 1.0
            est.observe_arrival(t)
        assert est.rate() == pytest.approx(1.0)

    def test_paper_50_event_accuracy_claim(self):
        # Section III: ~5 % error after observing 50 events. Check the
        # median error over repeated trials at the paper's default window.
        rng = np.random.default_rng(0)
        true_rate = 1.0 / 6.0
        errors = []
        for _ in range(200):
            est = AdaptiveRateEstimator()
            t = 0.0
            for __ in range(51):
                t += rng.exponential(1.0 / true_rate)
                est.observe_arrival(t)
            errors.append(abs(est.rate() - true_rate) / true_rate)
        assert np.median(errors) < 0.12
        assert np.mean(errors) < 0.15

    def test_rejects_decreasing_timestamps(self):
        est = AdaptiveRateEstimator()
        est.observe_arrival(5.0)
        with pytest.raises(InvalidModelError):
            est.observe_arrival(4.0)

    def test_validation(self):
        with pytest.raises(InvalidModelError):
            AdaptiveRateEstimator(window=0)
        with pytest.raises(InvalidModelError):
            AdaptiveRateEstimator(initial_rate=0.0)


class TestAdaptivePolicySolver:
    @pytest.fixture
    def solver(self):
        return AdaptivePolicySolver(paper_system(), weight=1.0, band_width=0.2)

    def test_caches_within_band(self, solver):
        r1 = solver.policy_for_rate(0.167)
        r2 = solver.policy_for_rate(0.168)
        assert r1 is r2
        assert solver.n_solves == 1

    def test_resolves_for_distant_rate(self, solver):
        solver.policy_for_rate(1.0 / 6.0)
        solver.policy_for_rate(1.0 / 3.0)
        assert solver.n_solves == 2

    def test_band_policy_is_reasonable(self, solver):
        # The band-center policy evaluated on the band-center model must
        # beat always-on power.
        result = solver.policy_for_rate(1.0 / 6.0)
        assert result.metrics.average_power < 40.0

    def test_rejects_bad_inputs(self):
        with pytest.raises(InvalidModelError):
            AdaptivePolicySolver(paper_system(), weight=1.0, band_width=1.5)
        solver = AdaptivePolicySolver(paper_system(), weight=1.0)
        with pytest.raises(InvalidModelError):
            solver.policy_for_rate(0.0)
