"""Tests for the model-verification sweep.

The headline check: on the paper's model, *every sampled admissible
deterministic policy* induces a unichain process -- the property the
Section-III constraints were designed to guarantee (and without which
policy iteration's evaluation step would be singular).
"""

from __future__ import annotations

import pytest

from repro.dpm.model_policies import greedy_assignment, n_policy_assignment
from repro.dpm.presets import paper_system
from repro.dpm.verification import (
    count_policies,
    is_unichain,
    verify_all_policies_unichain,
    verify_model,
    verify_policy_unichain,
)


class TestIsUnichain:
    def test_irreducible_is_unichain(self, two_state_generator):
        assert is_unichain(two_state_generator)

    def test_transient_plus_recurrent_is_unichain(self, absorbing_generator):
        assert is_unichain(absorbing_generator)

    def test_two_blocks_is_multichain(self, reducible_generator):
        assert not is_unichain(reducible_generator)


class TestPolicyChecks:
    def test_heuristic_policies_unichain(self, paper_model):
        assert verify_policy_unichain(paper_model, greedy_assignment(paper_model))
        for n in (2, 5):
            assert verify_policy_unichain(
                paper_model, n_policy_assignment(paper_model, n)
            )


class TestSweep:
    def test_paper_model_policy_space_size(self, paper_model):
        # Constraints shrink the naive 3^23 space dramatically.
        total = count_policies(paper_model)
        naive = 3**23
        assert total < naive / 1000  # ~3300x fewer than unconstrained
        assert total > 1000

    def test_sampled_sweep_finds_no_violations(self, paper_model):
        report = verify_all_policies_unichain(
            paper_model, sample_budget=300, seed=1
        )
        assert report.ok
        assert report.n_policies_checked == 300
        assert not report.exhaustive

    def test_exhaustive_on_tiny_model(self):
        model = paper_system(capacity=1)
        report = verify_all_policies_unichain(model, sample_budget=10_000)
        assert report.exhaustive
        assert report.n_policies_checked == report.n_policies_total
        assert report.ok

    def test_verify_model_full_report(self, paper_model):
        report = verify_model(paper_model, sample_budget=100)
        assert report.ok
        assert report.n_states == 23
        assert report.n_state_action_pairs > 23

    def test_lumped_variant_also_verifies(self):
        # Dropping constraint 1 (the ablation model) must still leave a
        # unichain space -- constraint 2 alone forces eventual service.
        model = paper_system(include_transfer_states=False)
        report = verify_all_policies_unichain(model, sample_budget=200, seed=2)
        assert report.ok
