"""Tests pinning the presets to the paper's published constants."""

from __future__ import annotations

import pytest

from repro.dpm.presets import (
    PAPER_ARRIVAL_RATE,
    PAPER_N_REQUESTS,
    PAPER_QUEUE_CAPACITY,
    PAPER_SERVICE_RATE,
    disk_drive_provider,
    paper_service_provider,
    paper_system,
    wireless_nic_provider,
)


class TestPaperConstants:
    def test_section_v_rates(self):
        assert PAPER_ARRIVAL_RATE == pytest.approx(1 / 6)
        assert PAPER_SERVICE_RATE == pytest.approx(1 / 1.5)
        assert PAPER_QUEUE_CAPACITY == 5
        assert PAPER_N_REQUESTS == 50_000

    def test_provider_modes_and_powers(self):
        sp = paper_service_provider()
        assert sp.modes == ("active", "waiting", "sleeping")
        assert [sp.power_rate(m) for m in sp.modes] == [40.0, 15.0, 0.1]

    def test_eqn_4_1_a_switching_times(self):
        sp = paper_service_provider()
        expected = {
            ("active", "waiting"): 0.1,
            ("active", "sleeping"): 0.2,
            ("waiting", "active"): 0.5,
            ("waiting", "sleeping"): 0.1,
            ("sleeping", "active"): 1.1,
            ("sleeping", "waiting"): 0.5,
        }
        for (src, dst), t in expected.items():
            assert sp.switching_time(src, dst) == pytest.approx(t), (src, dst)

    def test_eqn_4_1_b_switching_energies(self):
        sp = paper_service_provider()
        expected = {
            ("active", "waiting"): 0.2,
            ("active", "sleeping"): 0.5,
            ("waiting", "active"): 1.0,
            ("waiting", "sleeping"): 0.1,
            ("sleeping", "active"): 11.0,
            ("sleeping", "waiting"): 25.0,
        }
        for (src, dst), e in expected.items():
            assert sp.switching_energy(src, dst) == pytest.approx(e), (src, dst)

    def test_paper_system_defaults(self):
        m = paper_system()
        assert m.capacity == 5
        assert m.requestor.rate == pytest.approx(1 / 6)
        assert m.include_transfer_states

    def test_self_switch_rate_override(self):
        m = paper_system(self_switch_rate=50.0)
        assert m.provider.self_switch_rate == 50.0


class TestExampleProviders:
    def test_disk_drive_structure(self):
        sp = disk_drive_provider()
        assert sp.modes == ("active", "idle", "standby", "sleep")
        assert sp.active_modes == ("active",)
        # Deeper modes draw less power.
        powers = [sp.power_rate(m) for m in sp.modes]
        assert powers == sorted(powers, reverse=True)
        # Deeper modes take longer to wake.
        wakeups = [sp.wakeup_time(m) for m in sp.inactive_modes]
        assert wakeups == sorted(wakeups)

    def test_wireless_nic_structure(self):
        sp = wireless_nic_provider()
        assert sp.fastest_active_mode() == "transmit"
        assert sp.deepest_sleep_mode() == "off"
        assert sp.wakeup_time("off") > sp.wakeup_time("doze")

    def test_example_models_solve(self):
        from repro.dpm.optimizer import optimize_weighted
        from repro.dpm.service_requestor import ServiceRequestor
        from repro.dpm.system import PowerManagedSystemModel

        for provider, rate in (
            (disk_drive_provider(), 0.25),
            (wireless_nic_provider(), 10.0),
        ):
            model = PowerManagedSystemModel(
                provider, ServiceRequestor(rate), capacity=4
            )
            result = optimize_weighted(model, 0.1)
            assert result.metrics.average_power > 0
