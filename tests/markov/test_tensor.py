"""Tests for tensor (Kronecker) products and sums (Definition 4.4)."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.markov.generator import stationary_distribution, validate_generator
from repro.markov.tensor import (
    product_states,
    tensor_product,
    tensor_sum,
    tensor_sum_csr,
)


class TestTensorProduct:
    def test_matches_definition_4_4(self):
        a = np.array([[1.0, 2.0], [3.0, 4.0]])
        b = np.array([[0.0, 1.0], [1.0, 0.0]])
        c = tensor_product(a, b)
        expected = np.block([[1.0 * b, 2.0 * b], [3.0 * b, 4.0 * b]])
        np.testing.assert_allclose(c, expected)

    def test_identity_is_neutral(self):
        a = np.array([[1.0, 2.0], [3.0, 4.0]])
        np.testing.assert_allclose(tensor_product(np.eye(1), a), a)


class TestTensorSum:
    def test_matches_definition_4_4(self):
        a = np.array([[1.0, 2.0], [3.0, 4.0]])
        b = np.array([[5.0, 6.0], [7.0, 8.0]])
        expected = np.kron(a, np.eye(2)) + np.kron(np.eye(2), b)
        np.testing.assert_allclose(tensor_sum(a, b), expected)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            tensor_sum(np.zeros((2, 3)), np.eye(2))
        with pytest.raises(ValueError):
            tensor_sum(np.eye(2), np.zeros((2, 3)))

    def test_sum_of_generators_is_generator(
        self, two_state_generator, three_state_cycle
    ):
        joint = tensor_sum(two_state_generator, three_state_cycle)
        validate_generator(joint)

    def test_independent_composition_stationary_factorizes(
        self, two_state_generator, three_state_cycle
    ):
        # The tensor sum models independent parallel evolution, so the
        # joint stationary distribution is the outer product.
        joint = tensor_sum(two_state_generator, three_state_cycle)
        pa = stationary_distribution(two_state_generator)
        pb = stationary_distribution(three_state_cycle)
        np.testing.assert_allclose(
            stationary_distribution(joint), np.kron(pa, pb), atol=1e-12
        )


class TestSparsePropagation:
    def test_sparse_product_stays_sparse_and_matches_dense(self):
        a = np.array([[1.0, 2.0], [3.0, 4.0]])
        b = np.array([[0.0, 1.0], [1.0, 0.0]])
        out = tensor_product(sp.csr_array(a), b)
        assert sp.issparse(out)
        np.testing.assert_allclose(out.toarray(), tensor_product(a, b))

    def test_sparse_sum_stays_sparse_and_matches_dense(
        self, two_state_generator, three_state_cycle
    ):
        out = tensor_sum(
            sp.csr_array(two_state_generator), three_state_cycle
        )
        assert sp.issparse(out)
        np.testing.assert_allclose(
            out.toarray(),
            tensor_sum(two_state_generator, three_state_cycle),
        )

    def test_tensor_sum_csr_accepts_dense_and_sparse(
        self, two_state_generator, three_state_cycle
    ):
        dense_in = tensor_sum_csr(two_state_generator, three_state_cycle)
        sparse_in = tensor_sum_csr(
            sp.csr_array(two_state_generator), sp.csr_array(three_state_cycle)
        )
        expected = tensor_sum(two_state_generator, three_state_cycle)
        np.testing.assert_allclose(dense_in.toarray(), expected)
        np.testing.assert_allclose(sparse_in.toarray(), expected)

    def test_tensor_sum_csr_rejects_non_square(self):
        with pytest.raises(ValueError):
            tensor_sum_csr(np.zeros((2, 3)), np.eye(2))


class TestProductStates:
    def test_ordering_matches_kron_layout(self):
        labels = product_states(("a", "b"), (0, 1, 2))
        assert labels == [
            ("a", 0),
            ("a", 1),
            ("a", 2),
            ("b", 0),
            ("b", 1),
            ("b", 2),
        ]
