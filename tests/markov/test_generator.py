"""Tests for generator-matrix validation and analysis."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.linalg import expm

from repro.errors import InvalidGeneratorError, NotIrreducibleError
from repro.markov.generator import (
    GeneratorMatrix,
    embedded_jump_chain,
    holding_rates,
    stationary_distribution,
    transient_distribution,
    uniformization_rate,
    uniformize,
    validate_generator,
)


class TestValidateGenerator:
    def test_accepts_valid_generator(self, two_state_generator):
        out = validate_generator(two_state_generator)
        np.testing.assert_allclose(out, two_state_generator)

    def test_rejects_non_square(self):
        with pytest.raises(InvalidGeneratorError, match="square"):
            validate_generator(np.zeros((2, 3)))

    def test_rejects_negative_off_diagonal(self):
        g = np.array([[-1.0, 1.0], [-0.5, 0.5]])
        with pytest.raises(InvalidGeneratorError, match="negative off-diagonal"):
            validate_generator(g)

    def test_rejects_positive_diagonal(self):
        g = np.array([[1.0, -1.0], [1.0, -1.0]])
        with pytest.raises(InvalidGeneratorError):
            validate_generator(g)

    def test_rejects_bad_row_sum(self):
        g = np.array([[-1.0, 2.0], [1.0, -1.0]])
        with pytest.raises(InvalidGeneratorError, match="row 0"):
            validate_generator(g)

    def test_rejects_nan(self):
        g = np.array([[-1.0, np.nan], [1.0, -1.0]])
        with pytest.raises(InvalidGeneratorError, match="non-finite"):
            validate_generator(g)

    def test_accepts_all_zero(self):
        validate_generator(np.zeros((3, 3)))

    def test_row_sum_tolerance_scales_with_magnitude(self):
        # Large rates with relative rounding error should still validate.
        g = np.array([[-1e8, 1e8 * (1 + 1e-12)], [1.0, -1.0]])
        g[0, 0] = -g[0, 1]
        validate_generator(g)


class TestStationaryDistribution:
    def test_two_state_closed_form(self, two_state_generator):
        p = stationary_distribution(two_state_generator)
        np.testing.assert_allclose(p, [0.6, 0.4])

    def test_cycle_is_uniform(self, three_state_cycle):
        p = stationary_distribution(three_state_cycle)
        np.testing.assert_allclose(p, [1 / 3] * 3)

    def test_satisfies_balance(self, two_state_generator):
        p = stationary_distribution(two_state_generator)
        np.testing.assert_allclose(p @ two_state_generator, 0.0, atol=1e-12)

    def test_single_state(self):
        np.testing.assert_allclose(stationary_distribution(np.zeros((1, 1))), [1.0])

    def test_reducible_raises(self, reducible_generator):
        with pytest.raises(NotIrreducibleError):
            stationary_distribution(reducible_generator)

    def test_matches_long_time_transient(self, two_state_generator):
        p_inf = stationary_distribution(two_state_generator)
        p_t = transient_distribution(two_state_generator, [1.0, 0.0], 100.0)
        np.testing.assert_allclose(p_t, p_inf, atol=1e-10)


class TestTransientDistribution:
    def test_zero_time_is_identity(self, two_state_generator):
        p0 = np.array([0.3, 0.7])
        np.testing.assert_allclose(
            transient_distribution(two_state_generator, p0, 0.0), p0
        )

    def test_matches_expm(self, three_state_cycle):
        p0 = np.array([1.0, 0.0, 0.0])
        expected = p0 @ expm(three_state_cycle * 0.7)
        np.testing.assert_allclose(
            transient_distribution(three_state_cycle, p0, 0.7), expected
        )

    def test_distribution_stays_normalized(self, three_state_cycle):
        p = transient_distribution(three_state_cycle, [1.0, 0.0, 0.0], 2.5)
        assert p.sum() == pytest.approx(1.0)
        assert np.all(p >= 0)

    def test_rejects_negative_time(self, two_state_generator):
        with pytest.raises(ValueError):
            transient_distribution(two_state_generator, [1.0, 0.0], -1.0)

    def test_rejects_unnormalized_initial(self, two_state_generator):
        with pytest.raises(InvalidGeneratorError, match="sums to"):
            transient_distribution(two_state_generator, [0.5, 0.4], 1.0)

    def test_rejects_wrong_shape(self, two_state_generator):
        with pytest.raises(InvalidGeneratorError, match="shape"):
            transient_distribution(two_state_generator, [1.0, 0.0, 0.0], 1.0)


class TestUniformization:
    def test_rate_is_max_exit_rate(self, two_state_generator):
        assert uniformization_rate(two_state_generator) == pytest.approx(3.0)

    def test_all_zero_generator_gets_unit_rate(self):
        assert uniformization_rate(np.zeros((2, 2))) == 1.0

    def test_rejects_slack_below_one(self, two_state_generator):
        with pytest.raises(ValueError):
            uniformization_rate(two_state_generator, slack=0.5)

    def test_uniformized_matrix_is_stochastic(self, two_state_generator):
        p, lam = uniformize(two_state_generator)
        assert lam == pytest.approx(3.0)
        np.testing.assert_allclose(p.sum(axis=1), 1.0)
        assert np.all(p >= 0)

    def test_preserves_stationary_distribution(self, two_state_generator):
        p_mat, _ = uniformize(two_state_generator, rate=10.0)
        pi = stationary_distribution(two_state_generator)
        np.testing.assert_allclose(pi @ p_mat, pi, atol=1e-12)

    def test_rejects_rate_below_max_exit(self, two_state_generator):
        with pytest.raises(ValueError):
            uniformize(two_state_generator, rate=1.0)


class TestEmbeddedJumpChain:
    def test_rows_normalized(self, two_state_generator):
        p = embedded_jump_chain(two_state_generator)
        np.testing.assert_allclose(p.sum(axis=1), 1.0)
        np.testing.assert_allclose(np.diag(p), 0.0)

    def test_absorbing_state_self_loops(self, absorbing_generator):
        p = embedded_jump_chain(absorbing_generator)
        np.testing.assert_allclose(p[1], [0.0, 1.0])

    def test_holding_rates(self, two_state_generator):
        np.testing.assert_allclose(holding_rates(two_state_generator), [2.0, 3.0])


class TestGeneratorMatrix:
    def test_default_labels_are_indices(self, two_state_generator):
        g = GeneratorMatrix(two_state_generator)
        assert g.states == (0, 1)
        assert g.n_states == 2

    def test_custom_labels(self, two_state_generator):
        g = GeneratorMatrix(two_state_generator, states=("on", "off"))
        assert g.index_of("off") == 1
        assert g.rate("on", "off") == pytest.approx(2.0)
        assert g.exit_rate("off") == pytest.approx(3.0)

    def test_unknown_state_raises_keyerror(self, two_state_generator):
        g = GeneratorMatrix(two_state_generator, states=("on", "off"))
        with pytest.raises(KeyError, match="unknown state"):
            g.index_of("standby")

    def test_duplicate_labels_rejected(self, two_state_generator):
        with pytest.raises(InvalidGeneratorError, match="unique"):
            GeneratorMatrix(two_state_generator, states=("x", "x"))

    def test_label_count_mismatch_rejected(self, two_state_generator):
        with pytest.raises(InvalidGeneratorError):
            GeneratorMatrix(two_state_generator, states=("only-one",))

    def test_stationary_probability_by_label(self, two_state_generator):
        g = GeneratorMatrix(two_state_generator, states=("on", "off"))
        assert g.stationary_probability("on") == pytest.approx(0.6)

    def test_relabel(self, two_state_generator):
        g = GeneratorMatrix(two_state_generator).relabel(("a", "b"))
        assert g.states == ("a", "b")
