"""Tests for the matrix-free Kronecker generator operator."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import InvalidGeneratorError
from repro.markov.kron import KroneckerGenerator
from repro.markov.tensor import tensor_sum


def random_generator(rng, n: int) -> np.ndarray:
    """A dense random CTMC generator of order n."""
    g = rng.uniform(0.1, 2.0, size=(n, n))
    np.fill_diagonal(g, 0.0)
    np.fill_diagonal(g, -g.sum(axis=1))
    return g


class TestMatvec:
    def test_tensor_sum_matches_dense(self):
        rng = np.random.default_rng(0)
        a, b, c = (random_generator(rng, n) for n in (2, 3, 4))
        op = KroneckerGenerator.tensor_sum([a, b, c])
        dense = tensor_sum(tensor_sum(a, b), c)
        x = rng.standard_normal(24)
        np.testing.assert_allclose(op.matvec(x), dense @ x, atol=1e-12)
        np.testing.assert_allclose(op.rmatvec(x), dense.T @ x, atol=1e-12)
        np.testing.assert_allclose(op.to_dense(), dense, atol=1e-12)

    def test_sparse_factors_match_dense_factors(self):
        rng = np.random.default_rng(1)
        a, b = random_generator(rng, 3), random_generator(rng, 5)
        dense_op = KroneckerGenerator.tensor_sum([a, b])
        sparse_op = KroneckerGenerator.tensor_sum(
            [sp.csr_array(a), sp.csr_array(b)]
        )
        x = rng.standard_normal(15)
        np.testing.assert_allclose(
            sparse_op.matvec(x), dense_op.matvec(x), atol=1e-12
        )

    def test_product_term_matches_kron(self):
        rng = np.random.default_rng(2)
        a, b = rng.standard_normal((3, 3)), rng.standard_normal((4, 4))
        op = KroneckerGenerator.tensor_product([a, b], coeff=2.5)
        x = rng.standard_normal(12)
        np.testing.assert_allclose(
            op.matvec(x), 2.5 * np.kron(a, b) @ x, atol=1e-12
        )

    def test_identity_factors_skipped(self):
        rng = np.random.default_rng(3)
        a = random_generator(rng, 3)
        op = KroneckerGenerator((2, 3), [(1.0, (None, a))])
        dense = np.kron(np.eye(2), a)
        x = rng.standard_normal(6)
        np.testing.assert_allclose(op.matvec(x), dense @ x, atol=1e-12)

    def test_matmul_operator(self):
        rng = np.random.default_rng(4)
        a = random_generator(rng, 4)
        op = KroneckerGenerator.tensor_sum([a])
        x = rng.standard_normal(4)
        np.testing.assert_allclose(op @ x, a @ x, atol=1e-12)

    def test_rejects_wrong_operand_shape(self):
        op = KroneckerGenerator.tensor_sum([np.eye(2), np.eye(3)])
        with pytest.raises(InvalidGeneratorError):
            op.matvec(np.zeros(5))


class TestStructure:
    def test_diagonal_matches_dense(self):
        rng = np.random.default_rng(5)
        a, b = random_generator(rng, 3), random_generator(rng, 4)
        op = KroneckerGenerator.tensor_sum([sp.csr_array(a), b])
        np.testing.assert_allclose(
            op.diagonal(), np.diag(op.to_dense()), atol=1e-12
        )

    def test_to_csr_matches_to_dense(self):
        rng = np.random.default_rng(6)
        a, b = random_generator(rng, 2), random_generator(rng, 5)
        op = KroneckerGenerator.tensor_sum([a, sp.csr_array(b)])
        np.testing.assert_allclose(
            op.to_csr().toarray(), op.to_dense(), atol=1e-12
        )

    def test_is_finite(self):
        a = np.array([[-1.0, 1.0], [1.0, -1.0]])
        assert KroneckerGenerator.tensor_sum([a]).is_finite()
        bad = a.copy()
        bad[0, 1] = np.nan
        assert not KroneckerGenerator.tensor_sum([bad]).is_finite()

    def test_max_abs_entry_bounds_dense_max(self):
        rng = np.random.default_rng(7)
        a, b = random_generator(rng, 3), random_generator(rng, 3)
        op = KroneckerGenerator.tensor_sum([a, b])
        assert op.max_abs_entry() >= np.max(np.abs(op.to_dense())) - 1e-12

    def test_aslinearoperator_shape_and_matvec(self):
        rng = np.random.default_rng(8)
        a = random_generator(rng, 4)
        lin = KroneckerGenerator.tensor_sum([a]).aslinearoperator()
        assert lin.shape == (4, 4)
        x = rng.standard_normal(4)
        np.testing.assert_allclose(lin @ x, a @ x, atol=1e-12)


class TestValidation:
    def test_rejects_empty_dims(self):
        with pytest.raises(InvalidGeneratorError):
            KroneckerGenerator((), [])

    def test_rejects_factor_shape_mismatch(self):
        with pytest.raises(InvalidGeneratorError):
            KroneckerGenerator((2, 3), [(1.0, (np.eye(2), np.eye(2)))])

    def test_rejects_wrong_factor_count(self):
        with pytest.raises(InvalidGeneratorError):
            KroneckerGenerator((2, 3), [(1.0, (np.eye(2),))])

    def test_to_dense_guarded_by_limit(self):
        op = KroneckerGenerator.tensor_sum([np.eye(8), np.eye(8)])
        with pytest.raises(InvalidGeneratorError):
            op.to_dense(limit=16)
        assert op.to_dense(limit=64).shape == (64, 64)
