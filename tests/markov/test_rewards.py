"""Tests for Markov reward processes (Eqn. 2.5 and friends)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InvalidModelError
from repro.markov.generator import GeneratorMatrix
from repro.markov.rewards import MarkovRewardProcess, earning_rates


class TestEarningRates:
    def test_rate_rewards_only(self, two_state_generator):
        r = earning_rates(two_state_generator, [5.0, 1.0])
        np.testing.assert_allclose(r, [5.0, 1.0])

    def test_impulse_rewards_fold_in(self, two_state_generator):
        # r_i = r_ii + sum_j s_ij * r_ij (Section II).
        imp = np.array([[0.0, 10.0], [20.0, 0.0]])
        r = earning_rates(two_state_generator, [5.0, 1.0], imp)
        np.testing.assert_allclose(r, [5.0 + 2.0 * 10.0, 1.0 + 3.0 * 20.0])

    def test_impulse_diagonal_ignored(self, two_state_generator):
        imp = np.array([[99.0, 0.0], [0.0, 99.0]])
        r = earning_rates(two_state_generator, [0.0, 0.0], imp)
        np.testing.assert_allclose(r, [0.0, 0.0])

    def test_shape_mismatch_raises(self, two_state_generator):
        with pytest.raises(InvalidModelError):
            earning_rates(two_state_generator, [1.0, 2.0, 3.0])
        with pytest.raises(InvalidModelError):
            earning_rates(two_state_generator, [1.0, 2.0], np.zeros((3, 3)))


class TestExpectedTotalReward:
    def test_zero_horizon_is_zero(self, two_state_generator):
        mrp = MarkovRewardProcess(two_state_generator, [1.0, 2.0])
        np.testing.assert_allclose(mrp.expected_total_reward(0.0), [0.0, 0.0])

    def test_constant_reward_accumulates_linearly(self, two_state_generator):
        # Identical rate everywhere: v_i(t) = r * t regardless of dynamics.
        mrp = MarkovRewardProcess(two_state_generator, [4.0, 4.0])
        np.testing.assert_allclose(mrp.expected_total_reward(2.5), [10.0, 10.0])

    def test_matches_numerical_integration(self, two_state_generator):
        # v_i(t) = integral_0^t sum_j p_ij(s) r_j ds, checked by quadrature.
        from scipy.linalg import expm

        rewards = np.array([3.0, -1.0])
        mrp = MarkovRewardProcess(two_state_generator, rewards)
        t_end = 1.7
        ts = np.linspace(0.0, t_end, 4001)
        integrand = np.stack([expm(two_state_generator * t) @ rewards for t in ts])
        expected = np.trapezoid(integrand, ts, axis=0)
        np.testing.assert_allclose(
            mrp.expected_total_reward(t_end), expected, rtol=1e-6
        )

    def test_long_horizon_slope_is_gain(self, two_state_generator):
        mrp = MarkovRewardProcess(two_state_generator, [3.0, -1.0])
        gain = mrp.limiting_average_reward()
        v10 = mrp.expected_total_reward(10.0)
        v11 = mrp.expected_total_reward(11.0)
        np.testing.assert_allclose(v11 - v10, gain, atol=1e-8)

    def test_negative_horizon_raises(self, two_state_generator):
        mrp = MarkovRewardProcess(two_state_generator, [1.0, 1.0])
        with pytest.raises(ValueError):
            mrp.expected_total_reward(-1.0)


class TestLimitingAverageReward:
    def test_is_stationary_expectation(self, two_state_generator):
        mrp = MarkovRewardProcess(two_state_generator, [10.0, 0.0])
        assert mrp.limiting_average_reward() == pytest.approx(6.0)  # p_on = 0.6

    def test_with_impulse_rewards(self, two_state_generator):
        imp = np.array([[0.0, 1.0], [1.0, 0.0]])
        mrp = MarkovRewardProcess(two_state_generator, [0.0, 0.0], imp)
        # Jump rate on->off is 0.6*2, off->on is 0.4*3; each jump earns 1.
        assert mrp.limiting_average_reward() == pytest.approx(0.6 * 2 + 0.4 * 3)


class TestDiscountedReward:
    def test_solves_resolvent_equation(self, two_state_generator):
        mrp = MarkovRewardProcess(two_state_generator, [2.0, 5.0])
        a = 0.3
        v = mrp.discounted_reward(a)
        residual = a * v - two_state_generator @ v - mrp.earning_rate
        np.testing.assert_allclose(residual, 0.0, atol=1e-10)

    def test_small_discount_approaches_gain(self, two_state_generator):
        mrp = MarkovRewardProcess(two_state_generator, [2.0, 5.0])
        gain = mrp.limiting_average_reward()
        for a in (1e-3, 1e-5):
            v = mrp.discounted_reward(a)
            np.testing.assert_allclose(a * v, gain, rtol=5e-3 if a == 1e-3 else 5e-5)

    def test_constant_reward_gives_r_over_a(self, two_state_generator):
        mrp = MarkovRewardProcess(two_state_generator, [7.0, 7.0])
        np.testing.assert_allclose(mrp.discounted_reward(0.5), [14.0, 14.0])

    def test_nonpositive_discount_raises(self, two_state_generator):
        mrp = MarkovRewardProcess(two_state_generator, [1.0, 1.0])
        with pytest.raises(ValueError):
            mrp.discounted_reward(0.0)


class TestBias:
    def test_bias_equation(self, two_state_generator):
        mrp = MarkovRewardProcess(two_state_generator, [3.0, -2.0])
        h = mrp.bias()
        gain = mrp.limiting_average_reward()
        residual = two_state_generator @ h - (gain - mrp.earning_rate)
        np.testing.assert_allclose(residual, 0.0, atol=1e-9)

    def test_bias_orthogonal_to_stationary(self, two_state_generator):
        mrp = MarkovRewardProcess(two_state_generator, [3.0, -2.0])
        p = GeneratorMatrix(two_state_generator).stationary_distribution()
        assert float(p @ mrp.bias()) == pytest.approx(0.0, abs=1e-9)

    def test_bias_predicts_finite_horizon_offset(self, two_state_generator):
        # v_i(t) ~ g t + h_i for large t.
        mrp = MarkovRewardProcess(two_state_generator, [3.0, -2.0])
        gain = mrp.limiting_average_reward()
        h = mrp.bias()
        t = 50.0
        np.testing.assert_allclose(
            mrp.expected_total_reward(t), gain * t + h, atol=1e-8
        )


class TestConstruction:
    def test_accepts_generator_matrix_object(self, two_state_generator):
        g = GeneratorMatrix(two_state_generator, states=("on", "off"))
        mrp = MarkovRewardProcess(g, [1.0, 0.0])
        assert mrp.generator.states == ("on", "off")

    def test_wraps_raw_matrix(self, two_state_generator):
        mrp = MarkovRewardProcess(two_state_generator, [1.0, 0.0])
        assert mrp.generator.n_states == 2
