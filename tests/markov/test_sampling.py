"""Tests for CTMC trajectory sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.markov.generator import stationary_distribution
from repro.markov.sampling import SampledPath, TrajectorySampler, sample_path


class TestSampledPath:
    def test_occupancy_accounts_full_horizon(self):
        path = SampledPath(states=[0, 1], times=[0.0, 3.0], t_end=10.0)
        occ = path.occupancy(2)
        np.testing.assert_allclose(occ, [0.3, 0.7])
        assert path.n_jumps == 1

    def test_occupancy_sums_to_one(self):
        path = SampledPath(states=[0, 1, 0], times=[0.0, 1.0, 4.0], t_end=5.0)
        assert path.occupancy(2).sum() == pytest.approx(1.0)


class TestTrajectorySampler:
    def test_reproducible_with_seeded_rng(self, two_state_generator):
        p1 = sample_path(
            two_state_generator, 0, 50.0, rng=np.random.default_rng(3)
        )
        p2 = sample_path(
            two_state_generator, 0, 50.0, rng=np.random.default_rng(3)
        )
        assert p1.states == p2.states
        assert p1.times == p2.times

    def test_occupancy_converges_to_stationary(self, two_state_generator):
        sampler = TrajectorySampler(two_state_generator, np.random.default_rng(7))
        path = sampler.sample(0, 20_000.0)
        pi = stationary_distribution(two_state_generator)
        np.testing.assert_allclose(path.occupancy(2), pi, atol=0.02)

    def test_absorbing_state_stops_sampling(self, absorbing_generator):
        path = sample_path(
            absorbing_generator, 0, 1000.0, rng=np.random.default_rng(0)
        )
        assert path.states[-1] == 1
        # Once absorbed, no further jumps.
        assert path.states.count(1) == 1

    def test_jump_targets_follow_positive_rates(self, three_state_cycle):
        path = sample_path(
            three_state_cycle, 0, 200.0, rng=np.random.default_rng(1)
        )
        for src, dst in zip(path.states, path.states[1:]):
            assert three_state_cycle[src, dst] > 0

    def test_invalid_inputs(self, two_state_generator):
        sampler = TrajectorySampler(two_state_generator)
        with pytest.raises(ValueError):
            sampler.sample(0, -1.0)
        with pytest.raises(ValueError):
            sampler.sample(5, 1.0)

    def test_labels_carried(self, two_state_generator):
        from repro.markov.generator import GeneratorMatrix

        gen = GeneratorMatrix(two_state_generator, states=("on", "off"))
        path = TrajectorySampler(gen, np.random.default_rng(0)).sample(0, 5.0)
        assert path.labels == ("on", "off")
