"""Property-based tests (hypothesis) for the CTMC substrate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.markov.classify import communicating_classes, is_irreducible
from repro.markov.generator import (
    embedded_jump_chain,
    stationary_distribution,
    transient_distribution,
    uniformize,
    validate_generator,
)
from repro.markov.rewards import MarkovRewardProcess
from repro.markov.tensor import tensor_sum


def generators(min_states: int = 2, max_states: int = 6, min_rate: float = 0.0):
    """Strategy: random valid generator matrices.

    ``min_rate > 0`` yields dense (hence irreducible) generators.
    """

    def build(n, flat):
        g = np.array(flat[: n * n]).reshape(n, n)
        np.fill_diagonal(g, 0.0)
        np.fill_diagonal(g, -g.sum(axis=1))
        return g

    return st.integers(min_states, max_states).flatmap(
        lambda n: st.lists(
            st.floats(min_rate, 10.0, allow_nan=False, allow_infinity=False),
            min_size=n * n,
            max_size=n * n,
        ).map(lambda flat: build(n, flat))
    )


dense_generators = generators(min_rate=0.05)


class TestGeneratorProperties:
    @given(g=generators())
    def test_constructed_generators_validate(self, g):
        validate_generator(g)

    @given(g=dense_generators)
    @settings(max_examples=40)
    def test_stationary_is_distribution_and_balances(self, g):
        p = stationary_distribution(g)
        assert p.sum() == pytest.approx(1.0)
        assert np.all(p >= 0)
        np.testing.assert_allclose(p @ g, 0.0, atol=1e-8)

    @given(g=dense_generators, t=st.floats(0.0, 20.0))
    @settings(max_examples=30)
    def test_transient_stays_stochastic(self, g, t):
        n = g.shape[0]
        p0 = np.zeros(n)
        p0[0] = 1.0
        p = transient_distribution(g, p0, t)
        assert p.sum() == pytest.approx(1.0, abs=1e-8)
        assert np.all(p >= -1e-10)

    @given(g=dense_generators)
    @settings(max_examples=30)
    def test_uniformization_preserves_stationary(self, g):
        p_mat, lam = uniformize(g)
        pi = stationary_distribution(g)
        np.testing.assert_allclose(pi @ p_mat, pi, atol=1e-8)
        assert lam > 0

    @given(g=generators())
    @settings(max_examples=40)
    def test_jump_chain_rows_stochastic(self, g):
        p = embedded_jump_chain(g)
        np.testing.assert_allclose(p.sum(axis=1), 1.0, atol=1e-9)
        assert np.all(p >= 0)

    @given(g=generators())
    @settings(max_examples=40)
    def test_classes_partition(self, g):
        classes = communicating_classes(g)
        members = sorted(i for c in classes for i in c)
        assert members == list(range(g.shape[0]))

    @given(g=dense_generators)
    @settings(max_examples=30)
    def test_dense_generators_irreducible(self, g):
        assert is_irreducible(g)


class TestTensorProperties:
    @given(a=dense_generators, b=dense_generators)
    @settings(max_examples=20)
    def test_tensor_sum_generator_and_stationary_factorizes(self, a, b):
        joint = tensor_sum(a, b)
        validate_generator(joint)
        pi = stationary_distribution(joint)
        np.testing.assert_allclose(
            pi,
            np.kron(stationary_distribution(a), stationary_distribution(b)),
            atol=1e-7,
        )


class TestRewardProperties:
    @given(
        g=dense_generators,
        seed=st.integers(0, 2**31 - 1),
        t=st.floats(0.5, 10.0),
    )
    @settings(max_examples=25)
    def test_total_reward_additive_in_rewards(self, g, seed, t):
        # v(t; r1 + r2) = v(t; r1) + v(t; r2): the map is linear.
        rng = np.random.default_rng(seed)
        n = g.shape[0]
        r1 = rng.uniform(-5, 5, n)
        r2 = rng.uniform(-5, 5, n)
        v1 = MarkovRewardProcess(g, r1).expected_total_reward(t)
        v2 = MarkovRewardProcess(g, r2).expected_total_reward(t)
        v12 = MarkovRewardProcess(g, r1 + r2).expected_total_reward(t)
        np.testing.assert_allclose(v12, v1 + v2, atol=1e-6, rtol=1e-6)

    @given(g=dense_generators, a=st.floats(0.01, 5.0))
    @settings(max_examples=25)
    def test_discounted_bounded_by_extremes(self, g, a):
        # min(r)/a <= v_i <= max(r)/a for every state.
        n = g.shape[0]
        r = np.linspace(-3.0, 7.0, n)
        v = MarkovRewardProcess(g, r).discounted_reward(a)
        assert np.all(v >= r.min() / a - 1e-8)
        assert np.all(v <= r.max() / a + 1e-8)
