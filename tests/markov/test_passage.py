"""Tests for first-passage times and hitting probabilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SolverError
from repro.markov.passage import (
    hitting_probabilities,
    mean_first_passage_matrix,
    mean_first_passage_times,
)


class TestMeanFirstPassage:
    def test_two_state_closed_form(self, two_state_generator):
        # From 0 to 1: exit rate toward 1 is 2 => mean 1/2. And back: 1/3.
        m = mean_first_passage_times(two_state_generator, [1])
        np.testing.assert_allclose(m, [0.5, 0.0])
        m = mean_first_passage_times(two_state_generator, [0])
        np.testing.assert_allclose(m, [0.0, 1.0 / 3.0])

    def test_cycle_passage_adds_holding_times(self, three_state_cycle):
        # 0 -> 1 -> 2 with unit rates: from 0 to 2 takes 2 on average.
        m = mean_first_passage_times(three_state_cycle, [2])
        np.testing.assert_allclose(m, [2.0, 1.0, 0.0])

    def test_multiple_targets_take_nearest(self, three_state_cycle):
        m = mean_first_passage_times(three_state_cycle, [1, 2])
        np.testing.assert_allclose(m, [1.0, 0.0, 0.0])

    def test_unreachable_target_is_infinite(self, absorbing_generator):
        # From the absorbing state 1, state 0 is never reached.
        m = mean_first_passage_times(absorbing_generator, [0])
        assert m[0] == 0.0
        assert np.isinf(m[1])

    def test_validation(self, two_state_generator):
        with pytest.raises(SolverError):
            mean_first_passage_times(two_state_generator, [])
        with pytest.raises(SolverError):
            mean_first_passage_times(two_state_generator, [5])

    def test_matches_simulation(self, two_state_generator):
        from repro.markov.sampling import TrajectorySampler

        sampler = TrajectorySampler(two_state_generator, np.random.default_rng(0))
        samples = []
        for _ in range(3000):
            path = sampler.sample(0, 100.0)
            hits = [t for s, t in zip(path.states, path.times) if s == 1]
            if hits:
                samples.append(hits[0])
        expected = mean_first_passage_times(two_state_generator, [1])[0]
        assert np.mean(samples) == pytest.approx(expected, rel=0.05)


class TestMeanFirstPassageMatrix:
    def test_diagonal_zero_and_consistency(self, two_state_generator):
        mat = mean_first_passage_matrix(two_state_generator)
        np.testing.assert_allclose(np.diag(mat), 0.0)
        assert mat[0, 1] == pytest.approx(0.5)
        assert mat[1, 0] == pytest.approx(1.0 / 3.0)


class TestHittingProbabilities:
    def test_competing_absorption(self):
        # 1 <- 0 -> 2 with rates 1 and 3: P(hit 2 first) = 3/4 from 0.
        g = np.array(
            [
                [-4.0, 1.0, 3.0],
                [0.0, 0.0, 0.0],
                [0.0, 0.0, 0.0],
            ]
        )
        h = hitting_probabilities(g, goal=[2], avoid=[1])
        np.testing.assert_allclose(h, [0.75, 0.0, 1.0])

    def test_goal_certain_without_avoid_states_in_path(self, three_state_cycle):
        h = hitting_probabilities(three_state_cycle, goal=[2], avoid=[])
        np.testing.assert_allclose(h, [1.0, 1.0, 1.0])

    def test_validation(self, two_state_generator):
        with pytest.raises(SolverError):
            hitting_probabilities(two_state_generator, goal=[], avoid=[0])
        with pytest.raises(SolverError):
            hitting_probabilities(two_state_generator, goal=[0], avoid=[0])


class TestDPMUsage:
    def test_wakeup_latency_of_paper_policy(self, paper_model, paper_mdp):
        # Expected time from (sleeping, q1) until the SP first serves
        # (reaches an active-mode state) under the optimal policy.
        from repro.ctmdp.policy_iteration import policy_iteration
        from repro.dpm.service_queue import stable
        from repro.dpm.system import SystemState

        policy = policy_iteration(paper_mdp).policy
        g = policy.generator_matrix()
        active_states = [
            k
            for k, x in enumerate(paper_model.states)
            if paper_model.provider.is_active(x.mode)
        ]
        m = mean_first_passage_times(g, active_states)
        start = paper_model.index_of(SystemState("sleeping", stable(1)))
        # Waking from sleep takes 1.1 s on average; under the optimal
        # policy the passage time from (sleeping, q1) is at least that
        # (it may linger asleep first) and finite.
        assert m[start] >= 1.1 - 1e-9
        assert np.isfinite(m[start])