"""Tests for the labeled CTMC convenience type."""

from __future__ import annotations

import numpy as np
import pytest

from repro.markov.chain import ContinuousTimeMarkovChain


class TestFromRates:
    def test_builds_diagonal_automatically(self):
        chain = ContinuousTimeMarkovChain.from_rates(
            {("on", "off"): 2.0, ("off", "on"): 3.0}, states=("on", "off")
        )
        np.testing.assert_allclose(
            chain.matrix, [[-2.0, 2.0], [3.0, -3.0]]
        )

    def test_rejects_explicit_self_rate(self):
        with pytest.raises(ValueError, match="self-rate"):
            ContinuousTimeMarkovChain.from_rates(
                {("on", "on"): 1.0}, states=("on", "off")
            )

    def test_missing_rates_default_to_zero(self):
        chain = ContinuousTimeMarkovChain.from_rates(
            {("a", "b"): 1.0}, states=("a", "b")
        )
        assert chain.rate("b", "a") == 0.0


class TestAnalysis:
    @pytest.fixture
    def chain(self, two_state_generator):
        return ContinuousTimeMarkovChain(two_state_generator, states=("on", "off"))

    def test_stationary_probabilities_by_label(self, chain):
        probs = chain.stationary_probabilities()
        assert probs["on"] == pytest.approx(0.6)
        assert probs["off"] == pytest.approx(0.4)

    def test_expected_value(self, chain):
        assert chain.expected_value([10.0, 0.0]) == pytest.approx(6.0)

    def test_expected_value_shape_check(self, chain):
        with pytest.raises(ValueError):
            chain.expected_value([1.0, 2.0, 3.0])

    def test_structure_queries(self, chain):
        assert chain.is_irreducible()
        assert chain.is_connected()
        assert chain.communicating_classes() == [frozenset({"on", "off"})]
        assert chain.classify_states() == {"on": "recurrent", "off": "recurrent"}

    def test_with_rewards_round_trip(self, chain):
        mrp = chain.with_rewards([10.0, 0.0])
        assert mrp.limiting_average_reward() == pytest.approx(6.0)

    def test_transient_distribution_delegates(self, chain, two_state_generator):
        from repro.markov.generator import transient_distribution

        expected = transient_distribution(two_state_generator, [1.0, 0.0], 0.5)
        np.testing.assert_allclose(
            chain.transient_distribution([1.0, 0.0], 0.5), expected
        )
