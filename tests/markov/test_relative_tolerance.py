"""Generator validation at extreme rate magnitudes.

Satellite of the admission PR: the row-sum conservation check is
*relative* to the row's own magnitude, so generators with rates around
1e8 pass despite absolute rounding residue of ~1e-8, while genuinely
broken rows at rates around 1e-10 are caught even though their absolute
defect is far below any fixed tolerance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InvalidGeneratorError
from repro.markov.generator import (
    canonical_shift,
    stationary_distribution,
    validate_generator,
)


def birth_death(rates_up: float, rates_down: float, n: int = 6) -> np.ndarray:
    g = np.zeros((n, n))
    for i in range(n - 1):
        g[i, i + 1] = rates_up
        g[i + 1, i] = rates_down
    np.fill_diagonal(g, -g.sum(axis=1))
    return g


class TestRelativeRowSums:
    def test_huge_rates_pass(self):
        # Left-to-right row summation leaves ~1e-8 absolute residue at
        # rate magnitude 1e8; the old absolute atol=1e-9 rejected this
        # perfectly conservative generator.
        rng = np.random.default_rng(0)
        n = 8
        g = rng.uniform(0.5e8, 2e8, size=(n, n))
        np.fill_diagonal(g, 0.0)
        np.fill_diagonal(g, -g.sum(axis=1))
        residue = np.abs(g.sum(axis=1)).max()
        assert residue > 1e-9  # the case the absolute check failed on
        validate_generator(g)

    def test_tiny_broken_rows_are_caught(self):
        # A 0.1 % conservation defect at rate magnitude 1e-10 is an
        # absolute error of ~1e-13 -- invisible to any fixed atol, but a
        # clear relative violation.
        g = birth_death(1e-10, 2e-10)
        g[0, 0] *= 1.001
        with pytest.raises(InvalidGeneratorError, match="sums to"):
            validate_generator(g)

    def test_tiny_conservative_rows_pass(self):
        validate_generator(birth_death(1e-10, 2e-10))

    def test_zero_rows_still_pass_exactly(self):
        g = np.zeros((3, 3))
        g[0, 1] = 1.0
        g[1, 0] = 1.0
        g[0, 0] = g[1, 1] = -1.0
        validate_generator(g)  # row 2 is all-zero (absorbing): valid


class TestCanonicalShift:
    def test_window(self):
        assert canonical_shift(1.0) == 0
        assert canonical_shift(1.5) == 0
        assert canonical_shift(2.0) == 1
        assert canonical_shift(0.75) == -1
        assert np.ldexp(1e8, -canonical_shift(1e8)) >= 1.0
        assert np.ldexp(1e8, -canonical_shift(1e8)) < 2.0

    def test_degenerate_inputs(self):
        assert canonical_shift(0.0) == 0
        assert canonical_shift(float("inf")) == 0
        assert canonical_shift(float("nan")) == 0
        assert canonical_shift(-3.0) == 0

    def test_stationary_is_scale_invariant_bitwise(self):
        # Power-of-two rescaled generators must produce bit-identical
        # stationary distributions -- the exactness the remediation
        # ladder relies on.
        g = birth_death(1.0, 3.0)
        for exponent in (-40, -7, 11, 40):
            scaled = np.ldexp(g, exponent)
            assert np.array_equal(
                stationary_distribution(scaled), stationary_distribution(g)
            )

    def test_stationary_at_extreme_magnitude(self):
        p = stationary_distribution(birth_death(1e8, 3e8))
        q = stationary_distribution(birth_death(1.0, 3.0))
        assert np.allclose(p, q, rtol=1e-12)
        assert p.sum() == pytest.approx(1.0)
