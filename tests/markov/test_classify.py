"""Tests for communicating classes and state classification."""

from __future__ import annotations

import numpy as np
import pytest

from repro.markov.classify import (
    classify_states,
    communicating_classes,
    is_connected,
    is_irreducible,
    recurrent_states,
    transient_states,
    transition_graph,
)


@pytest.fixture
def transient_into_cycle() -> np.ndarray:
    """State 0 drains into a 2-cycle {1, 2}: 0 is transient."""
    return np.array(
        [
            [-1.0, 1.0, 0.0],
            [0.0, -2.0, 2.0],
            [0.0, 3.0, -3.0],
        ]
    )


class TestCommunicatingClasses:
    def test_irreducible_single_class(self, two_state_generator):
        assert communicating_classes(two_state_generator) == [frozenset({0, 1})]

    def test_disconnected_blocks(self, reducible_generator):
        classes = communicating_classes(reducible_generator)
        assert classes == [frozenset({0, 1}), frozenset({2, 3})]

    def test_transient_state_is_own_class(self, transient_into_cycle):
        classes = communicating_classes(transient_into_cycle)
        assert frozenset({0}) in classes
        assert frozenset({1, 2}) in classes

    def test_classes_partition_states(self, transient_into_cycle):
        classes = communicating_classes(transient_into_cycle)
        union = set().union(*classes)
        assert union == {0, 1, 2}
        assert sum(len(c) for c in classes) == 3


class TestIrreducibility:
    def test_irreducible(self, three_state_cycle):
        assert is_irreducible(three_state_cycle)

    def test_reducible(self, reducible_generator):
        assert not is_irreducible(reducible_generator)

    def test_transient_state_breaks_irreducibility(self, transient_into_cycle):
        assert not is_irreducible(transient_into_cycle)


class TestConnectedness:
    def test_paper_defn_weak_connectivity(self, transient_into_cycle):
        # Not irreducible, but the graph is (weakly) connected.
        assert is_connected(transient_into_cycle)

    def test_disconnected(self, reducible_generator):
        assert not is_connected(reducible_generator)

    def test_single_state_connected(self):
        assert is_connected(np.zeros((1, 1)))


class TestClassification:
    def test_all_recurrent_when_irreducible(self, three_state_cycle):
        assert classify_states(three_state_cycle) == {
            0: "recurrent",
            1: "recurrent",
            2: "recurrent",
        }

    def test_transient_vs_recurrent(self, transient_into_cycle):
        assert classify_states(transient_into_cycle) == {
            0: "transient",
            1: "recurrent",
            2: "recurrent",
        }

    def test_recurrent_and_transient_helpers(self, transient_into_cycle):
        assert recurrent_states(transient_into_cycle) == [1, 2]
        assert transient_states(transient_into_cycle) == [0]

    def test_absorbing_state_is_recurrent(self, absorbing_generator):
        assert classify_states(absorbing_generator) == {
            0: "transient",
            1: "recurrent",
        }


class TestTransitionGraph:
    def test_edges_follow_positive_rates(self, two_state_generator):
        graph = transition_graph(two_state_generator)
        assert set(graph.edges()) == {(0, 1), (1, 0)}

    def test_no_self_loops(self, three_state_cycle):
        graph = transition_graph(three_state_cycle)
        assert all(u != v for u, v in graph.edges())
