"""Command-line interface: ``repro-dpm``.

Subcommands:

- ``solve`` -- optimize the power-management policy for a system
  (weighted or delay-constrained) and print the policy table plus
  analytic metrics.
- ``simulate`` -- run a named policy through the event-driven simulator
  and print (optionally JSON-dump) the measured metrics.
- ``frontier`` -- print the exact deterministic power--delay frontier.
- ``experiments`` -- regenerate the paper's Figure 4, Table 1, or
  Figure 5 tables.

All subcommands default to the paper's Section-V system; ``--rate``,
``--capacity``, and ``--weight`` adjust it.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.dpm.optimizer import optimize_constrained, optimize_weighted
from repro.dpm.presets import paper_system
from repro.experiments.reporting import format_table


def _add_model_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--rate", type=float, default=1 / 6,
        help="arrival rate lambda in requests/second (default: 1/6)",
    )
    parser.add_argument(
        "--capacity", type=int, default=5,
        help="queue capacity Q (default: 5)",
    )


def _build_model(args: argparse.Namespace):
    return paper_system(arrival_rate=args.rate, capacity=args.capacity)


def _metrics_rows(metrics) -> "list[tuple[str, float]]":
    return [
        ("average power [W]", metrics.average_power),
        ("average queue length", metrics.average_queue_length),
        ("average waiting time [s]", metrics.average_waiting_time),
        ("loss rate [1/s]", metrics.loss_rate),
    ]


def cmd_solve(args: argparse.Namespace) -> int:
    model = _build_model(args)
    if args.max_queue_length is not None:
        result = optimize_constrained(model, args.max_queue_length)
        print(f"constrained optimum (L <= {args.max_queue_length:g}):")
    else:
        result = optimize_weighted(model, args.weight)
        print(f"weighted optimum (w = {args.weight:g}):")
    print(format_table(("metric", "value"), _metrics_rows(result.metrics)))
    if args.show_policy:
        from repro.ctmdp.policy import RandomizedPolicy

        print()
        policy = result.policy
        if isinstance(policy, RandomizedPolicy):
            rows = [
                (repr(s), ", ".join(f"{a}:{p:.3f}" for a, p in d.items() if p > 0))
                for s, d in (
                    (s, policy.distribution(s)) for s in policy.mdp.states
                )
            ]
        else:
            rows = sorted(
                ((repr(s), a) for s, a in policy.as_dict().items())
            )
        print(format_table(("system state", "command"), rows))
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    from repro.policies import (
        AlwaysOnPolicy,
        GreedyPolicy,
        NPolicy,
        OptimalCTMDPPolicy,
        TimeoutPolicy,
    )
    from repro.sim import PoissonProcess, simulate

    model = _build_model(args)
    if args.policy == "optimal":
        solved = optimize_weighted(model, args.weight)
        policy = OptimalCTMDPPolicy(solved.policy, model.capacity)
    elif args.policy == "greedy":
        policy = GreedyPolicy(model.provider)
    elif args.policy == "always-on":
        policy = AlwaysOnPolicy(model.provider)
    elif args.policy.startswith("npolicy:"):
        policy = NPolicy(int(args.policy.split(":", 1)[1]), model.provider)
    elif args.policy.startswith("timeout:"):
        policy = TimeoutPolicy(float(args.policy.split(":", 1)[1]), model.provider)
    else:
        print(f"unknown policy {args.policy!r}", file=sys.stderr)
        return 2
    result = simulate(
        provider=model.provider,
        capacity=model.capacity,
        workload=PoissonProcess(model.requestor.rate),
        policy=policy,
        n_requests=args.requests,
        seed=args.seed,
    )
    rows = [
        ("policy", result.policy_name),
        ("average power [W]", result.average_power),
        ("average queue length", result.average_queue_length),
        ("average waiting time [s]", result.average_waiting_time),
        ("loss probability", result.loss_probability),
        ("PM invocations", result.n_pm_invocations),
    ]
    print(format_table(("metric", "value"), rows))
    if args.json_out:
        from repro.sim.trace_io import save_result

        save_result(result, args.json_out)
        print(f"result written to {args.json_out}")
    return 0


def cmd_frontier(args: argparse.Namespace) -> int:
    from repro.dpm.pareto import deterministic_frontier

    model = _build_model(args)
    frontier = deterministic_frontier(model, max_weight=args.max_weight)
    rows = [
        (f"{p.weight:.5f}", p.power, p.delay, p.metrics.average_waiting_time)
        for p in frontier
    ]
    print(
        format_table(
            ("weight", "power [W]", "avg queue", "avg waiting [s]"), rows
        )
    )
    return 0


def cmd_describe(args: argparse.Namespace) -> int:
    """Print the model structure (the paper's Figures 1/2 as text)."""
    from repro.dpm.describe import describe_service_provider, describe_service_queue

    model = _build_model(args)
    print("service provider (Figure 1, Example 4.1 policy):")
    for line in describe_service_provider(
        model.provider,
        {"active": "waiting", "waiting": "sleeping", "sleeping": "active"},
    ):
        print(f"  {line}")
    print()
    print("service queue with transfer states (Figure 2, sleep at transfers):")
    for line in describe_service_queue(
        model, sp_mode="active", transfer_action="sleeping"
    ):
        print(f"  {line}")
    print()
    print(
        f"joint state space: {model.n_states} states "
        f"({len(model.provider.modes)} modes x {model.capacity + 1} stable "
        f"+ {len(model.provider.active_modes)} x {model.capacity} transfer)"
    )
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    if args.exhibit == "figure4":
        from repro.experiments.figure4 import format_figure4, run_figure4

        rows = run_figure4(n_requests=args.requests, n_jobs=args.jobs)
        print(format_figure4(rows))
    elif args.exhibit == "table1":
        from repro.experiments.table1 import format_table1, run_table1

        rows = run_table1(n_requests=args.requests, n_jobs=args.jobs)
        print(format_table1(rows))
    else:
        from repro.experiments.figure5 import format_figure5, run_figure5

        rows = run_figure5(n_requests=args.requests, n_jobs=args.jobs)
        print(format_figure5(rows))
    if args.csv_out:
        from repro.experiments.export import export_rows

        export_rows(rows, args.csv_out)
        print(f"rows written to {args.csv_out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-dpm",
        description="CTMDP-based dynamic power management (Qiu & Pedram, DAC 1999)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    solve = sub.add_parser("solve", help="optimize a power-management policy")
    _add_model_arguments(solve)
    solve.add_argument("--weight", type=float, default=1.0,
                       help="performance weight w of Eqn. 3.1 (default: 1)")
    solve.add_argument("--max-queue-length", type=float, default=None,
                       help="delay bound D_M; switches to constrained mode")
    solve.add_argument("--show-policy", action="store_true",
                       help="print the full state->command table")
    solve.set_defaults(func=cmd_solve)

    simulate_p = sub.add_parser("simulate", help="run the event-driven simulator")
    _add_model_arguments(simulate_p)
    simulate_p.add_argument("--policy", default="optimal",
                            help="optimal | greedy | always-on | npolicy:N | timeout:SECONDS")
    simulate_p.add_argument("--weight", type=float, default=1.0,
                            help="weight used when --policy=optimal")
    simulate_p.add_argument("--requests", type=int, default=50_000,
                            help="requests to generate (default: 50000)")
    simulate_p.add_argument("--seed", type=int, default=0)
    simulate_p.add_argument("--json-out", default=None,
                            help="also dump the result as JSON to this path")
    simulate_p.set_defaults(func=cmd_simulate)

    frontier = sub.add_parser("frontier", help="print the exact Pareto frontier")
    _add_model_arguments(frontier)
    frontier.add_argument("--max-weight", type=float, default=1e3)
    frontier.set_defaults(func=cmd_frontier)

    describe = sub.add_parser(
        "describe", help="print the model structure (Figures 1/2 as text)"
    )
    _add_model_arguments(describe)
    describe.set_defaults(func=cmd_describe)

    experiments = sub.add_parser("experiments", help="regenerate a paper exhibit")
    experiments.add_argument("exhibit", choices=("figure4", "table1", "figure5"))
    experiments.add_argument("--requests", type=int, default=50_000)
    experiments.add_argument("--jobs", type=int, default=None,
                             help="worker processes for independent solves/"
                                  "simulations (-1 = all cores); results are "
                                  "identical to a serial run")
    experiments.add_argument("--csv-out", default=None,
                             help="also export the series as CSV to this path")
    experiments.set_defaults(func=cmd_experiments)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
