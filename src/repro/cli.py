"""Command-line interface: ``repro-dpm``.

Subcommands:

- ``solve`` -- optimize the power-management policy for a system
  (weighted or delay-constrained) and print the policy table plus
  analytic metrics.
- ``simulate`` -- run a named policy through the event-driven simulator
  and print (optionally JSON-dump) the measured metrics.
- ``frontier`` -- print the exact deterministic power--delay frontier.
- ``experiments`` -- regenerate the paper's Figure 4, Table 1, or
  Figure 5 tables.
- ``validate`` -- run a model (paper preset or a JSON config) through
  the admission gate and print the report; exits 0 when admitted
  as-is, :data:`EXIT_REPAIRED` when an exact remediation was applied,
  and 3 when rejected.
- ``profile`` -- render a ``--profile-out`` phase-profile JSON as a
  call tree plus a hot-phase table.
- ``bench-report`` -- print trend tables for ``benchmarks/BENCH_*.json``
  records, or diff them against a baseline directory; ``--check`` exits
  :data:`EXIT_BENCH_REGRESSION` when a checked metric regressed beyond
  its tolerance.
- ``serve`` -- the self-healing policy-serving runtime
  (:mod:`repro.serve`): bootstrap from an artifact directory, then
  either answer decisions over a JSON-lines TCP endpoint (``--port``)
  or drive the deterministic virtual-time soak loop (default; the CI
  chaos job runs it with ``--chaos``). Exits 0 when the run ends on
  the fresh rung, :data:`EXIT_SERVING_DEGRADED` when it ends stale or
  on the heuristic.

All model subcommands default to the paper's Section-V system;
``--rate``, ``--capacity``, and ``--weight`` adjust it. Every
subcommand accepts ``--metrics-out`` / ``--trace-out`` /
``--profile-out`` (``--profile-out`` implies span collection, so a
trace and a profile can come from the same run).

Library failures (:class:`repro.errors.ReproError` subclasses) exit
with a one-line ``error: ...`` message on stderr and a distinct
nonzero code per failure family (see :data:`EXIT_CODES`; the README
documents the table). ``--debug`` re-raises with the full traceback.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro import errors
from repro.dpm.optimizer import optimize_constrained, optimize_weighted
from repro.dpm.presets import paper_system
from repro.experiments.reporting import format_table
from repro.obs.log import LEVELS, configure_logging
from repro.obs.metrics import MetricsRegistry
from repro.obs.runtime import instrument
from repro.obs.trace import Tracer

#: Exit-code mapping for library failures, most specific class first
#: (2 is argparse's usage-error code, so library codes start at 3).
EXIT_CODES = (
    (errors.InfeasibleConstraintError, 5),
    (errors.SolverError, 4),
    (errors.WorkerFailureError, 8),
    (errors.SimulationError, 6),
    (errors.CheckpointError, 7),
    (errors.ArtifactError, 12),
    (errors.CertificationError, 14),
    (errors.ServeRequestError, 3),
    (errors.InvalidGeneratorError, 3),
    (errors.NotIrreducibleError, 3),
    (errors.InvalidModelError, 3),
    (errors.InvalidPolicyError, 3),
    (errors.ReproError, 9),
)


#: ``validate`` verdict ``"repaired"``: the model is solvable, but only
#: after the (exact) remediation recorded in the printed report.
EXIT_REPAIRED = 10

#: ``bench-report --check``: at least one checked metric moved past its
#: regression tolerance relative to the baseline.
EXIT_BENCH_REGRESSION = 11

#: ``serve``: a policy-serving artifact was corrupt, inadmissible, or
#: could not be produced (see :class:`repro.errors.ArtifactError`).
EXIT_ARTIFACT = 12

#: ``serve``: the run ended below the fresh rung of the degradation
#: ladder -- answering from a stale artifact or the N-policy heuristic.
EXIT_SERVING_DEGRADED = 13

#: ``certify``: the solved policy failed independent certification
#: (Bellman gap, LP duality gap, exact-arithmetic mismatch, or backend
#: disagreement); also the exit code of the
#: :class:`repro.errors.CertificationError` family.
EXIT_CERTIFICATION = 14


def exit_code_for(exc: Exception) -> int:
    """The CLI exit code for a library exception (9 = generic ReproError)."""
    for cls, code in EXIT_CODES:
        if isinstance(exc, cls):
            return code
    return 9


def _add_model_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--rate", type=float, default=1 / 6,
        help="arrival rate lambda in requests/second (default: 1/6)",
    )
    parser.add_argument(
        "--capacity", type=int, default=5,
        help="queue capacity Q (default: 5)",
    )


def _build_model(args: argparse.Namespace):
    return paper_system(arrival_rate=args.rate, capacity=args.capacity)


def _add_backend_argument(parser: argparse.ArgumentParser) -> None:
    from repro.ctmdp.backends import BACKENDS

    parser.add_argument(
        "--backend", default="auto", choices=BACKENDS,
        help="solver/model backend (default: auto -- dense below "
             "the state-count threshold, sparse above it)",
    )


def _add_checkpoint_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("checkpointing")
    group.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="persist completed sub-results to PATH (JSON) so a killed "
             "run can be resumed with --resume",
    )
    group.add_argument(
        "--resume", action="store_true",
        help="load previously completed sub-results from --checkpoint "
             "(must match this run's configuration) and only compute "
             "the rest; output is identical to an uninterrupted run",
    )


def _open_checkpoint(args: argparse.Namespace, config: dict):
    from repro.robust.checkpoint import open_checkpoint

    if args.resume and args.checkpoint is None:
        raise errors.CheckpointError("--resume requires --checkpoint PATH")
    return open_checkpoint(args.checkpoint, config, resume=args.resume)


def _metrics_rows(metrics) -> "list[tuple[str, float]]":
    return [
        ("average power [W]", metrics.average_power),
        ("average queue length", metrics.average_queue_length),
        ("average waiting time [s]", metrics.average_waiting_time),
        ("loss rate [1/s]", metrics.loss_rate),
    ]


def cmd_solve(args: argparse.Namespace) -> int:
    model = _build_model(args)
    if args.max_queue_length is not None:
        if args.backend not in ("auto", "dense", "compiled"):
            raise errors.SolverError(
                "constrained mode solves the occupation-measure LP, which "
                f"is dense-only; --backend {args.backend} is not supported"
            )
        result = optimize_constrained(model, args.max_queue_length)
        print(f"constrained optimum (L <= {args.max_queue_length:g}):")
    else:
        result = optimize_weighted(model, args.weight, backend=args.backend)
        print(f"weighted optimum (w = {args.weight:g}):")
    print(format_table(("metric", "value"), _metrics_rows(result.metrics)))
    if args.show_policy:
        from repro.ctmdp.policy import RandomizedPolicy

        print()
        policy = result.policy
        if isinstance(policy, RandomizedPolicy):
            rows = [
                (repr(s), ", ".join(f"{a}:{p:.3f}" for a, p in d.items() if p > 0))
                for s, d in (
                    (s, policy.distribution(s)) for s in policy.mdp.states
                )
            ]
        else:
            rows = sorted(
                ((repr(s), a) for s, a in policy.as_dict().items())
            )
        print(format_table(("system state", "command"), rows))
    return 0


def _policy_factory(args: argparse.Namespace, model):
    """A zero-argument factory building the requested policy, or None.

    A factory (rather than an instance) so ``--replications`` can hand
    it to :func:`repro.sim.batch.run_replications`, which constructs a
    fresh policy per replication; the CTMDP solve behind ``optimal``
    happens once, here, not per replication.
    """
    from repro.policies import (
        AlwaysOnPolicy,
        GreedyPolicy,
        NPolicy,
        OptimalCTMDPPolicy,
        TimeoutPolicy,
    )

    if args.policy == "optimal":
        solved = optimize_weighted(
            model, args.weight, backend=getattr(args, "backend", "auto")
        )
        return lambda: OptimalCTMDPPolicy(solved.policy, model.capacity)
    if args.policy == "greedy":
        return lambda: GreedyPolicy(model.provider)
    if args.policy == "always-on":
        return lambda: AlwaysOnPolicy(model.provider)
    if args.policy.startswith("npolicy:"):
        n = int(args.policy.split(":", 1)[1])
        return lambda: NPolicy(n, model.provider)
    if args.policy.startswith("timeout:"):
        timeout = float(args.policy.split(":", 1)[1])
        return lambda: TimeoutPolicy(timeout, model.provider)
    return None


def cmd_simulate(args: argparse.Namespace) -> int:
    from repro.sim import PoissonProcess, simulate

    model = _build_model(args)
    factory = _policy_factory(args, model)
    if factory is None:
        print(f"unknown policy {args.policy!r}", file=sys.stderr)
        return 2
    result = simulate(
        provider=model.provider,
        capacity=model.capacity,
        workload=PoissonProcess(model.requestor.rate),
        policy=factory(),
        n_requests=args.requests,
        seed=args.seed,
    )
    rows = [
        ("policy", result.policy_name),
        ("average power [W]", result.average_power),
        ("average queue length", result.average_queue_length),
        ("average waiting time [s]", result.average_waiting_time),
        ("loss probability", result.loss_probability),
        ("PM invocations", result.n_pm_invocations),
    ]
    print(format_table(("metric", "value"), rows))
    if args.replications > 1:
        from repro.sim.batch import run_replications, summarize

        checkpoint = _open_checkpoint(args, {
            "task": "simulate-replications",
            "rate": args.rate,
            "capacity": args.capacity,
            "policy": args.policy,
            "weight": args.weight,
            "requests": args.requests,
            "seed": args.seed,
            "replications": args.replications,
            "backend": args.backend,
        })
        results = run_replications(
            model.provider,
            model.capacity,
            lambda: PoissonProcess(model.requestor.rate),
            factory,
            n_requests=args.requests,
            n_replications=args.replications,
            base_seed=args.seed,
            n_jobs=args.jobs,
            checkpoint=checkpoint,
        )
        summaries = summarize(results)
        last_seed = args.seed + args.replications - 1
        print()
        print(
            f"{args.replications} replications "
            f"(seeds {args.seed}..{last_seed}):"
        )
        print(
            format_table(
                ("metric", "mean", "std error", "95% half-width"),
                [
                    (s.name, s.mean, s.std_error, s.half_width)
                    for s in summaries.values()
                ],
            )
        )
    if args.json_out:
        from repro.sim.trace_io import save_result

        save_result(result, args.json_out)
        print(f"result written to {args.json_out}")
    return 0


def cmd_frontier(args: argparse.Namespace) -> int:
    from repro.dpm.pareto import deterministic_frontier

    model = _build_model(args)
    checkpoint = _open_checkpoint(args, {
        "task": "frontier",
        "rate": args.rate,
        "capacity": args.capacity,
        "max_weight": args.max_weight,
        "weight_tolerance": args.weight_tolerance,
        "backend": args.backend,
    })
    frontier = deterministic_frontier(
        model,
        max_weight=args.max_weight,
        weight_tolerance=args.weight_tolerance,
        checkpoint=checkpoint,
        backend=args.backend,
    )
    rows = [
        (f"{p.weight:.5f}", p.power, p.delay, p.metrics.average_waiting_time)
        for p in frontier
    ]
    print(
        format_table(
            ("weight", "power [W]", "avg queue", "avg waiting [s]"), rows
        )
    )
    return 0


def cmd_describe(args: argparse.Namespace) -> int:
    """Print the model structure (the paper's Figures 1/2 as text)."""
    from repro.dpm.describe import describe_service_provider, describe_service_queue

    model = _build_model(args)
    print("service provider (Figure 1, Example 4.1 policy):")
    for line in describe_service_provider(
        model.provider,
        {"active": "waiting", "waiting": "sleeping", "sleeping": "active"},
    ):
        print(f"  {line}")
    print()
    print("service queue with transfer states (Figure 2, sleep at transfers):")
    for line in describe_service_queue(
        model, sp_mode="active", transfer_action="sleeping"
    ):
        print(f"  {line}")
    print()
    print(
        f"joint state space: {model.n_states} states "
        f"({len(model.provider.modes)} modes x {model.capacity + 1} stable "
        f"+ {len(model.provider.active_modes)} x {model.capacity} transfer)"
    )
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    import json as _json

    from repro.robust.admission import admit_model

    if args.config is not None:
        from repro.dpm.config import load_system

        model = load_system(args.config)
    else:
        model = _build_model(args)
    report = admit_model(
        model, level=args.level, weight=args.weight, raise_on_reject=False,
        backend=args.backend,
    )
    unichain_report = None
    if args.unichain:
        from repro.dpm.verification import verify_model

        unichain_report = verify_model(
            model, sample_budget=args.unichain_budget
        )
    if args.json:
        doc = report.to_dict()
        if unichain_report is not None:
            doc["unichain"] = {
                "ok": unichain_report.ok,
                "n_policies_total": unichain_report.n_policies_total,
                "n_policies_checked": unichain_report.n_policies_checked,
                "exhaustive": unichain_report.exhaustive,
                "n_violations": len(unichain_report.violations),
            }
        print(_json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(f"verdict: {report.verdict} (level: {report.level})")
        diag_rows = sorted(
            (k, v if isinstance(v, (int, bool)) else f"{float(v):g}"
             if isinstance(v, float) else v)
            for k, v in report.diagnostics.items()
        )
        if diag_rows:
            print(format_table(("diagnostic", "value"), diag_rows))
        if report.findings:
            print(format_table(
                ("severity", "code", "where", "message"),
                [(f.severity, f.code,
                  f.state if f.state is not None else "-",
                  f.message)
                 for f in report.findings],
            ))
        if report.remediation:
            print("remediation:", _json.dumps(report.remediation, sort_keys=True))
        if unichain_report is not None:
            sweep = "exhaustive" if unichain_report.exhaustive else "sampled"
            print(
                f"unichain: {'ok' if unichain_report.ok else 'VIOLATED'} "
                f"({unichain_report.n_policies_checked}/"
                f"{unichain_report.n_policies_total} policies, {sweep})"
            )
            for assignment in unichain_report.violations[:5]:
                print(f"  multichain policy: {assignment}")
    if args.report_out:
        from repro.obs.export import run_manifest, write_admission_report

        write_admission_report(
            report, args.report_out,
            manifest=run_manifest(seed=None),
        )
        if not args.json:
            print(f"report written to {args.report_out}")
    if report.verdict == "rejected":
        return 3
    if unichain_report is not None and not unichain_report.ok:
        return 3
    if report.verdict == "repaired":
        return EXIT_REPAIRED
    return 0


def cmd_certify(args: argparse.Namespace) -> int:
    import json as _json

    from repro.certify import certify_artifact, certify_result

    model = _build_model(args)
    checks = tuple(args.checks.split(",")) if args.checks else None
    kwargs = {}
    if args.tolerance is not None:
        kwargs["tolerance"] = args.tolerance
    if checks is not None:
        kwargs["checks"] = checks
    if args.artifact is not None:
        from repro.serve.artifact import load_artifact

        artifact = load_artifact(args.artifact)
        report = certify_artifact(artifact, model, **kwargs)
    elif args.max_queue_length is not None:
        result = optimize_constrained(model, args.max_queue_length)
        report = certify_result(
            model,
            result,
            constraints={"queue_length": args.max_queue_length},
            **kwargs,
        )
    else:
        result = optimize_weighted(model, args.weight, solver=args.solver)
        report = certify_result(model, result, **kwargs)
    if args.cert_out:
        with open(args.cert_out, "w") as handle:
            _json.dump(report.to_document(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.json:
        print(_json.dumps(report.to_document(), indent=2, sort_keys=True))
    else:
        print(
            f"verdict: {report.verdict} (mode: {report.mode}, "
            f"tolerance: {report.tolerance:g})"
        )
        print(format_table(
            ("check", "status", "evidence"),
            [(c.name, c.status, _check_evidence(c)) for c in report.checks],
        ))
        if report.findings:
            print(format_table(
                ("code", "where", "message"),
                [(f.code, f.state if f.state is not None else "-", f.message)
                 for f in report.findings],
            ))
        if args.cert_out:
            print(f"certificate written to {args.cert_out}")
    return 0 if report.certified else EXIT_CERTIFICATION


def _check_evidence(check) -> str:
    """One-line human summary of a check's numeric evidence."""
    for key in (
        "suboptimality_gap", "duality_gap", "exact_gain", "max_spread",
        "reason",
    ):
        if key in check.data:
            value = check.data[key]
            text = f"{value:.3e}" if isinstance(value, float) else str(value)
            return f"{key}={text}"
    return "-"


def cmd_profile(args: argparse.Namespace) -> int:
    from repro.obs.profile import format_profile, read_profile

    profile = read_profile(args.profile)
    print(format_profile(profile, sort=args.sort, limit=args.limit), end="")
    return 0


def cmd_bench_report(args: argparse.Namespace) -> int:
    from repro.obs.benchtrack import bench_report, regressions

    if args.check and args.baseline is None:
        print(
            "error: --check needs --baseline DIR to compare against",
            file=sys.stderr,
        )
        return 2
    text, deltas = bench_report(
        args.bench_dir,
        baseline_dir=args.baseline,
        only=args.only,
        verbose=args.verbose,
    )
    print(text)
    if args.check:
        bad = regressions(deltas)
        if bad:
            print(
                f"bench regression check FAILED: {len(bad)} metric(s) "
                "regressed beyond tolerance",
                file=sys.stderr,
            )
            return EXIT_BENCH_REGRESSION
        print("bench regression check passed")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import json as _json

    from repro.serve import ArtifactStore, ServingRuntime
    from repro.serve.supervisor import CircuitBreaker, RetryPolicy

    model = _build_model(args)
    store = ArtifactStore(args.artifact_dir)
    solve = None
    plan = None
    attempt_timeout = args.attempt_timeout
    if args.chaos:
        from repro.serve.chaos import ChaosPlan, ChaosSolver

        solve = ChaosSolver(
            model,
            args.weight,
            probabilities={"crash": 0.25, "hang": 0.05, "nan": 0.15},
            seed=args.chaos_seed,
            solver="policy_iteration",
            backend=args.backend,
            hang_sleep=0.15,
        )
        plan = ChaosPlan(
            model.requestor.rate,
            seed=args.chaos_seed,
            storm_period=max(args.duration / 8.0, 1.0),
            corrupt_probability=0.01,
            reload_probability=0.02,
        )
        if attempt_timeout is None:
            attempt_timeout = 0.05
    runtime = ServingRuntime(
        model,
        args.weight,
        store,
        backend=args.backend,
        drift_threshold=args.drift_threshold,
        drift_consecutive=args.drift_consecutive,
        retry=RetryPolicy(attempts=args.retries, base_delay=0.01),
        breaker=CircuitBreaker(
            failure_threshold=args.breaker_threshold, reset_timeout=0.1
        ),
        attempt_timeout=attempt_timeout,
        solve=solve,
    )
    rung = runtime.bootstrap(initial_solve=not args.no_initial_solve)
    print(
        f"bootstrap: serving from the {rung!r} rung "
        f"(source: {runtime.bootstrap_source})"
    )
    if runtime.bootstrap_error:
        print(f"bootstrap note: {runtime.bootstrap_error}", file=sys.stderr)
    if args.port is not None:
        import asyncio

        async def _run() -> None:
            server = await asyncio.start_server(
                runtime.handle_connection, args.host, args.port
            )
            host, port = server.sockets[0].getsockname()[:2]
            print(f"serving on {host}:{port} (JSON lines; op=health for status)")
            async with server:
                if args.duration > 0:
                    await asyncio.sleep(args.duration)
                else:  # pragma: no cover - interactive mode
                    await server.serve_forever()

        asyncio.run(_run())
    else:
        report = runtime.soak(
            args.duration, seed=args.seed, chaos=plan,
            adapt_every=args.adapt_every,
        )
        doc = report.to_dict()
        if plan is not None:
            doc["chaos"] = {
                "seed": args.chaos_seed,
                "solver_outcomes": solve.outcomes,
                "corruptions": plan.corruptions,
                "reload_attempts": plan.reload_attempts,
                "reload_rejections": plan.reload_rejections,
                "reload_successes": plan.reload_successes,
            }
        if args.json_out:
            with open(args.json_out, "w") as handle:
                _json.dump(doc, handle, indent=2, sort_keys=True)
            print(f"soak report written to {args.json_out}")
        print(
            f"soak: {report.decisions} decisions over {report.arrivals} "
            f"arrivals in {args.duration:g}s of virtual time "
            f"({report.resolves} re-solves, "
            f"{report.resolve_successes} succeeded)"
        )
        if report.selfcheck_violations:
            print(
                f"error: {report.selfcheck_violations} decision(s) "
                "inconsistent with the admitted artifact",
                file=sys.stderr,
            )
            return 1
    status = runtime.status()
    print(
        f"health: {status['health']} (source: {status['source']}, "
        f"artifact v{status['artifact_version']}, "
        f"breaker: {status['breaker']}, "
        f"breaker opened {status['breaker_opened']}x)"
    )
    if status["health"] != "ok":
        return EXIT_SERVING_DEGRADED
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    if args.exhibit == "figure4":
        from repro.experiments.figure4 import format_figure4, run_figure4

        rows = run_figure4(n_requests=args.requests, n_jobs=args.jobs)
        print(format_figure4(rows))
    elif args.exhibit == "table1":
        from repro.experiments.table1 import format_table1, run_table1

        rows = run_table1(n_requests=args.requests, n_jobs=args.jobs)
        print(format_table1(rows))
    else:
        from repro.experiments.figure5 import format_figure5, run_figure5

        rows = run_figure5(n_requests=args.requests, n_jobs=args.jobs)
        print(format_figure5(rows))
    if args.csv_out:
        from repro.experiments.export import export_rows

        export_rows(rows, args.csv_out)
        print(f"rows written to {args.csv_out}")
    return 0


def _observability_parent() -> argparse.ArgumentParser:
    """Shared ``--metrics-out/--trace-out/--log-level`` flags.

    Attached to every subcommand via ``parents=`` so the flags are
    accepted after the subcommand name, where users type them.
    """
    common = argparse.ArgumentParser(add_help=False)
    group = common.add_argument_group("observability")
    group.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the run's metrics registry (counters, histograms, "
             "convergence series) as JSON to PATH",
    )
    group.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write span timings as JSONL to PATH (first line: manifest)",
    )
    group.add_argument(
        "--profile-out", default=None, metavar="PATH",
        help="profile the run (wall + CPU time and tracemalloc peak per "
             "span) and write the self/cumulative phase tree as JSON to "
             "PATH; render it with 'repro-dpm profile PATH'",
    )
    group.add_argument(
        "--log-level", default=None, choices=LEVELS,
        help="enable stderr logging at this level",
    )
    group.add_argument(
        "--debug", action="store_true",
        help="re-raise library errors with a full traceback instead of "
             "the one-line message + exit code",
    )
    return common


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-dpm",
        description="CTMDP-based dynamic power management (Qiu & Pedram, DAC 1999)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    common = _observability_parent()

    solve = sub.add_parser("solve", help="optimize a power-management policy",
                           parents=[common])
    _add_model_arguments(solve)
    solve.add_argument("--weight", type=float, default=1.0,
                       help="performance weight w of Eqn. 3.1 (default: 1)")
    solve.add_argument("--max-queue-length", type=float, default=None,
                       help="delay bound D_M; switches to constrained mode")
    solve.add_argument("--show-policy", action="store_true",
                       help="print the full state->command table")
    _add_backend_argument(solve)
    solve.set_defaults(func=cmd_solve)

    simulate_p = sub.add_parser("simulate", help="run the event-driven simulator",
                                parents=[common])
    _add_model_arguments(simulate_p)
    simulate_p.add_argument("--policy", default="optimal",
                            help="optimal | greedy | always-on | npolicy:N | timeout:SECONDS")
    simulate_p.add_argument("--weight", type=float, default=1.0,
                            help="weight used when --policy=optimal")
    simulate_p.add_argument("--requests", type=int, default=50_000,
                            help="requests to generate (default: 50000)")
    simulate_p.add_argument("--seed", type=int, default=0)
    simulate_p.add_argument("--replications", type=int, default=1,
                            help="independent replications (seeds seed..seed+N-1); "
                                 "N > 1 adds a mean +- stderr summary table")
    simulate_p.add_argument("--jobs", type=int, default=None,
                            help="worker processes for the replications "
                                 "(-1 = all cores); results are identical to "
                                 "a serial run")
    simulate_p.add_argument("--json-out", default=None,
                            help="also dump the result as JSON to this path")
    _add_backend_argument(simulate_p)
    _add_checkpoint_arguments(simulate_p)
    simulate_p.set_defaults(func=cmd_simulate)

    frontier = sub.add_parser("frontier", help="print the exact Pareto frontier",
                              parents=[common])
    _add_model_arguments(frontier)
    frontier.add_argument("--max-weight", type=float, default=1e3)
    frontier.add_argument("--weight-tolerance", type=float, default=1e-4,
                          help="bisection resolution on the weight axis "
                               "(default: 1e-4)")
    _add_backend_argument(frontier)
    _add_checkpoint_arguments(frontier)
    frontier.set_defaults(func=cmd_frontier)

    describe = sub.add_parser(
        "describe", help="print the model structure (Figures 1/2 as text)",
        parents=[common],
    )
    _add_model_arguments(describe)
    describe.set_defaults(func=cmd_describe)

    experiments = sub.add_parser("experiments", help="regenerate a paper exhibit",
                                 parents=[common])
    experiments.add_argument("exhibit", choices=("figure4", "table1", "figure5"))
    experiments.add_argument("--requests", type=int, default=50_000)
    experiments.add_argument("--jobs", type=int, default=None,
                             help="worker processes for independent solves/"
                                  "simulations (-1 = all cores); results are "
                                  "identical to a serial run")
    experiments.add_argument("--csv-out", default=None,
                             help="also export the series as CSV to this path")
    experiments.set_defaults(func=cmd_experiments)

    validate = sub.add_parser(
        "validate",
        help="run a model through the admission gate and print the report",
        parents=[common],
    )
    validate.add_argument(
        "config", nargs="?", default=None,
        help="JSON model config (see repro.dpm.config); defaults to the "
             "paper preset adjusted by --rate/--capacity",
    )
    _add_model_arguments(validate)
    validate.add_argument("--weight", type=float, default=1.0,
                          help="cost weight used for the built CTMDP")
    validate.add_argument("--level", default="full",
                          choices=("entry", "standard", "full"),
                          help="admission depth (default: full)")
    validate.add_argument("--json", action="store_true",
                          help="print the report as JSON instead of tables")
    validate.add_argument("--report-out", default=None, metavar="PATH",
                          help="also write the report (with a run manifest) "
                               "as JSON to PATH")
    validate.add_argument("--unichain", action="store_true",
                          help="also sweep the deterministic policy space "
                               "for multichain violations (the Section-III "
                               "connectivity guarantee); violations exit 3")
    validate.add_argument("--unichain-budget", type=int, default=500,
                          help="policy-sample budget for the unichain sweep "
                               "(exhaustive when the space fits; default: 500)")
    _add_backend_argument(validate)
    validate.set_defaults(func=cmd_validate)

    certify = sub.add_parser(
        "certify",
        help="solve and independently certify a policy (proof-carrying "
             "optimality evidence)",
        parents=[common],
    )
    _add_model_arguments(certify)
    certify.add_argument("--weight", type=float, default=1.0,
                         help="performance weight w of Eqn. 3.1 (default: 1)")
    certify.add_argument("--max-queue-length", type=float, default=None,
                         help="delay bound D_M; switches to constrained mode")
    certify.add_argument("--solver", default="policy_iteration",
                         choices=("policy_iteration", "value_iteration",
                                  "linear_program"),
                         help="solver under test (default: policy_iteration)")
    certify.add_argument("--artifact", default=None, metavar="PATH",
                         help="certify a stored serve artifact instead of "
                              "solving (uses its own rate/weight/metrics)")
    certify.add_argument("--tolerance", type=float, default=None,
                         help="relative certification tolerance "
                              "(default: 1e-6)")
    certify.add_argument("--checks", default=None,
                         help="comma-separated subset of "
                              "bellman,lp,exact,consensus (default: all)")
    certify.add_argument("--json", action="store_true",
                         help="print the certificate document as JSON")
    certify.add_argument("--cert-out", default=None, metavar="PATH",
                         help="also write the certificate document to PATH")
    certify.set_defaults(func=cmd_certify)

    profile = sub.add_parser(
        "profile",
        help="render a --profile-out phase-profile JSON as text",
        parents=[common],
    )
    profile.add_argument("profile", help="profile JSON written by --profile-out")
    profile.add_argument("--sort", default="self", choices=("self", "cum"),
                         help="hot-phase table ordering (default: self time)")
    profile.add_argument("--limit", type=int, default=30,
                         help="rows in the hot-phase table (default: 30)")
    profile.set_defaults(func=cmd_profile)

    bench = sub.add_parser(
        "bench-report",
        help="print BENCH_*.json trend tables; diff against a baseline",
        parents=[common],
    )
    bench.add_argument("--bench-dir", default="benchmarks",
                       help="directory holding BENCH_*.json (default: benchmarks)")
    bench.add_argument("--baseline", default=None, metavar="DIR",
                       help="baseline directory of BENCH_*.json to diff against")
    bench.add_argument("--only", default=None, metavar="PATTERN",
                       help="restrict to metric names matching PATTERN "
                            "(substring, or fnmatch glob)")
    bench.add_argument("--check", action="store_true",
                       help=f"exit {EXIT_BENCH_REGRESSION} if any checked "
                            "metric regressed beyond its tolerance")
    bench.add_argument("--verbose", action="store_true",
                       help="show unchanged and informational metrics too")
    bench.set_defaults(func=cmd_bench_report)

    serve = sub.add_parser(
        "serve",
        help="run the self-healing policy-serving runtime",
        parents=[common],
    )
    _add_model_arguments(serve)
    serve.add_argument("--weight", type=float, default=1.0,
                       help="performance weight of the served objective")
    serve.add_argument("--artifact-dir", default="artifacts", metavar="DIR",
                       help="directory holding the policy artifact "
                            "(default: artifacts); bootstraps from a "
                            "last-good artifact found there")
    serve.add_argument("--duration", type=float, default=600.0,
                       help="virtual seconds to soak (default: 600), or "
                            "wall-clock seconds to stay up with --port "
                            "(0 = forever)")
    serve.add_argument("--seed", type=int, default=0,
                       help="seed for the soak loop's arrival stream")
    serve.add_argument("--port", type=int, default=None,
                       help="serve a JSON-lines TCP endpoint on this port "
                            "instead of running the soak loop")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--drift-threshold", type=float, default=0.25,
                       help="relative rate deviation that counts as drift "
                            "(default: 0.25)")
    serve.add_argument("--drift-consecutive", type=int, default=3,
                       help="consecutive beyond-threshold estimates needed "
                            "to confirm drift (default: 3)")
    serve.add_argument("--adapt-every", type=int, default=25,
                       help="soak arrivals between adaptation checks "
                            "(default: 25)")
    serve.add_argument("--retries", type=int, default=3,
                       help="solve attempts per re-solve request (default: 3)")
    serve.add_argument("--breaker-threshold", type=int, default=3,
                       help="consecutive failed re-solves before the "
                            "circuit breaker opens (default: 3)")
    serve.add_argument("--attempt-timeout", type=float, default=None,
                       help="wall-clock budget per solve attempt in seconds "
                            "(default: none -- solves run inline)")
    serve.add_argument("--no-initial-solve", action="store_true",
                       help="do not solve at bootstrap when no stored "
                            "artifact is admissible (start on the "
                            "heuristic rung)")
    serve.add_argument("--chaos", action="store_true",
                       help="seeded fault injection: solver crashes/hangs/"
                            "NaN results, artifact corruption, drift storm "
                            "(the CI chaos job)")
    serve.add_argument("--chaos-seed", type=int, default=0,
                       help="seed for --chaos fault injection (default: 0)")
    serve.add_argument("--json-out", default=None, metavar="PATH",
                       help="write the soak report as JSON to PATH")
    _add_backend_argument(serve)
    serve.set_defaults(func=cmd_serve)

    return parser


def _dispatch(args: argparse.Namespace, argv: "Optional[Sequence[str]]") -> int:
    if args.log_level is not None:
        configure_logging(args.log_level)
    registry = MetricsRegistry() if args.metrics_out else None
    profile_out = getattr(args, "profile_out", None)
    if profile_out:
        # The profiler IS a tracer, so one object serves both
        # --trace-out and --profile-out from the same span stream.
        from repro.obs.profile import PhaseProfiler

        tracer = PhaseProfiler()
    elif args.trace_out:
        tracer = Tracer()
    else:
        tracer = None
    if registry is None and tracer is None:
        return args.func(args)
    from repro.obs.export import (
        run_manifest,
        write_metrics,
        write_profile,
        write_trace,
    )

    try:
        with instrument(metrics=registry, tracer=tracer):
            status = args.func(args)
    finally:
        if profile_out:
            tracer.close()
    manifest = run_manifest(
        argv=list(argv) if argv is not None else sys.argv[1:],
        seed=getattr(args, "seed", None),
    )
    if registry is not None:
        write_metrics(registry, args.metrics_out, manifest=manifest)
        print(f"metrics written to {args.metrics_out}")
    if tracer is not None and args.trace_out:
        write_trace(tracer, args.trace_out, manifest=manifest)
        print(f"trace written to {args.trace_out}")
    if profile_out:
        write_profile(tracer, profile_out, manifest=manifest)
        print(f"profile written to {profile_out}")
    return status


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args, argv)
    except errors.ReproError as exc:
        if args.debug:
            raise
        print(f"error: {exc}", file=sys.stderr)
        return exit_code_for(exc)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
