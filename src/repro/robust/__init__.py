"""Fault-tolerance layer: guardrails, checkpoints, fault injection.

The reproduction's workflow is a long chain of fragile numerics -- build
the joint SYS generator, solve the average-cost system, sweep weights
and replications -- and production use cannot afford a bare traceback
at the first singular matrix or crashed pool worker. This package
hardens the stack in three independent pieces:

- :mod:`repro.robust.guardrails` -- numerical guardrails for the dense
  linear solves at the heart of policy evaluation: finite/residual
  checks, a least-squares fallback before giving up, and structured
  :class:`~repro.errors.SolverError` diagnostics payloads.
- :mod:`repro.robust.checkpoint` -- config-hash-keyed JSON checkpoints
  for the long-running drivers (frontier sweeps, weight searches,
  replication campaigns) so an interrupted run resumes to bit-identical
  final output.
- :mod:`repro.robust.faultinject` -- deterministic, seed-free fault
  injectors (worker crash, hang, NaN contamination) that the
  ``tests/robust`` suite uses to prove every recovery path in
  :func:`repro.sim.parallel.parallel_map` actually fires.
- :mod:`repro.robust.admission` -- the model-admission gate: structural
  and numerical checks plus an exact remediation ladder that every
  model-construction entry point routes through, producing a
  structured :class:`~repro.robust.admission.AdmissionReport`.
- :mod:`repro.robust.fuzz` -- the seeded adversarial-model fuzzer that
  drives degenerate models through admission, both solver backends and
  the simulator, asserting the "typed error or correct answer"
  invariant end to end.

The recovery ladder itself (per-chunk timeouts, crashed-worker
detection, bounded deterministic retry, graceful degradation to serial
execution) lives in :mod:`repro.sim.parallel`, which consumes the
hooks defined here. DESIGN.md section 8 documents the failure
semantics end to end.
"""

from repro.robust.admission import (
    AdmissionReport,
    Finding,
    admit_ctmdp,
    admit_inputs,
    admit_model,
)
from repro.robust.checkpoint import Checkpoint, config_hash
from repro.robust.faultinject import Fault, FaultPlan, inject
from repro.robust.guardrails import (
    guardrails_disabled,
    solve_with_fallback,
    system_diagnostics,
)

__all__ = [
    "AdmissionReport",
    "Finding",
    "admit_ctmdp",
    "admit_inputs",
    "admit_model",
    "Checkpoint",
    "config_hash",
    "Fault",
    "FaultPlan",
    "inject",
    "guardrails_disabled",
    "solve_with_fallback",
    "system_diagnostics",
]
