"""Numerical guardrails for the solvers' dense linear systems.

Every policy-evaluation step solves one bordered linear system
``c + G h = g 1``, ``h[ref] = 0``. On well-posed unichain models the
system is nonsingular and ``numpy.linalg.solve`` is the fastest route;
on ill-posed inputs (multichain models slipping through validation,
extreme rate ratios driving the condition number up) it either raises
``LinAlgError`` or silently returns garbage. :func:`solve_with_fallback`
wraps the solve with a recovery ladder:

1. **Direct solve** (`numpy.linalg.solve`), then a cheap acceptance
   check: all components finite and the relative residual
   ``||A x - b|| / (||A|| ||x|| + ||b||)`` below ``residual_rtol``. The
   check is one matrix-vector product -- O(n^2) against the O(n^3)
   factorization, so the no-fault hot path stays within the <3 %
   overhead budget asserted by ``benchmarks/test_bench_robust_overhead``.
2. **Least-squares fallback** (`numpy.linalg.lstsq`) when the direct
   solve raises or fails acceptance. A singular-but-consistent system
   (e.g. a duplicated balance equation) still has an exact solution
   that lstsq recovers; the fallback is accepted under the same
   residual test and counted in the ``solver.lstsq_fallbacks`` metric.
3. **Structured failure**: if the least-squares solution is also
   rejected, a :class:`~repro.errors.SolverError` is raised carrying a
   :func:`system_diagnostics` payload -- condition number, rank,
   residuals of both attempts, matrix shape -- plus whatever solver
   context (iteration, offending policy) the caller passes in.

The expensive spectral analysis (SVD condition number, rank) runs only
on the failure path; the hot path pays the residual check alone.
``guardrails_disabled()`` turns even that off, which exists purely so
the overhead bench can measure the delta.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional

import numpy as np

from repro.errors import SolverError
from repro.obs.runtime import active as obs_active

#: Relative-residual acceptance threshold. The evaluation systems are
#: small and dense; a healthy solve lands near machine epsilon, and
#: anything above 1e-6 signals the factorization lost the system.
RESIDUAL_RTOL = 1e-6

#: Module switch for the overhead bench; never disable in production.
_enabled = True

#: Direct dense solver, module-level so tests can monkeypatch it to
#: force the fallback path on an otherwise healthy system.
_dense_solve = np.linalg.solve


@contextmanager
def guardrails_disabled() -> "Iterator[None]":
    """Bypass the residual acceptance check (bench-only escape hatch)."""
    global _enabled
    previous = _enabled
    _enabled = False
    try:
        yield
    finally:
        _enabled = previous


def _relative_residual(
    a: np.ndarray, x: np.ndarray, b: np.ndarray,
    a_max: "Optional[float]" = None,
) -> float:
    """``||A x - b||_inf`` scaled by the problem's magnitude.

    *a_max* is an optional precomputed ``max |a_ij|``: iterative
    callers that assemble the same system from fixed arrays every
    round (policy iteration's bordered evaluation system) can compute
    per-row maxima once and hand the scale in, leaving the matvec as
    the check's only O(n^2) pass.
    """
    residual = float(np.abs(a @ x - b).max())
    if a_max is None:
        # max |a_ij| via two reduction scans instead of ``np.abs(a)``:
        # the O(n^2) |a| temporary was the single largest cost of the
        # acceptance check (see benchmarks/test_bench_robust_overhead).
        a_max = max(-float(a.min()), float(a.max()))
    scale = a_max * float(np.abs(x).max()) + float(np.abs(b).max())
    return residual / scale if scale > 0 else residual


def _accept(
    a: np.ndarray, x: np.ndarray, b: np.ndarray, rtol: float,
    a_max: "Optional[float]" = None,
) -> "tuple[bool, float]":
    if not np.isfinite(x).all():
        return False, float("inf")
    residual = _relative_residual(a, x, b, a_max=a_max)
    return residual <= rtol, residual


def system_diagnostics(a: np.ndarray) -> "Dict[str, Any]":
    """Spectral diagnostics of a failed system (failure path only).

    Returns a JSON-serializable mapping with the matrix shape, its
    2-norm condition number, numerical rank, and smallest/largest
    singular values. This is a full SVD -- acceptable because it runs
    only when a solve has already failed.
    """
    singular_values = np.linalg.svd(a, compute_uv=False)
    largest = float(singular_values[0]) if len(singular_values) else 0.0
    smallest = float(singular_values[-1]) if len(singular_values) else 0.0
    tol = largest * max(a.shape) * np.finfo(float).eps
    return {
        "shape": list(a.shape),
        "condition_number": (largest / smallest) if smallest > 0 else float("inf"),
        "rank": int(np.count_nonzero(singular_values > tol)),
        "sigma_max": largest,
        "sigma_min": smallest,
    }


def solve_with_fallback(
    a: np.ndarray,
    b: np.ndarray,
    what: str = "linear system",
    residual_rtol: float = RESIDUAL_RTOL,
    context: "Optional[Dict[str, Any]]" = None,
    a_max: "Optional[float]" = None,
) -> np.ndarray:
    """Solve ``A x = b`` with the guardrail ladder described above.

    Parameters
    ----------
    a, b:
        The dense system.
    what:
        Human-readable name of the system for messages ("policy
        evaluation system", ...).
    residual_rtol:
        Acceptance threshold on the relative residual.
    context:
        Extra solver context (iteration, policy, backend) merged into
        the diagnostics payload when both attempts fail.
    a_max:
        Optional precomputed ``max |a_ij|`` for the acceptance scale
        (see :func:`_relative_residual`).

    Raises
    ------
    SolverError
        When neither the direct solve nor the least-squares fallback
        produces a solution within ``residual_rtol``; ``diagnostics``
        carries the spectral analysis and both residuals.
    """
    direct_error: "Optional[str]" = None
    direct_residual: "Optional[float]" = None
    try:
        x = _dense_solve(a, b)
    except np.linalg.LinAlgError as exc:
        direct_error = str(exc)
    else:
        if not _enabled:
            return x
        ok, direct_residual = _accept(a, x, b, residual_rtol, a_max=a_max)
        if ok:
            return x

    # Degraded rung: minimum-norm least squares. Exact for consistent
    # singular systems, and identical to the direct solution (up to
    # roundoff) on nonsingular ones.
    x, _, _, _ = np.linalg.lstsq(a, b, rcond=None)
    ok, lstsq_residual = _accept(a, x, b, residual_rtol, a_max=a_max)
    if ok:
        ins = obs_active()
        if ins.metrics is not None:
            ins.metrics.counter("solver.lstsq_fallbacks").inc()
        return x

    diagnostics: "Dict[str, Any]" = {
        "what": what,
        "direct_error": direct_error,
        "direct_residual": direct_residual,
        "lstsq_residual": lstsq_residual,
        "residual_rtol": residual_rtol,
    }
    diagnostics.update(system_diagnostics(a))
    if context:
        diagnostics.update(context)
    raise SolverError(
        f"{what} is singular or too ill-conditioned even for the "
        f"least-squares fallback (residual {lstsq_residual:.3g} > "
        f"{residual_rtol:g}, condition number "
        f"{diagnostics['condition_number']:.3g}); the induced chain is "
        "likely multichain -- check the model's action constraints",
        diagnostics=diagnostics,
    )
