"""The model-admission gate: every model earns its way to a solver.

PR 4 hardened the *execution* layer; this module hardens the *inputs*.
A user-supplied provider/queue configuration with a zero rate, a
disconnected mode graph, or a 1e9:1 stiffness ratio used to reach
``policy_iteration`` or the simulator raw and fail deep inside linear
algebra -- or converge to garbage silently. The paper engineers its
action-validity constraints precisely so the SYS chain stays connected
and the average-cost limit exists (Section III); here that guarantee
becomes a checked precondition.

Three admission levels trade cost for depth:

- ``"entry"`` -- cheap input-domain checks (:func:`admit_inputs`) wired
  directly into :class:`~repro.dpm.system.PowerManagedSystemModel` and
  the simulator: finite positive rates, sane capacity. O(modes^2).
- ``"standard"`` (default) -- everything above, plus structural checks
  on the built CTMDP's compiled arrays (conservation, nonnegativity,
  non-empty action sets) and the numerical diagnostics: stiffness
  ratio, near-zero and near-duplicate rates, extreme rate magnitudes,
  dynamic range. O(pairs x states) NumPy reductions.
- ``"full"`` -- everything above, plus a condition estimate of the
  policy-evaluation system (SVD of the bordered system for the
  first-listed policy) and the per-policy unichain sweep of
  :mod:`repro.dpm.verification` under a sample budget.

Checks produce :class:`Finding` records with a stable ``code``, a
severity, precise state/action coordinates, and (where one exists) a
remediation hint. :func:`admit_model` folds them into an
:class:`AdmissionReport` whose verdict is

- ``"ok"`` -- no findings above ``info``/``warning``;
- ``"repaired"`` -- an ``error``-free model whose rate magnitudes
  required the remediation ladder (canonical power-of-two rate
  rescaling, recorded in ``report.remediation`` and applied in
  ``report.repaired_model``; uniformization-slack advice for stiff
  chains);
- ``"rejected"`` -- at least one ``error`` finding; with
  ``raise_on_reject=True`` (the default for the library entry points)
  a :class:`~repro.errors.ModelRejectedError` carrying the report.

The rescaling remediation is *exact*: the factor is a power of two and
the solvers normalize their linear systems by the canonical exponent
shift (see :func:`repro.markov.generator.canonical_shift`), so a
repaired model produces policies, biases, stationary distributions and
(after dividing the gain by ``rate_scale``) gains bit-identical to the
unscaled solve whenever the unscaled solve succeeds at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.errors import InvalidModelError, ModelRejectedError
from repro.markov.generator import canonical_shift
from repro.obs.runtime import active as obs_active

# -- thresholds --------------------------------------------------------------

#: Stiffness ratio (max/min positive exit rate) above which uniformized
#: methods degrade; flagged as a warning with a slack recommendation.
STIFFNESS_WARN = 1e8

#: Rates below this fraction of the largest rate are structurally zero
#: at double precision (the classify layer drops such edges too).
NEAR_ZERO_RELATIVE = 1e-9

#: Max exit rates outside ``[2**-20, 2**20]`` (~1e-6 .. ~1e6 in natural
#: units) trigger the canonical-rescaling remediation.
RATE_SCALE_LO_EXP = -20
RATE_SCALE_HI_EXP = 20

#: Beyond ~2**600 of dynamic range between the largest and smallest
#: positive rate, the exactness of exponent shifts is lost to denormals
#: and no rescaling can represent both ends; such models are rejected.
DYNAMIC_RANGE_LIMIT_EXP = 600

#: Condition estimate of the policy-evaluation system: warn above 1e10
#: (few trustworthy digits left), reject near machine-singular.
CONDITION_WARN = 1e10
CONDITION_REJECT = 1e15

#: Two actions of one state whose rate rows and costs agree within this
#: relative tolerance are near-duplicates (an informational finding --
#: harmless, but usually a config mistake).
DUPLICATE_RTOL = 1e-12

#: The full-level condition estimate runs a dense SVD of the bordered
#: evaluation system -- O(n^3); above this state count it is skipped and
#: the skip recorded in the diagnostics.
CONDITION_STATE_LIMIT = 2048

#: The near-duplicate-action lint sorts every (state, action) pair by
#: (state, exit rate, cost) -- the lexsort alone is half the gate's cost
#: at 2.5e5 pairs. It is a config smell detector, not a correctness
#: check, so above this pair count it is skipped (and the skip
#: recorded), keeping the sparse gate's overhead within its <3% budget
#: at 1e5 states.
DUPLICATE_PAIR_LIMIT = 100_000

#: Kronecker models at or below this state count are densified through
#: ``to_ctmdp`` so the per-entry checks (near-zero rates, duplicate
#: actions, precise coordinates) apply; above it the gate stays
#: matrix-free.
KRON_DENSIFY_LIMIT = 512

LEVELS = ("entry", "standard", "full")

#: Documented finding codes -> one-line fix, mirrored in the README
#: troubleshooting table.
FINDING_CODES = (
    "nonfinite-rate",
    "nonfinite-cost",
    "negative-rate",
    "nonconservative-row",
    "empty-action-set",
    "zero-exit-state",
    "near-zero-rate",
    "near-duplicate-actions",
    "extreme-rate-scale",
    "high-stiffness",
    "extreme-dynamic-range",
    "ill-conditioned-evaluation",
    "multichain-policy",
)


@dataclass(frozen=True)
class Finding:
    """One admission check result.

    ``code`` is one of :data:`FINDING_CODES`; ``severity`` is ``"info"``,
    ``"warning"``, ``"repair"`` (fixable by the remediation ladder) or
    ``"error"`` (grounds for rejection). ``state``/``action`` pin the
    finding to model coordinates where it has any.
    """

    code: str
    severity: str
    message: str
    state: Optional[str] = None
    action: Optional[str] = None
    value: Optional[float] = None
    remediation: Optional[str] = None

    def to_dict(self) -> "Dict[str, Any]":
        out: Dict[str, Any] = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
        }
        for key in ("state", "action", "remediation"):
            v = getattr(self, key)
            if v is not None:
                out[key] = v
        if self.value is not None:
            out["value"] = float(self.value)
        return out


@dataclass
class AdmissionReport:
    """Structured outcome of :func:`admit_model` / :func:`admit_ctmdp`.

    Attributes
    ----------
    verdict:
        ``"ok"``, ``"repaired"`` or ``"rejected"``.
    level:
        The admission level that ran.
    findings:
        All findings, construction order.
    diagnostics:
        Numerical summary (max/min exit rate, stiffness ratio,
        canonical shift, condition estimate when computed, ...).
    remediation:
        The applied/recommended remediation parameters -- e.g.
        ``{"rate_scale_exponent": -30, "uniformization_slack": 1.2}``.
    repaired_model:
        For ``"repaired"`` verdicts on a
        :class:`~repro.dpm.system.PowerManagedSystemModel`: the rescaled
        model to solve instead (``None`` otherwise). Solver gains from
        it divide by its ``rate_scale`` to recover original units --
        exactly, since the factor is a power of two.
    admitted_mdp:
        The built CTMDP that passed admission -- the repaired build when
        a remediation was applied, the original build otherwise, and
        ``None`` when rejected (or at ``"entry"`` level, which never
        builds). Solving this avoids rebuilding the model the gate
        already built and compiled.
    """

    verdict: str
    level: str
    findings: "List[Finding]" = field(default_factory=list)
    diagnostics: "Dict[str, Any]" = field(default_factory=dict)
    remediation: "Dict[str, Any]" = field(default_factory=dict)
    repaired_model: Optional[Any] = None
    admitted_mdp: Optional[Any] = None

    @property
    def ok(self) -> bool:
        return self.verdict != "rejected"

    def errors(self) -> "List[Finding]":
        return [f for f in self.findings if f.severity == "error"]

    def to_dict(self) -> "Dict[str, Any]":
        """JSON-serializable form (exported via :mod:`repro.obs`)."""
        return {
            "verdict": self.verdict,
            "level": self.level,
            "findings": [f.to_dict() for f in self.findings],
            "diagnostics": {
                k: (v.item() if isinstance(v, np.generic) else v)
                for k, v in self.diagnostics.items()
            },
            "remediation": dict(self.remediation),
        }


# -- entry level -------------------------------------------------------------

def admit_inputs(provider, requestor, capacity: int) -> None:
    """Entry-level admission: input-domain checks, raising on violation.

    Wired into every construction entry point (SYS model, simulator).
    The provider/requestor constructors already enforce their own
    domains; this re-checks the cross-cutting finiteness/positivity
    invariants so that subclasses or hand-built stand-ins cannot smuggle
    degenerate rates past the gate. ``requestor`` may be ``None`` for
    entry points whose workload is not a rate (trace-driven
    simulation).
    """
    if int(capacity) < 1:
        raise InvalidModelError(f"queue capacity must be >= 1, got {capacity}")
    if requestor is not None:
        lam = float(requestor.rate)
        if not (np.isfinite(lam) and lam > 0.0):
            raise InvalidModelError(
                f"arrival rate must be positive and finite, got {lam!r}"
            )
    modes = provider.modes
    if not modes:
        raise InvalidModelError("provider has no modes")
    if not provider.active_modes:
        raise InvalidModelError("provider has no active mode (all mu == 0)")
    for m in modes:
        mu = float(provider.service_rate(m))
        if not np.isfinite(mu) or mu < 0.0:
            raise InvalidModelError(f"service rate of mode {m!r} is {mu!r}")
        p = float(provider.power_rate(m))
        if not np.isfinite(p) or p < 0.0:
            raise InvalidModelError(f"power rate of mode {m!r} is {p!r}")
        for d in modes:
            if d == m:
                continue
            chi = float(provider.switching_rate(m, d))
            if not np.isfinite(chi) or chi <= 0.0:
                raise InvalidModelError(
                    f"switching rate {m!r} -> {d!r} must be positive and "
                    f"finite, got {chi!r}"
                )
            ene = float(provider.switching_energy(m, d))
            if not np.isfinite(ene) or ene < 0.0:
                raise InvalidModelError(
                    f"switching energy {m!r} -> {d!r} is {ene!r}"
                )


# -- structural + numerical checks on a built CTMDP --------------------------

def _row_diff_max(g, p_a: int, p_b: int) -> float:
    """Max absolute elementwise difference of generator rows, dense or CSR."""
    if isinstance(g, np.ndarray):
        return float(np.max(np.abs(g[p_a] - g[p_b]), initial=0.0))
    diff = g[[p_a]] - g[[p_b]]
    return float(np.abs(diff.toarray()).max()) if diff.nnz else 0.0


def _structural_findings(comp, entries) -> "List[Finding]":
    findings: List[Finding] = []
    states = comp.states
    rows, cols, vals = entries
    if np.any(np.diff(comp.pair_offset) == 0):
        for i in np.nonzero(np.diff(comp.pair_offset) == 0)[0]:
            findings.append(Finding(
                code="empty-action-set", severity="error",
                message="state has no admissible action",
                state=repr(states[int(i)]),
            ))
    bad = ~np.isfinite(vals)
    if np.any(bad):
        for k in np.nonzero(bad)[0]:
            p, j = int(rows[k]), int(cols[k])
            findings.append(Finding(
                code="nonfinite-rate", severity="error",
                message=f"rate to column {j} is {float(vals[k])!r}",
                state=repr(states[int(comp.pair_state[p])]),
                action=repr(comp.actions[int(comp.pair_state[p])]
                            [int(comp.pair_col[p])]),
            ))
        return findings  # magnitude checks below need finite entries
    if not np.all(np.isfinite(comp.cost)):
        for p in np.nonzero(~np.isfinite(comp.cost))[0]:
            findings.append(Finding(
                code="nonfinite-cost", severity="error",
                message=f"effective cost rate is {comp.cost[int(p)]!r}",
                state=repr(states[int(comp.pair_state[int(p)])]),
                action=repr(comp.actions[int(comp.pair_state[int(p)])]
                            [int(comp.pair_col[int(p)])]),
            ))
    row_scale = np.bincount(
        rows, weights=np.abs(vals), minlength=comp.n_pairs
    )
    # Diagonals are negative by construction; only off-diagonal
    # negativity is structural.
    neg = (vals < -1e-9 * row_scale[rows]) & (cols != comp.pair_state[rows])
    if np.any(neg):
        for k in np.nonzero(neg)[0]:
            p, j = int(rows[k]), int(cols[k])
            findings.append(Finding(
                code="negative-rate", severity="error",
                message=f"rate to column {j} is {vals[k]:g}",
                state=repr(states[int(comp.pair_state[p])]),
                action=repr(comp.actions[int(comp.pair_state[p])]
                            [int(comp.pair_col[p])]),
                value=float(vals[k]),
            ))
    row_sums = np.bincount(rows, weights=vals, minlength=comp.n_pairs)
    noncons = np.abs(row_sums) > 1e-9 * row_scale
    if np.any(noncons):
        for p in np.nonzero(noncons)[0]:
            findings.append(Finding(
                code="nonconservative-row", severity="error",
                message=(f"generator row sums to {row_sums[int(p)]:g} "
                         f"against magnitude {row_scale[int(p)]:g}"),
                state=repr(states[int(comp.pair_state[int(p)])]),
                action=repr(comp.actions[int(comp.pair_state[int(p)])]
                            [int(comp.pair_col[int(p)])]),
                value=float(row_sums[int(p)]),
            ))
    return findings


def _numerical_findings(
    comp, diagnostics: "Dict[str, Any]", entries
) -> "List[Finding]":
    findings: List[Finding] = []
    states = comp.states
    rows, cols, vals = entries
    # Exit rates from the sparse diagonal entries (zero rows stay 0).
    exit_rates = np.zeros(comp.n_pairs)
    on_diag = cols == comp.pair_state[rows]
    exit_rates[rows[on_diag]] = -vals[on_diag]
    max_rate = float(np.max(exit_rates, initial=0.0))
    positive = exit_rates[exit_rates > 0.0]
    min_rate = float(np.min(positive)) if positive.size else 0.0
    shift = canonical_shift(max_rate)
    diagnostics.update(
        max_exit_rate=max_rate,
        min_positive_exit_rate=min_rate,
        canonical_shift=shift,
    )

    # States absorbing under every action (zero exit everywhere).
    state_max_exit = np.zeros(comp.n_states)
    np.maximum.at(state_max_exit, comp.pair_state, exit_rates)
    dead = state_max_exit <= NEAR_ZERO_RELATIVE * max_rate
    if comp.n_states > 1 and np.any(dead):
        for i in np.nonzero(dead)[0]:
            findings.append(Finding(
                code="zero-exit-state", severity="warning",
                message=("state is absorbing under every action; the "
                         "chain cannot be irreducible"),
                state=repr(states[int(i)]),
                value=float(state_max_exit[int(i)]),
            ))

    # Near-zero rates: positive but indistinguishable from a missing
    # edge at the chain's own magnitude. (Diagonals are <= 0, so the
    # strict positivity test already excludes them.)
    if max_rate > 0.0:
        near = (vals > 0.0) & (vals < NEAR_ZERO_RELATIVE * max_rate)
        count = int(np.count_nonzero(near))
        diagnostics["near_zero_rates"] = count
        if count:
            k = int(np.nonzero(near)[0][0])
            p, j = int(rows[k]), int(cols[k])
            findings.append(Finding(
                code="near-zero-rate", severity="warning",
                message=(f"{count} rate(s) below {NEAR_ZERO_RELATIVE:g} x "
                         "the maximal rate are structurally zero edges; "
                         f"first: rate {vals[k]:g} to column {j}"),
                state=repr(states[int(comp.pair_state[p])]),
                action=repr(comp.actions[int(comp.pair_state[p])]
                            [int(comp.pair_col[p])]),
                value=float(vals[k]),
                remediation=("treat the edge as absent, or raise the rate "
                             "to its intended magnitude"),
            ))

    # Stiffness: widely separated time constants degrade uniformized
    # methods; recommend a slack slightly above 1 so the self-loop
    # probability of fast states stays bounded away from 0.
    if min_rate > 0.0 and max_rate > 0.0:
        stiffness = max_rate / min_rate
        diagnostics["stiffness_ratio"] = stiffness
        if stiffness > STIFFNESS_WARN:
            findings.append(Finding(
                code="high-stiffness", severity="warning",
                message=(f"exit-rate stiffness ratio {stiffness:.3g} exceeds "
                         f"{STIFFNESS_WARN:g}; uniformized value iteration "
                         "will need many sweeps"),
                value=float(stiffness),
                remediation=("prefer policy iteration; for value iteration "
                             "pass uniformization slack ~1.05 and a "
                             "time budget"),
            ))
        if stiffness > float(np.ldexp(1.0, DYNAMIC_RANGE_LIMIT_EXP)):
            findings.append(Finding(
                code="extreme-dynamic-range", severity="error",
                message=(f"rate dynamic range {stiffness:.3g} exceeds "
                         f"2**{DYNAMIC_RANGE_LIMIT_EXP}; no double-precision "
                         "rescaling can represent both ends"),
                value=float(stiffness),
            ))

    # Extreme overall magnitude: fixable by exact canonical rescaling.
    if max_rate > 0.0 and not (
        RATE_SCALE_LO_EXP <= shift <= RATE_SCALE_HI_EXP
    ):
        findings.append(Finding(
            code="extreme-rate-scale", severity="repair",
            message=(f"maximal exit rate {max_rate:.3g} (binary exponent "
                     f"{shift}) is outside the trusted magnitude window "
                     f"[2**{RATE_SCALE_LO_EXP}, 2**{RATE_SCALE_HI_EXP}]"),
            value=float(max_rate),
            remediation=(f"rescale rates by 2**{-shift} (exact); solver "
                         "gains divide by the same factor"),
        ))

    # Near-duplicate actions within a state (config smell, not an
    # error). Cheap vectorized prefilter first: duplicates must agree
    # on exit rate and cost, so sorting each state's pairs by those
    # scalars makes duplicates adjacent, and the full O(n_states) row
    # comparison runs only on the (rare) surviving neighbours.
    if comp.n_pairs > DUPLICATE_PAIR_LIMIT:
        diagnostics["duplicate_check"] = (
            f"skipped: n_pairs > {DUPLICATE_PAIR_LIMIT}"
        )
    elif comp.n_pairs > comp.n_states:
        costs = comp.cost
        rate_tol = DUPLICATE_RTOL * max(max_rate, 1e-300)
        cost_tol = DUPLICATE_RTOL * max(
            float(np.max(np.abs(costs), initial=0.0)), 1e-300
        )
        order = np.lexsort((costs, exit_rates, comp.pair_state))
        ps = comp.pair_state[order]
        ex = exit_rates[order]
        cs = costs[order]
        candidates = np.nonzero(
            (ps[1:] == ps[:-1])
            & (np.abs(ex[1:] - ex[:-1]) <= rate_tol)
            & (np.abs(cs[1:] - cs[:-1]) <= cost_tol)
        )[0]
        for k in candidates:
            p_a, p_b = int(order[k]), int(order[k + 1])
            if _row_diff_max(comp.generator, p_a, p_b) <= rate_tol:
                i = int(comp.pair_state[p_a])
                a_name = comp.actions[i][int(comp.pair_col[p_a])]
                b_name = comp.actions[i][int(comp.pair_col[p_b])]
                findings.append(Finding(
                    code="near-duplicate-actions", severity="info",
                    message=(f"actions {a_name!r} and {b_name!r} have "
                             "identical rates and costs"),
                    state=repr(states[i]),
                    action=repr(a_name),
                ))
    return findings


def _condition_findings(comp, diagnostics: "Dict[str, Any]") -> "List[Finding]":
    """Condition estimate of the canonical evaluation system (full level)."""
    from repro.robust.guardrails import system_diagnostics

    findings: List[Finding] = []
    n = comp.n_states
    sel = comp.pair_offset[:-1]
    g_can, _, _ = comp.canonical()
    block = g_can[sel]
    if not isinstance(block, np.ndarray):
        block = block.toarray()
    a = np.zeros((n + 1, n + 1))
    a[:n, :n] = block
    a[:n, n] = -1.0
    a[n, 0] = 1.0
    info = system_diagnostics(a)
    cond = float(info.get("condition_number", np.inf))
    diagnostics["evaluation_condition_estimate"] = cond
    if cond > CONDITION_REJECT or not np.isfinite(cond):
        findings.append(Finding(
            code="ill-conditioned-evaluation", severity="error",
            message=(f"evaluation system condition estimate {cond:.3g} is "
                     "numerically singular at double precision"),
            value=cond,
        ))
    elif cond > CONDITION_WARN:
        findings.append(Finding(
            code="ill-conditioned-evaluation", severity="warning",
            message=(f"evaluation system condition estimate {cond:.3g} "
                     f"exceeds {CONDITION_WARN:g}; expect few trustworthy "
                     "digits in gain/bias"),
            value=cond,
            remediation="check for near-disconnected state clusters",
        ))
    return findings


def _kron_findings(kmdp, diagnostics: "Dict[str, Any]") -> "List[Finding]":
    """Matrix-free admission checks on a Kronecker model.

    Finiteness and conservation come from one ``G_a @ 1`` matvec per
    action; stiffness/scale diagnostics from the factored exit-rate
    diagonals. Per-entry checks (near-zero rates, near-duplicate
    actions, precise column coordinates) need entry enumeration and are
    skipped -- recorded in the diagnostics so reports say so.
    """
    findings: List[Finding] = []
    ones = np.ones(kmdp.n_states)
    for a, gen in enumerate(kmdp.generators):
        mask = kmdp.available[a]
        if not mask.any():
            continue
        if not np.all(np.isfinite(kmdp.costs[a][mask])):
            i = int(np.argmin(np.where(mask, np.isfinite(kmdp.costs[a]), True)))
            findings.append(Finding(
                code="nonfinite-cost", severity="error",
                message=f"effective cost rate is {float(kmdp.costs[a][i])!r}",
                state=repr(kmdp.state_label(i)),
                action=repr(kmdp.action_set[a]),
            ))
        if not gen.is_finite():
            findings.append(Finding(
                code="nonfinite-rate", severity="error",
                message="generator factors contain non-finite entries",
                action=repr(kmdp.action_set[a]),
            ))
            continue
        row_sums = gen.matvec(ones)
        tol = 1e-9 * max(gen.max_abs_entry(), 1.0)
        bad = mask & (np.abs(row_sums) > tol)
        if np.any(bad):
            i = int(np.argmax(bad))
            findings.append(Finding(
                code="nonconservative-row", severity="error",
                message=(f"generator row sums to {row_sums[i]:g} "
                         f"against magnitude {gen.max_abs_entry():g}"),
                state=repr(kmdp.state_label(i)),
                action=repr(kmdp.action_set[a]),
                value=float(row_sums[i]),
            ))
    if any(f.severity == "error" for f in findings):
        return findings

    exit_rates = kmdp.exit_rates()
    max_rate = float(np.max(exit_rates, initial=0.0))
    positive = exit_rates[exit_rates > 0.0]
    min_rate = float(np.min(positive)) if positive.size else 0.0
    shift = canonical_shift(max_rate)
    diagnostics.update(
        max_exit_rate=max_rate,
        min_positive_exit_rate=min_rate,
        canonical_shift=shift,
        entry_checks="skipped: matrix-free Kronecker view",
    )
    state_max_exit = np.max(
        np.where(kmdp.available, exit_rates, 0.0), axis=0
    )
    dead = state_max_exit <= NEAR_ZERO_RELATIVE * max_rate
    if kmdp.n_states > 1 and np.any(dead):
        for i in np.nonzero(dead)[0][:10]:
            findings.append(Finding(
                code="zero-exit-state", severity="warning",
                message=("state is absorbing under every action; the "
                         "chain cannot be irreducible"),
                state=repr(kmdp.state_label(int(i))),
                value=float(state_max_exit[int(i)]),
            ))
    if min_rate > 0.0 and max_rate > 0.0:
        stiffness = max_rate / min_rate
        diagnostics["stiffness_ratio"] = stiffness
        if stiffness > STIFFNESS_WARN:
            findings.append(Finding(
                code="high-stiffness", severity="warning",
                message=(f"exit-rate stiffness ratio {stiffness:.3g} exceeds "
                         f"{STIFFNESS_WARN:g}; uniformized value iteration "
                         "will need many sweeps"),
                value=float(stiffness),
                remediation=("prefer policy iteration; for value iteration "
                             "pass uniformization slack ~1.05 and a "
                             "time budget"),
            ))
        if stiffness > float(np.ldexp(1.0, DYNAMIC_RANGE_LIMIT_EXP)):
            findings.append(Finding(
                code="extreme-dynamic-range", severity="error",
                message=(f"rate dynamic range {stiffness:.3g} exceeds "
                         f"2**{DYNAMIC_RANGE_LIMIT_EXP}; no double-precision "
                         "rescaling can represent both ends"),
                value=float(stiffness),
            ))
    if max_rate > 0.0 and not (
        RATE_SCALE_LO_EXP <= shift <= RATE_SCALE_HI_EXP
    ):
        findings.append(Finding(
            code="extreme-rate-scale", severity="repair",
            message=(f"maximal exit rate {max_rate:.3g} (binary exponent "
                     f"{shift}) is outside the trusted magnitude window "
                     f"[2**{RATE_SCALE_LO_EXP}, 2**{RATE_SCALE_HI_EXP}]"),
            value=float(max_rate),
            remediation=(f"rescale rates by 2**{-shift} (exact); solver "
                         "gains divide by the same factor"),
        ))
    return findings


def _record_report(report: AdmissionReport) -> None:
    """Labeled admission counters: one per gate, verdict, and finding.

    ``admission.findings.<code>`` makes the 13 finding codes queryable
    from a metrics export without parsing report JSON; verdict counters
    reflect the gate-level outcome (before any pipeline-level unichain
    escalation in :func:`admit_model`, which counts its own findings).
    """
    ins = obs_active()
    if not ins.enabled or ins.metrics is None:
        return
    metrics = ins.metrics
    metrics.counter("admission.gates").inc()
    metrics.counter(f"admission.verdict.{report.verdict}").inc()
    for finding in report.findings:
        metrics.counter(f"admission.findings.{finding.code}").inc()


def admit_ctmdp(
    mdp, level: str = "standard", backend: str = "auto"
) -> AdmissionReport:
    """Run the admission checks on a built model.

    Accepts a dense :class:`~repro.ctmdp.model.CTMDP`, a
    :class:`~repro.ctmdp.sparse.SparseCTMDP`, or a
    :class:`~repro.ctmdp.kron.KroneckerCTMDP`. Dense models admit
    through the compiled arrays; ``backend="sparse"`` (or ``"auto"``
    above the dense state limit) runs the identical scans on the CSR
    entry view instead -- same findings, no densification. Kronecker
    models at or below :data:`KRON_DENSIFY_LIMIT` states densify for
    full per-entry fidelity; larger ones use the matrix-free checks of
    :func:`_kron_findings`.

    Does not raise on findings; callers inspect the report (use
    :func:`admit_model` for the raising pipeline). Each call opens one
    ``admission.gate`` span (with per-phase child spans inside) and
    bumps the verdict/finding counters of :func:`_record_report`.
    """
    ins = obs_active()
    with ins.span(
        "admission.gate",
        level=level,
        backend=backend,
        n_states=int(mdp.n_states),
    ) as span:
        report = _admit_ctmdp_impl(mdp, level, backend)
        span.attrs.update(verdict=report.verdict)
        _record_report(report)
        return report


def _admit_ctmdp_impl(
    mdp, level: str, backend: str
) -> AdmissionReport:
    from repro.ctmdp.backends import BACKENDS, DENSE_STATE_LIMIT
    from repro.ctmdp.compiled import compile_ctmdp
    from repro.ctmdp.kron import KroneckerCTMDP
    from repro.ctmdp.sparse import SparseCTMDP, compile_sparse_ctmdp

    if level not in LEVELS:
        raise InvalidModelError(f"unknown admission level {level!r}; use {LEVELS}")
    if backend not in BACKENDS:
        raise InvalidModelError(
            f"unknown backend {backend!r}; use one of {BACKENDS}"
        )
    diagnostics: Dict[str, Any] = {
        "n_states": mdp.n_states,
        "rate_scale": float(getattr(mdp, "rate_scale", 1.0)),
    }
    findings: List[Finding] = []

    ins = obs_active()
    if isinstance(mdp, KroneckerCTMDP):
        if mdp.n_states <= KRON_DENSIFY_LIMIT:
            diagnostics["admission_view"] = "densified-kron"
            # Stays inside the caller's admission.gate span/counters.
            inner = _admit_ctmdp_impl(mdp.to_ctmdp(), level, "dense")
            inner.diagnostics.update(diagnostics)
            return inner
        diagnostics["admission_view"] = "matrix-free-kron"
        with ins.span("admission.kron"):
            findings.extend(_kron_findings(mdp, diagnostics))
        if level == "full":
            diagnostics["condition_check"] = (
                "skipped: matrix-free Kronecker view"
            )
        return AdmissionReport(
            verdict=_verdict(findings), level=level, findings=findings,
            diagnostics=diagnostics,
            remediation=_remediation(findings, diagnostics),
        )

    use_sparse = isinstance(mdp, SparseCTMDP) or backend == "sparse" or (
        backend in ("auto", "kron") and mdp.n_states > DENSE_STATE_LIMIT
    )
    try:
        with ins.span("admission.compile"):
            if use_sparse:
                comp = compile_sparse_ctmdp(mdp)
                diagnostics["admission_view"] = "sparse"
            else:
                comp = compile_ctmdp(mdp)
    except InvalidModelError as exc:
        findings.append(Finding(
            code="empty-action-set", severity="error", message=str(exc),
        ))
        return AdmissionReport(
            verdict="rejected", level=level, findings=findings,
            diagnostics=diagnostics,
        )
    diagnostics["n_pairs"] = comp.n_pairs
    entries = comp.sparse_entries()
    with ins.span("admission.structural"):
        findings.extend(_structural_findings(comp, entries))
    if not any(f.code == "nonfinite-rate" for f in findings):
        with ins.span("admission.numerical"):
            findings.extend(_numerical_findings(comp, diagnostics, entries))
        if level == "full" and not any(
            f.severity == "error" for f in findings
        ):
            if comp.n_states <= CONDITION_STATE_LIMIT:
                with ins.span("admission.condition"):
                    findings.extend(_condition_findings(comp, diagnostics))
            else:
                diagnostics["condition_check"] = (
                    f"skipped: n_states > {CONDITION_STATE_LIMIT}"
                )
    verdict = _verdict(findings)
    remediation = _remediation(findings, diagnostics)
    return AdmissionReport(
        verdict=verdict, level=level, findings=findings,
        diagnostics=diagnostics, remediation=remediation,
    )


def _verdict(findings: "List[Finding]") -> str:
    if any(f.severity == "error" for f in findings):
        return "rejected"
    if any(f.severity == "repair" for f in findings):
        return "repaired"
    return "ok"


def _remediation(
    findings: "List[Finding]", diagnostics: "Dict[str, Any]"
) -> "Dict[str, Any]":
    out: Dict[str, Any] = {}
    if any(f.code == "extreme-rate-scale" for f in findings):
        out["rate_scale_exponent"] = -int(diagnostics.get("canonical_shift", 0))
    if any(f.code == "high-stiffness" for f in findings):
        out["uniformization_slack"] = 1.05
    return out


# -- the pipeline ------------------------------------------------------------

def admit_model(
    model,
    level: str = "standard",
    weight: float = 0.0,
    raise_on_reject: bool = True,
    sample_budget: int = 100,
    seed: int = 0,
    backend: str = "auto",
) -> AdmissionReport:
    """The single admission pipeline for every entry point.

    Accepts a :class:`~repro.dpm.system.PowerManagedSystemModel` or a
    raw :class:`~repro.ctmdp.model.CTMDP`. Runs entry checks, builds
    the CTMDP (SYS models), then the structural/numerical/conditioning
    checks of *level*; SYS models at ``"full"`` additionally get the
    per-policy unichain sweep of
    :func:`repro.dpm.verification.verify_all_policies_unichain` under
    *sample_budget*.

    When the only findings are fixable by the remediation ladder, the
    repaired (rescaled) model is built, re-checked, and returned on the
    report (``verdict="repaired"``, ``report.repaired_model``).

    ``backend`` selects the model representation SYS models build and
    admit through (see :func:`admit_ctmdp`); ``"auto"`` picks dense
    below the state-count threshold and the CSR view above it, so
    admission of a 10^5-state model never allocates the dense
    O(pairs x states) generator.

    Raises
    ------
    ModelRejectedError
        With ``raise_on_reject`` (default), when the verdict is
        ``"rejected"``; the exception carries the report.
    InvalidModelError
        From the entry-level input checks or the model's own
        constructors (these run before a report exists).
    """
    from repro.dpm.system import PowerManagedSystemModel

    if level not in LEVELS:
        raise InvalidModelError(f"unknown admission level {level!r}; use {LEVELS}")

    build_backend = (
        "dense" if backend in ("dense", "compiled", "reference") else backend
    )
    is_sys = isinstance(model, PowerManagedSystemModel)
    if is_sys:
        admit_inputs(model.provider, model.requestor, model.capacity)
        if level == "entry":
            return AdmissionReport(verdict="ok", level=level)
        mdp = model.build_ctmdp(weight, backend=build_backend)
    else:
        mdp = model
        if level == "entry":
            level = "standard"  # raw CTMDPs have no cheaper gate

    report = admit_ctmdp(mdp, level=level, backend=backend)

    from repro.ctmdp.model import CTMDP

    if (is_sys and level == "full" and not isinstance(mdp, CTMDP)):
        # The unichain sweep enumerates/samples policies on the dense
        # dict-based model; on the sparse build it would densify, so it
        # is skipped (the structural checks above still ran).
        report.diagnostics["unichain_check"] = "skipped: non-dense backend"
    if (is_sys and level == "full" and isinstance(mdp, CTMDP)
            and not any(f.severity == "error" for f in report.findings)):
        from repro.dpm.verification import verify_all_policies_unichain

        ins = obs_active()
        with ins.span(
            "admission.unichain", sample_budget=sample_budget
        ) as sweep_span:
            sweep = verify_all_policies_unichain(
                model, sample_budget=sample_budget, seed=seed
            )
            sweep_span.attrs.update(
                policies_checked=sweep.n_policies_checked,
                violations=len(sweep.violations),
            )
        report.diagnostics["unichain_policies_checked"] = sweep.n_policies_checked
        report.diagnostics["unichain_exhaustive"] = sweep.exhaustive
        if ins.enabled and ins.metrics is not None and sweep.violations:
            ins.metrics.counter(
                "admission.findings.multichain-policy"
            ).inc(len(sweep.violations))
        for assignment in sweep.violations:
            first = next(iter(assignment.items()))
            report.findings.append(Finding(
                code="multichain-policy", severity="error",
                message=("an admissible deterministic policy induces more "
                         "than one recurrent class; average-cost evaluation "
                         "is ill-posed"),
                state=repr(first[0]),
                action=repr(first[1]),
            ))
        report.verdict = _verdict(report.findings)
        report.remediation = _remediation(report.findings, report.diagnostics)

    if report.verdict != "rejected":
        report.admitted_mdp = mdp
    if report.verdict == "repaired" and is_sys:
        exponent = report.remediation.get("rate_scale_exponent")
        if exponent is not None:
            repaired = PowerManagedSystemModel(
                model.provider,
                model.requestor,
                model.capacity,
                include_transfer_states=model.include_transfer_states,
                rate_scale=float(np.ldexp(1.0, int(exponent))),
            )
            # Re-check the repaired model at the same structural level;
            # remediation must not merely move the problem.
            repaired_mdp = repaired.build_ctmdp(weight, backend=build_backend)
            recheck = admit_ctmdp(repaired_mdp, level="standard", backend=backend)
            report.diagnostics["repaired_max_exit_rate"] = (
                recheck.diagnostics.get("max_exit_rate")
            )
            if recheck.verdict == "rejected":
                report.verdict = "rejected"
                report.findings.extend(recheck.findings)
                report.admitted_mdp = None
            else:
                report.repaired_model = repaired
                report.admitted_mdp = repaired_mdp

    if report.verdict == "rejected" and raise_on_reject:
        codes = sorted({f.code for f in report.errors()})
        raise ModelRejectedError(
            f"model rejected by admission: {', '.join(codes)}", report=report
        )
    return report
