"""Deterministic fault injection for the parallel execution layer.

Testing recovery code is the hard part of writing it: a retry path that
never fires in CI is a retry path that is broken in production. This
module gives the ``tests/robust`` suite (and CI's fault-injection job)
a way to make a *chosen* worker crash, hang past the timeout, or return
NaN-contaminated results -- deterministically, without sleeping on race
conditions or patching internals.

Design:

- A :class:`FaultPlan` is a list of :class:`Fault` records, each naming
  the *item index* it targets, the fault ``kind``, and how many
  *attempts* it fires on (``times``, default 1 -- so the first retry of
  the chunk succeeds, exercising exactly one recovery round).
- :func:`inject` installs the plan in a module global for the duration
  of a ``with`` block. Forked pool workers inherit the plan through the
  process image, exactly like the work itself -- nothing crosses the
  process boundary at runtime.
- Faults fire **only inside pool workers**: the chunk runner marks the
  process as a worker via :func:`mark_worker`, and :func:`maybe_fault`
  is a no-op elsewhere. The serial degradation path therefore always
  makes progress (it runs in the parent), and a hang can never wedge
  the parent process.
- Determinism comes from keying on ``(item index, attempt number)``,
  both of which the parent controls: the attempt counter is threaded
  into the worker with the chunk assignment, so no mutable state needs
  to survive a worker crash.

``kind`` semantics:

- ``"crash"`` -- the worker dies abruptly (``os._exit(1)``), modeling a
  segfaulting native library or an OOM kill; the parent sees a dead
  process / closed pipe.
- ``"hang"`` -- the worker sleeps for ``seconds`` (default far beyond
  any test timeout) before continuing, modeling a deadlocked or
  livelocked worker; the parent's per-chunk deadline fires first and
  the worker is terminated.
- ``"nan"`` -- the item's result is replaced by ``float("nan")``,
  modeling silent numerical corruption; the parent's result validation
  rejects the chunk.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, List, Optional, Sequence

from repro.errors import ReproError

KINDS = ("crash", "hang", "nan")


class FaultInjectionError(ReproError):
    """A fault plan is malformed (unknown kind, negative index...)."""


@dataclass(frozen=True)
class Fault:
    """One injected fault: fire ``kind`` on ``item`` for the first
    ``times`` attempts of the chunk containing it."""

    kind: str
    item: int
    times: int = 1
    seconds: float = 3600.0  # hang duration; terminated long before

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise FaultInjectionError(
                f"unknown fault kind {self.kind!r}; choose from {KINDS}"
            )
        if self.item < 0:
            raise FaultInjectionError(f"fault item index must be >= 0, got {self.item}")
        if self.times < 1:
            raise FaultInjectionError(f"fault times must be >= 1, got {self.times}")


@dataclass
class FaultPlan:
    """A set of faults to inject into one ``parallel_map`` call."""

    faults: "List[Fault]" = field(default_factory=list)

    def add(self, kind: str, item: int, times: int = 1, seconds: float = 3600.0) -> "FaultPlan":
        self.faults.append(Fault(kind=kind, item=item, times=times, seconds=seconds))
        return self

    def fault_for(self, item: int, attempt: int) -> "Optional[Fault]":
        """The armed fault for *item* on this *attempt*, if any.

        ``attempt`` counts from 0 (the first execution of the chunk);
        a fault with ``times=k`` fires on attempts ``0..k-1`` and is
        disarmed -- purely by arithmetic -- afterwards.
        """
        for fault in self.faults:
            if fault.item == item and attempt < fault.times:
                return fault
        return None


#: The active plan (``None`` = no injection) and the worker marker.
#: Both are inherited by forked workers through the process image.
_plan: "Optional[FaultPlan]" = None
_in_worker = False


@contextmanager
def inject(plan: FaultPlan) -> "Iterator[FaultPlan]":
    """Activate *plan* for the block; restores the previous plan on exit."""
    global _plan
    previous = _plan
    _plan = plan
    try:
        yield plan
    finally:
        _plan = previous


def active_plan() -> "Optional[FaultPlan]":
    return _plan


def mark_worker() -> None:
    """Record that this process is a pool worker (called after fork).

    Faults only fire in marked processes, so the parent's serial
    degradation path is immune by construction. The flag needs no
    reset: a forked worker never becomes the parent again.
    """
    global _in_worker
    _in_worker = True


def in_worker() -> bool:
    return _in_worker


def maybe_fault(item: int, attempt: int, result: Any) -> Any:
    """Apply the armed fault for ``(item, attempt)``, if any.

    Called by the chunk runner after computing each item's result.
    Crash faults never return; hang faults sleep then return the result
    untouched; NaN faults replace the result.
    """
    if _plan is None or not _in_worker:
        return result
    fault = _plan.fault_for(item, attempt)
    if fault is None:
        return result
    if fault.kind == "crash":
        # Abrupt death: no exception, no cleanup -- the parent must
        # detect the dead process, exactly like a segfault.
        os._exit(1)
    if fault.kind == "hang":
        time.sleep(fault.seconds)
        return result
    return float("nan")


def nan_contaminated(results: "Sequence[Any]") -> bool:
    """True if any result in the chunk is a float NaN.

    The default chunk validator installed by
    :func:`repro.sim.parallel.parallel_map` when fault injection is
    active; real callers pass their own ``validate`` when their result
    type needs deeper inspection.
    """
    return any(isinstance(r, float) and r != r for r in results)


# ---------------------------------------------------------------------------
# Numerical fault injection (the post-PR-6 solver ladder)
# ---------------------------------------------------------------------------

#: Faults injectable into the sparse/reuse numerical ladder:
#:
#: - ``"direct-fail"`` -- the sparse direct LU solve raises, forcing
#:   the ILU-GMRES rescue rung (models SuperLU failure on a matrix the
#:   ladder must still solve).
#: - ``"ilu-breakdown"`` -- ILU factorization raises inside the
#:   preconditioner builder, forcing the Jacobi fallback (models spilu
#:   breakdown on near-singular pivots).
#: - ``"krylov-stall"`` -- the GMRES rung's solution is replaced with
#:   NaN, modeling non-convergence; the ladder must fail with a typed
#:   :class:`~repro.errors.SolverError`, never return the vector.
#: - ``"stale-lu-singular"`` -- the reuse cache's refactorization
#:   raises as if the bordered system were singular; warm-started
#:   sweeps must fall back to a cold start with identical results.
NUMERICAL_KINDS = (
    "direct-fail",
    "ilu-breakdown",
    "krylov-stall",
    "stale-lu-singular",
)


@dataclass
class NumericalFaultPlan:
    """Armed numerical faults, counted down as the hooks consume them.

    Unlike :class:`FaultPlan` these fire *in-process* (the numerical
    ladder runs in the solver's own process, not a pool worker): the
    hook sites in :mod:`repro.ctmdp.sparse` and
    :mod:`repro.ctmdp.reuse` call :func:`numerical_fault` and a fired
    fault is consumed -- ``arm(kind, times=2)`` fires on the first two
    reaches of the site, then the real numerics resume. ``fired``
    records consumption so tests can assert the fault actually
    exercised the rung it targets.
    """

    armed: "dict[str, int]" = field(default_factory=dict)
    fired: "dict[str, int]" = field(default_factory=dict)

    def arm(self, kind: str, times: int = 1) -> "NumericalFaultPlan":
        if kind not in NUMERICAL_KINDS:
            raise FaultInjectionError(
                f"unknown numerical fault kind {kind!r}; "
                f"choose from {NUMERICAL_KINDS}"
            )
        if times < 1:
            raise FaultInjectionError(f"fault times must be >= 1, got {times}")
        self.armed[kind] = self.armed.get(kind, 0) + int(times)
        return self

    def consume(self, kind: str) -> bool:
        remaining = self.armed.get(kind, 0)
        if remaining <= 0:
            return False
        self.armed[kind] = remaining - 1
        self.fired[kind] = self.fired.get(kind, 0) + 1
        return True


_numerical_plan: "Optional[NumericalFaultPlan]" = None


@contextmanager
def inject_numerical(
    plan: NumericalFaultPlan,
) -> "Iterator[NumericalFaultPlan]":
    """Activate *plan* for the block; restores the previous plan on exit."""
    global _numerical_plan
    previous = _numerical_plan
    _numerical_plan = plan
    try:
        yield plan
    finally:
        _numerical_plan = previous


def numerical_fault(kind: str) -> bool:
    """Consume one armed numerical fault of *kind*, if any.

    The hook the ladder's rungs call at their injection points; with no
    plan active (production) this is one global read and a ``None``
    check.
    """
    if _numerical_plan is None:
        return False
    return _numerical_plan.consume(kind)
