"""Deterministic adversarial-model fuzzing for the whole pipeline.

The enforced invariant: *every run ends in a correct solution or a
typed* :mod:`repro.errors` *exception -- never NaN, never a silent
wrong answer, never a hang.* Each generated model is pushed through

1. the admission gate (:func:`repro.robust.admission.admit_model`,
   level ``"full"``),
2. policy iteration on the compiled and reference backends,
   cross-checked bit-for-bit, then the sparse (CSR) backend -- which
   must reproduce the compiled gain whenever it returns -- and, for
   small models, the matrix-free Kronecker backend via
   ``KroneckerCTMDP.from_ctmdp`` (typed failures on degenerate models
   are recorded for both, non-finite results are violations),
3. value iteration (where the stiffness diagnostics say it can
   converge in bounded time),
4. the event-driven simulator executing the solved policy,

under the PR-4 wall-clock budget machinery, collecting any invariant
violation into a machine-readable record. The corpus is seeded and
cycles through adversarial kinds: zero/near-zero rates, extreme
magnitudes (tiny, huge, stiffness up to 1e12), capacity-1 and
unconstrained (action-validity-violating) systems, near-duplicate
actions, disconnected and absorbing raw chains, NaN costs, and
perturbations of the paper's own preset.

Every case is reconstructible from its JSON ``spec`` alone, so failing
specs dumped by ``--reproducer-dir`` replay exactly::

    python -m repro.robust.fuzz --count 200 --base-seed 0
    python -m repro.robust.fuzz --seed-from-run-id "$GITHUB_RUN_ID" \\
        --reproducer-dir fuzz-failures/
"""

from __future__ import annotations

import argparse
import json
import sys
import zlib
from typing import Any, Dict, List, Optional

import numpy as np

from repro.errors import ReproError
from repro.robust.admission import admit_model

#: Adversarial generation kinds, cycled deterministically over the
#: corpus indices.
KINDS = (
    "baseline",
    "tiny_rates",
    "huge_rates",
    "stiff",
    "near_zero_service",
    "capacity_one",
    "unconstrained",
    "near_duplicate_actions",
    "disconnected_chain",
    "absorbing",
    "nan_cost",
    "paper_perturbed",
)

#: Value iteration only runs when the admission diagnostics bound its
#: sweep count: iterations scale with the stiffness ratio.
VI_STIFFNESS_LIMIT = 1e4


class UnconstrainedSystemModel:
    """A SYS model with the Section-III action constraints removed.

    The paper engineers constraints (1)-(3) precisely so that every
    admissible policy keeps the joint chain unichain; dropping them
    produces models that are *reducible under some admissible policy*
    -- the adversarial input the verification sweep and the solvers'
    cycle/singularity guards must catch. Implemented as a subclass
    whose :meth:`is_valid_action` accepts every known mode.
    """

    def __new__(cls, *args, **kwargs):  # pragma: no cover - thin shim
        raise TypeError("use unconstrained_system(); this class is a factory tag")


def unconstrained_system(provider, requestor, capacity: int):
    """Build a :class:`PowerManagedSystemModel` with all constraints off."""
    from repro.dpm.system import PowerManagedSystemModel

    class _Unconstrained(PowerManagedSystemModel):
        def is_valid_action(self, state, action):  # noqa: D401
            return action in self.provider.modes

    return _Unconstrained(provider, requestor, capacity)


# -- spec generation ---------------------------------------------------------

def _random_provider_spec(
    rng: np.random.Generator,
    rate_magnitude: float = 1.0,
    stiffness: float = 1.0,
    n_modes: Optional[int] = None,
    duplicate: bool = False,
) -> "Dict[str, Any]":
    n = int(n_modes if n_modes is not None else rng.integers(2, 5))
    chi = rate_magnitude * rng.uniform(0.5, 2.0, size=(n, n))
    # Spread the switching rates across the requested stiffness range.
    if stiffness > 1.0:
        exponents = rng.uniform(0.0, np.log10(stiffness), size=(n, n))
        chi = chi / (10.0 ** exponents)
    mu = np.zeros(n)
    n_active = int(rng.integers(1, n))
    mu[:n_active] = rate_magnitude * rng.uniform(0.2, 1.5, size=n_active)
    power = rng.uniform(0.0, 3.0, size=n)
    power[:n_active] += 1.0
    ene = rng.uniform(0.0, 2.0, size=(n, n))
    if duplicate and n >= 3:
        chi[:, 1] = chi[:, 2]
        chi[1, :] = chi[2, :]
        mu[1] = mu[2]
        power[1] = power[2]
        ene[:, 1] = ene[:, 2]
        ene[1, :] = ene[2, :]
    return {
        "modes": [f"m{i}" for i in range(n)],
        "chi": chi.tolist(),
        "mu": mu.tolist(),
        "power": power.tolist(),
        "ene": ene.tolist(),
        "self_switch_rate": float(1e4 * rate_magnitude),
    }


def generate_spec(kind: str, seed: int) -> "Dict[str, Any]":
    """The JSON-ready description of one adversarial model."""
    rng = np.random.default_rng(seed)
    spec: Dict[str, Any] = {"kind": kind, "seed": int(seed), "type": "sys"}
    if kind == "baseline":
        spec["provider"] = _random_provider_spec(rng)
        spec["lam"] = float(rng.uniform(0.05, 1.5))
        spec["capacity"] = int(rng.integers(1, 5))
    elif kind == "tiny_rates":
        mag = float(10.0 ** rng.uniform(-12, -9))
        spec["provider"] = _random_provider_spec(rng, rate_magnitude=mag)
        spec["lam"] = float(mag * rng.uniform(0.05, 1.5))
        spec["capacity"] = int(rng.integers(1, 4))
    elif kind == "huge_rates":
        mag = float(10.0 ** rng.uniform(9, 12))
        spec["provider"] = _random_provider_spec(rng, rate_magnitude=mag)
        spec["lam"] = float(mag * rng.uniform(0.05, 1.5))
        spec["capacity"] = int(rng.integers(1, 4))
    elif kind == "stiff":
        stiffness = float(10.0 ** rng.uniform(8, 12))
        spec["provider"] = _random_provider_spec(rng, stiffness=stiffness)
        spec["lam"] = float(rng.uniform(0.05, 1.5))
        spec["capacity"] = int(rng.integers(1, 4))
    elif kind == "near_zero_service":
        p = _random_provider_spec(rng)
        mu = np.asarray(p["mu"])
        mu[mu > 0] = 10.0 ** rng.uniform(-14, -10)
        p["mu"] = mu.tolist()
        spec["provider"] = p
        spec["lam"] = float(rng.uniform(0.05, 1.5))
        spec["capacity"] = int(rng.integers(1, 4))
    elif kind == "capacity_one":
        spec["provider"] = _random_provider_spec(rng)
        spec["lam"] = float(rng.uniform(0.05, 1.5))
        spec["capacity"] = 1
    elif kind == "unconstrained":
        spec["provider"] = _random_provider_spec(rng)
        spec["lam"] = float(rng.uniform(0.05, 1.5))
        spec["capacity"] = int(rng.integers(1, 3))
        spec["unconstrained"] = True
    elif kind == "near_duplicate_actions":
        spec["provider"] = _random_provider_spec(rng, n_modes=4, duplicate=True)
        spec["lam"] = float(rng.uniform(0.05, 1.5))
        spec["capacity"] = int(rng.integers(1, 4))
    elif kind == "disconnected_chain":
        spec["type"] = "ctmdp"
        # Two communicating blocks with no cross rates: reducible under
        # the only policy, so evaluation/stationary must fail typed.
        r1, r2 = rng.uniform(0.5, 2.0, size=2)
        spec["n_states"] = 4
        spec["pairs"] = [
            {"state": 0, "action": "a", "rates": [0.0, r1, 0.0, 0.0], "cost": 1.0},
            {"state": 1, "action": "a", "rates": [r1, 0.0, 0.0, 0.0], "cost": 2.0},
            {"state": 2, "action": "a", "rates": [0.0, 0.0, 0.0, r2], "cost": 3.0},
            {"state": 3, "action": "a", "rates": [0.0, 0.0, r2, 0.0], "cost": 4.0},
        ]
    elif kind == "absorbing":
        spec["type"] = "ctmdp"
        r = float(rng.uniform(0.5, 2.0))
        spec["n_states"] = 3
        spec["pairs"] = [
            {"state": 0, "action": "a", "rates": [0.0, r, 0.0], "cost": 1.0},
            {"state": 1, "action": "a", "rates": [0.0, 0.0, r], "cost": 2.0},
            {"state": 2, "action": "a", "rates": [0.0, 0.0, 0.0], "cost": 3.0},
        ]
    elif kind == "nan_cost":
        spec["type"] = "ctmdp"
        r = float(rng.uniform(0.5, 2.0))
        spec["n_states"] = 2
        spec["pairs"] = [
            # The string keeps the spec strict-JSON; float("nan") in the
            # builder restores the adversarial value.
            {"state": 0, "action": "a", "rates": [0.0, r], "cost": "nan"},
            {"state": 1, "action": "a", "rates": [r, 0.0], "cost": 1.0},
        ]
    elif kind == "paper_perturbed":
        spec["paper_base"] = True
        spec["perturb"] = float(10.0 ** rng.uniform(-3, 3))
        spec["lam"] = float(rng.uniform(0.05, 0.5))
        spec["capacity"] = int(rng.integers(2, 6))
    else:
        raise ValueError(f"unknown fuzz kind {kind!r}")
    spec["weight"] = float(rng.uniform(0.0, 5.0))
    return spec


def build_from_spec(spec: "Dict[str, Any]"):
    """Reconstruct the model object a spec describes.

    Returns ``(model, is_sys)`` where *model* is a
    :class:`PowerManagedSystemModel` or a raw CTMDP. May raise typed
    :class:`ReproError` subclasses -- construction-time rejection is a
    passing outcome for adversarial inputs.
    """
    from repro.ctmdp.model import CTMDP
    from repro.dpm.service_provider import ServiceProvider
    from repro.dpm.service_requestor import ServiceRequestor
    from repro.dpm.system import PowerManagedSystemModel

    if spec["type"] == "ctmdp":
        mdp = CTMDP(list(range(spec["n_states"])))
        for pair in spec["pairs"]:
            mdp.add_action(
                pair["state"], pair["action"],
                rates=np.asarray(pair["rates"], dtype=float),
                cost_rate=float(pair["cost"]),
            )
        return mdp, False
    if spec.get("paper_base"):
        from repro.dpm.presets import paper_service_provider

        base = paper_service_provider()
        factor = spec["perturb"]
        chi = np.array([
            [base.switching_rate(a, b) if a != b else 0.0
             for b in base.modes] for a in base.modes
        ])
        provider = ServiceProvider(
            base.modes,
            chi * factor,
            [base.service_rate(m) * factor for m in base.modes],
            [base.power_rate(m) for m in base.modes],
            np.array([[base.switching_energy(a, b) for b in base.modes]
                      for a in base.modes]),
        )
        requestor = ServiceRequestor(spec["lam"] * factor)
        return PowerManagedSystemModel(provider, requestor, spec["capacity"]), True
    p = spec["provider"]
    provider = ServiceProvider(
        p["modes"],
        np.asarray(p["chi"], dtype=float),
        np.asarray(p["mu"], dtype=float),
        np.asarray(p["power"], dtype=float),
        np.asarray(p["ene"], dtype=float),
        self_switch_rate=p["self_switch_rate"],
    )
    requestor = ServiceRequestor(spec["lam"])
    if spec.get("unconstrained"):
        return unconstrained_system(provider, requestor, spec["capacity"]), True
    return PowerManagedSystemModel(provider, requestor, spec["capacity"]), True


# -- the driver --------------------------------------------------------------

def _finite(x) -> bool:
    return bool(np.all(np.isfinite(np.asarray(x, dtype=float))))


def run_case(
    spec: "Dict[str, Any]",
    time_budget_s: float = 10.0,
    n_requests: int = 150,
) -> "Dict[str, Any]":
    """Push one spec through admission -> PI/VI -> simulator.

    Returns a record with ``outcome`` (``solved`` / ``repaired`` /
    ``rejected`` / ``typed-error:<Exception>``) and
    ``violations`` -- a list of invariant breaches (empty = pass).
    A non-:class:`ReproError` exception is itself a violation.
    """
    from repro.ctmdp.policy_iteration import policy_iteration
    from repro.ctmdp.value_iteration import relative_value_iteration

    out: Dict[str, Any] = {
        "kind": spec.get("kind"), "seed": spec.get("seed"),
        "violations": [],
    }

    def violate(msg: str) -> None:
        out["violations"].append(msg)

    try:
        try:
            model, is_sys = build_from_spec(spec)
        except ReproError as exc:
            out["outcome"] = f"typed-error:{type(exc).__name__}"
            return out

        weight = float(spec.get("weight", 0.0))
        try:
            report = admit_model(
                model, level="full", weight=weight, raise_on_reject=False,
                sample_budget=24, seed=int(spec.get("seed", 0)),
            )
        except ReproError as exc:
            out["outcome"] = f"typed-error:{type(exc).__name__}"
            return out
        out["verdict"] = report.verdict
        json.dumps(report.to_dict())  # the report itself must export
        if report.verdict == "rejected":
            out["outcome"] = "rejected"
            return out
        mdp = report.admitted_mdp
        if mdp is None:  # entry-level reports never build
            target = (report.repaired_model
                      if report.repaired_model is not None else model)
            mdp = target.build_ctmdp(weight) if is_sys else target

        try:
            res = policy_iteration(
                mdp, max_iterations=500, time_budget_s=time_budget_s
            )
        except ReproError as exc:
            out["outcome"] = f"typed-error:{type(exc).__name__}"
            return out

        if not _finite(res.gain):
            violate(f"non-finite gain {res.gain!r}")
        if not _finite(res.bias):
            violate("non-finite bias component")
        if not _finite(res.stationary) or np.any(res.stationary < 0):
            violate("invalid stationary distribution")
        elif abs(float(res.stationary.sum()) - 1.0) > 1e-8:
            violate(f"stationary sums to {res.stationary.sum()!r}")

        # Cross-check: the reference backend must reproduce the compiled
        # result bit-for-bit (same policy, same gain, same bias).
        try:
            ref = policy_iteration(
                mdp, max_iterations=500, backend="reference",
                time_budget_s=time_budget_s,
            )
        except ReproError as exc:
            violate(f"reference backend diverged into {type(exc).__name__}: {exc}")
        else:
            if ref.policy.as_dict() != res.policy.as_dict():
                violate("dict-vs-compiled policy mismatch")
            if ref.gain != res.gain:
                violate(f"dict-vs-compiled gain mismatch: {ref.gain!r} != {res.gain!r}")
            if not np.array_equal(ref.bias, res.bias):
                violate("dict-vs-compiled bias mismatch")

        # Sparse (CSR) backend. A typed failure is recorded, not a
        # violation: on near-multichain models the evaluation system
        # under an intermediate policy can be singular to working
        # precision, where SuperLU and LAPACK legitimately land on
        # different members of the near-null-space family and the
        # cycle detector fires by design (seed baseline-96 is the
        # canonical reproducer). When the sparse solve does return, a
        # different optimal policy is fine (ties), but the optimal
        # gain must agree.
        try:
            sps = policy_iteration(
                mdp, max_iterations=500, backend="sparse",
                time_budget_s=time_budget_s,
            )
        except ReproError as exc:
            out["sparse"] = f"typed-error:{type(exc).__name__}"
        else:
            if not (_finite(sps.gain) and _finite(sps.bias)
                    and _finite(sps.stationary)):
                violate("non-finite sparse backend solution")
            else:
                # Relative on the gain, plus an absolute floor: the gain
                # is a difference of O(cost)-sized quantities, so below
                # ~1e-12 x the cost scale any disagreement is just
                # double-precision cancellation noise.
                tol = 1e-6 * max(abs(res.gain), abs(sps.gain)) + 1e-12
                if abs(sps.gain - res.gain) > tol:
                    violate(
                        f"sparse gain {sps.gain!r} disagrees with "
                        f"compiled {res.gain!r}"
                    )

        # Matrix-free Kronecker backend on small models (single-axis
        # lift, so the operator numbers are exactly the CSR rows). The
        # Krylov path may legitimately fail typed on hostile chains
        # (recorded); anything non-finite or untyped is a violation.
        from repro.ctmdp.model import CTMDP as _CTMDP

        if isinstance(mdp, _CTMDP) and mdp.n_states <= 200:
            from repro.ctmdp.kron import KroneckerCTMDP

            kmdp = KroneckerCTMDP.from_ctmdp(mdp)
            try:
                kr = policy_iteration(
                    kmdp, max_iterations=500, time_budget_s=time_budget_s
                )
            except ReproError as exc:
                out["kron"] = f"typed-error:{type(exc).__name__}"
            else:
                if not (_finite(kr.gain) and _finite(kr.bias)):
                    violate("non-finite kron backend solution")
                else:
                    # The Krylov gain carries cancellation noise at the
                    # cost scale (it is c_ref + (G h)_ref); agreement
                    # below ~1e-12 x that scale is not measurable.
                    cost_scale = float(np.max(
                        np.abs(kmdp.costs[kmdp.available]), initial=0.0
                    ))
                    tol = (1e-6 * max(abs(res.gain), abs(kr.gain))
                           + 1e-12 * max(cost_scale, 1.0))
                    if abs(kr.gain - res.gain) > tol:
                        violate(
                            f"kron gain {kr.gain!r} disagrees with "
                            f"compiled {res.gain!r}"
                        )

        stiffness = report.diagnostics.get("stiffness_ratio", np.inf)
        if stiffness < VI_STIFFNESS_LIMIT:
            try:
                vi = relative_value_iteration(
                    mdp, span_tolerance=1e-8, max_iterations=200_000,
                    time_budget_s=time_budget_s,
                )
            except ReproError:
                pass  # a typed budget/convergence error is a valid outcome
            else:
                if not _finite(vi.gain):
                    violate(f"non-finite VI gain {vi.gain!r}")
                # VI's gain error is absolute: ~span_tolerance times the
                # uniformization rate, which can dwarf a tiny gain (e.g.
                # on canonically rescaled models).
                tol = max(
                    1e-4 * max(abs(res.gain), abs(vi.gain)),
                    1e-5 * max(float(mdp.max_exit_rate()), 1.0),
                )
                if abs(vi.gain - res.gain) > tol:
                    violate(
                        f"VI gain {vi.gain!r} disagrees with PI {res.gain!r}"
                    )

        if is_sys:
            from repro.policies import OptimalCTMDPPolicy
            from repro.sim import PoissonProcess, simulate

            try:
                sim = simulate(
                    provider=model.provider,
                    capacity=model.capacity,
                    workload=PoissonProcess(model.requestor.rate),
                    policy=OptimalCTMDPPolicy(res.policy, model.capacity),
                    n_requests=n_requests,
                    seed=int(spec.get("seed", 0)),
                )
            except ReproError as exc:
                out["sim"] = f"typed-error:{type(exc).__name__}"
            else:
                for name in ("average_power", "average_queue_length",
                             "average_waiting_time", "elapsed"):
                    v = getattr(sim, name)
                    if not _finite(v):
                        violate(f"non-finite simulator metric {name}={v!r}")

        out["outcome"] = ("repaired" if report.verdict == "repaired"
                          else "solved")
    except Exception as exc:  # noqa: BLE001 - untyped escape IS the bug
        violate(f"untyped exception {type(exc).__name__}: {exc}")
        out["outcome"] = "untyped-error"
    return out


def run_corpus(
    count: int = 200,
    base_seed: int = 0,
    time_budget_s: float = 10.0,
    reproducer_dir: Optional[str] = None,
    n_requests: int = 150,
) -> "Dict[str, Any]":
    """Run *count* seeded cases; return the aggregate summary."""
    outcomes: Dict[str, int] = {}
    failures: List[Dict[str, Any]] = []
    for i in range(count):
        kind = KINDS[i % len(KINDS)]
        seed = base_seed + i
        spec = generate_spec(kind, seed)
        result = run_case(spec, time_budget_s=time_budget_s,
                          n_requests=n_requests)
        outcomes[result["outcome"]] = outcomes.get(result["outcome"], 0) + 1
        if result["violations"]:
            failures.append({"spec": spec, "result": result})
            if reproducer_dir is not None:
                import os

                os.makedirs(reproducer_dir, exist_ok=True)
                path = os.path.join(
                    reproducer_dir, f"fuzz-{kind}-{seed}.json"
                )
                with open(path, "w") as fh:
                    json.dump({"spec": spec, "result": result}, fh, indent=2)
    return {
        "count": count,
        "base_seed": base_seed,
        "outcomes": outcomes,
        "n_failures": len(failures),
        "failures": failures,
    }


def seed_from_run_id(run_id: str) -> int:
    """Deterministic base seed from a CI run identifier."""
    return zlib.crc32(str(run_id).encode()) & 0x7FFFFFFF


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.robust.fuzz",
        description="Seeded adversarial-model fuzzing of the DPM pipeline.",
    )
    parser.add_argument("--count", type=int, default=200)
    parser.add_argument("--base-seed", type=int, default=0)
    parser.add_argument(
        "--seed-from-run-id", default=None, metavar="RUN_ID",
        help="derive --base-seed from a CI run id (nightly variation)",
    )
    parser.add_argument("--reproducer-dir", default=None)
    parser.add_argument(
        "--time-budget", type=float, default=10.0,
        help="per-solver wall-clock budget per case (seconds)",
    )
    parser.add_argument("--n-requests", type=int, default=150)
    args = parser.parse_args(argv)
    base_seed = args.base_seed
    if args.seed_from_run_id is not None:
        base_seed = seed_from_run_id(args.seed_from_run_id)
    summary = run_corpus(
        count=args.count, base_seed=base_seed,
        time_budget_s=args.time_budget,
        reproducer_dir=args.reproducer_dir,
        n_requests=args.n_requests,
    )
    print(json.dumps(
        {k: v for k, v in summary.items() if k != "failures"}, indent=2
    ))
    for failure in summary["failures"]:
        print("VIOLATION:", json.dumps(failure["result"]), file=sys.stderr)
    return 1 if summary["n_failures"] else 0


if __name__ == "__main__":  # pragma: no cover - exercised by CI
    raise SystemExit(main())
