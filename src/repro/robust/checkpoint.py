"""Config-hash-keyed JSON checkpoints for long-running drivers.

A frontier sweep, a weight search, or a replication campaign is a long
sequence of independent, deterministic sub-solves. Losing hours of them
to a SIGKILL (preemption, OOM, operator error) is pure waste: every
completed sub-result was fully determined by the configuration and can
be reused verbatim. :class:`Checkpoint` makes that reuse safe:

- **Keyed by configuration.** A checkpoint records the SHA-256 of the
  canonical JSON of the driver's configuration
  (:func:`config_hash`). Loading under a different configuration raises
  :class:`~repro.errors.CheckpointError` instead of silently mixing
  incompatible partial results.
- **Atomic saves.** State is written to a temporary file in the same
  directory and ``os.replace``d into place, so a crash mid-write leaves
  either the previous checkpoint or the new one -- never a torn file.
  A SIGKILL at any instant is therefore recoverable.
- **Exact floats.** State is JSON with Python's shortest-round-trip
  float repr, so a resumed run reconstructs cached sub-results
  *bit-identically*: the surrounding deterministic driver then produces
  final output byte-identical to an uninterrupted run (asserted by
  ``tests/robust/test_checkpoint_resume.py``).

The stored document::

    {
      "format": 1,
      "config_hash": "<sha256 hex>",
      "config": {...},          # the driver's config, for humans
      "completed": {key: payload, ...}
    }

``completed`` maps driver-chosen string keys (``repr(weight)``, seed
numbers) to JSON payloads; the driver owns the payload schema. Drivers
expose ``checkpoint=``/``resume=`` parameters and the CLI surfaces them
as ``--checkpoint PATH`` / ``--resume``.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

from repro.errors import CheckpointError

PathLike = Union[str, Path]

FORMAT_VERSION = 1


def config_hash(config: "Mapping[str, Any]") -> str:
    """SHA-256 of the canonical (sorted-key, exact-float) JSON of *config*."""
    try:
        canonical = json.dumps(config, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise CheckpointError(f"configuration is not JSON-serializable: {exc}")
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class Checkpoint:
    """Incremental store of completed sub-results for one driver run.

    Parameters
    ----------
    path:
        The checkpoint file. Created on the first :meth:`save`.
    config:
        The driver configuration identifying the run. Two runs resume
        from each other's checkpoints iff their configs hash equal.
    resume:
        When true and *path* exists, load its completed entries
        (validating the config hash); when false, start empty and
        overwrite *path* on the first save.
    save_every:
        Persist after every ``save_every``-th new entry (1 = after each
        entry). :meth:`flush` forces a write regardless.
    """

    def __init__(
        self,
        path: PathLike,
        config: "Mapping[str, Any]",
        resume: bool = False,
        save_every: int = 1,
    ) -> None:
        if save_every < 1:
            raise CheckpointError(f"save_every must be >= 1, got {save_every}")
        self.path = Path(path)
        self.config: "Dict[str, Any]" = dict(config)
        self.config_hash = config_hash(config)
        self.save_every = save_every
        self._completed: "Dict[str, Any]" = {}
        self._unsaved = 0
        if resume and self.path.exists():
            self._completed = self._load()

    def _load(self) -> "Dict[str, Any]":
        try:
            document = json.loads(self.path.read_text())
        except (OSError, ValueError) as exc:
            raise CheckpointError(f"cannot read checkpoint {self.path}: {exc}")
        if not isinstance(document, dict) or "completed" not in document:
            raise CheckpointError(
                f"checkpoint {self.path} is not a checkpoint document"
            )
        if document.get("format") != FORMAT_VERSION:
            raise CheckpointError(
                f"checkpoint {self.path} has format "
                f"{document.get('format')!r}, expected {FORMAT_VERSION}"
            )
        stored = document.get("config_hash")
        if stored != self.config_hash:
            raise CheckpointError(
                f"checkpoint {self.path} belongs to a different "
                f"configuration (stored hash {str(stored)[:12]}..., this "
                f"run {self.config_hash[:12]}...); pass a fresh "
                "--checkpoint path or rerun with the original settings"
            )
        return dict(document["completed"])

    # -- driver API ----------------------------------------------------------

    def __contains__(self, key: str) -> bool:
        return key in self._completed

    def __len__(self) -> int:
        return len(self._completed)

    def get(self, key: str) -> Any:
        """The stored payload for *key* (``None`` when absent)."""
        return self._completed.get(key)

    def put(self, key: str, payload: Any) -> None:
        """Record a completed sub-result and persist per ``save_every``."""
        self._completed[key] = payload
        self._unsaved += 1
        if self._unsaved >= self.save_every:
            self.flush()

    def flush(self) -> None:
        """Atomically write the checkpoint document to :attr:`path`."""
        document = {
            "format": FORMAT_VERSION,
            "config_hash": self.config_hash,
            "config": self.config,
            "completed": self._completed,
        }
        directory = self.path.parent
        directory.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=directory, prefix=self.path.name + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(document, handle, indent=1, sort_keys=True)
                handle.write("\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, self.path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self._unsaved = 0


def open_checkpoint(
    path: "Optional[PathLike]",
    config: "Mapping[str, Any]",
    resume: bool = False,
    save_every: int = 1,
) -> "Optional[Checkpoint]":
    """A :class:`Checkpoint` when *path* is set, else ``None``.

    The drivers' ``checkpoint=None`` fast path stays a plain ``is not
    None`` check; this helper keeps their argument handling one line.
    """
    if path is None:
        return None
    return Checkpoint(path, config, resume=resume, save_every=save_every)
