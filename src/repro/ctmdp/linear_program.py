"""Occupation-measure linear programming for average-cost CTMDPs.

This is the optimization approach of Paleologo, Benini et al. (DAC 1998)
[11] -- the prior work the paper compares itself against -- lifted to
continuous time. Decision variables ``x_ia >= 0`` are stationary
state-action probabilities; the LP is::

    minimize    sum_{i,a} x_ia c_i(a)
    subject to  sum_{i,a} x_ia s_ij(a) = 0      for every state j
                sum_{i,a} x_ia = 1
                [optional]  sum_{i,a} x_ia d_i(a) <= bound

where the first constraint family is global balance under the mixed
policy. The optional linear constraints make this solver handle the
paper's *constrained* formulation (min average power subject to an
average-queue-length bound, Section IV) exactly; the optimum of a
constrained MDP may randomize in at most one state per active
constraint, hence the randomized-policy return type.

Solved with ``scipy.optimize.linprog`` (HiGHS).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Mapping, Optional, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.errors import InfeasibleConstraintError, SolverError
from repro.ctmdp.model import CTMDP
from repro.ctmdp.policy import Policy, RandomizedPolicy

#: Occupation probabilities below this are treated as numerically zero
#: when extracting a policy.
OCCUPATION_EPS = 1e-10

#: HiGHS termination codes as reported by ``scipy.optimize.linprog``.
LP_STATUS_NAMES = {
    0: "optimal",
    1: "iteration-limit",
    2: "infeasible",
    3: "unbounded",
    4: "numerical",
}


@dataclass(frozen=True)
class LinearProgramResult:
    """Outcome of the LP solvers.

    Attributes
    ----------
    policy:
        The stationary randomized policy read off the optimal occupation
        measure (deterministic policies appear as point masses).
    deterministic_policy:
        Most-probable-action rounding of ``policy``.
    gain:
        Optimal average cost rate (the LP objective value).
    occupation:
        ``{(state, action): probability}`` for pairs above
        :data:`OCCUPATION_EPS`.
    extra_cost_values:
        Average rate of each named extra cost under the optimal measure.
    status:
        HiGHS termination status name (:data:`LP_STATUS_NAMES`); always
        ``"optimal"`` for a returned result -- other statuses raise.
    diagnostics:
        Solver evidence: iteration count, the dual objective recovered
        from the HiGHS multipliers, the primal-dual ``duality_gap``
        (zero at a true optimum up to round-off), and ``gain_dual`` --
        the multiplier of the normalization row, which for the
        average-cost LP is itself the optimal gain by LP duality. These
        feed the certification engine's duality-gap certificates.
    """

    policy: RandomizedPolicy
    deterministic_policy: Policy
    gain: float
    occupation: "Dict[Tuple[Hashable, Hashable], float]"
    extra_cost_values: "Dict[str, float]"
    status: str = "optimal"
    diagnostics: "Dict[str, object]" = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.diagnostics is None:
            object.__setattr__(self, "diagnostics", {})


def _status_name(status: int) -> str:
    return LP_STATUS_NAMES.get(status, f"unknown({status})")


def _lp_diagnostics(result, b_eq, b_ub=None) -> "Dict[str, object]":
    """Extract duality evidence from a ``linprog`` result.

    HiGHS marginals are derivatives of the objective with respect to
    the right-hand sides, so the dual objective is
    ``b_eq . y_eq + b_ub . y_ub`` and must equal the primal objective
    at an optimum (strong duality). The normalization row's multiplier
    is the optimal gain itself.
    """
    diag: "Dict[str, object]" = {
        "highs_status": int(result.status),
        "message": str(result.message),
        "iterations": int(getattr(result, "nit", 0)),
    }
    eqlin = getattr(result, "eqlin", None)
    if eqlin is not None and getattr(eqlin, "marginals", None) is not None:
        marginals = np.asarray(eqlin.marginals, dtype=float)
        dual_objective = float(b_eq @ marginals)
        if b_ub is not None:
            ineqlin = getattr(result, "ineqlin", None)
            if ineqlin is not None and getattr(ineqlin, "marginals", None) is not None:
                dual_objective += float(
                    np.asarray(b_ub, dtype=float)
                    @ np.asarray(ineqlin.marginals, dtype=float)
                )
        diag["dual_objective"] = dual_objective
        diag["gain_dual"] = float(marginals[-1])
        if result.success:
            diag["duality_gap"] = float(result.fun) - dual_objective
    return diag


def _build_lp(mdp: CTMDP):
    """Assemble shared LP pieces; returns (pairs, costs, A_eq, b_eq)."""
    mdp.validate()
    pairs = mdp.state_action_pairs()
    n_vars = len(pairs)
    n = mdp.n_states
    costs = np.array([mdp.cost(s, a) for s, a in pairs])
    # Balance rows (one per state) + normalization row.
    a_eq = np.zeros((n + 1, n_vars))
    for k, (state, action) in enumerate(pairs):
        a_eq[:n, k] = mdp.generator_row(state, action)
        a_eq[n, k] = 1.0
    b_eq = np.zeros(n + 1)
    b_eq[n] = 1.0
    return pairs, costs, a_eq, b_eq


def _extract_result(
    mdp: CTMDP,
    pairs,
    x: np.ndarray,
    gain: float,
    status: str = "optimal",
    diagnostics: "Optional[Dict[str, object]]" = None,
) -> LinearProgramResult:
    """Turn an optimal occupation vector into policies and summaries."""
    occupation: Dict[Tuple[Hashable, Hashable], float] = {}
    state_mass: Dict[Hashable, float] = {s: 0.0 for s in mdp.states}
    for (state, action), value in zip(pairs, x):
        if value > OCCUPATION_EPS:
            occupation[(state, action)] = float(value)
            state_mass[state] += float(value)
    distributions: Dict[Hashable, Dict[Hashable, float]] = {}
    for state in mdp.states:
        mass = state_mass[state]
        if mass > OCCUPATION_EPS:
            dist = {
                a: occupation.get((state, a), 0.0) / mass for a in mdp.actions(state)
            }
        else:
            # Zero-occupancy (transient under the optimum) state: choose
            # the cheapest action -- any choice preserves optimality.
            cheapest = min(mdp.actions(state), key=lambda a: mdp.cost(state, a))
            dist = {cheapest: 1.0}
        total = sum(dist.values())
        distributions[state] = {a: p / total for a, p in dist.items()}
    randomized = RandomizedPolicy(mdp, distributions)
    extra_names = set()
    for state, action in pairs:
        extra_names.update(mdp.data(state, action).extra_costs)
    extra_values = {
        name: float(
            sum(
                occupation.get((s, a), 0.0) * mdp.extra_cost(s, a, name)
                for s, a in pairs
            )
        )
        for name in sorted(extra_names)
    }
    return LinearProgramResult(
        policy=randomized,
        deterministic_policy=randomized.deterministic_rounding(),
        gain=float(gain),
        occupation=occupation,
        extra_cost_values=extra_values,
        status=status,
        diagnostics=dict(diagnostics or {}),
    )


def solve_average_cost_lp(mdp: CTMDP) -> LinearProgramResult:
    """Minimize the long-run average cost rate over stationary policies.

    For unichain models the optimal basic solution is deterministic and
    agrees with policy iteration. The returned result carries the HiGHS
    termination status and duality diagnostics; non-optimal statuses
    (iteration limit, infeasibility, numerical trouble) raise
    :class:`~repro.errors.SolverError` with the same diagnostics
    attached instead of silently returning a partial answer.
    """
    pairs, costs, a_eq, b_eq = _build_lp(mdp)
    result = linprog(costs, A_eq=a_eq, b_eq=b_eq, bounds=(0, None), method="highs")
    diagnostics = _lp_diagnostics(result, b_eq)
    if not result.success:
        raise SolverError(
            f"average-cost LP failed with status "
            f"{_status_name(result.status)}: {result.message}",
            diagnostics=diagnostics,
        )
    return _extract_result(
        mdp, pairs, result.x, result.fun, _status_name(result.status), diagnostics
    )


def solve_constrained_lp(
    mdp: CTMDP,
    objective: str,
    constraints: Mapping[str, float],
) -> LinearProgramResult:
    """Minimize one named cost subject to bounds on other named costs.

    This solves the paper's Section-IV constrained formulation directly::

        min  avg rate of ``objective``
        s.t. avg rate of name <= bound   for each (name, bound)

    Parameters
    ----------
    mdp:
        Model whose state-action pairs carry ``extra_costs`` entries for
        ``objective`` and every constraint name (e.g. ``"power"`` and
        ``"queue_length"``).
    objective:
        Name of the extra cost to minimize.
    constraints:
        ``{name: upper_bound}`` on average rates.

    Raises
    ------
    InfeasibleConstraintError
        If no stationary policy satisfies the bounds.
    """
    pairs, _, a_eq, b_eq = _build_lp(mdp)
    obj = np.array([mdp.extra_cost(s, a, objective) for s, a in pairs])
    a_ub_rows = []
    b_ub_vals = []
    for name, bound in constraints.items():
        a_ub_rows.append([mdp.extra_cost(s, a, name) for s, a in pairs])
        b_ub_vals.append(float(bound))
    a_ub = np.array(a_ub_rows) if a_ub_rows else None
    b_ub = np.array(b_ub_vals) if b_ub_vals else None
    result = linprog(
        obj,
        A_eq=a_eq,
        b_eq=b_eq,
        A_ub=a_ub,
        b_ub=b_ub,
        bounds=(0, None),
        method="highs",
    )
    diagnostics = _lp_diagnostics(result, b_eq, b_ub)
    if result.status == 2:
        raise InfeasibleConstraintError(
            f"no stationary policy satisfies {dict(constraints)!r}",
            diagnostics=diagnostics,
        )
    if not result.success:
        raise SolverError(
            f"constrained LP failed with status "
            f"{_status_name(result.status)}: {result.message}",
            diagnostics=diagnostics,
        )
    return _extract_result(
        mdp, pairs, result.x, result.fun, _status_name(result.status), diagnostics
    )
