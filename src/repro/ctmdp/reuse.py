"""Within-solve reuse for the sparse policy-evaluation ladder.

Sparse policy iteration solves the same bordered linear system shape
every round -- selected canonical generator rows, a ``-1`` gain column,
one reference row -- and between consecutive rounds the improvement
step typically moves only a handful of states' actions. Yet the
baseline path re-lowers the matrix (fancy-index + ``block_array``) and
refactorizes (``splu``) from scratch each round. This module is the
within-solve level of the cross-solve reuse layer (DESIGN §12):

1. **Structural reuse.** :class:`BorderedSystemCache` keeps the bordered
   CSR evaluation matrix alive across rounds and, when the changed rows
   keep their sparsity counts (the common case: swapping one switch
   destination for another), updates ``indices``/``data`` *in place*
   (row surgery) instead of reassembling -- and even the reassembly is
   a vectorized gather, never a ``block_array`` re-lowering.
2. **Factorization reuse.** The last LU factorization is kept and, when
   fewer than :data:`REUSE_MAX_CHANGED_FRACTION` of the rows changed,
   the new system is solved by GMRES *preconditioned by the stale LU*
   and warm-started at the previous solution vector -- a few matvecs
   instead of a fresh factorization. The rung self-invalidates: if the
   preconditioned solve misses :data:`~repro.ctmdp.sparse.KRYLOV_RTOL`
   within one restart cycle, the cache refactorizes and refreshes.

Correctness contract: every reused solve is *advisory* -- it only
steers the policy-improvement trajectory. At convergence the sparse PI
driver re-evaluates the final policy through the standard ladder
(:func:`repro.ctmdp.sparse.solve_sparse_with_fallback`), so converged
gains, biases, and stationary distributions are produced by exactly the
same computation as a cold solve of the same policy -- bit-identical
results, enforced by the warm/cold equivalence suite.

All acceptance tests reuse the ladder's documented tolerances: a
reused-LU solution is accepted only under the same relative-residual
bound (``RESIDUAL_RTOL``) as every other rung, after running GMRES to
``KRYLOV_RTOL``.
"""

from __future__ import annotations

import warnings
from typing import Optional

import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import LinearOperator, gmres, splu

from repro.obs.log import get_logger
from repro.obs.runtime import active as obs_active
from repro.robust.guardrails import RESIDUAL_RTOL, _relative_residual

#: Largest fraction of evaluation rows that may change between rounds
#: for the stale-LU GMRES rung to be attempted; beyond it the old
#: factorization is too far from the new matrix to precondition well
#: and the cache refactorizes directly.
REUSE_MAX_CHANGED_FRACTION = 0.25

#: Outer (restart) cycles granted to the reused-LU GMRES rung before it
#: is declared a miss and the cache refactorizes. One cycle of
#: :data:`repro.ctmdp.sparse.GMRES_RESTART` inner iterations is ample:
#: with an exact-LU preconditioner of a matrix differing in ``k`` rows,
#: GMRES converges in about ``k + 1`` iterations.
REUSE_GMRES_MAXITER = 1

logger = get_logger("ctmdp.reuse")


def _concat_ranges(counts: np.ndarray) -> np.ndarray:
    """``[0..c0), [0..c1), ...`` flattened -- the gather-offset helper."""
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.intp)
    ends = np.cumsum(counts)
    return np.arange(total, dtype=np.intp) - np.repeat(ends - counts, counts)


class BorderedSystemCache:
    """Incrementally maintained bordered policy-evaluation system.

    Holds the ``(n+1, n+1)`` CSR matrix ``[[G_can[sel], -1], [e_ref, 0]]``
    for the current row selection ``sel`` and the most recent LU
    factorization / solution vector, exposing one :meth:`solve` that
    runs the reuse ladder (stale-LU GMRES, then fresh LU, then the full
    sparse fallback ladder).
    """

    def __init__(
        self,
        g_can,
        n_states: int,
        reference_state: int,
        what: str = "policy evaluation system",
    ) -> None:
        g_can = sp.csr_array(g_can)
        self._gp = g_can.indptr
        self._gi = g_can.indices
        self._gd = g_can.data
        self._pair_counts = np.diff(self._gp)
        self.n = int(n_states)
        self.ref = int(reference_state)
        self.what = what
        self.sel: "Optional[np.ndarray]" = None
        self._matrix = None
        self._lu = None
        self._lu_sel: "Optional[np.ndarray]" = None
        self._solution: "Optional[np.ndarray]" = None

    # -- structural maintenance ---------------------------------------------

    def _assemble(self, sel: np.ndarray):
        """Vectorized full assembly of the bordered CSR arrays."""
        n = self.n
        counts = self._pair_counts[sel]
        indptr = np.empty(n + 2, dtype=np.intp)
        indptr[0] = 0
        np.cumsum(counts + 1, out=indptr[1 : n + 1])
        indptr[n + 1] = indptr[n] + 1
        total = int(counts.sum())
        offs = _concat_ranges(counts)
        src = np.repeat(self._gp[sel], counts) + offs
        dst = np.repeat(indptr[:n], counts) + offs
        indices = np.empty(total + n + 1, dtype=np.intp)
        data = np.empty(total + n + 1)
        indices[dst] = self._gi[src]
        data[dst] = self._gd[src]
        border = indptr[1 : n + 1] - 1
        indices[border] = n
        data[border] = -1.0
        indices[-1] = self.ref
        data[-1] = 1.0
        self._matrix = sp.csr_array(
            (data, indices, indptr), shape=(n + 1, n + 1)
        )
        self.sel = sel.copy()

    def system_for(self, sel: np.ndarray):
        """The bordered CSR matrix of *sel*, updated incrementally.

        When every changed row keeps its nonzero count, only the
        affected ``indices``/``data`` segments are rewritten in place
        (``solver.reuse.incremental_update_rows`` counts them); a
        sparsity change triggers a vectorized full reassembly.
        """
        ins = obs_active()
        metrics = ins.metrics if ins.enabled else None
        if self._matrix is None:
            self._assemble(sel)
            if metrics is not None:
                metrics.counter("solver.reuse.full_assemblies").inc()
            return self._matrix
        changed = np.flatnonzero(sel != self.sel)
        if changed.size == 0:
            return self._matrix
        new_counts = self._pair_counts[sel[changed]]
        if np.array_equal(new_counts, self._pair_counts[self.sel[changed]]):
            offs = _concat_ranges(new_counts)
            src = np.repeat(self._gp[sel[changed]], new_counts) + offs
            dst = (
                np.repeat(self._matrix.indptr[changed], new_counts) + offs
            )
            self._matrix.indices[dst] = self._gi[src]
            self._matrix.data[dst] = self._gd[src]
            self.sel = sel.copy()
            if metrics is not None:
                metrics.counter("solver.reuse.incremental_updates").inc()
                metrics.counter(
                    "solver.reuse.incremental_update_rows"
                ).inc(int(changed.size))
        else:
            self._assemble(sel)
            if metrics is not None:
                metrics.counter("solver.reuse.full_assemblies").inc()
        return self._matrix

    # -- the reuse ladder ----------------------------------------------------

    def _reused_lu_gmres(
        self, a, b: np.ndarray, a_max: float, changed: int
    ) -> "Optional[np.ndarray]":
        """Stale-LU-preconditioned, warm-started GMRES; None on a miss."""
        from repro.ctmdp.sparse import GMRES_RESTART, KRYLOV_RTOL, KRYLOV_SERIES

        ins = obs_active()
        metrics = ins.metrics if ins.enabled else None
        residuals = []
        callback = (
            (lambda pr_norm: residuals.append(float(pr_norm)))
            if ins.enabled
            else None
        )
        precond = LinearOperator(
            a.shape, matvec=self._lu.solve, dtype=float
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            x, _ = gmres(
                a,
                b,
                M=precond,
                x0=self._solution,
                rtol=KRYLOV_RTOL,
                atol=0.0,
                restart=GMRES_RESTART,
                maxiter=REUSE_GMRES_MAXITER,
                callback=callback,
                callback_type="pr_norm",
            )
        residual = (
            _relative_residual(a, x, b, a_max=a_max)
            if np.all(np.isfinite(x))
            else float("inf")
        )
        if residual > RESIDUAL_RTOL:
            if metrics is not None:
                metrics.counter("solver.reuse.reuse_misses").inc()
            logger.debug(
                "reused-LU rung missed: %d changed rows, residual %.3g",
                changed,
                residual,
            )
            return None
        if metrics is not None:
            metrics.counter("solver.reuse.factorization_reuses").inc()
            metrics.counter("solver.reuse.gmres_warm_starts").inc()
            metrics.series(KRYLOV_SERIES).append(
                what=self.what,
                rung="reused_lu",
                nnz=int(a.nnz),
                reason=f"{changed} rows changed since last factorization",
                iterations=len(residuals),
                residuals=residuals or [residual],
                residual=residual,
            )
        return x

    def solve(self, sel: np.ndarray, b: np.ndarray, a_max: float) -> np.ndarray:
        """Solve the bordered system of *sel* through the reuse ladder.

        Rungs, in order: stale-LU-preconditioned GMRES (when a
        factorization exists and few enough rows changed), fresh sparse
        LU (stored for subsequent reuse), then the full
        :func:`~repro.ctmdp.sparse.solve_sparse_with_fallback` ladder.
        The accepted solution always satisfies the ladder's
        ``RESIDUAL_RTOL`` relative-residual contract.
        """
        a = self.system_for(sel)
        if self._lu is not None and self._lu_sel is not None:
            changed = int(np.count_nonzero(sel != self._lu_sel))
            if changed <= REUSE_MAX_CHANGED_FRACTION * self.n:
                x = self._reused_lu_gmres(a, b, a_max, changed)
                if x is not None:
                    self._solution = x
                    return x
        x = self._refactorize(a, b, a_max)
        self._solution = x
        return x

    def _refactorize(self, a, b: np.ndarray, a_max: float) -> np.ndarray:
        """Fresh LU of the current system; falls back to the full ladder.

        One deliberate divergence from the standard ladder: when the LU
        itself signals a *singular* system (factorization failure or a
        non-finite solution), this raises immediately instead of
        attempting the ILU-GMRES rescue rung. Mid-iteration evaluation
        systems are singular exactly when the improvement step picked a
        (numerically) multichain policy -- warm-start seeds can steer
        into one -- and the Krylov rung cannot converge on a singular
        matrix; it only burns its full iteration budget before failing.
        Sweeps treat the fast failure as a rejected seed and re-solve
        cold. Finite-but-inaccurate LU solutions (ill-conditioning, not
        singularity) still fall through to the standard ladder.
        """
        from repro.ctmdp.sparse import KRYLOV_SERIES, solve_sparse_with_fallback
        from repro.errors import SolverError

        from repro.robust.faultinject import numerical_fault

        ins = obs_active()
        metrics = ins.metrics if ins.enabled else None
        a_csc = sp.csc_array(a)
        try:
            if numerical_fault("stale-lu-singular"):
                raise RuntimeError(
                    "injected singular reuse-system factorization"
                )
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                lu = splu(a_csc)
                x = lu.solve(b)
        except (RuntimeError, ValueError) as exc:
            self._lu = None
            self._lu_sel = None
            raise SolverError(
                f"{self.what} is singular under the current policy "
                "selection (LU factorization failed); the improvement "
                "step reached a multichain policy -- warm-started solves "
                "fall back to a cold start",
                diagnostics={"reason": "singular_reuse_system"},
            ) from exc
        if not np.all(np.isfinite(x)):
            self._lu = None
            self._lu_sel = None
            raise SolverError(
                f"{self.what} is singular under the current policy "
                "selection (LU solution is non-finite); the improvement "
                "step reached a multichain policy -- warm-started solves "
                "fall back to a cold start",
                diagnostics={"reason": "singular_reuse_system"},
            )
        residual = _relative_residual(a_csc, x, b, a_max=a_max)
        if residual <= RESIDUAL_RTOL:
            self._lu = lu
            self._lu_sel = self.sel.copy()
            if metrics is not None:
                metrics.counter("solver.reuse.refactorizations").inc()
                metrics.series(KRYLOV_SERIES).append(
                    what=self.what,
                    rung="direct",
                    nnz=int(a_csc.nnz),
                    reason="reuse-cache refactorization",
                    iterations=0,
                    residuals=[residual],
                    residual=residual,
                )
            return x
        # The cached factorization is stale and the fresh LU failed its
        # acceptance test -- drop both and run the standard ladder (its
        # GMRES rung still gets a warm start from the last solution).
        self._lu = None
        self._lu_sel = None
        return solve_sparse_with_fallback(
            a,
            b,
            what=self.what,
            a_max=a_max,
            x0=self._solution,
        )
