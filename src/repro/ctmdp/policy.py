"""Stationary policies for CTMDPs and their exact evaluation.

Definition 2.8: a policy is *stationary* when the chosen action depends
only on the state. Theorems 2.2/2.3 justify restricting the optimization
to stationary policies, which is what this module represents:

- :class:`Policy` -- deterministic stationary: one action per state.
- :class:`RandomizedPolicy` -- a distribution over actions per state
  (produced by the constrained LP solver when the optimum requires
  randomization).
- :func:`evaluate_policy` -- exact average-cost evaluation: gain ``g``
  and bias ``h`` from the linear system ``c + G h = g 1`` with a
  reference-state normalization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Mapping, Optional

import numpy as np

from repro.errors import InvalidPolicyError
from repro.ctmdp.model import CTMDP
from repro.markov.chain import ContinuousTimeMarkovChain


class Policy:
    """A deterministic stationary policy: ``state -> action``.

    Immutable mapping over exactly the state set of a given CTMDP.
    """

    def __init__(self, mdp: CTMDP, assignment: Mapping[Hashable, Hashable]) -> None:
        self._mdp = mdp
        state_set = set(mdp.states)
        missing = [s for s in mdp.states if s not in assignment]
        if missing:
            raise InvalidPolicyError(f"policy misses states: {missing!r}")
        extra = [s for s in assignment if s not in state_set]
        if extra:
            raise InvalidPolicyError(f"policy names unknown states: {extra!r}")
        for state in mdp.states:
            action = assignment[state]
            if action not in mdp.actions(state):
                raise InvalidPolicyError(
                    f"action {action!r} is not available in state {state!r}"
                )
        self._assignment: Dict[Hashable, Hashable] = {
            s: assignment[s] for s in mdp.states
        }

    @classmethod
    def _trusted(cls, mdp: CTMDP, assignment: Mapping[Hashable, Hashable]) -> "Policy":
        """Construct without validation.

        Internal fast path for solvers that derive the assignment from
        the model's own compiled index, where every (state, action) pair
        is valid by construction.
        """
        policy = cls.__new__(cls)
        policy._mdp = mdp
        policy._assignment = dict(assignment)
        return policy

    @property
    def mdp(self) -> CTMDP:
        return self._mdp

    def action(self, state: Hashable) -> Hashable:
        return self._assignment[state]

    def as_dict(self) -> "Dict[Hashable, Hashable]":
        return dict(self._assignment)

    def generator_matrix(self) -> np.ndarray:
        """Generator of the CTMC induced by this policy."""
        n = self._mdp.n_states
        g = np.zeros((n, n))
        for i, state in enumerate(self._mdp.states):
            g[i, :] = self._mdp.generator_row(state, self._assignment[state])
        return g

    def cost_vector(self) -> np.ndarray:
        """Effective cost rates under this policy, per state."""
        return np.array(
            [self._mdp.cost(s, self._assignment[s]) for s in self._mdp.states]
        )

    def extra_cost_vector(self, name: str) -> np.ndarray:
        """A named auxiliary cost-rate vector under this policy."""
        return np.array(
            [self._mdp.extra_cost(s, self._assignment[s], name) for s in self._mdp.states]
        )

    def induced_chain(self) -> ContinuousTimeMarkovChain:
        """The labeled CTMC this policy induces."""
        return ContinuousTimeMarkovChain(self.generator_matrix(), self._mdp.states)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Policy):
            return NotImplemented
        return self._assignment == other._assignment

    def __hash__(self) -> int:
        return hash(tuple(sorted(self._assignment.items(), key=repr)))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Policy({self._assignment!r})"


class RandomizedPolicy:
    """A stationary randomized policy: per-state action distribution.

    Produced by the constrained LP (the optimum of a constrained MDP may
    require randomizing in at most one state per active constraint).
    """

    def __init__(
        self,
        mdp: CTMDP,
        distributions: Mapping[Hashable, Mapping[Hashable, float]],
    ) -> None:
        self._mdp = mdp
        self._dist: Dict[Hashable, Dict[Hashable, float]] = {}
        for state in mdp.states:
            if state not in distributions:
                raise InvalidPolicyError(f"missing distribution for state {state!r}")
            dist = dict(distributions[state])
            total = sum(dist.values())
            if abs(total - 1.0) > 1e-6:
                raise InvalidPolicyError(
                    f"action probabilities for {state!r} sum to {total:g}, not 1"
                )
            available = set(mdp.actions(state))
            for action, prob in dist.items():
                if action not in available:
                    raise InvalidPolicyError(
                        f"action {action!r} not available in state {state!r}"
                    )
                if prob < -1e-12:
                    raise InvalidPolicyError(
                        f"negative probability {prob:g} for {state!r}/{action!r}"
                    )
            self._dist[state] = {a: max(0.0, p) for a, p in dist.items()}

    @property
    def mdp(self) -> CTMDP:
        return self._mdp

    def distribution(self, state: Hashable) -> "Dict[Hashable, float]":
        return dict(self._dist[state])

    def generator_matrix(self) -> np.ndarray:
        """Probability-weighted mixture of the per-action generator rows."""
        n = self._mdp.n_states
        g = np.zeros((n, n))
        for i, state in enumerate(self._mdp.states):
            for action, prob in self._dist[state].items():
                g[i, :] += prob * self._mdp.generator_row(state, action)
        return g

    def cost_vector(self) -> np.ndarray:
        return np.array(
            [
                sum(p * self._mdp.cost(s, a) for a, p in self._dist[s].items())
                for s in self._mdp.states
            ]
        )

    def extra_cost_vector(self, name: str) -> np.ndarray:
        return np.array(
            [
                sum(p * self._mdp.extra_cost(s, a, name) for a, p in self._dist[s].items())
                for s in self._mdp.states
            ]
        )

    def deterministic_rounding(self) -> Policy:
        """Most-probable-action deterministic projection."""
        return Policy(
            self._mdp,
            {s: max(d.items(), key=lambda kv: kv[1])[0] for s, d in self._dist.items()},
        )

    def sample_action(self, state: Hashable, rng: np.random.Generator) -> Hashable:
        """Draw an action for *state* according to its distribution."""
        actions = list(self._dist[state].keys())
        probs = np.array([self._dist[state][a] for a in actions])
        probs = probs / probs.sum()
        return actions[int(rng.choice(len(actions), p=probs))]


@dataclass(frozen=True)
class PolicyEvaluation:
    """Result of exact average-cost policy evaluation.

    Attributes
    ----------
    gain:
        The long-run average cost rate ``g`` (scalar for unichain
        policies).
    bias:
        The relative-value vector ``h`` with ``h[reference] = 0``.
    stationary:
        The stationary distribution of the induced chain (``None`` when
        the evaluation was run with ``compute_stationary=False``).
    """

    gain: float
    bias: np.ndarray
    stationary: Optional[np.ndarray]


def _evaluate_policy_sparse(
    policy,
    cost_vector: Optional[np.ndarray],
    reference_state: int,
    compute_stationary: bool,
) -> PolicyEvaluation:
    """Sparse-ladder twin of the dense evaluation assembly."""
    import scipy.sparse as sp

    from repro.ctmdp.sparse import (
        compile_sparse_ctmdp,
        solve_sparse_with_fallback,
        sparse_stationary_distribution,
    )

    smdp = compile_sparse_ctmdp(policy.mdp)
    sel = smdp.policy_rows(policy.as_dict())
    n = smdp.n_states
    if not 0 <= reference_state < n:
        raise InvalidPolicyError(f"reference state {reference_state} out of range")
    g_can, c_can, shift = smdp.canonical()
    rows = g_can[sel]
    if cost_vector is None:
        c = c_can[sel]
    else:
        c = np.ldexp(np.asarray(cost_vector, dtype=float), -shift)
    if c.shape != (n,):
        raise InvalidPolicyError(f"cost vector shape {c.shape} != ({n},)")
    gain_col = sp.csr_array(
        (np.full(n, -1.0), (np.arange(n), np.zeros(n, int))), shape=(n, 1)
    )
    ref_row = sp.csr_array(([1.0], ([0], [reference_state])), shape=(1, n))
    a = sp.block_array([[rows, gain_col], [ref_row, None]], format="csc")
    b = np.concatenate([-c, [0.0]])
    solution = solve_sparse_with_fallback(
        a, b, what="policy evaluation system",
        context={"reference_state": reference_state},
        a_max=max(1.0, float(np.max(np.abs(rows.data), initial=0.0))),
    )
    gain = float(np.ldexp(solution[n], shift))
    if not compute_stationary:
        return PolicyEvaluation(gain=gain, bias=solution[:n], stationary=None)
    p = sparse_stationary_distribution(smdp.generator[sel])
    return PolicyEvaluation(gain=gain, bias=solution[:n], stationary=p)


def evaluate_policy(
    policy,
    cost_vector: Optional[np.ndarray] = None,
    reference_state: int = 0,
    backend: Optional[str] = None,
    compute_stationary: bool = True,
) -> PolicyEvaluation:
    """Exactly evaluate a stationary policy's average cost.

    Solves the (continuous-time) evaluation equations

    ``c_i + sum_j G[i, j] h_j = g``  for all ``i``, with
    ``h[reference_state] = 0``,

    which is the policy-evaluation step of Howard/Miller policy
    iteration. Requires the induced chain to be unichain (the DPM
    action constraints guarantee connectedness, hence unichain).

    Parameters
    ----------
    policy:
        A :class:`Policy` or :class:`RandomizedPolicy`.
    cost_vector:
        Optional override for the per-state cost rates; defaults to the
        policy's own effective costs.
    reference_state:
        Index whose bias is pinned to zero.
    backend:
        ``None`` (default) assembles ``G`` and ``c`` from the model's
        compiled arrays when a dense lowering is already cached on the
        model (and the policy is deterministic), falling back to the
        per-state dict loops otherwise; ``"compiled"`` forces the
        lowering; ``"reference"`` forces the dict path; ``"sparse"``
        routes through the CSR lowering and the direct/Krylov solver
        ladder of :mod:`repro.ctmdp.sparse`. Policies over
        :class:`~repro.ctmdp.sparse.SparseCTMDP` and
        :class:`~repro.ctmdp.kron.KroneckerCTMDP` models evaluate on
        their native tier automatically. Dense paths are bit-identical
        to each other; sparse/matrix-free results match within the
        documented residual tolerance.
    """
    from repro.ctmdp.kron import ArrayPolicy, KroneckerCTMDP, kron_evaluate
    from repro.ctmdp.sparse import SparseCTMDP

    mdp = policy.mdp
    if isinstance(mdp, KroneckerCTMDP) or isinstance(policy, ArrayPolicy):
        if backend not in (None, "auto", "kron"):
            from repro.errors import SolverError

            raise SolverError(
                f"backend {backend!r} cannot evaluate a policy over a "
                "KroneckerCTMDP; Kronecker models are matrix-free only"
            )
        if cost_vector is not None:
            from repro.errors import SolverError

            raise SolverError(
                "cost_vector overrides are not supported on the "
                "matrix-free tier"
            )
        return kron_evaluate(
            mdp, policy, reference_state=reference_state,
            compute_stationary=compute_stationary,
        )
    if backend == "sparse" or isinstance(mdp, SparseCTMDP):
        if isinstance(mdp, SparseCTMDP) and backend not in (
            None, "auto", "sparse"
        ):
            from repro.errors import SolverError

            raise SolverError(
                f"backend {backend!r} cannot evaluate a policy over a "
                "SparseCTMDP; sparse-built models never had a dict/dense "
                "form (backend='sparse' or None)"
            )
        if not hasattr(policy, "as_dict"):
            from repro.errors import SolverError

            raise SolverError(
                "sparse evaluation supports deterministic policies only"
            )
        return _evaluate_policy_sparse(
            policy, cost_vector, reference_state, compute_stationary
        )
    comp = None
    if backend != "reference" and isinstance(policy, Policy):
        if backend == "compiled":
            from repro.ctmdp.compiled import compile_ctmdp

            comp = compile_ctmdp(policy.mdp)
        else:
            comp = getattr(policy.mdp, "_compiled", None)
    if comp is not None:
        g_mat, compiled_cost = comp.evaluation_system(
            comp.policy_rows(policy.as_dict())
        )
        c = compiled_cost if cost_vector is None else np.asarray(cost_vector, float)
    else:
        g_mat = policy.generator_matrix()
        c = policy.cost_vector() if cost_vector is None else np.asarray(cost_vector, float)
    n = g_mat.shape[0]
    if c.shape != (n,):
        raise InvalidPolicyError(f"cost vector shape {c.shape} != ({n},)")
    if not 0 <= reference_state < n:
        raise InvalidPolicyError(f"reference state {reference_state} out of range")
    # Unknowns: h_0..h_{n-1}, g. Equations: G h - g 1 = -c (n rows) plus
    # h[ref] = 0. Assembled in canonical units -- G and c scaled by the
    # exact exponent shift that brings the *model-wide* max exit rate
    # into [1, 2), the same shift the compiled solver uses, so both
    # paths run the identical float computation. The gain shifts back
    # exactly; the bias is scale-invariant.
    from repro.markov.generator import canonical_shift

    shift = canonical_shift(policy.mdp.max_exit_rate())
    a = np.zeros((n + 1, n + 1))
    a[:n, :n] = np.ldexp(g_mat, -shift)
    a[:n, n] = -1.0
    a[n, reference_state] = 1.0
    b = np.concatenate([np.ldexp(-c, -shift), [0.0]])
    from repro.robust.guardrails import solve_with_fallback

    solution = solve_with_fallback(
        a, b, what="policy evaluation system",
        context={"reference_state": reference_state},
    )
    h = solution[:n]
    gain = float(np.ldexp(solution[n], shift))

    if not compute_stationary:
        # Policy iteration's improvement step needs only gain and bias;
        # intermediate policies may induce multichain generators whose
        # stationary solve would (rightly) raise, so the solve is
        # deferred to the converged policy.
        return PolicyEvaluation(gain=gain, bias=h, stationary=None)

    from repro.markov.generator import stationary_distribution

    p = stationary_distribution(g_mat)
    return PolicyEvaluation(gain=gain, bias=h, stationary=p)
