"""Solver backend selection shared by every CTMDP solver entry point.

Three representation tiers sit behind one API:

- ``"dense"`` (alias ``"compiled"``): the dense compiled lowering --
  O(pairs x states) memory, O(n^3) direct evaluation. Fastest below a
  couple thousand states; the bit-exactness baseline.
- ``"sparse"``: CSR lowering (:mod:`repro.ctmdp.sparse`) -- O(nnz)
  memory, sparse-LU/GMRES evaluation. The interactive tier for 10^4 -
  10^5 states.
- ``"kron"``: matrix-free Kronecker models (:mod:`repro.ctmdp.kron`) --
  O(sum of factor sizes) generator storage, uniformized value iteration
  and Krylov evaluation. The only tier that reaches 10^6 joint states.
- ``"reference"``: the dict-based per-state loops (debugging oracle).

``"auto"`` resolves from the model type and size: Kronecker models run
matrix-free, sparse models run sparse, and plain :class:`CTMDP` models
run dense up to :data:`DENSE_STATE_LIMIT` states, sparse beyond.

Every resolution is auditable: with instrumentation active, each call
appends a row to the :data:`DECISION_SERIES` series (requested backend,
resolved tier, state count, reason) and bumps a per-tier counter;
``auto`` selections additionally emit a structured log line so a model
silently landing on a weaker tier is visible at ``--log-level info``.

The sparse and kron tiers additionally carry the cross-solve reuse
layer (:mod:`repro.ctmdp.reuse`, DESIGN §12): within a solve,
evaluation systems are updated in place and factorizations reused
across improvement rounds; across solves, the DPM sweeps seed each
weight with its neighbor's converged policy. Reuse never changes
results -- converged policies are re-evaluated through the standard
ladder -- and is observable through the ``solver.reuse.*`` counters.
"""

from __future__ import annotations

from repro.errors import SolverError
from repro.obs.log import get_logger
from repro.obs.runtime import active as obs_active

#: Every accepted ``backend=`` argument.
BACKENDS = ("auto", "dense", "compiled", "sparse", "kron", "reference")

#: ``auto`` keeps plain CTMDPs on the dense compiled tier up to this
#: many states; beyond it the dense lowering's O(pairs x states) rows
#: and O(n^3) solves lose to CSR across the board.
DENSE_STATE_LIMIT = 2000

#: Series of backend-decision records: one row per resolution with
#: ``requested``/``resolved``/``n_states``/``reason``/``who`` fields.
DECISION_SERIES = "solver.backend.decisions"

logger = get_logger("ctmdp.backends")


def _record_decision(
    requested: str, resolved: str, n_states: int, reason: str, who: str
) -> None:
    """Append the decision record + counter and log auto selections."""
    ins = obs_active()
    if ins.enabled and ins.metrics is not None:
        ins.metrics.series(DECISION_SERIES).append(
            requested=requested,
            resolved=resolved,
            n_states=n_states,
            reason=reason,
            who=who,
        )
        ins.metrics.counter(f"solver.backend.selected.{resolved}").inc()
    if requested == "auto":
        logger.info(
            "backend auto-selected tier=%s n_states=%d reason=%s who=%s",
            resolved,
            n_states,
            reason,
            who,
        )
    else:
        logger.debug(
            "backend resolved tier=%s requested=%s n_states=%d who=%s",
            resolved,
            requested,
            n_states,
            who,
        )


def resolve_backend(mdp, backend: str, who: str = "solver") -> str:
    """Map a requested backend to the concrete tier for *mdp*.

    Returns one of ``"compiled"``, ``"sparse"``, ``"kron"`` or
    ``"reference"``; raises a typed :class:`SolverError` for unknown
    names or tier/model mismatches (e.g. forcing a plain CTMDP through
    the Kronecker tier, which has no tensor structure to exploit).
    """
    if backend not in BACKENDS:
        raise SolverError(
            f"unknown backend {backend!r}; choose from {BACKENDS}"
        )
    from repro.ctmdp.kron import KroneckerCTMDP
    from repro.ctmdp.sparse import SparseCTMDP

    if isinstance(mdp, KroneckerCTMDP):
        if backend in ("auto", "kron"):
            _record_decision(
                backend, "kron", mdp.n_states, "kronecker-model", who
            )
            return "kron"
        raise SolverError(
            f"{who} backend {backend!r} cannot run a KroneckerCTMDP; "
            "Kronecker models are matrix-free only (backend='kron' or "
            "'auto'); lower explicitly via to_ctmdp() for other tiers"
        )
    if isinstance(mdp, SparseCTMDP):
        if backend in ("auto", "sparse"):
            _record_decision(
                backend, "sparse", mdp.n_states, "sparse-model", who
            )
            return "sparse"
        raise SolverError(
            f"{who} backend {backend!r} cannot run a SparseCTMDP; "
            "sparse-built models never had a dict/dense form "
            "(backend='sparse' or 'auto')"
        )
    # Plain dict-based CTMDP.
    if backend == "kron":
        raise SolverError(
            f"{who} backend 'kron' needs a KroneckerCTMDP (tensor-"
            "structured model); wrap via KroneckerCTMDP.from_ctmdp or "
            "build one directly"
        )
    n_states = mdp.n_states
    if backend == "auto":
        if n_states <= DENSE_STATE_LIMIT:
            resolved, reason = "compiled", (
                f"n_states<={DENSE_STATE_LIMIT} fits the dense tier"
            )
        else:
            resolved, reason = "sparse", (
                f"n_states>{DENSE_STATE_LIMIT} exceeds the dense tier"
            )
    elif backend == "dense":
        resolved, reason = "compiled", "explicit request (dense alias)"
    else:
        resolved, reason = backend, "explicit request"
    _record_decision(backend, resolved, n_states, reason, who)
    return resolved
