"""Solver backend selection shared by every CTMDP solver entry point.

Three representation tiers sit behind one API:

- ``"dense"`` (alias ``"compiled"``): the dense compiled lowering --
  O(pairs x states) memory, O(n^3) direct evaluation. Fastest below a
  couple thousand states; the bit-exactness baseline.
- ``"sparse"``: CSR lowering (:mod:`repro.ctmdp.sparse`) -- O(nnz)
  memory, sparse-LU/GMRES evaluation. The interactive tier for 10^4 -
  10^5 states.
- ``"kron"``: matrix-free Kronecker models (:mod:`repro.ctmdp.kron`) --
  O(sum of factor sizes) generator storage, uniformized value iteration
  and Krylov evaluation. The only tier that reaches 10^6 joint states.
- ``"reference"``: the dict-based per-state loops (debugging oracle).

``"auto"`` resolves from the model type and size: Kronecker models run
matrix-free, sparse models run sparse, and plain :class:`CTMDP` models
run dense up to :data:`DENSE_STATE_LIMIT` states, sparse beyond.
"""

from __future__ import annotations

from repro.errors import SolverError

#: Every accepted ``backend=`` argument.
BACKENDS = ("auto", "dense", "compiled", "sparse", "kron", "reference")

#: ``auto`` keeps plain CTMDPs on the dense compiled tier up to this
#: many states; beyond it the dense lowering's O(pairs x states) rows
#: and O(n^3) solves lose to CSR across the board.
DENSE_STATE_LIMIT = 2000


def resolve_backend(mdp, backend: str, who: str = "solver") -> str:
    """Map a requested backend to the concrete tier for *mdp*.

    Returns one of ``"compiled"``, ``"sparse"``, ``"kron"`` or
    ``"reference"``; raises a typed :class:`SolverError` for unknown
    names or tier/model mismatches (e.g. forcing a plain CTMDP through
    the Kronecker tier, which has no tensor structure to exploit).
    """
    if backend not in BACKENDS:
        raise SolverError(
            f"unknown backend {backend!r}; choose from {BACKENDS}"
        )
    from repro.ctmdp.kron import KroneckerCTMDP
    from repro.ctmdp.sparse import SparseCTMDP

    if isinstance(mdp, KroneckerCTMDP):
        if backend in ("auto", "kron"):
            return "kron"
        raise SolverError(
            f"{who} backend {backend!r} cannot run a KroneckerCTMDP; "
            "Kronecker models are matrix-free only (backend='kron' or "
            "'auto'); lower explicitly via to_ctmdp() for other tiers"
        )
    if isinstance(mdp, SparseCTMDP):
        if backend in ("auto", "sparse"):
            return "sparse"
        raise SolverError(
            f"{who} backend {backend!r} cannot run a SparseCTMDP; "
            "sparse-built models never had a dict/dense form "
            "(backend='sparse' or 'auto')"
        )
    # Plain dict-based CTMDP.
    if backend == "kron":
        raise SolverError(
            f"{who} backend 'kron' needs a KroneckerCTMDP (tensor-"
            "structured model); wrap via KroneckerCTMDP.from_ctmdp or "
            "build one directly"
        )
    if backend == "auto":
        return (
            "compiled" if mdp.n_states <= DENSE_STATE_LIMIT else "sparse"
        )
    if backend == "dense":
        return "compiled"
    return backend
