"""CSR sparse lowering of a CTMDP and its Krylov solver ladder.

The dense compiled core (:mod:`repro.ctmdp.compiled`) stores one full
length-``n`` generator row per ``(state, action)`` pair -- ``O(pairs x
states)`` memory -- and evaluates policies with an ``O(n^3)`` dense LU.
Both walls fall around a few thousand states. This module is the middle
tier of the solver backend ladder: the same pair-indexed layout and
sweep semantics (shared via :class:`PairIndexedCTMDP`), but the
generator held as one ``(pairs, states)`` CSR matrix, improvement
sweeps as a single sparse matvec, and policy evaluation through a
direct-then-iterative sparse ladder:

1. sparse LU (SuperLU ``splu``) on the bordered canonical system,
   accepted under the same relative-residual test the dense guardrails
   use (``RESIDUAL_RTOL``);
2. GMRES with an ILU preconditioner (Jacobi when the ILU factorization
   itself fails), targeting :data:`KRYLOV_RTOL`;
3. a typed :class:`~repro.errors.SolverError` carrying residual
   diagnostics -- never a silent NaN.

Tolerance contract: direct sparse solves agree with the dense core to
solver roundoff (policies exactly, in practice); any solution accepted
off the Krylov rung satisfies a relative residual of at most
``RESIDUAL_RTOL``, and on admitted (well-conditioned) models GMRES is
run to -- and the equivalence suite asserts -- :data:`KRYLOV_RTOL`
(1e-10).
"""

from __future__ import annotations

import warnings
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import LinearOperator, gmres, spilu, splu

from repro.ctmdp.compiled import PairIndexedCTMDP
from repro.ctmdp.model import CTMDP
from repro.errors import InvalidModelError, NotIrreducibleError, SolverError
from repro.markov.generator import DEFAULT_ATOL, canonical_shift
from repro.obs.log import get_logger
from repro.obs.runtime import active as obs_active
from repro.robust.guardrails import RESIDUAL_RTOL, _relative_residual

#: Relative-residual target for Krylov (GMRES) policy-evaluation solves.
#: This is the documented accuracy contract of the iterative rungs: on
#: admitted models the returned solution's relative residual is at most
#: this value, making sparse/kron results interchangeable with the dense
#: core far below model-level tolerances.
KRYLOV_RTOL = 1e-10

#: GMRES restart length / outer-iteration cap for the fallback rung.
GMRES_RESTART = 100
GMRES_MAXITER = 200

#: ILU preconditioner knobs for the GMRES rung. ``ILU_DROP_TOL`` is the
#: ``spilu`` magnitude threshold below which fill-in entries are
#: discarded -- small enough that the incomplete factors of the
#: canonically rescaled (unit-magnitude) evaluation systems stay close
#: to the exact LU, so GMRES typically converges in a handful of
#: iterations. ``ILU_FILL_FACTOR`` caps the factors' growth at 10x the
#: input's nnz, bounding the rung's memory at a small multiple of the
#: model itself. Both values land in the solve-info series rows and
#: ``SolverError`` diagnostics so a trace can attribute GMRES behavior
#: to the preconditioner configuration that produced it.
ILU_DROP_TOL = 1e-6
ILU_FILL_FACTOR = 10.0

#: Series of per-solve residual records: one row per policy evaluation
#: through the ladder, carrying which rung fired (``direct``/``gmres``),
#: why (``reason``), the CSR ``nnz``, and the residual trajectory --
#: a single accepted residual for the direct rung, the per-iteration
#: preconditioned GMRES norms for the Krylov rung.
KRYLOV_SERIES = "solver.sparse.krylov.residuals"

logger = get_logger("ctmdp.sparse")


def _direct_solve(a_csc, b: np.ndarray) -> np.ndarray:
    """Direct sparse LU solve (module-level so tests can force the
    Krylov rung by monkeypatching, mirroring ``guardrails._dense_solve``).

    With metrics active, records the LU fill-in -- ``(nnz(L) +
    nnz(U)) / nnz(A)`` -- the number that explains why a direct solve
    suddenly got slow or memory-hungry on a new model family.
    """
    from repro.robust.faultinject import numerical_fault

    if numerical_fault("direct-fail"):
        raise RuntimeError("injected direct sparse-LU failure")
    lu = splu(a_csc)
    ins = obs_active()
    if ins.enabled and ins.metrics is not None:
        ins.metrics.histogram("solver.sparse.lu_fill_factor").observe(
            float(lu.L.nnz + lu.U.nnz) / max(int(a_csc.nnz), 1)
        )
    return lu.solve(b)


def _ilu_preconditioner(a_csc) -> "Tuple[LinearOperator, Dict[str, object]]":
    """ILU preconditioner for GMRES; Jacobi when ILU breaks down.

    Returns the operator plus a solve-info dict naming the
    preconditioner kind and the :data:`ILU_DROP_TOL` /
    :data:`ILU_FILL_FACTOR` knobs it was built with, which the ladder
    copies into its telemetry rows and error diagnostics.
    """
    from repro.robust.faultinject import numerical_fault

    try:
        if numerical_fault("ilu-breakdown"):
            raise RuntimeError("injected ILU factorization breakdown")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            ilu = spilu(
                a_csc, drop_tol=ILU_DROP_TOL, fill_factor=ILU_FILL_FACTOR
            )
        info: "Dict[str, object]" = {
            "preconditioner": "ilu",
            "ilu_drop_tol": ILU_DROP_TOL,
            "ilu_fill_factor": ILU_FILL_FACTOR,
        }
        return (
            LinearOperator(a_csc.shape, matvec=ilu.solve, dtype=float),
            info,
        )
    except Exception:
        diag = a_csc.diagonal()
        scale = np.where(np.abs(diag) > 0.0, diag, 1.0)
        return (
            LinearOperator(
                a_csc.shape, matvec=lambda x: x / scale, dtype=float
            ),
            {"preconditioner": "jacobi"},
        )


def solve_sparse_with_fallback(
    a,
    b: np.ndarray,
    what: str = "sparse linear system",
    residual_rtol: float = RESIDUAL_RTOL,
    context: "Optional[Dict]" = None,
    a_max: "Optional[float]" = None,
    x0: "Optional[np.ndarray]" = None,
) -> np.ndarray:
    """Solve ``a @ x = b`` through the sparse ladder (see module doc).

    ``a_max`` is the caller-supplied magnitude scale of ``a`` used by
    the relative-residual test (computing it from a sparse matrix is the
    caller's O(nnz) job, done once per policy-iteration run).

    ``x0`` warm-starts the GMRES rung (the direct rung ignores it): a
    nearby previous solution -- e.g. the prior policy-iteration round's
    value vector -- shrinks the initial residual and with it the Krylov
    iteration count. Acceptance is unchanged: whatever the start, the
    returned solution satisfies the ``residual_rtol`` contract.
    """
    a_csc = sp.csc_array(a)
    if a_max is None:
        a_max = float(np.max(np.abs(a_csc.data), initial=1.0))
    nnz = int(a_csc.nnz)
    ins = obs_active()
    metrics = ins.metrics if ins.enabled else None
    with ins.span(
        "sparse_solve", what=what, n=int(a_csc.shape[0]), nnz=nnz
    ) as span:
        direct_error: "Optional[str]" = None
        direct_residual: "Optional[float]" = None
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                x = _direct_solve(a_csc, b)
        except (RuntimeError, ValueError) as exc:
            direct_error = str(exc)
        else:
            if np.all(np.isfinite(x)):
                ok, direct_residual = True, _relative_residual(
                    a_csc, x, b, a_max=a_max
                )
                if direct_residual <= residual_rtol:
                    span.attrs.update(
                        rung="direct", residual=direct_residual
                    )
                    if metrics is not None:
                        metrics.counter("solver.sparse.direct_solves").inc()
                        metrics.series(KRYLOV_SERIES).append(
                            what=what,
                            rung="direct",
                            nnz=nnz,
                            reason="direct residual within tolerance",
                            iterations=0,
                            residuals=[direct_residual],
                            residual=direct_residual,
                        )
                    return x
            else:
                direct_error = (
                    "direct sparse solve produced non-finite entries"
                )

        # Krylov rung: ILU-preconditioned GMRES run to the documented
        # KRYLOV_RTOL target, accepted under the ladder's residual_rtol.
        fallback_reason = direct_error or (
            f"direct residual {direct_residual:.3g} > {residual_rtol:g}"
        )
        residuals: "List[float]" = []
        callback = (
            (lambda pr_norm: residuals.append(float(pr_norm)))
            if ins.enabled
            else None
        )
        precond, precond_info = _ilu_preconditioner(a_csc)
        if x0 is not None and (
            x0.shape != b.shape or not np.all(np.isfinite(x0))
        ):
            x0 = None
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            x, info = gmres(
                a_csc,
                b,
                M=precond,
                x0=x0,
                rtol=KRYLOV_RTOL,
                atol=0.0,
                restart=GMRES_RESTART,
                maxiter=GMRES_MAXITER,
                callback=callback,
                callback_type="pr_norm",
            )
        if x0 is not None and metrics is not None:
            metrics.counter("solver.reuse.gmres_warm_starts").inc()
        from repro.robust.faultinject import numerical_fault

        if numerical_fault("krylov-stall"):
            # Modeled non-convergence: the vector is poisoned exactly as
            # a stalled GMRES would leave it, so the acceptance test
            # below -- not this hook -- decides the failure.
            x = np.full_like(x, np.nan)
        gmres_residual = (
            _relative_residual(a_csc, x, b, a_max=a_max)
            if np.all(np.isfinite(x))
            else float("inf")
        )
        converged = gmres_residual <= residual_rtol
        span.attrs.update(
            rung="gmres" if converged else "failed",
            residual=gmres_residual,
            gmres_iterations=len(residuals),
            **precond_info,
        )
        if metrics is not None:
            metrics.series(KRYLOV_SERIES).append(
                what=what,
                rung="gmres" if converged else "failed",
                nnz=nnz,
                reason=fallback_reason,
                iterations=len(residuals),
                # A warm start can converge before the first pr_norm
                # callback fires; the accepted residual keeps the row's
                # trajectory non-empty either way.
                residuals=residuals or [gmres_residual],
                residual=gmres_residual,
                warm_started=x0 is not None,
                **precond_info,
            )
        if converged:
            if metrics is not None:
                metrics.counter("solver.sparse.gmres_fallbacks").inc()
            logger.info(
                "sparse solve fell back to ILU-GMRES what=%s nnz=%d "
                "reason=%s iterations=%d residual=%.3g",
                what,
                nnz,
                fallback_reason,
                len(residuals),
                gmres_residual,
            )
            return x
        if metrics is not None:
            metrics.counter("solver.sparse.ladder_failures").inc()
        logger.warning(
            "sparse solve ladder exhausted what=%s nnz=%d reason=%s "
            "gmres_residual=%.3g",
            what,
            nnz,
            fallback_reason,
            gmres_residual,
        )

    diagnostics: "Dict[str, object]" = {
        "what": what,
        "backend": "sparse",
        "shape": tuple(int(s) for s in a_csc.shape),
        "nnz": int(a_csc.nnz),
        "direct_error": direct_error,
        "direct_residual": direct_residual,
        "gmres_info": int(info),
        "gmres_residual": gmres_residual,
        "residual_rtol": residual_rtol,
    }
    diagnostics.update(precond_info)
    if context:
        diagnostics.update(context)
    raise SolverError(
        f"{what} defeated both the direct sparse solve and "
        f"ILU-preconditioned GMRES (residual {gmres_residual:.3g} > "
        f"{residual_rtol:g}); the induced chain is likely multichain or "
        "the system is numerically singular -- check the model's action "
        "constraints",
        diagnostics=diagnostics,
    )


def sparse_stationary_distribution(
    generator, atol: float = DEFAULT_ATOL
) -> np.ndarray:
    """Stationary distribution of a CSR generator, sparse direct solve.

    Same linear system as the dense
    :func:`repro.markov.generator.stationary_distribution` -- transpose
    the canonically rescaled generator, replace the last balance
    equation with the normalization row -- but factorized through its
    TRANSPOSE. The normalization row is dense, and a dense row sends
    column-ordered sparse LU into catastrophic fill (150 s vs 0.3 s at
    2e4 states on the SYS family); in the transpose it becomes a single
    dense column, which COLAMD simply orders last. SuperLU then solves
    the original system via ``trans="T"``.

    The solve is direct-only, no Krylov rung: the system is nonsingular
    exactly when the chain is unichain, and GMRES cannot tell a unique
    solution from one member of a singular-but-consistent family (it
    would silently return an arbitrary mixture of recurrent classes).
    Singularity, non-finite solutions, and residual failures all raise
    :class:`NotIrreducibleError`.
    """
    gen = sp.csr_array(generator, dtype=float)
    n = gen.shape[0]
    if gen.shape != (n, n):
        raise InvalidModelError(
            f"stationary distribution needs a square generator, got {gen.shape}"
        )
    ins = obs_active()
    with ins.span(
        "stationary_solve", backend="sparse", n_states=int(n), nnz=int(gen.nnz)
    ) as span:
        p = _stationary_balance_solve(gen, n, span)
    return p


def _stationary_balance_solve(gen, n: int, span) -> np.ndarray:
    """The bordered balance-system solve behind
    :func:`sparse_stationary_distribution` (split out for the span)."""
    exit_rates = -gen.diagonal()
    shift = canonical_shift(float(np.max(exit_rates, initial=0.0)))
    # m = A^T where A = G_can^T with row n-1 := ones; so m is G_can with
    # column n-1 := ones.
    coo = gen.tocoo()
    keep = coo.col != n - 1
    rows = np.concatenate([coo.row[keep], np.arange(n)])
    cols = np.concatenate([coo.col[keep], np.full(n, n - 1)])
    vals = np.concatenate([np.ldexp(coo.data[keep], -shift), np.ones(n)])
    m = sp.csc_array((vals, (rows, cols)), shape=(n, n))
    b = np.zeros(n)
    b[-1] = 1.0
    try:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            p = splu(m).solve(b, trans="T")
    except (RuntimeError, ValueError) as exc:
        raise NotIrreducibleError(
            "stationary distribution is not unique or does not exist: "
            f"sparse LU of the balance system failed ({exc})"
        ) from exc
    a_max = float(np.max(np.abs(m.data), initial=1.0))
    residual = (
        _relative_residual(m.T, p, b, a_max=a_max)
        if np.all(np.isfinite(p))
        else float("inf")
    )
    span.attrs.update(residual=residual)
    ins = obs_active()
    if ins.enabled and ins.metrics is not None:
        ins.metrics.counter("solver.sparse.stationary_solves").inc()
    if residual > RESIDUAL_RTOL:
        raise NotIrreducibleError(
            "stationary distribution is not unique or does not exist: "
            f"balance-system residual {residual:.3g} exceeds "
            f"{RESIDUAL_RTOL:g}; the chain is likely not unichain"
        )
    if np.min(p) < -1e-7:
        raise NotIrreducibleError(
            "stationary solve produced significantly negative "
            f"probabilities (min {np.min(p):.3g}); the chain is not "
            "irreducible"
        )
    p = np.clip(p, 0.0, None)
    total = p.sum()
    if not np.isfinite(total) or total <= 0.0:
        raise NotIrreducibleError(
            "stationary solve produced a non-normalizable vector"
        )
    return p / total


class SparseCTMDP(PairIndexedCTMDP):
    """CSR lowering of a CTMDP: the sparse solver backend's model form.

    Mirrors :class:`CompiledCTMDP`'s pair-indexed layout -- ``states``,
    per-state ``actions`` tuples, ``pair_state``/``pair_col``/
    ``pair_offset``, stacked ``cost`` and ``extra`` channels -- but the
    generator is a single ``(n_pairs, n_states)`` CSR matrix with
    Eqn.-2.4 diagonals included, so memory is O(nnz) and improvement
    sweeps are one sparse matvec.

    Built either by :func:`compile_sparse_ctmdp` (lossless re-lowering
    of a dict-based :class:`CTMDP`, cached on the model) or directly
    from COO triples via :meth:`from_coo` for models too large to ever
    exist in dict form (the :meth:`PowerManagedSystemModel.build_ctmdp`
    sparse path).
    """

    def __init__(
        self,
        states: Sequence[Hashable],
        actions: Sequence[Sequence[Hashable]],
        generator,
        cost: np.ndarray,
        rate_scale: float = 1.0,
        extra: "Optional[Dict[str, np.ndarray]]" = None,
    ) -> None:
        self.states = tuple(states)
        self.n_states = len(self.states)
        self.actions = tuple(tuple(a) for a in actions)
        if len(self.actions) != self.n_states:
            raise InvalidModelError(
                f"{len(self.actions)} action tuples for {self.n_states} states"
            )
        counts = np.array([len(a) for a in self.actions], dtype=np.intp)
        self.n_pairs = int(counts.sum())
        self.pair_state = np.repeat(
            np.arange(self.n_states, dtype=np.intp), counts
        )
        self.pair_col = np.concatenate(
            [np.arange(c, dtype=np.intp) for c in counts]
        ) if self.n_pairs else np.zeros(0, dtype=np.intp)
        self.pair_offset = np.concatenate(
            [[0], np.cumsum(counts)]
        ).astype(np.intp)
        self._pair_index = {
            (int(i), action): int(self.pair_offset[i] + col)
            for i in range(self.n_states)
            for col, action in enumerate(self.actions[i])
        }
        self.generator = sp.csr_array(generator, dtype=float)
        if self.generator.shape != (self.n_pairs, self.n_states):
            raise InvalidModelError(
                f"generator shape {self.generator.shape} does not match "
                f"({self.n_pairs}, {self.n_states})"
            )
        self.cost = np.asarray(cost, dtype=float)
        if self.cost.shape != (self.n_pairs,):
            raise InvalidModelError(
                f"cost shape {self.cost.shape} does not match ({self.n_pairs},)"
            )
        self.extra: Dict[str, np.ndarray] = {}
        for name, channel in (extra or {}).items():
            channel = np.asarray(channel, dtype=float)
            if channel.shape != (self.n_pairs,):
                raise InvalidModelError(
                    f"extra channel {name!r} shape {channel.shape} does not "
                    f"match ({self.n_pairs},)"
                )
            channel.setflags(write=False)
            self.extra[name] = channel
        self.rate_scale = float(rate_scale)
        # Exit rate per pair from the stored diagonal entries: O(nnz).
        coo = self.generator.tocoo()
        diag = np.zeros(self.n_pairs)
        on_diag = coo.col == self.pair_state[coo.row]
        np.add.at(diag, coo.row[on_diag], coo.data[on_diag])
        self._exit_rates = np.maximum(-diag, 0.0)
        self._exit_rates.setflags(write=False)
        self._canonical = None
        self._entries = None
        for array in (self.cost, self.pair_state, self.pair_col,
                      self.pair_offset):
            array.setflags(write=False)
        self._init_pair_grid()

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_ctmdp(cls, mdp: CTMDP) -> "SparseCTMDP":
        """Lossless CSR re-lowering of a dict-based model.

        Row values come from the same cached ``generator_row`` arrays
        the dense compiled form stacks, so both lowerings hold
        bit-identical numbers.
        """
        indptr = [0]
        indices: List[np.ndarray] = []
        data: List[np.ndarray] = []
        actions: List[Tuple[Hashable, ...]] = []
        costs: List[float] = []
        extra_names: set = set()
        for state in mdp.states:
            state_actions = tuple(mdp.actions(state))
            actions.append(state_actions)
            for action in state_actions:
                row = mdp.generator_row(state, action)
                nz = np.flatnonzero(row)
                indices.append(nz)
                data.append(row[nz])
                indptr.append(indptr[-1] + len(nz))
                costs.append(mdp.data(state, action).effective_cost_rate())
                extra_names.update(mdp.data(state, action).extra_costs)
        n = mdp.n_states
        generator = sp.csr_array(
            (
                np.concatenate(data) if data else np.zeros(0),
                np.concatenate(indices) if indices else np.zeros(0, int),
                np.asarray(indptr, dtype=np.intp),
            ),
            shape=(len(costs), n),
        )
        extra: Dict[str, np.ndarray] = {}
        for name in sorted(extra_names, key=repr):
            extra[name] = np.asarray(
                [
                    mdp.data(state, action).extra_costs.get(name, 0.0)
                    for state, action in mdp.state_action_pairs()
                ]
            )
        return cls(
            mdp.states,
            actions,
            generator,
            np.asarray(costs),
            rate_scale=float(getattr(mdp, "rate_scale", 1.0)),
            extra=extra,
        )

    @classmethod
    def from_coo(
        cls,
        states: Sequence[Hashable],
        actions: Sequence[Sequence[Hashable]],
        pair_rows: np.ndarray,
        cols: np.ndarray,
        rates: np.ndarray,
        cost: np.ndarray,
        rate_scale: float = 1.0,
        extra: "Optional[Dict[str, np.ndarray]]" = None,
    ) -> "SparseCTMDP":
        """Build from off-diagonal COO rate triples, completing the
        Eqn.-2.4 diagonals (``-sum`` of each pair's off-diagonal rates).

        This is the constructor for models assembled at scale: nothing
        dense of size ``O(pairs x states)`` is ever created.
        """
        pair_rows = np.asarray(pair_rows, dtype=np.intp)
        cols = np.asarray(cols, dtype=np.intp)
        rates = np.asarray(rates, dtype=float)
        counts = np.array([len(a) for a in actions], dtype=np.intp)
        n_pairs = int(counts.sum())
        n = len(states)
        pair_state = np.repeat(np.arange(n, dtype=np.intp), counts)
        if np.any(rates < 0.0):
            raise InvalidModelError("transition rates must be non-negative")
        if len(pair_rows) and (
            pair_rows.min() < 0 or pair_rows.max() >= n_pairs
            or cols.min() < 0 or cols.max() >= n
        ):
            raise InvalidModelError("COO indices out of range")
        if np.any(cols == pair_state[pair_rows]):
            raise InvalidModelError(
                "self-transitions must be omitted; diagonals are derived"
            )
        diag = np.zeros(n_pairs)
        np.add.at(diag, pair_rows, rates)
        generator = sp.coo_array(
            (
                np.concatenate([rates, -diag]),
                (
                    np.concatenate([pair_rows, np.arange(n_pairs)]),
                    np.concatenate([cols, pair_state]),
                ),
            ),
            shape=(n_pairs, n),
        ).tocsr()
        return cls(states, actions, generator, cost,
                   rate_scale=rate_scale, extra=extra)

    def with_cost(
        self,
        cost: np.ndarray,
        extra: "Optional[Dict[str, np.ndarray]]" = None,
    ) -> "SparseCTMDP":
        """Structural sibling: same states/actions/generator, new costs.

        This is the cross-weight reuse primitive (DESIGN §12): the
        weighted-cost sweep only varies the cost channel, so sibling
        models share every structural array by reference -- the CSR
        generator, pair indexing, exit rates, the admission scan view,
        and crucially the cached *canonical* generator, so re-weighting
        never re-copies or re-scales O(nnz) data. Only the new cost
        vector is validated and canonically rescaled (O(pairs)).
        """
        cost = np.asarray(cost, dtype=float)
        if cost.shape != (self.n_pairs,):
            raise InvalidModelError(
                f"cost shape {cost.shape} does not match ({self.n_pairs},)"
            )
        if not np.all(np.isfinite(cost)):
            raise InvalidModelError("cost overlay has non-finite entries")
        sibling = object.__new__(type(self))
        sibling.__dict__.update(self.__dict__)
        cost = cost.copy()
        cost.setflags(write=False)
        sibling.cost = cost
        if extra is not None:
            validated: Dict[str, np.ndarray] = {}
            for name, channel in extra.items():
                channel = np.asarray(channel, dtype=float)
                if channel.shape != (self.n_pairs,):
                    raise InvalidModelError(
                        f"extra channel {name!r} shape {channel.shape} does "
                        f"not match ({self.n_pairs},)"
                    )
                channel = channel.copy()
                channel.setflags(write=False)
                validated[name] = channel
            sibling.extra = validated
        # Share the skeleton's canonical generator; only the canonical
        # cost depends on the overlay (same exact ldexp as canonical()).
        g_can, _, shift = self.canonical()
        c_can = np.ldexp(cost, -shift)
        c_can.setflags(write=False)
        sibling._canonical = (g_can, c_can, shift)
        return sibling

    # -- solver interface ----------------------------------------------------

    def validate(self) -> None:
        """Cheap structural check mirroring ``CTMDP.validate``."""
        if self.n_states == 0:
            raise InvalidModelError("model has no states")
        if np.any(np.diff(self.pair_offset) == 0):
            empty = int(np.argmax(np.diff(self.pair_offset) == 0))
            raise InvalidModelError(
                f"state {self.states[empty]!r} has no actions"
            )

    def evaluation_rows(self, sel: np.ndarray):
        """``(G, c)`` CSR rows and costs of the policy selecting *sel*."""
        return self.generator[sel], self.cost[sel]

    def max_exit_rate(self) -> float:
        if self.n_pairs == 0:  # pragma: no cover - models have >= 1 pair
            return 0.0
        return float(np.max(self._exit_rates, initial=0.0))

    def exit_rates(self) -> np.ndarray:
        """``(P,)`` total exit rate of each pair (from the diagonal)."""
        return self._exit_rates

    def canonical(self):
        """``(G, c, shift)`` rescaled into canonical units (cached).

        Same exact power-of-two rescaling contract as the dense
        compiled form; only the CSR data vector is touched.
        """
        if self._canonical is None:
            shift = self.canonical_shift
            g = self.generator.copy()
            g.data = np.ldexp(g.data, -shift)
            c = np.ldexp(self.cost, -shift)
            c.setflags(write=False)
            self._canonical = (g, c, shift)
        return self._canonical

    def sparse_entries(self):
        """``(rows, cols, vals)`` of nonzero generator entries in
        row-major order -- the admission gate's scan view, straight from
        the CSR structure (no densification)."""
        if self._entries is None:
            coo = self.generator.tocoo()
            order = np.lexsort((coo.col, coo.row))
            rows = coo.row[order].astype(np.intp)
            cols = coo.col[order].astype(np.intp)
            vals = coo.data[order]
            for array in (rows, cols, vals):
                array.setflags(write=False)
            self._entries = (rows, cols, vals)
        return self._entries

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SparseCTMDP(n_states={self.n_states}, n_pairs={self.n_pairs}, "
            f"nnz={self.generator.nnz})"
        )


def compile_sparse_ctmdp(mdp) -> SparseCTMDP:
    """The sparse lowering of *mdp*, cached on the instance.

    Accepts a :class:`CTMDP` (lowered via :meth:`SparseCTMDP.from_ctmdp`
    and cached as ``mdp._sparse_lowering``) or an already-sparse model
    (returned as-is).
    """
    if isinstance(mdp, SparseCTMDP):
        return mdp
    cached = getattr(mdp, "_sparse_lowering", None)
    if cached is None:
        mdp.validate()
        cached = SparseCTMDP.from_ctmdp(mdp)
        mdp._sparse_lowering = cached
    return cached
