"""The CTMDP model type.

A continuous-time Markov decision process is a controllable Markov
process with costs (Section II). For every state ``i`` there is a finite
action set ``A_i``; choosing action ``a`` in state ``i`` selects

- a row of transition rates ``s_ij(a) >= 0`` (``j != i``),
- a cost rate ``c_ii(i, a)`` accrued per unit time in ``i``, and
- impulse costs ``c_ij(i, a)`` paid on each ``i -> j`` transition.

Following the paper we work with the *effective cost rate*
``c_i(a) = c_ii(i, a) + sum_{j != i} s_ij(a) c_ij(i, a)``, which folds
impulse costs into an equivalent rate (Section II, "earning rate").

The model is deliberately dense and explicit -- DPM state spaces are
small (tens of states) and clarity beats sparsity here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import InvalidModelError


@dataclass(frozen=True)
class StateActionData:
    """Rates and costs for one ``<state, action>`` pair.

    Attributes
    ----------
    rates:
        Length-``n`` vector of transition rates out of the state; the
        entry for the state itself must be zero (diagonals follow from
        Eqn. 2.4 and are computed on demand).
    cost_rate:
        Per-unit-time cost ``c_ii`` while occupying the state under this
        action.
    impulse_costs:
        Optional length-``n`` vector of per-transition costs ``c_ij``.
    extra_costs:
        Optional named auxiliary cost rates (e.g. separate ``power`` and
        ``delay`` components) used by constrained optimization; each is a
        scalar rate for this state-action pair.
    """

    rates: np.ndarray
    cost_rate: float
    impulse_costs: Optional[np.ndarray] = None
    extra_costs: "Dict[str, float]" = field(default_factory=dict)

    def effective_cost_rate(self) -> float:
        """``c_ii + sum_j s_ij c_ij`` -- impulse costs folded to a rate."""
        total = float(self.cost_rate)
        if self.impulse_costs is not None:
            total += float(self.rates @ self.impulse_costs)
        return total


class CTMDP:
    """A finite CTMDP with labeled states and hashable actions.

    Parameters
    ----------
    states:
        Unique hashable state labels.
    rate_scale:
        Time-unit rescaling applied by the caller when building this
        model: all stored rates and cost rates are *original* units
        multiplied by ``rate_scale``. Solvers report solutions in the
        stored units; callers holding a repaired (rescaled) model divide
        gains by ``rate_scale`` to recover original-unit values. The
        admission remediation ladder only ever uses exact powers of two
        here, so the division is exact.

    Build the model incrementally with :meth:`add_action`, then query it
    through :meth:`actions`, :meth:`data`, :meth:`generator_row` and
    friends. :meth:`validate` checks that every state has at least one
    action and all shapes agree.
    """

    def __init__(self, states: Sequence[Hashable], rate_scale: float = 1.0) -> None:
        self._states: Tuple[Hashable, ...] = tuple(states)
        if len(set(self._states)) != len(self._states):
            raise InvalidModelError("state labels must be unique")
        if not self._states:
            raise InvalidModelError("a CTMDP needs at least one state")
        if not (np.isfinite(rate_scale) and rate_scale > 0.0):
            raise InvalidModelError(
                f"rate_scale must be finite and positive, got {rate_scale!r}"
            )
        self.rate_scale = float(rate_scale)
        self._index = {s: i for i, s in enumerate(self._states)}
        self._table: "Dict[int, Dict[Hashable, StateActionData]]" = {
            i: {} for i in range(len(self._states))
        }
        # Per-(state, action) diagonal-completed generator rows, built
        # lazily; rows are write-protected and shared with callers.
        self._row_cache: "Dict[Tuple[int, Hashable], np.ndarray]" = {}
        # Dense lowering cache; see repro.ctmdp.compiled.compile_ctmdp.
        self._compiled = None
        # CSR lowering cache; see repro.ctmdp.sparse.compile_sparse_ctmdp.
        self._sparse_lowering = None

    # -- construction --------------------------------------------------------

    def add_action(
        self,
        state: Hashable,
        action: Hashable,
        rates: np.ndarray,
        cost_rate: float,
        impulse_costs: Optional[np.ndarray] = None,
        extra_costs: Optional[Dict[str, float]] = None,
    ) -> None:
        """Register *action* as available in *state* with the given data.

        ``rates`` must be non-negative with a zero entry for *state*
        itself. Re-adding an existing ``(state, action)`` pair is an
        error -- models are built once, not mutated.
        """
        i = self.index_of(state)
        if action in self._table[i]:
            raise InvalidModelError(f"action {action!r} already defined for {state!r}")
        r = np.asarray(rates, dtype=float)
        n = self.n_states
        if r.shape != (n,):
            raise InvalidModelError(
                f"rates shape {r.shape} does not match {n} states"
            )
        if not np.all(np.isfinite(r)):
            raise InvalidModelError(
                f"non-finite rate in {state!r}/{action!r}"
            )
        if np.any(r < 0):
            raise InvalidModelError(
                f"negative rate in {state!r}/{action!r}: min={r.min():g}"
            )
        if r[i] != 0.0:
            raise InvalidModelError(
                f"self-rate must be zero for {state!r}/{action!r} "
                "(diagonals follow from Eqn. 2.4)"
            )
        imp = None
        if impulse_costs is not None:
            imp = np.asarray(impulse_costs, dtype=float)
            if imp.shape != (n,):
                raise InvalidModelError(
                    f"impulse_costs shape {imp.shape} does not match {n} states"
                )
        self._table[i][action] = StateActionData(
            rates=r,
            cost_rate=float(cost_rate),
            impulse_costs=imp,
            extra_costs=dict(extra_costs or {}),
        )
        # A new pair invalidates any cached lowering, dense or sparse.
        self._compiled = None
        self._sparse_lowering = None

    def validate(self) -> None:
        """Check every state has at least one action."""
        missing = [self._states[i] for i, acts in self._table.items() if not acts]
        if missing:
            raise InvalidModelError(f"states with no actions: {missing!r}")

    # -- accessors -------------------------------------------------------------

    @property
    def states(self) -> Tuple[Hashable, ...]:
        return self._states

    @property
    def n_states(self) -> int:
        return len(self._states)

    def index_of(self, state: Hashable) -> int:
        try:
            return self._index[state]
        except KeyError:
            raise InvalidModelError(f"unknown state {state!r}") from None

    def actions(self, state: Hashable) -> "List[Hashable]":
        """Available actions in *state*, in insertion order."""
        return list(self._table[self.index_of(state)].keys())

    def data(self, state: Hashable, action: Hashable) -> StateActionData:
        """The :class:`StateActionData` of a ``(state, action)`` pair."""
        i = self.index_of(state)
        try:
            return self._table[i][action]
        except KeyError:
            raise InvalidModelError(
                f"action {action!r} not available in state {state!r}"
            ) from None

    def generator_row(self, state: Hashable, action: Hashable) -> np.ndarray:
        """Full generator row including the Eqn.-2.4 diagonal entry.

        The row is computed once per ``(state, action)`` pair and cached;
        the returned array is **read-only** (writing to it raises). Call
        ``.copy()`` if you need a mutable row.
        """
        i = self.index_of(state)
        key = (i, action)
        row = self._row_cache.get(key)
        if row is None:
            d = self.data(state, action)
            row = d.rates.copy()
            row[i] = -row.sum()
            row.setflags(write=False)
            self._row_cache[key] = row
        return row

    def cost(self, state: Hashable, action: Hashable) -> float:
        """Effective cost rate (impulse costs folded in)."""
        return self.data(state, action).effective_cost_rate()

    def extra_cost(self, state: Hashable, action: Hashable, name: str) -> float:
        """A named auxiliary cost rate, 0.0 if absent."""
        return self.data(state, action).extra_costs.get(name, 0.0)

    def state_action_pairs(self) -> "List[Tuple[Hashable, Hashable]]":
        """All ``(state, action)`` pairs in deterministic order."""
        pairs: List[Tuple[Hashable, Hashable]] = []
        for i, state in enumerate(self._states):
            pairs.extend((state, a) for a in self._table[i])
        return pairs

    def max_exit_rate(self) -> float:
        """The largest total exit rate over all state-action pairs.

        This is the minimal admissible uniformization constant.
        """
        best = 0.0
        for acts in self._table.values():
            for d in acts.values():
                best = max(best, float(d.rates.sum()))
        return best

    def __getstate__(self) -> dict:
        """Pickle without the derived caches (rebuilt lazily on demand)."""
        state = self.__dict__.copy()
        state["_row_cache"] = {}
        state["_compiled"] = None
        state["_sparse_lowering"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        n_pairs = sum(len(a) for a in self._table.values())
        return f"CTMDP(n_states={self.n_states}, n_state_actions={n_pairs})"
