"""Continuous-time Markov decision process (CTMDP) solvers.

Implements the decision-theoretic layer of the paper:

- :mod:`repro.ctmdp.model` -- the CTMDP value type: per-state action
  sets, action-parameterized transition rates, action-dependent cost
  rates and transition (impulse) costs.
- :mod:`repro.ctmdp.policy` -- stationary deterministic (and randomized)
  policies, plus policy evaluation helpers.
- :mod:`repro.ctmdp.policy_iteration` -- Howard-style average-cost policy
  iteration in continuous time (the paper's solver, after Miller [9] and
  Howard [10]).
- :mod:`repro.ctmdp.value_iteration` -- relative value iteration on the
  uniformized chain (a baseline solver with identical fixed points).
- :mod:`repro.ctmdp.linear_program` -- the occupation-measure linear
  program of Paleologo et al. (DAC 1998) [11], the approach this paper
  compares against; also solves the *constrained* problem (min power
  s.t. delay bound) exactly, producing possibly-randomized policies.
- :mod:`repro.ctmdp.discounted` -- discounted-cost policy iteration
  (Theorem 2.2/2.3 context; used by the discount-sweep ablation).
- :mod:`repro.ctmdp.uniformization` -- CTMDP -> DTMDP conversion.
- :mod:`repro.ctmdp.compiled` -- one-shot dense lowering of a CTMDP into
  stacked NumPy arrays (cached per model); backs the default
  ``backend="compiled"`` fast paths of the solvers above.
- :mod:`repro.ctmdp.sparse` -- the CSR sparse lowering and its
  direct-then-Krylov evaluation ladder; the middle tier of the backend
  ladder, for models beyond a few thousand states.
- :mod:`repro.ctmdp.kron` -- matrix-free Kronecker-structured CTMDPs
  (factor generators, never the joint matrix); the top tier, for
  tensor-product state spaces of 10^5--10^6 states.
- :mod:`repro.ctmdp.backends` -- the ``backend=`` ladder shared by all
  solver entry points (``auto``/``dense``/``compiled``/``sparse``/
  ``kron``/``reference``) and its resolution rules.
"""

from repro.ctmdp.backends import BACKENDS, DENSE_STATE_LIMIT, resolve_backend

from repro.ctmdp.compiled import CompiledCTMDP, compile_ctmdp
from repro.ctmdp.discounted import discounted_policy_iteration
from repro.ctmdp.kron import ArrayPolicy, KroneckerCTMDP, kron_farm_model
from repro.ctmdp.linear_program import (
    LinearProgramResult,
    solve_average_cost_lp,
    solve_constrained_lp,
)
from repro.ctmdp.model import CTMDP, StateActionData
from repro.ctmdp.policy import Policy, PolicyEvaluation, RandomizedPolicy, evaluate_policy
from repro.ctmdp.policy_iteration import PolicyIterationResult, policy_iteration
from repro.ctmdp.sparse import (
    SparseCTMDP,
    compile_sparse_ctmdp,
    sparse_stationary_distribution,
)
from repro.ctmdp.uniformization import UniformizedMDP, uniformize_ctmdp
from repro.ctmdp.value_iteration import ValueIterationResult, relative_value_iteration

__all__ = [
    "ArrayPolicy",
    "BACKENDS",
    "CTMDP",
    "CompiledCTMDP",
    "DENSE_STATE_LIMIT",
    "KroneckerCTMDP",
    "LinearProgramResult",
    "Policy",
    "PolicyEvaluation",
    "PolicyIterationResult",
    "RandomizedPolicy",
    "SparseCTMDP",
    "StateActionData",
    "UniformizedMDP",
    "ValueIterationResult",
    "compile_ctmdp",
    "compile_sparse_ctmdp",
    "discounted_policy_iteration",
    "evaluate_policy",
    "kron_farm_model",
    "policy_iteration",
    "relative_value_iteration",
    "resolve_backend",
    "solve_average_cost_lp",
    "solve_constrained_lp",
    "sparse_stationary_distribution",
    "uniformize_ctmdp",
]
