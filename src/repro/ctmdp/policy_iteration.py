"""Average-cost policy iteration for CTMDPs (the paper's solver).

The algorithm is Howard's policy iteration adapted to continuous time
(Miller [9], Howard [10]; the paper cites [9] and omits the details):

1. **Evaluation** -- for the current policy solve ``c + G h = g 1``
   with ``h[ref] = 0`` for the gain ``g`` and bias ``h``
   (:func:`repro.ctmdp.policy.evaluate_policy`).
2. **Improvement** -- in each state pick the action minimizing the
   *test quantity* ``c_i(a) + sum_j s_ij(a) h_j``; keep the incumbent
   action when it is within tolerance of the minimum (this tie-breaking
   guarantees termination).
3. Stop when no state changes its action.

For finite unichain CTMDPs this converges to the gain-optimal stationary
policy in finitely many iterations, and each iteration is one dense
linear solve -- the efficiency advantage over the LP approach that the
paper highlights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Optional

import numpy as np

from repro.errors import SolverError
from repro.ctmdp.model import CTMDP
from repro.ctmdp.policy import Policy, PolicyEvaluation, evaluate_policy


@dataclass(frozen=True)
class PolicyIterationResult:
    """Outcome of :func:`policy_iteration`.

    Attributes
    ----------
    policy:
        The gain-optimal deterministic stationary policy.
    gain:
        Its long-run average cost rate.
    bias:
        Its bias (relative value) vector.
    stationary:
        Stationary distribution under the optimal policy.
    iterations:
        Number of improvement rounds performed (including the final
        no-change round).
    gain_history:
        Gain after each evaluation, monotonically non-increasing.
    """

    policy: Policy
    gain: float
    bias: np.ndarray
    stationary: np.ndarray
    iterations: int
    gain_history: "List[float]"


def _default_initial_policy(mdp: CTMDP) -> Policy:
    """First-listed action in every state."""
    return Policy(mdp, {s: mdp.actions(s)[0] for s in mdp.states})


def _improve(
    mdp: CTMDP, policy: Policy, evaluation: PolicyEvaluation, atol: float
) -> "tuple[Policy, bool]":
    """One improvement sweep; returns (new policy, changed?)."""
    h = evaluation.bias
    assignment = {}
    changed = False
    for state in mdp.states:
        incumbent = policy.action(state)
        best_action = incumbent
        best_value = mdp.cost(state, incumbent) + float(
            mdp.generator_row(state, incumbent) @ h
        )
        for action in mdp.actions(state):
            if action == incumbent:
                continue
            value = mdp.cost(state, action) + float(
                mdp.generator_row(state, action) @ h
            )
            if value < best_value - atol:
                best_value = value
                best_action = action
        assignment[state] = best_action
        if best_action != incumbent:
            changed = True
    return Policy(mdp, assignment), changed


def policy_iteration(
    mdp: CTMDP,
    initial_policy: Optional[Policy] = None,
    max_iterations: int = 1000,
    atol: float = 1e-9,
    reference_state: int = 0,
) -> PolicyIterationResult:
    """Solve a unichain average-cost CTMDP by policy iteration.

    Parameters
    ----------
    mdp:
        The model; every state must have at least one action.
    initial_policy:
        Starting policy; defaults to the first-listed action per state.
    max_iterations:
        Safety bound; policy iteration on a finite model terminates far
        earlier in practice (typically < 10 rounds for DPM models).
    atol:
        Improvement threshold. An action only displaces the incumbent
        when it beats it by more than ``atol``, which both breaks ties
        deterministically and guarantees termination.
    reference_state:
        State whose bias is pinned to zero during evaluation.

    Raises
    ------
    SolverError
        If ``max_iterations`` is exhausted (indicates a modeling bug --
        e.g. a multichain model slipping through) or evaluation fails.
    """
    mdp.validate()
    policy = initial_policy if initial_policy is not None else _default_initial_policy(mdp)
    gain_history: List[float] = []
    evaluation = evaluate_policy(policy, reference_state=reference_state)
    gain_history.append(evaluation.gain)
    for iteration in range(1, max_iterations + 1):
        policy, changed = _improve(mdp, policy, evaluation, atol)
        evaluation = evaluate_policy(policy, reference_state=reference_state)
        gain_history.append(evaluation.gain)
        if not changed:
            return PolicyIterationResult(
                policy=policy,
                gain=evaluation.gain,
                bias=evaluation.bias,
                stationary=evaluation.stationary,
                iterations=iteration,
                gain_history=gain_history,
            )
    raise SolverError(
        f"policy iteration did not converge in {max_iterations} iterations"
    )
