"""Average-cost policy iteration for CTMDPs (the paper's solver).

The algorithm is Howard's policy iteration adapted to continuous time
(Miller [9], Howard [10]; the paper cites [9] and omits the details):

1. **Evaluation** -- for the current policy solve ``c + G h = g 1``
   with ``h[ref] = 0`` for the gain ``g`` and bias ``h``
   (:func:`repro.ctmdp.policy.evaluate_policy`).
2. **Improvement** -- in each state pick the action minimizing the
   *test quantity* ``c_i(a) + sum_j s_ij(a) h_j``; keep the incumbent
   action when it is within tolerance of the minimum (this tie-breaking
   guarantees termination).
3. Stop when no state changes its action.

For finite unichain CTMDPs this converges to the gain-optimal stationary
policy in finitely many iterations, and each iteration is one dense
linear solve -- the efficiency advantage over the LP approach that the
paper highlights.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Hashable, List, Optional

import numpy as np

from repro.errors import SolverError
from repro.ctmdp.backends import BACKENDS, resolve_backend
from repro.ctmdp.compiled import CompiledCTMDP, compile_ctmdp
from repro.ctmdp.model import CTMDP
from repro.ctmdp.policy import Policy, PolicyEvaluation, evaluate_policy
from repro.obs.log import get_logger
from repro.obs.runtime import active as obs_active
from repro.robust.guardrails import solve_with_fallback

logger = get_logger(__name__)

#: Registry name of the per-iteration convergence trace. Each solve
#: appends one row per improvement round: ``iteration`` (0 = initial
#: evaluation), ``gain``, ``residual`` (absolute gain change, the
#: monotone convergence witness), ``policy_changes`` (states whose
#: action moved), and the wall-clock ``sweep_s`` (a profiling field,
#: stripped from the deterministic view).
CONVERGENCE_SERIES = "solver.policy_iteration.convergence"
_SWEEP_FIELDS = ("sweep_s",)


def _convergence_series(metrics):
    return metrics.series(CONVERGENCE_SERIES, profiling_fields=_SWEEP_FIELDS)


@dataclass(frozen=True)
class PolicyIterationResult:
    """Outcome of :func:`policy_iteration`.

    Attributes
    ----------
    policy:
        The gain-optimal deterministic stationary policy.
    gain:
        Its long-run average cost rate.
    bias:
        Its bias (relative value) vector.
    stationary:
        Stationary distribution under the optimal policy.
    iterations:
        Number of improvement rounds performed (including the final
        no-change round).
    gain_history:
        Gain after each evaluation, monotonically non-increasing.
    """

    policy: Policy
    gain: float
    bias: np.ndarray
    stationary: np.ndarray
    iterations: int
    gain_history: "List[float]"


def _default_initial_policy(mdp: CTMDP) -> Policy:
    """First-listed action in every state."""
    return Policy(mdp, {s: mdp.actions(s)[0] for s in mdp.states})


def _policy_payload(assignment, limit: int = 200) -> "List[List[str]]":
    """A JSON-serializable rendering of a policy for diagnostics."""
    pairs = [[repr(s), repr(a)] for s, a in assignment.items()]
    return pairs[:limit]


def _check_budget(
    started: float, time_budget_s: "Optional[float]", iteration: int,
    gain_history: "List[float]",
) -> None:
    """Raise a structured SolverError when the wall-clock budget is spent."""
    if time_budget_s is None:
        return
    elapsed = time.perf_counter() - started
    if elapsed > time_budget_s:
        raise SolverError(
            f"policy iteration exceeded its wall-clock budget "
            f"({elapsed:.3f}s > {time_budget_s:g}s) after {iteration} "
            "iterations",
            diagnostics={
                "reason": "time_budget_exceeded",
                "iteration": iteration,
                "elapsed_s": elapsed,
                "time_budget_s": time_budget_s,
                "gain_history": gain_history[-10:],
            },
        )


class _CycleDetector:
    """Detects policy iteration revisiting a previously seen policy.

    With the ``atol`` incumbent-keeping rule the gain is strictly
    decreasing across policy changes, so a revisit signals numerical
    trouble (e.g. an evaluation solved in a degraded mode). Raising a
    structured error with the offending policy beats iterating to the
    ``max_iterations`` wall.
    """

    def __init__(self) -> None:
        self._seen: "dict" = {}

    def check(self, key, iteration: int, gain_history: "List[float]",
              policy_payload) -> None:
        first = self._seen.setdefault(key, iteration)
        if first != iteration:
            raise SolverError(
                f"policy iteration is cycling: the policy of iteration "
                f"{iteration} was already visited at iteration {first}",
                diagnostics={
                    "reason": "policy_cycle",
                    "iteration": iteration,
                    "first_seen": first,
                    "cycle_length": iteration - first,
                    "gain_history": gain_history[-10:],
                    "policy": policy_payload,
                },
            )


def _improve(
    mdp: CTMDP, policy: Policy, evaluation: PolicyEvaluation, atol: float
) -> "tuple[Policy, bool]":
    """One improvement sweep; returns (new policy, changed?).

    ``atol`` is an original-unit threshold; the test quantities here are
    in the model's stored units (original times ``rate_scale``), so the
    threshold is scaled accordingly. For unscaled models
    (``rate_scale == 1``) this multiplies by exactly 1.0 and decisions
    are unchanged.
    """
    atol = atol * getattr(mdp, "rate_scale", 1.0)
    h = evaluation.bias
    assignment = {}
    changed = False
    for state in mdp.states:
        incumbent = policy.action(state)
        best_action = incumbent
        best_value = mdp.cost(state, incumbent) + float(
            mdp.generator_row(state, incumbent) @ h
        )
        for action in mdp.actions(state):
            if action == incumbent:
                continue
            value = mdp.cost(state, action) + float(
                mdp.generator_row(state, action) @ h
            )
            if value < best_value - atol:
                best_value = value
                best_action = action
        assignment[state] = best_action
        if best_action != incumbent:
            changed = True
    return Policy(mdp, assignment), changed


def _solve_gain_bias(
    comp: CompiledCTMDP, sel: np.ndarray, reference_state: int
) -> "tuple[float, np.ndarray]":
    """Gain and bias of the policy selecting compiled rows *sel*.

    Solves the same ``c + G h = g 1``, ``h[ref] = 0`` system as
    :func:`repro.ctmdp.policy.evaluate_policy`, assembled from the
    compiled arrays; gains and biases agree bit-for-bit.
    """
    from repro.errors import InvalidPolicyError

    n = comp.n_states
    if not 0 <= reference_state < n:
        raise InvalidPolicyError(f"reference state {reference_state} out of range")
    g_all, c_all, shift = comp.canonical()
    a = np.zeros((n + 1, n + 1))
    a[:n, :n] = g_all[sel]
    a[:n, n] = -1.0
    a[n, reference_state] = 1.0
    b = np.concatenate([-c_all[sel], [0.0]])
    solution = solve_with_fallback(
        a, b, what="policy evaluation system",
        context={"reference_state": reference_state},
    )
    # The system was assembled in canonical units; the gain carries a
    # unit of [cost/time] and is shifted back exactly, while the bias
    # (a pure cost) is scale-invariant.
    return float(np.ldexp(solution[n], shift)), solution[:n]


def evaluate_rows(
    comp: CompiledCTMDP, sel: np.ndarray, reference_state: int = 0
) -> PolicyEvaluation:
    """Full evaluation (gain, bias, stationary) of compiled rows *sel*."""
    from repro.markov.generator import stationary_distribution

    gain, bias = _solve_gain_bias(comp, sel, reference_state)
    return PolicyEvaluation(
        gain=gain,
        bias=bias,
        stationary=stationary_distribution(comp.generator[sel]),
    )


def _policy_iteration_compiled(
    mdp: CTMDP,
    initial_policy: Optional[Policy],
    max_iterations: int,
    atol: float,
    reference_state: int,
    time_budget_s: "Optional[float]" = None,
) -> PolicyIterationResult:
    """Vectorized policy iteration over the compiled arrays.

    Beyond vectorizing the improvement sweep, this path defers the
    stationary-distribution solve to convergence -- intermediate
    policies only need gain and bias -- which the reference path pays
    for every round.
    """
    from repro.errors import InvalidPolicyError

    ins = obs_active()
    metrics = ins.metrics
    if ins.enabled:
        lowering_start = time.perf_counter()
    comp = compile_ctmdp(mdp)
    if ins.enabled:
        lowering_s = time.perf_counter() - lowering_start
        if metrics is not None:
            metrics.histogram(
                "profile.solver.lowering_s", profiling=True
            ).observe(lowering_s)
            metrics.counter("solver.policy_iteration.solves").inc()
    n = comp.n_states
    if not 0 <= reference_state < n:
        raise InvalidPolicyError(f"reference state {reference_state} out of range")
    if initial_policy is None:
        sel = comp.pair_offset[:-1].copy()  # first-listed action per state
    else:
        sel = comp.policy_rows(initial_policy.as_dict())
    # Bordered evaluation system, allocated once: only the top-left G
    # block and the -c right-hand side change between rounds. Assembled
    # from the canonical (exponent-normalized) arrays so that extreme
    # rate magnitudes never reach the factorization and power-of-two
    # rescalings of the model solve bit-identically; the gain is mapped
    # back by the exact inverse shift, the bias is scale-invariant.
    g_can, c_can, shift = comp.canonical()
    a = np.zeros((n + 1, n + 1))
    a[:n, n] = -1.0
    a[n, reference_state] = 1.0
    b = np.zeros(n + 1)
    # Per-pair row maxima, computed once: ``max |a_ij|`` of any round's
    # bordered system is the selected rows' maximum or the unit border
    # entries, so the guardrail acceptance scale costs O(n) per solve
    # instead of two O(n^2) scans.
    row_inf = np.max(np.abs(g_can), axis=1, initial=0.0)

    def solve_rows(rows: np.ndarray) -> "tuple[float, np.ndarray]":
        a[:n, :n] = g_can[rows]
        np.negative(c_can[rows], out=b[:n])
        solution = solve_with_fallback(
            a, b, what="policy evaluation system",
            context={"reference_state": reference_state},
            a_max=max(1.0, float(np.max(row_inf[rows]))),
        )
        return float(np.ldexp(solution[n], shift)), solution[:n]

    started = time.perf_counter()
    cycles = _CycleDetector()
    gain_history: List[float] = []
    if ins.enabled:
        sweep_start = time.perf_counter()
    gain, bias = solve_rows(sel)
    gain_history.append(gain)
    series = _convergence_series(metrics) if metrics is not None else None
    if series is not None:
        series.append(
            backend="compiled",
            iteration=0,
            gain=gain,
            residual=None,
            policy_changes=None,
            sweep_s=time.perf_counter() - sweep_start,
        )
    cycles.check(sel.tobytes(), 0, gain_history, None)
    test_values = np.empty(comp.n_pairs)
    # The sweep runs on canonical-unit test quantities, so the
    # original-unit improvement threshold gets the same exact exponent
    # shift (plus the rate_scale of a repaired model). Both factors are
    # powers of two for every model this library builds, making the
    # displacement decisions bit-identical to a stored-unit sweep --
    # and, for unscaled models, to the unnormalized implementation.
    atol_can = float(np.ldexp(atol * comp.rate_scale, -shift))
    with ins.span("policy_iteration", backend="compiled", n_states=n) as span:
        for iteration in range(1, max_iterations + 1):
            _check_budget(started, time_budget_s, iteration, gain_history)
            if ins.enabled:
                sweep_start = time.perf_counter()
                previous_sel = sel
                previous_gain = gain
            np.matmul(g_can, bias, out=test_values)
            np.add(test_values, c_can, out=test_values)
            sel, changed = comp.improve(test_values, sel, atol_can)
            if changed:
                cycles.check(
                    sel.tobytes(), iteration, gain_history,
                    _policy_payload(comp.assignment_from_rows(sel)),
                )
                gain, bias = solve_rows(sel)
            # An unchanged policy selects the same rows, so re-solving would
            # reproduce the previous (gain, bias) bit-for-bit -- reuse them.
            gain_history.append(gain)
            if series is not None:
                series.append(
                    backend="compiled",
                    iteration=iteration,
                    gain=gain,
                    residual=abs(gain - previous_gain),
                    policy_changes=int(np.count_nonzero(sel != previous_sel)),
                    sweep_s=time.perf_counter() - sweep_start,
                )
            if not changed:
                from repro.markov.generator import stationary_distribution

                if ins.enabled:
                    span.attrs.update(iterations=iteration, gain=gain)
                    if metrics is not None:
                        metrics.histogram(
                            "solver.policy_iteration.iterations"
                        ).observe(iteration)
                    logger.debug(
                        "policy iteration converged: %d states, %d rounds, "
                        "gain %.6g",
                        n, iteration, gain,
                    )
                return PolicyIterationResult(
                    policy=Policy._trusted(mdp, comp.assignment_from_rows(sel)),
                    gain=gain,
                    bias=bias,
                    stationary=stationary_distribution(
                        comp.generator[sel], validate=False
                    ),
                    iterations=iteration,
                    gain_history=gain_history,
                )
    raise SolverError(
        f"policy iteration did not converge in {max_iterations} iterations",
        diagnostics={
            "reason": "max_iterations_exhausted",
            "iteration": max_iterations,
            "gain_history": gain_history[-10:],
            "policy": _policy_payload(comp.assignment_from_rows(sel)),
        },
    )


def _policy_iteration_sparse(
    mdp,
    initial_policy: Optional[Policy],
    max_iterations: int,
    atol: float,
    reference_state: int,
    time_budget_s: "Optional[float]" = None,
    reuse: bool = True,
) -> PolicyIterationResult:
    """Policy iteration over the CSR lowering.

    Identical round structure to the compiled path -- canonical-unit
    bordered evaluation system, incumbent-atol improvement sweeps,
    stationary solve deferred to convergence -- but the system is
    assembled as a sparse block matrix each round and solved through the
    :mod:`repro.ctmdp.sparse` direct/Krylov ladder, and the sweep's test
    quantities come from one sparse matvec.

    With ``reuse`` (default), intermediate evaluations run through the
    :class:`repro.ctmdp.reuse.BorderedSystemCache` ladder -- in-place
    CSR row surgery instead of per-round re-lowering, and stale-LU
    preconditioned GMRES instead of per-round refactorization. Reused
    solves only steer the improvement trajectory: the converged policy
    is always re-evaluated through the standard ladder, so the returned
    gain/bias/stationary are bit-identical to a ``reuse=False`` solve
    of the same converged policy (DESIGN §12).
    """
    import scipy.sparse as sp

    from repro.errors import InvalidPolicyError
    from repro.ctmdp.sparse import (
        compile_sparse_ctmdp,
        solve_sparse_with_fallback,
        sparse_stationary_distribution,
    )

    ins = obs_active()
    metrics = ins.metrics
    if ins.enabled:
        lowering_start = time.perf_counter()
    comp = compile_sparse_ctmdp(mdp)
    if ins.enabled:
        lowering_s = time.perf_counter() - lowering_start
        if metrics is not None:
            metrics.histogram(
                "profile.solver.lowering_s", profiling=True
            ).observe(lowering_s)
            metrics.counter("solver.policy_iteration.solves").inc()
    n = comp.n_states
    if not 0 <= reference_state < n:
        raise InvalidPolicyError(f"reference state {reference_state} out of range")
    if initial_policy is None:
        sel = comp.pair_offset[:-1].copy()  # first-listed action per state
    else:
        sel = comp.policy_rows(initial_policy.as_dict())
    g_can, c_can, shift = comp.canonical()
    # Constant blocks of the bordered system: the -1 gain column and the
    # reference row; only the selected generator rows and the -c right-
    # hand side change between rounds.
    gain_col = sp.csr_array((np.full(n, -1.0), (np.arange(n), np.zeros(n, int))),
                            shape=(n, 1))
    ref_row = sp.csr_array(([1.0], ([0], [reference_state])), shape=(1, n))
    b = np.zeros(n + 1)
    # Per-pair row maxima of the canonical generator, computed once from
    # the CSR data: the guardrail acceptance scale of any round's system.
    coo = g_can.tocoo()
    row_inf = np.zeros(comp.n_pairs)
    np.maximum.at(row_inf, coo.row, np.abs(coo.data))

    def solve_rows(rows: np.ndarray) -> "tuple[float, np.ndarray]":
        a = sp.block_array(
            [[g_can[rows], gain_col], [ref_row, None]], format="csc"
        )
        np.negative(c_can[rows], out=b[:n])
        solution = solve_sparse_with_fallback(
            a, b, what="policy evaluation system",
            context={"reference_state": reference_state},
            a_max=max(1.0, float(np.max(row_inf[rows]))),
        )
        return float(np.ldexp(solution[n], shift)), solution[:n]

    reuse_cache = None
    if reuse:
        from repro.ctmdp.reuse import BorderedSystemCache

        reuse_cache = BorderedSystemCache(g_can, n, reference_state)

    def solve_rows_reused(rows: np.ndarray) -> "tuple[float, np.ndarray]":
        np.negative(c_can[rows], out=b[:n])
        solution = reuse_cache.solve(
            rows, b, max(1.0, float(np.max(row_inf[rows])))
        )
        return float(np.ldexp(solution[n], shift)), solution[:n]

    started = time.perf_counter()
    cycles = _CycleDetector()
    gain_history: List[float] = []
    if ins.enabled:
        sweep_start = time.perf_counter()
    # The initial evaluation always runs the standard ladder so the
    # reuse path and a cold solve share their starting point exactly;
    # `exact` tracks whether the current (gain, bias) came off it.
    gain, bias = solve_rows(sel)
    exact = True
    gain_history.append(gain)
    series = _convergence_series(metrics) if metrics is not None else None
    if series is not None:
        series.append(
            backend="sparse",
            iteration=0,
            gain=gain,
            residual=None,
            policy_changes=None,
            sweep_s=time.perf_counter() - sweep_start,
        )
    cycles.check(sel.tobytes(), 0, gain_history, None)
    atol_can = float(np.ldexp(atol * comp.rate_scale, -shift))
    with ins.span("policy_iteration", backend="sparse", n_states=n) as span:
        for iteration in range(1, max_iterations + 1):
            _check_budget(started, time_budget_s, iteration, gain_history)
            if ins.enabled:
                sweep_start = time.perf_counter()
                previous_sel = sel
                previous_gain = gain
            test_values = g_can @ bias
            test_values += c_can
            sel, changed = comp.improve(test_values, sel, atol_can)
            if changed:
                cycles.check(
                    sel.tobytes(), iteration, gain_history,
                    _policy_payload(comp.assignment_from_rows(sel)),
                )
                if reuse_cache is not None:
                    gain, bias = solve_rows_reused(sel)
                    exact = False
                else:
                    gain, bias = solve_rows(sel)
            gain_history.append(gain)
            if series is not None:
                series.append(
                    backend="sparse",
                    iteration=iteration,
                    gain=gain,
                    residual=abs(gain - previous_gain),
                    policy_changes=int(np.count_nonzero(sel != previous_sel)),
                    sweep_s=time.perf_counter() - sweep_start,
                )
            if not changed:
                if not exact:
                    # Reused solves hold the ladder's residual tolerance
                    # but not the standard rung's exact bit pattern; the
                    # converged policy's returned evaluation must be the
                    # one a cold solve would produce, so re-run it
                    # through the standard ladder (cold solves obtain
                    # their final values from this same call).
                    gain, bias = solve_rows(sel)
                    gain_history[-1] = gain
                    if metrics is not None:
                        metrics.counter(
                            "solver.reuse.final_reevaluations"
                        ).inc()
                if ins.enabled:
                    span.attrs.update(iterations=iteration, gain=gain)
                    if metrics is not None:
                        metrics.histogram(
                            "solver.policy_iteration.iterations"
                        ).observe(iteration)
                    logger.debug(
                        "policy iteration converged: %d states, %d rounds, "
                        "gain %.6g",
                        n, iteration, gain,
                    )
                return PolicyIterationResult(
                    policy=Policy._trusted(mdp, comp.assignment_from_rows(sel)),
                    gain=gain,
                    bias=bias,
                    stationary=sparse_stationary_distribution(
                        comp.generator[sel]
                    ),
                    iterations=iteration,
                    gain_history=gain_history,
                )
    raise SolverError(
        f"policy iteration did not converge in {max_iterations} iterations",
        diagnostics={
            "reason": "max_iterations_exhausted",
            "iteration": max_iterations,
            "gain_history": gain_history[-10:],
            "policy": _policy_payload(comp.assignment_from_rows(sel)),
        },
    )


def policy_iteration(
    mdp: CTMDP,
    initial_policy: Optional[Policy] = None,
    max_iterations: int = 1000,
    atol: float = 1e-9,
    reference_state: int = 0,
    backend: str = "auto",
    time_budget_s: Optional[float] = None,
    reuse: bool = True,
) -> PolicyIterationResult:
    """Solve a unichain average-cost CTMDP by policy iteration.

    Parameters
    ----------
    mdp:
        The model; every state must have at least one action.
    initial_policy:
        Starting policy; defaults to the first-listed action per state.
    max_iterations:
        Safety bound; policy iteration on a finite model terminates far
        earlier in practice (typically < 10 rounds for DPM models).
    atol:
        Improvement threshold. An action only displaces the incumbent
        when it beats it by more than ``atol``, which both breaks ties
        deterministically and guarantees termination.
    reference_state:
        State whose bias is pinned to zero during evaluation.
    backend:
        ``"auto"`` (default) resolves by model type and size (see
        :mod:`repro.ctmdp.backends`): Kronecker models run matrix-free,
        sparse models run sparse, and plain CTMDPs run the dense
        compiled tier up to 2000 states, CSR beyond. ``"dense"`` /
        ``"compiled"`` force the dense lowering, ``"sparse"`` the CSR
        lowering with the direct/Krylov evaluation ladder, ``"kron"``
        the matrix-free Kronecker solvers, and ``"reference"`` the
        original per-state dict loops. All tiers produce the same
        policies and matching gains (the equivalence suite asserts it;
        dense vs. compiled is bit-exact, Krylov rungs are held to the
        documented residual tolerance).
    time_budget_s:
        Optional wall-clock budget; exceeding it raises a structured
        :class:`SolverError` (``reason: time_budget_exceeded``) instead
        of running unbounded on a pathological model.
    reuse:
        Enable the within-solve reuse ladder on the sparse tier
        (:mod:`repro.ctmdp.reuse`): incremental CSR updates and stale-LU
        preconditioned evaluations between improvement rounds. The
        converged policy is always re-evaluated through the standard
        ladder, so results are bit-identical either way;
        ``reuse=False`` restores the round-per-round rebuild (the bench
        cold leg). Other tiers ignore the flag.

    Raises
    ------
    SolverError
        If ``max_iterations`` or ``time_budget_s`` is exhausted, a
        policy cycle is detected (both indicate a modeling bug -- e.g.
        a multichain model slipping through), or evaluation fails even
        in the least-squares fallback of
        :mod:`repro.robust.guardrails`. The exception's ``diagnostics``
        mapping carries the iteration count, recent gain history, and
        the offending policy.
    """
    backend = resolve_backend(mdp, backend)
    mdp.validate()
    if backend == "kron":
        from repro.ctmdp.kron import policy_iteration_kron

        return policy_iteration_kron(
            mdp, initial_policy, max_iterations, atol, reference_state,
            time_budget_s,
        )
    if backend == "sparse":
        return _policy_iteration_sparse(
            mdp, initial_policy, max_iterations, atol, reference_state,
            time_budget_s, reuse=reuse,
        )
    if backend == "compiled":
        return _policy_iteration_compiled(
            mdp, initial_policy, max_iterations, atol, reference_state,
            time_budget_s,
        )
    policy = initial_policy if initial_policy is not None else _default_initial_policy(mdp)
    ins = obs_active()
    metrics = ins.metrics
    series = _convergence_series(metrics) if metrics is not None else None
    if metrics is not None:
        metrics.counter("solver.policy_iteration.solves").inc()
    started = time.perf_counter()
    cycles = _CycleDetector()
    gain_history: List[float] = []
    if ins.enabled:
        sweep_start = time.perf_counter()
    evaluation = evaluate_policy(
        policy, reference_state=reference_state, backend="reference",
        compute_stationary=False,
    )
    gain_history.append(evaluation.gain)
    cycles.check(
        tuple(sorted(policy.as_dict().items(), key=repr)), 0, gain_history, None
    )
    if series is not None:
        series.append(
            backend="reference",
            iteration=0,
            gain=evaluation.gain,
            residual=None,
            policy_changes=None,
            sweep_s=time.perf_counter() - sweep_start,
        )
    with ins.span(
        "policy_iteration", backend="reference", n_states=mdp.n_states
    ) as span:
        for iteration in range(1, max_iterations + 1):
            _check_budget(started, time_budget_s, iteration, gain_history)
            if ins.enabled:
                sweep_start = time.perf_counter()
                previous_assignment = policy.as_dict()
                previous_gain = evaluation.gain
            policy, changed = _improve(mdp, policy, evaluation, atol)
            if changed:
                cycles.check(
                    tuple(sorted(policy.as_dict().items(), key=repr)),
                    iteration, gain_history, _policy_payload(policy.as_dict()),
                )
            evaluation = evaluate_policy(
                policy, reference_state=reference_state, backend="reference",
                compute_stationary=False,
            )
            gain_history.append(evaluation.gain)
            if series is not None:
                assignment = policy.as_dict()
                series.append(
                    backend="reference",
                    iteration=iteration,
                    gain=evaluation.gain,
                    residual=abs(evaluation.gain - previous_gain),
                    policy_changes=sum(
                        1
                        for state, action in assignment.items()
                        if previous_assignment[state] != action
                    ),
                    sweep_s=time.perf_counter() - sweep_start,
                )
            if not changed:
                if ins.enabled:
                    span.attrs.update(iterations=iteration, gain=evaluation.gain)
                    if metrics is not None:
                        metrics.histogram(
                            "solver.policy_iteration.iterations"
                        ).observe(iteration)
                    logger.debug(
                        "policy iteration converged: %d states, %d rounds, "
                        "gain %.6g",
                        mdp.n_states, iteration, evaluation.gain,
                    )
                from repro.markov.generator import stationary_distribution

                return PolicyIterationResult(
                    policy=policy,
                    gain=evaluation.gain,
                    bias=evaluation.bias,
                    stationary=stationary_distribution(
                        policy.generator_matrix()
                    ),
                    iterations=iteration,
                    gain_history=gain_history,
                )
    raise SolverError(
        f"policy iteration did not converge in {max_iterations} iterations",
        diagnostics={
            "reason": "max_iterations_exhausted",
            "iteration": max_iterations,
            "gain_history": gain_history[-10:],
            "policy": _policy_payload(policy.as_dict()),
        },
    )
