"""Uniformization of a CTMDP into an equivalent discrete-time MDP.

With a common rate ``Lambda >= max_{i,a} sum_j s_ij(a)``, each state-
action pair maps to the stochastic row ``P_ia = e_i + rates_ia / Lambda``
and per-step cost ``c_i(a) / Lambda``. The uniformized DTMDP has the same
stationary distributions and the same gain-optimal policies as the
original CTMDP, with discrete-time gain ``g_dtmdp = g_ctmdp / Lambda``.

Used by :mod:`repro.ctmdp.value_iteration` and as an alternative route
into the LP solver; also the bridge to the discrete-time formulation of
Paleologo et al. [11].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np

from repro.ctmdp.model import CTMDP

#: Multiplicative slack applied to the maximal exit rate so that every
#: state keeps a positive self-loop, making the uniformized chain
#: aperiodic (required for value-iteration convergence).
APERIODICITY_SLACK = 1.05


@dataclass(frozen=True)
class UniformizedMDP:
    """A dense discrete-time MDP produced by :func:`uniformize_ctmdp`.

    Attributes
    ----------
    states:
        State labels, same order as the source CTMDP.
    transition:
        ``{(state_index, action): probability row}``.
    step_cost:
        ``{(state_index, action): cost per step}``.
    actions:
        Per-state-index action lists.
    rate:
        The uniformization constant ``Lambda``; multiply discrete gains
        by it to recover continuous-time cost rates.
    """

    states: Tuple[Hashable, ...]
    transition: "Dict[Tuple[int, Hashable], np.ndarray]"
    step_cost: "Dict[Tuple[int, Hashable], float]"
    actions: "List[List[Hashable]]"
    rate: float


def uniformize_ctmdp(
    mdp: CTMDP,
    rate: Optional[float] = None,
    slack: Optional[float] = None,
) -> UniformizedMDP:
    """Convert *mdp* to a DTMDP at uniformization rate ``Lambda``.

    Parameters
    ----------
    mdp:
        Source CTMDP.
    rate:
        Uniformization constant; defaults to
        ``slack * max exit rate`` (or 1.0 for a rate-free model) so the
        result is aperiodic. Mutually exclusive with ``slack``.
    slack:
        Override for :data:`APERIODICITY_SLACK` (must be > 1 so the
        fastest state keeps a positive self-loop). The admission gate
        recommends a value here for stiff chains
        (``remediation["uniformization_slack"]``).
    """
    mdp.validate()
    max_rate = mdp.max_exit_rate()
    if slack is not None:
        if rate is not None:
            raise ValueError("pass either rate or slack, not both")
        if not slack > 1.0:
            raise ValueError(f"uniformization slack must be > 1, got {slack!r}")
        rate = slack * max_rate if max_rate > 0 else 1.0
    if rate is None:
        lam = APERIODICITY_SLACK * max_rate if max_rate > 0 else 1.0
    else:
        lam = float(rate)
        if lam < max_rate:
            raise ValueError(
                f"uniformization rate {lam:g} below maximal exit rate {max_rate:g}"
            )
    n = mdp.n_states
    transition: Dict[Tuple[int, Hashable], np.ndarray] = {}
    step_cost: Dict[Tuple[int, Hashable], float] = {}
    actions: List[List[Hashable]] = []
    for i, state in enumerate(mdp.states):
        state_actions = mdp.actions(state)
        actions.append(list(state_actions))
        for action in state_actions:
            data = mdp.data(state, action)
            row = data.rates / lam
            row = row.copy()
            row[i] = 1.0 - data.rates.sum() / lam
            transition[(i, action)] = row
            step_cost[(i, action)] = data.effective_cost_rate() / lam
    return UniformizedMDP(
        states=mdp.states,
        transition=transition,
        step_cost=step_cost,
        actions=actions,
        rate=lam,
    )
