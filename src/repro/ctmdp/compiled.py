"""Dense compiled form of a CTMDP for vectorized solvers.

The dict-based :class:`repro.ctmdp.model.CTMDP` is the reference
representation -- explicit, validated, easy to inspect -- but its
per-state Python loops dominate solver time once models grow past a few
dozen states. :func:`compile_ctmdp` lowers a model *once* into stacked
NumPy arrays over all ``(state, action)`` pairs:

- ``generator``: the full generator rows (Eqn.-2.4 diagonals
  precomputed), one row per pair;
- ``cost``: the effective cost rates (impulse costs folded in, computed
  per pair exactly as :meth:`StateActionData.effective_cost_rate` does
  so the compiled solvers agree bit-for-bit with the reference path);
- ``extra``: one stacked vector per named auxiliary cost channel;
- a state-action index (pair -> owning state, pair -> action column,
  per-state pair slices) that turns per-state argmin sweeps into a
  handful of whole-array operations.

The compiled form is cached on the owning :class:`CTMDP` instance, so
workflows that re-solve the same model repeatedly (frontier bisection,
constrained-weight search, the adaptive online manager) pay the lowering
cost once. :meth:`PowerManagedSystemModel.build_ctmdp` additionally
LRU-caches built models per weight, making the cache effective across
whole optimization sweeps on one SYS.

All solver sweeps here reproduce the reference semantics exactly,
including the ``atol`` incumbent rule of policy improvement: an action
displaces the running best only when it beats it by more than ``atol``,
scanning actions in insertion order with the incumbent skipped.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Mapping, Tuple

import numpy as np

from repro.ctmdp.model import CTMDP
from repro.errors import InvalidPolicyError
from repro.markov.generator import canonical_shift


class PairIndexedCTMDP:
    """Shared state-action pair indexing and vectorized sweep machinery.

    Both the dense compiled lowering and the CSR sparse lowering
    (:class:`repro.ctmdp.sparse.SparseCTMDP`) stack all ``(state,
    action)`` pairs into flat arrays and run improvement sweeps as
    whole-array operations over a padded ``(n, max_actions)`` grid. The
    sweep semantics live here once so every backend reproduces the
    reference ``atol`` incumbent rule and strict first-wins greedy
    argmin identically.

    Subclasses populate ``states``, ``actions``, ``pair_state``,
    ``pair_col``, ``pair_offset``, ``cost``, ``extra``, ``rate_scale``
    and their generator representation, then call
    :meth:`_init_pair_grid`.
    """

    states: Tuple[Hashable, ...]
    actions: Tuple[Tuple[Hashable, ...], ...]
    n_states: int
    n_pairs: int

    def _init_pair_grid(self) -> None:
        """Derive the padded action grid from the primary pair arrays."""
        n = self.n_states
        self.max_actions = (
            int(np.max(np.diff(self.pair_offset))) if n else 0
        )
        # Dense (n, max_actions) pair-index grid, -1 where a state has
        # fewer actions; used to scatter per-pair values into a padded
        # matrix for column-wise argmin sweeps.
        pad = np.full((n, self.max_actions), -1, dtype=np.intp)
        pad[self.pair_state, self.pair_col] = np.arange(self.n_pairs)
        self.pad_index = pad
        self._dense_slot = self.pair_state * self.max_actions + self.pair_col
        self._state_range = np.arange(n)
        self.pad_index.setflags(write=False)

    # -- indexing ------------------------------------------------------------

    def pair(self, state_index: int, action: Hashable) -> int:
        """Row of a ``(state index, action)`` pair in the stacked arrays."""
        try:
            return self._pair_index[(state_index, action)]
        except KeyError:
            raise InvalidPolicyError(
                f"action {action!r} not available in state index {state_index}"
            ) from None

    def policy_rows(self, assignment: Mapping[Hashable, Hashable]) -> np.ndarray:
        """Pair rows selected by a ``state -> action`` assignment."""
        return np.asarray(
            [
                self.pair(i, assignment[state])
                for i, state in enumerate(self.states)
            ],
            dtype=np.intp,
        )

    def assignment_from_rows(self, sel: np.ndarray) -> "Dict[Hashable, Hashable]":
        """The ``state -> action`` mapping of a pair-row selection."""
        cols = self.pair_col[sel].tolist()
        return {
            state: self.actions[i][cols[i]] for i, state in enumerate(self.states)
        }

    # -- vectorized sweeps ---------------------------------------------------

    def scatter(self, pair_values: np.ndarray) -> np.ndarray:
        """Spread per-pair values into an ``(n, max_actions)`` matrix.

        Missing actions are padded with ``+inf`` so they never win an
        argmin sweep.
        """
        dense = np.full(self.n_states * self.max_actions, np.inf)
        dense[self._dense_slot] = pair_values
        return dense.reshape(self.n_states, self.max_actions)

    def improve(
        self, pair_values: np.ndarray, sel: np.ndarray, atol: float
    ) -> "tuple[np.ndarray, bool]":
        """One incumbent-rule improvement sweep over all states at once.

        Reproduces the reference loop exactly: starting from the
        incumbent's value, actions are scanned in insertion order
        (incumbent skipped) and one displaces the running best only when
        it is smaller by more than ``atol``.
        """
        dense = self.scatter(pair_values)
        inc_col = self.pair_col[sel]
        best_val = pair_values[sel].copy()
        best_col = inc_col.copy()
        for a in range(self.max_actions):
            column = dense[:, a]
            better = (column < best_val - atol) & (inc_col != a)
            if np.any(better):
                best_val = np.where(better, column, best_val)
                best_col = np.where(better, a, best_col)
        new_sel = self.pad_index[self._state_range, best_col]
        changed = bool(np.any(new_sel != sel))
        return new_sel, changed

    def greedy(self, pair_values: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
        """Strict first-wins argmin over actions, vectorized per state.

        Returns ``(best values, best columns)``; among exactly equal
        values the earliest action in insertion order wins, matching the
        reference value-iteration sweep.
        """
        dense = self.scatter(pair_values)
        best_val = np.full(self.n_states, np.inf)
        best_col = np.zeros(self.n_states, dtype=np.intp)
        for a in range(self.max_actions):
            column = dense[:, a]
            better = column < best_val
            if np.any(better):
                best_val = np.where(better, column, best_val)
                best_col = np.where(better, a, best_col)
        return best_val, best_col

    @property
    def canonical_shift(self) -> int:
        """Binary exponent normalizing :meth:`max_exit_rate` into [1, 2)."""
        return canonical_shift(self.max_exit_rate())

    def max_exit_rate(self) -> float:  # pragma: no cover - abstract
        raise NotImplementedError


class CompiledCTMDP(PairIndexedCTMDP):
    """One-shot dense lowering of a :class:`CTMDP`.

    Attributes
    ----------
    states:
        State labels, same order as the source model.
    actions:
        Per-state action-label tuples, insertion order.
    n_states, n_pairs:
        State and state-action-pair counts.
    pair_state:
        ``(P,)`` owning state index of each pair.
    pair_col:
        ``(P,)`` column of each pair within its state's action list.
    pair_offset:
        ``(n+1,)`` -- pairs of state ``i`` occupy rows
        ``pair_offset[i]:pair_offset[i+1]``.
    generator:
        ``(P, n)`` full generator rows (diagonal included), read-only.
    cost:
        ``(P,)`` effective cost rates, read-only.
    extra:
        ``{channel: (P,) rates}`` for every named extra-cost channel.
    max_actions:
        The largest per-state action count (the padded column count).
    """

    def __init__(self, mdp: CTMDP) -> None:
        n = mdp.n_states
        self.states: Tuple[Hashable, ...] = mdp.states
        self.n_states = n
        actions: List[Tuple[Hashable, ...]] = []
        pair_state: List[int] = []
        pair_col: List[int] = []
        offsets = [0]
        pair_index: Dict[Tuple[int, Hashable], int] = {}
        rows: List[np.ndarray] = []
        costs: List[float] = []
        extra_names: set = set()
        for i, state in enumerate(mdp.states):
            state_actions = tuple(mdp.actions(state))
            actions.append(state_actions)
            for col, action in enumerate(state_actions):
                pair_index[(i, action)] = len(rows)
                pair_state.append(i)
                pair_col.append(col)
                rows.append(mdp.generator_row(state, action))
                data = mdp.data(state, action)
                costs.append(data.effective_cost_rate())
                extra_names.update(data.extra_costs)
            offsets.append(len(rows))
        self.actions: Tuple[Tuple[Hashable, ...], ...] = tuple(actions)
        self.n_pairs = len(rows)
        self.pair_state = np.asarray(pair_state, dtype=np.intp)
        self.pair_col = np.asarray(pair_col, dtype=np.intp)
        self.pair_offset = np.asarray(offsets, dtype=np.intp)
        self.generator = np.vstack(rows) if rows else np.zeros((0, n))
        self.cost = np.asarray(costs, dtype=float)
        self._pair_index = pair_index
        self.extra: Dict[str, np.ndarray] = {}
        for name in sorted(extra_names, key=repr):
            channel = np.zeros(self.n_pairs)
            for p, (state, action) in enumerate(mdp.state_action_pairs()):
                channel[p] = mdp.data(state, action).extra_costs.get(name, 0.0)
            channel.setflags(write=False)
            self.extra[name] = channel
        self.rate_scale = float(getattr(mdp, "rate_scale", 1.0))
        self._canonical = None
        self._sparse = None
        for array in (self.generator, self.cost, self.pair_state,
                      self.pair_col, self.pair_offset):
            array.setflags(write=False)
        self._init_pair_grid()

    # -- policy evaluation ---------------------------------------------------

    def evaluation_system(
        self, sel: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray]":
        """``(G, c)`` of the deterministic policy selecting rows *sel*.

        ``G`` is a fresh writable array (fancy indexing copies), so
        callers may assemble linear systems in place.
        """
        return self.generator[sel], self.cost[sel]

    def max_exit_rate(self) -> float:
        """Largest total exit rate; equals ``CTMDP.max_exit_rate()``."""
        if self.n_pairs == 0:  # pragma: no cover - models have >= 1 pair
            return 0.0
        diagonal = self.generator[np.arange(self.n_pairs), self.pair_state]
        return max(0.0, float(np.max(-diagonal)))

    def canonical(self) -> "tuple[np.ndarray, np.ndarray, int]":
        """``(G, c, shift)`` with the generator and cost arrays rescaled
        into canonical units by the exact exponent shift ``2**-shift``.

        Solvers assemble their policy-evaluation systems from these
        arrays so that models differing only by a power-of-two time
        rescaling run through bit-identical float computations; the
        resulting gain is mapped back with ``ldexp(gain, +shift)``
        (also exact). Computed once and cached.
        """
        if self._canonical is None:
            shift = self.canonical_shift
            g = np.ldexp(self.generator, -shift)
            c = np.ldexp(self.cost, -shift)
            g.setflags(write=False)
            c.setflags(write=False)
            self._canonical = (g, c, shift)
        return self._canonical

    def sparse_entries(self) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """``(rows, cols, vals)`` of the nonzero generator entries in
        row-major order, computed once and cached.

        Generator rows have bounded out-degree, so whole-model scans
        (the admission gate's structural and numerical reductions) run
        over the ~nnz entries instead of the dense
        ``(n_pairs, n_states)`` array. NaN/inf compare unequal to zero
        and are therefore retained.
        """
        if self._sparse is None:
            flat = np.flatnonzero(self.generator != 0.0)
            rows = flat // max(self.n_states, 1)
            cols = flat - rows * self.n_states
            vals = self.generator.ravel()[flat]
            for array in (rows, cols, vals):
                array.setflags(write=False)
            self._sparse = (rows, cols, vals)
        return self._sparse


def compile_ctmdp(mdp: CTMDP) -> CompiledCTMDP:
    """The compiled form of *mdp*, cached on the instance.

    The first call lowers the model (O(pairs x states) work and memory);
    subsequent calls return the cached object. Models are immutable
    after construction by convention (``add_action`` refuses
    redefinition), and lowering a partially built model is a usage
    error guarded by ``validate``.
    """
    cached = getattr(mdp, "_compiled", None)
    if cached is None:
        mdp.validate()
        cached = CompiledCTMDP(mdp)
        mdp._compiled = cached
    return cached
