"""Relative value iteration on the uniformized chain.

A baseline average-cost solver with the same fixed points as policy
iteration. The CTMDP is first uniformized (with an aperiodicity slack);
then the standard relative value iteration recursion

``w_{k+1}(i) = min_a [ c(i,a)/Lambda + sum_j P_ia(j) w_k(j) ]``

is run with the span seminorm ``max(dw) - min(dw)`` as the stopping
criterion, where ``dw = w_{k+1} - w_k``. At convergence the continuous-
time gain is ``Lambda * dw`` (any component) and the greedy policy with
respect to ``w`` is gain-optimal.

Included both as an independent cross-check of policy iteration (their
policies must agree) and as the runtime comparison point for the solver
ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Optional

import numpy as np

from repro.errors import SolverError
from repro.ctmdp.model import CTMDP
from repro.ctmdp.policy import Policy
from repro.ctmdp.uniformization import UniformizedMDP, uniformize_ctmdp


@dataclass(frozen=True)
class ValueIterationResult:
    """Outcome of :func:`relative_value_iteration`.

    Attributes
    ----------
    policy:
        The greedy policy at convergence (gain-optimal).
    gain:
        Continuous-time average cost rate estimate.
    values:
        Final relative value vector (normalized to ``values[0] = 0``).
    iterations:
        Sweeps performed.
    span_history:
        The span of the value difference after each sweep.
    """

    policy: Policy
    gain: float
    values: np.ndarray
    iterations: int
    span_history: "List[float]"


def _sweep(uni: UniformizedMDP, w: np.ndarray) -> "tuple[np.ndarray, list]":
    """One Bellman backup; returns (new values, greedy actions)."""
    n = len(uni.states)
    new_w = np.empty(n)
    greedy: List[Hashable] = []
    for i in range(n):
        best_value = np.inf
        best_action = None
        for action in uni.actions[i]:
            value = uni.step_cost[(i, action)] + float(uni.transition[(i, action)] @ w)
            if value < best_value:
                best_value = value
                best_action = action
        new_w[i] = best_value
        greedy.append(best_action)
    return new_w, greedy


def relative_value_iteration(
    mdp: CTMDP,
    span_tolerance: float = 1e-10,
    max_iterations: int = 1_000_000,
    uniformization_rate: Optional[float] = None,
) -> ValueIterationResult:
    """Solve a unichain average-cost CTMDP by relative value iteration.

    Parameters
    ----------
    mdp:
        The model.
    span_tolerance:
        Stop when ``span(w_{k+1} - w_k) < span_tolerance``; the gain
        estimate is then accurate to within the tolerance times the
        uniformization rate.
    max_iterations:
        Safety bound.
    uniformization_rate:
        Optional explicit ``Lambda``; must exceed the maximal exit rate.

    Raises
    ------
    SolverError
        If the span does not contract within ``max_iterations``.
    """
    uni = uniformize_ctmdp(mdp, rate=uniformization_rate)
    n = len(uni.states)
    w = np.zeros(n)
    span_history: List[float] = []
    for iteration in range(1, max_iterations + 1):
        new_w, greedy = _sweep(uni, w)
        diff = new_w - w
        span = float(diff.max() - diff.min())
        span_history.append(span)
        # Renormalize to keep the values bounded (relative VI).
        w = new_w - new_w[0]
        if span < span_tolerance:
            gain = float(uni.rate * 0.5 * (diff.max() + diff.min()))
            policy = Policy(
                mdp, {state: greedy[i] for i, state in enumerate(uni.states)}
            )
            values = w.copy()
            return ValueIterationResult(
                policy=policy,
                gain=gain,
                values=values,
                iterations=iteration,
                span_history=span_history,
            )
    raise SolverError(
        f"relative value iteration did not reach span {span_tolerance:g} in "
        f"{max_iterations} sweeps (last span {span_history[-1]:g})"
    )
