"""Relative value iteration on the uniformized chain.

A baseline average-cost solver with the same fixed points as policy
iteration. The CTMDP is first uniformized (with an aperiodicity slack);
then the standard relative value iteration recursion

``w_{k+1}(i) = min_a [ c(i,a)/Lambda + sum_j P_ia(j) w_k(j) ]``

is run with the span seminorm ``max(dw) - min(dw)`` as the stopping
criterion, where ``dw = w_{k+1} - w_k``. At convergence the continuous-
time gain is ``Lambda * dw`` (any component) and the greedy policy with
respect to ``w`` is gain-optimal.

Included both as an independent cross-check of policy iteration (their
policies must agree) and as the runtime comparison point for the solver
ablation bench.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Hashable, List, Optional

import numpy as np

from repro.errors import SolverError
from repro.ctmdp.backends import BACKENDS, resolve_backend
from repro.ctmdp.compiled import compile_ctmdp
from repro.ctmdp.model import CTMDP
from repro.ctmdp.policy import Policy
from repro.ctmdp.uniformization import APERIODICITY_SLACK, UniformizedMDP, uniformize_ctmdp
from repro.obs.log import get_logger
from repro.obs.runtime import active as obs_active

logger = get_logger(__name__)

#: Registry name of the per-sweep convergence trace: one row per
#: Bellman backup with the span residual (the stopping quantity) and
#: the wall-clock ``sweep_s`` (profiling field).
CONVERGENCE_SERIES = "solver.value_iteration.convergence"


def _convergence_series(metrics):
    return metrics.series(CONVERGENCE_SERIES, profiling_fields=("sweep_s",))


@dataclass(frozen=True)
class ValueIterationResult:
    """Outcome of :func:`relative_value_iteration`.

    Attributes
    ----------
    policy:
        The greedy policy at convergence (gain-optimal).
    gain:
        Continuous-time average cost rate estimate.
    values:
        Final relative value vector (normalized to ``values[0] = 0``).
    iterations:
        Sweeps performed.
    span_history:
        The span of the value difference after each sweep.
    """

    policy: Policy
    gain: float
    values: np.ndarray
    iterations: int
    span_history: "List[float]"


def _sweep(uni: UniformizedMDP, w: np.ndarray) -> "tuple[np.ndarray, list]":
    """One Bellman backup; returns (new values, greedy actions)."""
    n = len(uni.states)
    new_w = np.empty(n)
    greedy: List[Hashable] = []
    for i in range(n):
        best_value = np.inf
        best_action = None
        for action in uni.actions[i]:
            value = uni.step_cost[(i, action)] + float(uni.transition[(i, action)] @ w)
            if value < best_value:
                best_value = value
                best_action = action
        new_w[i] = best_value
        greedy.append(best_action)
    return new_w, greedy


def _budget_error(
    started: float, time_budget_s: "Optional[float]", iteration: int,
    span_history: "List[float]",
) -> None:
    """Raise a structured SolverError when the wall-clock budget is spent."""
    if time_budget_s is None:
        return
    elapsed = time.perf_counter() - started
    if elapsed > time_budget_s:
        raise SolverError(
            f"relative value iteration exceeded its wall-clock budget "
            f"({elapsed:.3f}s > {time_budget_s:g}s) after {iteration} sweeps",
            diagnostics={
                "reason": "time_budget_exceeded",
                "iteration": iteration,
                "elapsed_s": elapsed,
                "time_budget_s": time_budget_s,
                "span_history": span_history[-10:],
            },
        )


def _nonconvergence_error(
    span_tolerance: float, max_iterations: int, span_history: "List[float]"
) -> SolverError:
    return SolverError(
        f"relative value iteration did not reach span {span_tolerance:g} in "
        f"{max_iterations} sweeps (last span {span_history[-1]:g})",
        diagnostics={
            "reason": "max_iterations_exhausted",
            "iteration": max_iterations,
            "span_tolerance": span_tolerance,
            "span_history": span_history[-10:],
        },
    )


def _relative_value_iteration_compiled(
    mdp: CTMDP,
    span_tolerance: float,
    max_iterations: int,
    uniformization_rate: Optional[float],
    time_budget_s: "Optional[float]" = None,
) -> ValueIterationResult:
    """Vectorized relative value iteration over the compiled arrays.

    Uniformizes in place -- ``P = I + G / Lambda``, per-step cost
    ``c / Lambda`` -- then runs whole-state-space Bellman backups as one
    matrix-vector product per sweep.
    """
    ins = obs_active()
    metrics = ins.metrics
    if ins.enabled:
        lowering_start = time.perf_counter()
    comp = compile_ctmdp(mdp)
    if ins.enabled and metrics is not None:
        metrics.histogram("profile.solver.lowering_s", profiling=True).observe(
            time.perf_counter() - lowering_start
        )
        metrics.counter("solver.value_iteration.solves").inc()
    series = _convergence_series(metrics) if metrics is not None else None
    max_rate = comp.max_exit_rate()
    if uniformization_rate is None:
        lam = APERIODICITY_SLACK * max_rate if max_rate > 0 else 1.0
    else:
        lam = float(uniformization_rate)
        if lam < max_rate:
            raise ValueError(
                f"uniformization rate {lam:g} below maximal exit rate {max_rate:g}"
            )
    transition = comp.generator / lam
    transition[np.arange(comp.n_pairs), comp.pair_state] += 1.0
    step_cost = comp.cost / lam
    n = comp.n_states
    w = np.zeros(n)
    started = time.perf_counter()
    span_history: List[float] = []
    with ins.span("value_iteration", backend="compiled", n_states=n) as tspan:
        for iteration in range(1, max_iterations + 1):
            _budget_error(started, time_budget_s, iteration, span_history)
            if ins.enabled:
                sweep_start = time.perf_counter()
            values = step_cost + transition @ w
            new_w, greedy_cols = comp.greedy(values)
            diff = new_w - w
            span = float(diff.max() - diff.min())
            span_history.append(span)
            if series is not None:
                series.append(
                    backend="compiled",
                    iteration=iteration,
                    span=span,
                    sweep_s=time.perf_counter() - sweep_start,
                )
            # Renormalize to keep the values bounded (relative VI).
            w = new_w - new_w[0]
            if span < span_tolerance:
                gain = float(lam * 0.5 * (diff.max() + diff.min()))
                policy = Policy._trusted(
                    mdp,
                    {
                        state: comp.actions[i][greedy_cols[i]]
                        for i, state in enumerate(comp.states)
                    },
                )
                if ins.enabled:
                    tspan.attrs.update(iterations=iteration, gain=gain)
                    if metrics is not None:
                        metrics.histogram(
                            "solver.value_iteration.iterations"
                        ).observe(iteration)
                    logger.debug(
                        "value iteration converged: %d states, %d sweeps, "
                        "gain %.6g",
                        n, iteration, gain,
                    )
                return ValueIterationResult(
                    policy=policy,
                    gain=gain,
                    values=w.copy(),
                    iterations=iteration,
                    span_history=span_history,
                )
    raise _nonconvergence_error(span_tolerance, max_iterations, span_history)


def _relative_value_iteration_sparse(
    mdp,
    span_tolerance: float,
    max_iterations: int,
    uniformization_rate: Optional[float],
    time_budget_s: "Optional[float]" = None,
) -> ValueIterationResult:
    """Relative value iteration over the CSR lowering.

    Same uniformization and sweep semantics as the compiled path -- the
    uniformized transition matrix ``P = I + G/Lambda`` is built once as
    a ``(pairs, states)`` CSR matrix (one O(nnz) pass) and each Bellman
    backup is a single sparse matvec plus the shared first-wins greedy
    reduction.
    """
    import scipy.sparse as sp

    from repro.ctmdp.sparse import compile_sparse_ctmdp

    ins = obs_active()
    metrics = ins.metrics
    if ins.enabled:
        lowering_start = time.perf_counter()
    comp = compile_sparse_ctmdp(mdp)
    if ins.enabled and metrics is not None:
        metrics.histogram("profile.solver.lowering_s", profiling=True).observe(
            time.perf_counter() - lowering_start
        )
        metrics.counter("solver.value_iteration.solves").inc()
    series = _convergence_series(metrics) if metrics is not None else None
    max_rate = comp.max_exit_rate()
    if uniformization_rate is None:
        lam = APERIODICITY_SLACK * max_rate if max_rate > 0 else 1.0
    else:
        lam = float(uniformization_rate)
        if lam < max_rate:
            raise ValueError(
                f"uniformization rate {lam:g} below maximal exit rate {max_rate:g}"
            )
    # P = I + G/Lambda in pair-indexed CSR form: scale the generator
    # data and fold the +1 identity entries in through a COO round-trip
    # (duplicate entries sum on conversion, landing on the diagonals).
    coo = comp.generator.tocoo()
    transition = sp.coo_array(
        (
            np.concatenate([coo.data / lam, np.ones(comp.n_pairs)]),
            (
                np.concatenate([coo.row, np.arange(comp.n_pairs)]),
                np.concatenate([coo.col, comp.pair_state]),
            ),
        ),
        shape=comp.generator.shape,
    ).tocsr()
    step_cost = comp.cost / lam
    n = comp.n_states
    w = np.zeros(n)
    started = time.perf_counter()
    span_history: List[float] = []
    with ins.span("value_iteration", backend="sparse", n_states=n) as tspan:
        for iteration in range(1, max_iterations + 1):
            _budget_error(started, time_budget_s, iteration, span_history)
            if ins.enabled:
                sweep_start = time.perf_counter()
            values = step_cost + transition @ w
            new_w, greedy_cols = comp.greedy(values)
            diff = new_w - w
            span = float(diff.max() - diff.min())
            span_history.append(span)
            if series is not None:
                series.append(
                    backend="sparse",
                    iteration=iteration,
                    span=span,
                    sweep_s=time.perf_counter() - sweep_start,
                )
            # Renormalize to keep the values bounded (relative VI).
            w = new_w - new_w[0]
            if span < span_tolerance:
                gain = float(lam * 0.5 * (diff.max() + diff.min()))
                policy = Policy._trusted(
                    mdp,
                    {
                        state: comp.actions[i][greedy_cols[i]]
                        for i, state in enumerate(comp.states)
                    },
                )
                if ins.enabled:
                    tspan.attrs.update(iterations=iteration, gain=gain)
                    if metrics is not None:
                        metrics.histogram(
                            "solver.value_iteration.iterations"
                        ).observe(iteration)
                return ValueIterationResult(
                    policy=policy,
                    gain=gain,
                    values=w.copy(),
                    iterations=iteration,
                    span_history=span_history,
                )
    raise _nonconvergence_error(span_tolerance, max_iterations, span_history)


def relative_value_iteration(
    mdp: CTMDP,
    span_tolerance: float = 1e-10,
    max_iterations: int = 1_000_000,
    uniformization_rate: Optional[float] = None,
    backend: str = "auto",
    time_budget_s: Optional[float] = None,
) -> ValueIterationResult:
    """Solve a unichain average-cost CTMDP by relative value iteration.

    Parameters
    ----------
    mdp:
        The model.
    span_tolerance:
        Stop when ``span(w_{k+1} - w_k) < span_tolerance``; the gain
        estimate is then accurate to within the tolerance times the
        uniformization rate.
    max_iterations:
        Safety bound.
    uniformization_rate:
        Optional explicit ``Lambda``; must exceed the maximal exit rate.
    backend:
        ``"auto"`` (default) resolves by model type and size (see
        :mod:`repro.ctmdp.backends`). ``"dense"``/``"compiled"`` sweep
        the dense lowering with one matrix-vector product per Bellman
        backup; ``"sparse"`` sweeps the CSR lowering (one sparse matvec
        per backup); ``"kron"`` runs matrix-free uniformized backups on
        a Kronecker model (one structured matvec per action per sweep);
        ``"reference"`` keeps the original per-state dict loops.
        Policies agree exactly and gains to floating-point roundoff.
    time_budget_s:
        Optional wall-clock budget; exceeding it raises a structured
        :class:`SolverError` (``reason: time_budget_exceeded``).

    Raises
    ------
    SolverError
        If the span does not contract within ``max_iterations`` or the
        wall-clock budget runs out; ``diagnostics`` carries the sweep
        count and recent span history.
    """
    backend = resolve_backend(mdp, backend)
    if backend == "kron":
        from repro.ctmdp.kron import relative_value_iteration_kron

        return relative_value_iteration_kron(
            mdp, span_tolerance, max_iterations, uniformization_rate,
            time_budget_s,
        )
    if backend == "sparse":
        mdp.validate()
        return _relative_value_iteration_sparse(
            mdp, span_tolerance, max_iterations, uniformization_rate,
            time_budget_s,
        )
    if backend == "compiled":
        mdp.validate()
        return _relative_value_iteration_compiled(
            mdp, span_tolerance, max_iterations, uniformization_rate,
            time_budget_s,
        )
    uni = uniformize_ctmdp(mdp, rate=uniformization_rate)
    ins = obs_active()
    metrics = ins.metrics
    series = _convergence_series(metrics) if metrics is not None else None
    if metrics is not None:
        metrics.counter("solver.value_iteration.solves").inc()
    n = len(uni.states)
    w = np.zeros(n)
    started = time.perf_counter()
    span_history: List[float] = []
    for iteration in range(1, max_iterations + 1):
        _budget_error(started, time_budget_s, iteration, span_history)
        if ins.enabled:
            sweep_start = time.perf_counter()
        new_w, greedy = _sweep(uni, w)
        diff = new_w - w
        span = float(diff.max() - diff.min())
        span_history.append(span)
        if series is not None:
            series.append(
                backend="reference",
                iteration=iteration,
                span=span,
                sweep_s=time.perf_counter() - sweep_start,
            )
        # Renormalize to keep the values bounded (relative VI).
        w = new_w - new_w[0]
        if span < span_tolerance:
            gain = float(uni.rate * 0.5 * (diff.max() + diff.min()))
            policy = Policy(
                mdp, {state: greedy[i] for i, state in enumerate(uni.states)}
            )
            values = w.copy()
            if metrics is not None:
                metrics.histogram("solver.value_iteration.iterations").observe(
                    iteration
                )
            return ValueIterationResult(
                policy=policy,
                gain=gain,
                values=values,
                iterations=iteration,
                span_history=span_history,
            )
    raise _nonconvergence_error(span_tolerance, max_iterations, span_history)
