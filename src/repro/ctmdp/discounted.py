"""Discounted-cost policy iteration for CTMDPs.

The discounted criterion (the paper's ``v_dis`` with discount factor
``a > 0``, Section II) values a cost stream ``c(t)`` as
``integral e^{-a t} c(t) dt``. For a stationary policy the value vector
solves ``(a I - G) v = c``; policy improvement picks, per state, the
action minimizing ``c_i(a) + sum_j s_ij(a) v_j`` (equivalently the
action whose one-step discounted lookahead is cheapest).

Theorem 2.2 guarantees a stationary a-optimal policy exists; Theorem 2.3
says that as ``a -> 0`` the discounted-optimal policies converge to an
average-optimal policy -- the discount-sweep ablation bench demonstrates
exactly this on the paper's DPM model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import SolverError
from repro.ctmdp.backends import BACKENDS, resolve_backend
from repro.ctmdp.compiled import compile_ctmdp
from repro.ctmdp.model import CTMDP
from repro.ctmdp.policy import Policy


@dataclass(frozen=True)
class DiscountedResult:
    """Outcome of :func:`discounted_policy_iteration`.

    Attributes
    ----------
    policy:
        The a-optimal deterministic stationary policy.
    values:
        Its expected total discounted cost per starting state.
    discount:
        The discount factor used.
    iterations:
        Improvement rounds performed.
    """

    policy: Policy
    values: np.ndarray
    discount: float
    iterations: int


def _evaluate_discounted(policy: Policy, discount: float) -> np.ndarray:
    """Solve ``(a I - G) v = c`` for the policy's value vector."""
    g = policy.generator_matrix()
    c = policy.cost_vector()
    n = g.shape[0]
    a = discount * np.eye(n) - g
    try:
        return np.linalg.solve(a, c)
    except np.linalg.LinAlgError as exc:  # pragma: no cover - a>0 keeps this regular
        raise SolverError("discounted evaluation system is singular") from exc


def _evaluate_discounted_rows(comp, sel, discount: float) -> np.ndarray:
    """Compiled twin of :func:`_evaluate_discounted` (bit-identical)."""
    g_mat, c = comp.evaluation_system(sel)
    a = discount * np.eye(comp.n_states) - g_mat
    try:
        return np.linalg.solve(a, c)
    except np.linalg.LinAlgError as exc:  # pragma: no cover - a>0 keeps this regular
        raise SolverError("discounted evaluation system is singular") from exc


def _discounted_policy_iteration_compiled(
    mdp: CTMDP,
    discount: float,
    initial_policy: Optional[Policy],
    max_iterations: int,
    atol: float,
) -> DiscountedResult:
    """Vectorized discounted policy iteration over the compiled arrays."""
    comp = compile_ctmdp(mdp)
    if initial_policy is None:
        sel = comp.pair_offset[:-1].copy()
    else:
        sel = comp.policy_rows(initial_policy.as_dict())
    values = _evaluate_discounted_rows(comp, sel, discount)
    for iteration in range(1, max_iterations + 1):
        test_values = comp.cost + comp.generator @ values
        sel, changed = comp.improve(test_values, sel, atol)
        if changed:
            values = _evaluate_discounted_rows(comp, sel, discount)
        # Unchanged policy: the same system re-solves to the same values.
        if not changed:
            return DiscountedResult(
                policy=Policy._trusted(mdp, comp.assignment_from_rows(sel)),
                values=values,
                discount=discount,
                iterations=iteration,
            )
    raise SolverError(
        f"discounted policy iteration did not converge in {max_iterations} iterations"
    )


def _evaluate_discounted_sparse(comp, sel, discount: float) -> np.ndarray:
    """Sparse twin of :func:`_evaluate_discounted_rows`: solve
    ``(a I - G[sel]) v = c[sel]`` through the sparse ladder."""
    import scipy.sparse as sp

    from repro.ctmdp.sparse import solve_sparse_with_fallback

    g_rows, c = comp.evaluation_rows(sel)
    n = comp.n_states
    a = sp.eye_array(n, format="csr") * discount - g_rows
    return solve_sparse_with_fallback(
        a, c, what="discounted evaluation system",
        context={"discount": discount},
    )


def _discounted_policy_iteration_sparse(
    mdp,
    discount: float,
    initial_policy: Optional[Policy],
    max_iterations: int,
    atol: float,
) -> DiscountedResult:
    """Discounted policy iteration over the CSR lowering."""
    from repro.ctmdp.sparse import compile_sparse_ctmdp

    comp = compile_sparse_ctmdp(mdp)
    if initial_policy is None:
        sel = comp.pair_offset[:-1].copy()
    else:
        sel = comp.policy_rows(initial_policy.as_dict())
    values = _evaluate_discounted_sparse(comp, sel, discount)
    for iteration in range(1, max_iterations + 1):
        test_values = comp.generator @ values
        test_values += comp.cost
        sel, changed = comp.improve(test_values, sel, atol)
        if changed:
            values = _evaluate_discounted_sparse(comp, sel, discount)
        # Unchanged policy: the same system re-solves to the same values.
        if not changed:
            return DiscountedResult(
                policy=Policy._trusted(mdp, comp.assignment_from_rows(sel)),
                values=values,
                discount=discount,
                iterations=iteration,
            )
    raise SolverError(
        f"discounted policy iteration did not converge in {max_iterations} iterations"
    )


def discounted_policy_iteration(
    mdp: CTMDP,
    discount: float,
    initial_policy: Optional[Policy] = None,
    max_iterations: int = 1000,
    atol: float = 1e-9,
    backend: str = "auto",
) -> DiscountedResult:
    """Find the a-optimal stationary policy by policy iteration.

    Parameters
    ----------
    mdp:
        The model.
    discount:
        The paper's ``a``; must be positive. Small values approximate the
        average-cost criterion (Theorem 2.3).
    initial_policy:
        Starting point; defaults to the first-listed action per state.
    max_iterations, atol:
        Termination controls; see
        :func:`repro.ctmdp.policy_iteration.policy_iteration`.
    backend:
        ``"auto"`` (default) resolves by model type and size (see
        :mod:`repro.ctmdp.backends`); ``"dense"``/``"compiled"``
        (vectorized dense lowering), ``"sparse"`` (CSR lowering with the
        direct/Krylov evaluation ladder), ``"kron"`` (matrix-free, for
        Kronecker models), or ``"reference"`` (the original per-state
        dict loops); results agree across tiers.
    """
    if discount <= 0:
        raise ValueError(f"discount factor must be positive, got {discount}")
    backend = resolve_backend(mdp, backend)
    mdp.validate()
    if backend == "kron":
        from repro.ctmdp.kron import discounted_policy_iteration_kron

        return discounted_policy_iteration_kron(
            mdp, discount, initial_policy, max_iterations, atol
        )
    if backend == "sparse":
        return _discounted_policy_iteration_sparse(
            mdp, discount, initial_policy, max_iterations, atol
        )
    if backend == "compiled":
        return _discounted_policy_iteration_compiled(
            mdp, discount, initial_policy, max_iterations, atol
        )
    if initial_policy is None:
        policy = Policy(mdp, {s: mdp.actions(s)[0] for s in mdp.states})
    else:
        policy = initial_policy
    values = _evaluate_discounted(policy, discount)
    for iteration in range(1, max_iterations + 1):
        assignment = {}
        changed = False
        for state in mdp.states:
            incumbent = policy.action(state)
            best_action = incumbent
            best_value = mdp.cost(state, incumbent) + float(
                mdp.generator_row(state, incumbent) @ values
            )
            for action in mdp.actions(state):
                if action == incumbent:
                    continue
                value = mdp.cost(state, action) + float(
                    mdp.generator_row(state, action) @ values
                )
                if value < best_value - atol:
                    best_value = value
                    best_action = action
            assignment[state] = best_action
            if best_action != incumbent:
                changed = True
        policy = Policy(mdp, assignment)
        values = _evaluate_discounted(policy, discount)
        if not changed:
            return DiscountedResult(
                policy=policy, values=values, discount=discount, iterations=iteration
            )
    raise SolverError(
        f"discounted policy iteration did not converge in {max_iterations} iterations"
    )
