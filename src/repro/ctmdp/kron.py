"""Kronecker-structured CTMDPs and their matrix-free solvers.

The top tier of the solver backend ladder. A :class:`KroneckerCTMDP`
never stores a joint generator at all: each global action ``a`` carries
one :class:`~repro.markov.kron.KroneckerGenerator` ``G_a`` (a sum of
Kronecker terms over the factor axes) plus a dense cost vector, and a
boolean availability mask handles per-state action sets. Everything a
solver needs is expressed through ``G_a @ x`` matvecs:

- **value iteration** -- the uniformized backup
  ``w <- min_a [ c_a/L + w + (G_a w)/L ]`` costs one matvec per action
  per sweep, so 10^6-state models fit easily (the operand vectors are
  the only O(n) objects);
- **policy evaluation** -- the bordered dense/sparse system is replaced
  by the uniformized elimination form: with ``P = I + G_pi/L``, solve
  ``(I - P + 1 (P . )_ref) h = (c_pi - c_ref)/L`` by GMRES (the
  operator is nonsingular for unichain policies and ``h[ref] = 0``
  holds by construction), then recover the gain from the reference row:
  ``g = c_ref + (G_pi h)_ref``;
- **stationary distributions** -- GMRES on the transposed balance
  equations via ``rmatvec``, with the usual normalization row.

Tolerance contract: GMRES runs to :data:`repro.ctmdp.sparse.KRYLOV_RTOL`
(1e-10) and any accepted solution passes the guardrail-style relative
residual test; small models are cross-checked against the dense core by
the equivalence suite.
"""

from __future__ import annotations

import itertools
import warnings
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import LinearOperator, gmres

from repro.ctmdp.model import CTMDP
from repro.errors import (
    InvalidGeneratorError,
    InvalidModelError,
    InvalidPolicyError,
    NotIrreducibleError,
    SolverError,
)
from repro.ctmdp.sparse import GMRES_MAXITER, GMRES_RESTART, KRYLOV_RTOL
from repro.markov.generator import canonical_shift
from repro.markov.kron import KroneckerGenerator
from repro.obs.runtime import active as obs_active
from repro.robust.guardrails import RESIDUAL_RTOL

#: ``KroneckerCTMDP.states`` refuses to materialize joint label tuples
#: beyond this many states -- at 10^6 states the label list would rival
#: the solver working set, defeating the matrix-free point.
LABEL_LIMIT = 300_000

#: Relative conservation tolerance of :meth:`KroneckerCTMDP.validate`:
#: row sums of every available generator row must vanish to this times
#: the operator's magnitude bound.
CONSERVATION_RTOL = 1e-9

#: Counter of Kronecker-factor operator applications (``matvec`` +
#: ``rmatvec``) -- the matrix-free tier's unit of solver work, the way
#: ``nnz``-weighted sweeps are the sparse tier's.
MATVEC_COUNTER = "solver.kron.matvecs"

#: Series of matrix-free GMRES residual trajectories: one row per
#: Krylov solve with the per-iteration preconditioned norms.
KRYLOV_SERIES = "solver.kron.krylov.residuals"

#: Gauge holding the uniformization rate (model units) of the most
#: recent uniformized kron solve -- the constant that scales every
#: sweep's contraction.
UNIFORMIZATION_GAUGE = "solver.kron.uniformization_rate"


def _count_matvecs(k: int = 1) -> None:
    """Bump the matvec counter (one guard read; no-op when disabled)."""
    ins = obs_active()
    if ins.enabled and ins.metrics is not None:
        ins.metrics.counter(MATVEC_COUNTER).inc(k)


class ArrayPolicy:
    """A stationary policy stored as a flat action-index array.

    Duck-types the :class:`repro.ctmdp.policy.Policy` surface the
    solvers and tests use (``action``, ``as_dict``, ``mdp``, equality)
    while staying O(n) ints -- joint label tuples are only materialized
    on explicit ``as_dict()`` calls, which :data:`LABEL_LIMIT` guards.
    """

    def __init__(self, kmdp: "KroneckerCTMDP", action_index: np.ndarray) -> None:
        self._mdp = kmdp
        self.action_index = np.asarray(action_index, dtype=np.intp)
        self.action_index.setflags(write=False)

    @property
    def mdp(self) -> "KroneckerCTMDP":
        return self._mdp

    def action(self, state: Hashable) -> Hashable:
        i = self._mdp.index_of(state)
        return self._mdp.action_set[self.action_index[i]]

    def as_dict(self) -> "Dict[Hashable, Hashable]":
        labels = self._mdp.states
        action_set = self._mdp.action_set
        return {
            labels[i]: action_set[a]
            for i, a in enumerate(self.action_index.tolist())
        }

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ArrayPolicy):
            return bool(np.array_equal(self.action_index, other.action_index))
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.action_index.tobytes())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ArrayPolicy(n={len(self.action_index)})"


class KroneckerCTMDP:
    """A CTMDP whose per-action generators are Kronecker-structured.

    Parameters
    ----------
    factor_states:
        Per-axis state-label tuples; the joint space is their Cartesian
        product with axis 0 varying slowest (``np.kron`` layout).
    actions:
        The global action-label tuple, shared across states; per-state
        availability comes from *available*. Per-state action order is
        the global order restricted to the available set.
    generators:
        One :class:`KroneckerGenerator` per action, all over the same
        axis layout. Rows of unavailable ``(action, state)`` pairs are
        never read by the solvers.
    costs:
        ``(n_actions, n)`` effective cost rates.
    available:
        Optional ``(n_actions, n)`` boolean mask; default all-true.
        Every state needs at least one available action.
    """

    def __init__(
        self,
        factor_states: Sequence[Sequence[Hashable]],
        actions: Sequence[Hashable],
        generators: Sequence[KroneckerGenerator],
        costs,
        available: Optional[np.ndarray] = None,
        rate_scale: float = 1.0,
    ) -> None:
        self.factor_states = tuple(tuple(fs) for fs in factor_states)
        self.dims = tuple(len(fs) for fs in self.factor_states)
        if any(d == 0 for d in self.dims):
            raise InvalidModelError("every factor needs at least one state")
        self.n_states = int(np.prod(self.dims))
        self.action_set: Tuple[Hashable, ...] = tuple(actions)
        self.n_actions = len(self.action_set)
        if self.n_actions == 0:
            raise InvalidModelError("model has no actions")
        self.generators: Tuple[KroneckerGenerator, ...] = tuple(generators)
        if len(self.generators) != self.n_actions:
            raise InvalidModelError(
                f"{len(self.generators)} generators for {self.n_actions} actions"
            )
        for gen in self.generators:
            if gen.dims != self.dims:
                raise InvalidModelError(
                    f"generator axis layout {gen.dims} does not match "
                    f"model layout {self.dims}"
                )
        self.costs = np.asarray(costs, dtype=float)
        if self.costs.shape != (self.n_actions, self.n_states):
            raise InvalidModelError(
                f"costs shape {self.costs.shape} does not match "
                f"({self.n_actions}, {self.n_states})"
            )
        if available is None:
            self.available = np.ones(
                (self.n_actions, self.n_states), dtype=bool
            )
        else:
            self.available = np.asarray(available, dtype=bool)
            if self.available.shape != (self.n_actions, self.n_states):
                raise InvalidModelError(
                    f"availability shape {self.available.shape} does not "
                    f"match ({self.n_actions}, {self.n_states})"
                )
        if not np.all(self.available.any(axis=0)):
            orphan = int(np.argmin(self.available.any(axis=0)))
            raise InvalidModelError(
                f"state index {orphan} has no available actions"
            )
        self.rate_scale = float(rate_scale)
        # Exit rates straight from the factored diagonals: O(K n).
        exit_rates = np.zeros((self.n_actions, self.n_states))
        for a, gen in enumerate(self.generators):
            exit_rates[a] = np.maximum(-gen.diagonal(), 0.0)
        exit_rates[~self.available] = 0.0
        self._exit_rates = exit_rates
        self._exit_rates.setflags(write=False)
        self.costs.setflags(write=False)
        self.available.setflags(write=False)
        self._states: Optional[Tuple[tuple, ...]] = None
        self._index: Optional[Dict[tuple, int]] = None

    # -- state labelling -----------------------------------------------------

    @property
    def states(self) -> "Tuple[tuple, ...]":
        """Joint state labels (guarded -- see :data:`LABEL_LIMIT`)."""
        if self._states is None:
            if self.n_states > LABEL_LIMIT:
                raise InvalidModelError(
                    f"refusing to materialize {self.n_states} joint state "
                    f"labels (limit {LABEL_LIMIT}); use state_label(i) for "
                    "point lookups"
                )
            self._states = tuple(itertools.product(*self.factor_states))
        return self._states

    def state_label(self, index: int) -> tuple:
        """Joint label of flat state *index* (mixed-radix decode)."""
        digits = []
        for dim in reversed(self.dims):
            digits.append(index % dim)
            index //= dim
        return tuple(
            fs[d] for fs, d in zip(self.factor_states, reversed(digits))
        )

    def index_of(self, state) -> int:
        if self._index is None:
            self._index = {s: i for i, s in enumerate(self.states)}
        try:
            return self._index[tuple(state)]
        except KeyError:
            raise InvalidPolicyError(f"unknown state {state!r}") from None

    def actions(self, state) -> "Tuple[Hashable, ...]":
        """Available actions of *state*, in global order."""
        i = self.index_of(state)
        return tuple(
            a for k, a in enumerate(self.action_set) if self.available[k, i]
        )

    # -- solver interface ----------------------------------------------------

    def validate(self) -> None:
        """Finiteness and conservation of every available generator row.

        Row sums come from one ``G_a @ 1`` matvec per action; only rows
        whose ``(action, state)`` pair is available are judged, since
        unavailable rows are never applied by any solver.
        """
        ones = np.ones(self.n_states)
        for a, gen in enumerate(self.generators):
            mask = self.available[a]
            if not mask.any():
                continue
            if not np.all(np.isfinite(self.costs[a][mask])):
                raise InvalidModelError(
                    f"non-finite cost under action {self.action_set[a]!r}"
                )
            row_sums = gen.matvec(ones)[mask]
            tol = CONSERVATION_RTOL * max(gen.max_abs_entry(), 1.0)
            if not np.all(np.isfinite(row_sums)):
                raise InvalidGeneratorError(
                    f"non-finite generator entries under action "
                    f"{self.action_set[a]!r}"
                )
            worst = float(np.max(np.abs(row_sums), initial=0.0))
            if worst > tol:
                raise InvalidGeneratorError(
                    f"generator rows of action {self.action_set[a]!r} are "
                    f"not conservative (max |row sum| {worst:.3g} > {tol:.3g})"
                )

    def max_exit_rate(self) -> float:
        return float(np.max(self._exit_rates, initial=0.0))

    def exit_rates(self) -> np.ndarray:
        """``(n_actions, n)`` exit rates (0 where unavailable)."""
        return self._exit_rates

    @property
    def canonical_shift(self) -> int:
        return canonical_shift(self.max_exit_rate())

    def default_action_index(self) -> np.ndarray:
        """First available action per state (global order) -- the
        matrix-free analogue of the first-listed initial policy."""
        return np.argmax(self.available, axis=0).astype(np.intp)

    def policy_array(self, policy) -> np.ndarray:
        """Flat action-index array of *policy* (``ArrayPolicy`` or any
        object with ``as_dict``)."""
        if isinstance(policy, ArrayPolicy):
            return policy.action_index
        action_pos = {a: k for k, a in enumerate(self.action_set)}
        sel = np.empty(self.n_states, dtype=np.intp)
        assignment = policy.as_dict()
        for i, state in enumerate(self.states):
            try:
                sel[i] = action_pos[assignment[state]]
            except KeyError:
                raise InvalidPolicyError(
                    f"action {assignment.get(state)!r} is not a model action"
                ) from None
        if not np.all(self.available[sel, np.arange(self.n_states)]):
            bad = int(
                np.argmin(self.available[sel, np.arange(self.n_states)])
            )
            raise InvalidPolicyError(
                f"policy picks an unavailable action in state "
                f"{self.state_label(bad)!r}"
            )
        return sel

    # -- conversions ---------------------------------------------------------

    @classmethod
    def from_ctmdp(cls, mdp: CTMDP) -> "KroneckerCTMDP":
        """Single-axis wrapper of a dict-based model.

        The joint space is the model's own state set (one Kronecker
        axis), the global action set is the first-appearance-ordered
        union of per-state action sets, and each action's generator is
        the CSR matrix of its rows (zero rows where unavailable). This
        gives every CTMDP a matrix-free form for cross-checks and fuzz
        routing; per-state action order must be consistent with the
        global order for tie-breaking to match the dense core exactly.
        """
        mdp.validate()
        n = mdp.n_states
        action_set: List[Hashable] = []
        seen = set()
        for state in mdp.states:
            for action in mdp.actions(state):
                if action not in seen:
                    seen.add(action)
                    action_set.append(action)
        available = np.zeros((len(action_set), n), dtype=bool)
        costs = np.zeros((len(action_set), n))
        generators = []
        for k, action in enumerate(action_set):
            rows = []
            for i, state in enumerate(mdp.states):
                if action in mdp.actions(state):
                    available[k, i] = True
                    costs[k, i] = mdp.data(state, action).effective_cost_rate()
                    rows.append(
                        sp.csr_array(
                            mdp.generator_row(state, action).reshape(1, n)
                        )
                    )
                else:
                    rows.append(sp.csr_array((1, n)))
            csr = sp.csr_array(sp.vstack(rows, format="csr"))
            generators.append(
                KroneckerGenerator((n,), [(1.0, (csr,))])
            )
        model = cls(
            (tuple(mdp.states),),
            action_set,
            generators,
            costs,
            available=available,
            rate_scale=float(getattr(mdp, "rate_scale", 1.0)),
        )
        # Single-axis labels are 1-tuples; keep the original labels so
        # policies compare directly against the dense core's.
        model._states = tuple(mdp.states)
        model._index = {s: i for i, s in enumerate(mdp.states)}
        return model

    def to_ctmdp(self, limit: int = 2048) -> CTMDP:
        """Densify into a dict-based model (small cross-checks only)."""
        if self.n_states > limit:
            raise InvalidModelError(
                f"refusing to densify a {self.n_states}-state Kronecker "
                f"model (limit {limit})"
            )
        mdp = CTMDP(list(self.states), rate_scale=self.rate_scale)
        dense = [gen.to_csr().toarray() for gen in self.generators]
        for i, state in enumerate(self.states):
            for k, action in enumerate(self.action_set):
                if not self.available[k, i]:
                    continue
                rates = dense[k][i].copy()
                rates[i] = 0.0
                mdp.add_action(
                    state, action, rates=rates,
                    cost_rate=float(self.costs[k, i]),
                )
        return mdp

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"KroneckerCTMDP(dims={self.dims!r}, n_states={self.n_states}, "
            f"n_actions={self.n_actions})"
        )


def kron_farm_model(
    n_queues: int,
    queue_capacity: int,
    arrival: float = 0.5,
    service: float = 2.0,
    speeds: "Sequence[float]" = (1.0, 3.0),
    powers: "Sequence[float]" = (1.0, 3.0),
    weight: float = 1.0,
) -> KroneckerCTMDP:
    """A multi-queue server-farm CTMDP in pure tensor-sum form.

    ``n_queues`` independent M/M/1/C queues share a global service-speed
    action: action ``a`` scales every queue's service rate by
    ``speeds[a]`` at power cost ``powers[a]``, and the cost rate adds
    ``weight`` times the total queue occupancy. The joint generator of
    each action is the K-fold tensor sum of birth-death factors, so the
    model scales to ``(capacity+1)^n_queues`` states with O(K * C)
    stored rate entries -- the scaling-bench workhorse for the
    matrix-free tier.
    """
    if n_queues < 1 or queue_capacity < 1:
        raise InvalidModelError("need at least one queue of capacity >= 1")
    if len(speeds) != len(powers):
        raise InvalidModelError("speeds and powers must align")
    m = queue_capacity + 1
    actions = tuple(f"speed-{s:g}" for s in speeds)

    def birth_death(mu: float) -> "sp.csr_array":
        gen = np.zeros((m, m))
        for q in range(queue_capacity):
            gen[q, q + 1] = arrival
            gen[q + 1, q] = mu
        np.fill_diagonal(gen, -gen.sum(axis=1))
        return sp.csr_array(gen)

    generators = [
        KroneckerGenerator.tensor_sum(
            [birth_death(service * speed)] * n_queues
        )
        for speed in speeds
    ]
    # Total occupancy sum_k q_k, lifted axis by axis (O(K n) build).
    occupancy = np.zeros(m ** n_queues)
    occ_factor = np.arange(m, dtype=float)
    for k in range(n_queues):
        occupancy += np.kron(
            np.ones(m ** k),
            np.kron(occ_factor, np.ones(m ** (n_queues - 1 - k))),
        )
    costs = np.stack(
        [power + weight * occupancy for power in powers]
    )
    factor_states = (tuple(range(m)),) * n_queues
    return KroneckerCTMDP(factor_states, actions, generators, costs)


# -- matrix-free solver machinery --------------------------------------------


def _policy_generator_apply(kmdp: KroneckerCTMDP, sel: np.ndarray):
    """``x -> G_pi x`` for the policy picking action ``sel[i]`` in state
    ``i``: one per-action matvec, rows gathered by the selection mask."""
    masks = [
        (a, sel == a)
        for a in np.unique(sel)
    ]

    def apply(x: np.ndarray) -> np.ndarray:
        _count_matvecs(len(masks))
        y = np.empty_like(x)
        for a, mask in masks:
            y[mask] = kmdp.generators[a].matvec(x)[mask]
        return y

    return apply


def _policy_generator_rapply(kmdp: KroneckerCTMDP, sel: np.ndarray):
    """``x -> G_pi^T x`` via ``G_pi^T = sum_a G_a^T D_a``."""
    masks = [(a, sel == a) for a in np.unique(sel)]

    def apply(x: np.ndarray) -> np.ndarray:
        _count_matvecs(len(masks))
        y = np.zeros_like(x)
        for a, mask in masks:
            xa = np.where(mask, x, 0.0)
            y += kmdp.generators[a].rmatvec(xa)
        return y

    return apply


def _gmres_solve(operator, b, x0, what: str, context: "Dict") -> np.ndarray:
    """GMRES with the documented Krylov target; typed error on failure.

    With metrics active, each solve appends its per-iteration residual
    trajectory to :data:`KRYLOV_SERIES` and bumps the solve counter.
    """
    ins = obs_active()
    metrics = ins.metrics if ins.enabled else None
    residuals: "List[float]" = []
    callback = (
        (lambda pr_norm: residuals.append(float(pr_norm)))
        if ins.enabled
        else None
    )
    with ins.span("gmres_solve", what=what, n=int(operator.shape[0])) as span:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            x, info = gmres(
                operator, b, x0=x0, rtol=KRYLOV_RTOL, atol=0.0,
                restart=GMRES_RESTART, maxiter=GMRES_MAXITER,
                callback=callback, callback_type="pr_norm",
            )
        converged = info == 0 and bool(np.all(np.isfinite(x)))
        span.attrs.update(iterations=len(residuals), converged=converged)
        if metrics is not None:
            metrics.counter("solver.kron.gmres_solves").inc()
            if x0 is not None:
                # Warm-started from a previous round's solution (the
                # cross-solve reuse layer's matrix-free leg).
                metrics.counter("solver.reuse.gmres_warm_starts").inc()
            metrics.series(KRYLOV_SERIES).append(
                what=what,
                iterations=len(residuals),
                residuals=residuals,
                converged=converged,
                warm_started=x0 is not None,
            )
    if info != 0 or not np.all(np.isfinite(x)):
        raise SolverError(
            f"{what}: matrix-free GMRES failed to converge "
            f"(info={int(info)}); the induced chain is likely multichain "
            "or badly conditioned for Krylov iteration",
            diagnostics={
                "backend": "kron", "gmres_info": int(info), **context,
            },
        )
    return x


def kron_gain_bias(
    kmdp: KroneckerCTMDP,
    sel: np.ndarray,
    reference_state: int = 0,
    x0: "Optional[np.ndarray]" = None,
) -> "tuple[float, np.ndarray]":
    """Gain and bias of the policy *sel*, fully matrix-free.

    Solves the uniformized elimination system (module doc) in canonical
    units with GMRES; the accepted solution is residual-checked against
    the original evaluation equations ``c + G h = g 1`` under the
    guardrail tolerance.
    """
    from repro.ctmdp.uniformization import APERIODICITY_SLACK

    n = kmdp.n_states
    if not 0 <= reference_state < n:
        raise InvalidPolicyError(
            f"reference state {reference_state} out of range"
        )
    shift = kmdp.canonical_shift
    max_rate_can = float(np.ldexp(kmdp.max_exit_rate(), -shift))
    lam = APERIODICITY_SLACK * max_rate_can if max_rate_can > 0 else 1.0
    ins = obs_active()
    if ins.enabled and ins.metrics is not None:
        ins.metrics.gauge(UNIFORMIZATION_GAUGE).set(
            float(np.ldexp(lam, shift))
        )
    with ins.span(
        "policy_evaluation", backend="kron", n_states=n
    ) as span:
        g_apply = _policy_generator_apply(kmdp, sel)

        def g_can(x: np.ndarray) -> np.ndarray:
            # Canonical application is exact: 2**-shift times the matvec.
            return np.ldexp(g_apply(x), -shift)

        c_can = np.ldexp(
            kmdp.costs[sel, np.arange(n)], -shift
        )
        c_ref = float(c_can[reference_state])

        def elimination(x: np.ndarray) -> np.ndarray:
            # A h = h - P h + (P h)_ref 1  with  P = I + G/lam.
            px = x + g_can(x) / lam
            return x - px + px[reference_state]

        operator = LinearOperator((n, n), matvec=elimination, dtype=float)
        b = (c_can - c_ref) / lam
        h = _gmres_solve(
            operator, b, x0,
            what="matrix-free policy evaluation",
            context={"reference_state": reference_state},
        )
        h = h - h[reference_state]
        gh = g_can(h)
        gain_can = c_ref + float(gh[reference_state])
        # Residual of the original evaluation equations, guardrail-style.
        residual = c_can + gh - gain_can
        scale = (
            max_rate_can * 2.0 * float(np.max(np.abs(h), initial=0.0))
            + float(np.max(np.abs(c_can), initial=0.0))
            + abs(gain_can)
        )
        rel = float(np.max(np.abs(residual), initial=0.0)) / max(scale, 1e-300)
        span.attrs.update(residual=rel)
        if rel > RESIDUAL_RTOL:
            raise SolverError(
                f"matrix-free policy evaluation residual {rel:.3g} exceeds "
                f"{RESIDUAL_RTOL:g}; the induced chain is likely multichain",
                diagnostics={
                    "backend": "kron", "residual": rel,
                    "residual_rtol": RESIDUAL_RTOL,
                },
            )
        gain = float(np.ldexp(gain_can, shift))
        span.attrs.update(gain=gain)
        return gain, h


def kron_stationary(kmdp: KroneckerCTMDP, sel: np.ndarray) -> np.ndarray:
    """Stationary distribution of the policy *sel*, matrix-free.

    Same last-row-normalization formulation as the dense and sparse
    stationary solvers, with ``G_pi^T`` applied through per-factor
    transposes.
    """
    n = kmdp.n_states
    shift = kmdp.canonical_shift
    rapply = _policy_generator_rapply(kmdp, sel)

    def balance(x: np.ndarray) -> np.ndarray:
        y = np.ldexp(rapply(x), -shift)
        y[-1] = x.sum()
        return y

    operator = LinearOperator((n, n), matvec=balance, dtype=float)
    b = np.zeros(n)
    b[-1] = 1.0
    x0 = np.full(n, 1.0 / n)
    try:
        with obs_active().span(
            "stationary_solve", backend="kron", n_states=n
        ):
            p = _gmres_solve(
                operator, b, x0,
                what="matrix-free stationary solve", context={},
            )
    except SolverError as exc:
        raise NotIrreducibleError(
            "stationary distribution is not unique or does not exist: "
            + str(exc)
        ) from exc
    if np.min(p) < -1e-7:
        raise NotIrreducibleError(
            "matrix-free stationary solve produced significantly negative "
            f"probabilities (min {np.min(p):.3g})"
        )
    p = np.clip(p, 0.0, None)
    total = p.sum()
    if not np.isfinite(total) or total <= 0.0:
        raise NotIrreducibleError(
            "matrix-free stationary solve produced a non-normalizable vector"
        )
    return p / total


def kron_evaluate(
    kmdp: KroneckerCTMDP,
    policy,
    reference_state: int = 0,
    compute_stationary: bool = True,
):
    """Full matrix-free evaluation of *policy* on *kmdp*."""
    from repro.ctmdp.policy import PolicyEvaluation

    sel = kmdp.policy_array(policy)
    gain, bias = kron_gain_bias(kmdp, sel, reference_state)
    stationary = kron_stationary(kmdp, sel) if compute_stationary else None
    return PolicyEvaluation(gain=gain, bias=bias, stationary=stationary)


def _improve_kron(
    kmdp: KroneckerCTMDP,
    bias: np.ndarray,
    sel: np.ndarray,
    atol_can: float,
    shift: int,
) -> "tuple[np.ndarray, bool, np.ndarray]":
    """One incumbent-rule improvement sweep, one matvec per action.

    Same semantics as ``PairIndexedCTMDP.improve``: scanning actions in
    global order, a candidate displaces the running best only when
    smaller by more than ``atol_can``; unavailable actions sit at +inf.
    Returns ``(new sel, changed, test values (n_actions, n))``.
    """
    n = kmdp.n_states
    test = np.full((kmdp.n_actions, n), np.inf)
    for a in range(kmdp.n_actions):
        mask = kmdp.available[a]
        if not mask.any():
            continue
        _count_matvecs()
        values = np.ldexp(
            kmdp.costs[a] + kmdp.generators[a].matvec(bias), -shift
        )
        test[a, mask] = values[mask]
    state_range = np.arange(n)
    best_val = test[sel, state_range]
    best = sel.copy()
    for a in range(kmdp.n_actions):
        column = test[a]
        better = (column < best_val - atol_can) & (sel != a)
        if np.any(better):
            best_val = np.where(better, column, best_val)
            best = np.where(better, a, best)
    changed = bool(np.any(best != sel))
    return best, changed, test


def policy_iteration_kron(
    kmdp: KroneckerCTMDP,
    initial_policy=None,
    max_iterations: int = 1000,
    atol: float = 1e-9,
    reference_state: int = 0,
    time_budget_s: "Optional[float]" = None,
):
    """Howard policy iteration with matrix-free evaluation sweeps."""
    from repro.ctmdp.policy_iteration import (
        PolicyIterationResult,
        _check_budget,
        _convergence_series,
        _CycleDetector,
    )
    import time

    kmdp.validate()
    ins = obs_active()
    metrics = ins.metrics
    if metrics is not None:
        metrics.counter("solver.policy_iteration.solves").inc()
    n = kmdp.n_states
    if initial_policy is None:
        sel = kmdp.default_action_index()
    else:
        sel = kmdp.policy_array(initial_policy)
    shift = kmdp.canonical_shift
    atol_can = float(np.ldexp(atol * kmdp.rate_scale, -shift))
    started = time.perf_counter()
    cycles = _CycleDetector()
    gain_history: List[float] = []
    series = _convergence_series(metrics) if metrics is not None else None
    if ins.enabled:
        sweep_start = time.perf_counter()
    gain, bias = kron_gain_bias(kmdp, sel, reference_state)
    gain_history.append(gain)
    if series is not None:
        series.append(
            backend="kron", iteration=0, gain=gain, residual=None,
            policy_changes=None,
            sweep_s=time.perf_counter() - sweep_start,
        )
    cycles.check(sel.tobytes(), 0, gain_history, None)
    with ins.span("policy_iteration", backend="kron", n_states=n) as span:
        for iteration in range(1, max_iterations + 1):
            _check_budget(started, time_budget_s, iteration, gain_history)
            if ins.enabled:
                sweep_start = time.perf_counter()
            previous_sel = sel
            previous_gain = gain
            sel, changed, _ = _improve_kron(kmdp, bias, sel, atol_can, shift)
            if changed:
                cycles.check(sel.tobytes(), iteration, gain_history, None)
                gain, bias = kron_gain_bias(
                    kmdp, sel, reference_state, x0=bias
                )
            gain_history.append(gain)
            if series is not None:
                series.append(
                    backend="kron", iteration=iteration, gain=gain,
                    residual=abs(gain - previous_gain),
                    policy_changes=int(np.count_nonzero(sel != previous_sel)),
                    sweep_s=time.perf_counter() - sweep_start,
                )
            if not changed:
                if ins.enabled:
                    span.attrs.update(iterations=iteration, gain=gain)
                    if metrics is not None:
                        metrics.histogram(
                            "solver.policy_iteration.iterations"
                        ).observe(iteration)
                return PolicyIterationResult(
                    policy=ArrayPolicy(kmdp, sel),
                    gain=gain,
                    bias=bias,
                    stationary=kron_stationary(kmdp, sel),
                    iterations=iteration,
                    gain_history=gain_history,
                )
    raise SolverError(
        f"policy iteration did not converge in {max_iterations} iterations",
        diagnostics={
            "reason": "max_iterations_exhausted",
            "iteration": max_iterations,
            "backend": "kron",
            "gain_history": gain_history[-10:],
        },
    )


def relative_value_iteration_kron(
    kmdp: KroneckerCTMDP,
    span_tolerance: float = 1e-10,
    max_iterations: int = 1_000_000,
    uniformization_rate: "Optional[float]" = None,
    time_budget_s: "Optional[float]" = None,
):
    """Relative value iteration with matrix-free uniformized backups.

    Mirrors the compiled implementation sweep for sweep: uniformization
    rate ``APERIODICITY_SLACK * max exit rate`` (or the explicit
    override), strict first-wins greedy argmin in global action order,
    span-seminorm stopping, gain from the midpoint of the final
    difference vector.
    """
    from repro.ctmdp.uniformization import APERIODICITY_SLACK
    from repro.ctmdp.value_iteration import (
        CONVERGENCE_SERIES,
        ValueIterationResult,
        _budget_error,
        _nonconvergence_error,
    )
    import time

    kmdp.validate()
    ins = obs_active()
    metrics = ins.metrics
    series = (
        metrics.series(CONVERGENCE_SERIES, profiling_fields=("sweep_s",))
        if metrics is not None
        else None
    )
    if metrics is not None:
        metrics.counter("solver.value_iteration.solves").inc()
    n = kmdp.n_states
    max_rate = kmdp.max_exit_rate()
    if uniformization_rate is not None:
        lam = float(uniformization_rate)
        if lam < max_rate:
            raise ValueError(
                f"uniformization rate {lam:g} is below the max exit rate "
                f"{max_rate:g}"
            )
    else:
        lam = APERIODICITY_SLACK * max_rate if max_rate > 0 else 1.0
    if metrics is not None:
        metrics.gauge(UNIFORMIZATION_GAUGE).set(lam)
    state_range = np.arange(n)
    w = np.zeros(n)
    span_history: List[float] = []
    started = time.perf_counter()
    with ins.span("value_iteration", backend="kron", n_states=n) as span_rec:
        for iteration in range(1, max_iterations + 1):
            _budget_error(started, time_budget_s, iteration, span_history)
            if ins.enabled:
                sweep_start = time.perf_counter()
            # One uniformized backup per action: c/lam + w + (G w)/lam,
            # +inf where unavailable, then a first-wins argmin.
            best_val = np.full(n, np.inf)
            best_act = np.zeros(n, dtype=np.intp)
            for a in range(kmdp.n_actions):
                mask = kmdp.available[a]
                if not mask.any():
                    continue
                _count_matvecs()
                values = (
                    kmdp.costs[a] / lam
                    + w
                    + kmdp.generators[a].matvec(w) / lam
                )
                values = np.where(mask, values, np.inf)
                better = values < best_val
                if np.any(better):
                    best_val = np.where(better, values, best_val)
                    best_act = np.where(better, a, best_act)
            diff = best_val - w
            span_value = float(diff.max() - diff.min())
            span_history.append(span_value)
            if series is not None:
                series.append(
                    backend="kron", iteration=iteration, span=span_value,
                    sweep_s=time.perf_counter() - sweep_start,
                )
            if span_value < span_tolerance:
                gain = float(lam * 0.5 * (diff.max() + diff.min()))
                if ins.enabled:
                    span_rec.attrs.update(iterations=iteration, gain=gain)
                    if metrics is not None:
                        metrics.histogram(
                            "solver.value_iteration.iterations"
                        ).observe(iteration)
                values = best_val - best_val[0]
                return ValueIterationResult(
                    policy=ArrayPolicy(kmdp, best_act),
                    gain=gain,
                    values=values,
                    iterations=iteration,
                    span_history=span_history,
                )
            w = best_val - best_val[0]
    raise _nonconvergence_error(span_tolerance, max_iterations, span_history)


def discounted_policy_iteration_kron(
    kmdp: KroneckerCTMDP,
    discount: float,
    initial_policy=None,
    max_iterations: int = 1000,
    atol: float = 1e-9,
):
    """Discounted policy iteration with matrix-free evaluation.

    Evaluation solves ``(a I - G_pi) v = c_pi`` by GMRES (the operator
    is strictly diagonally dominant for ``a > 0``, so unpreconditioned
    Krylov converges reliably); improvement mirrors the dense incumbent
    rule, one matvec per action.
    """
    from repro.ctmdp.discounted import DiscountedResult

    kmdp.validate()
    n = kmdp.n_states
    if initial_policy is None:
        sel = kmdp.default_action_index()
    else:
        sel = kmdp.policy_array(initial_policy)
    state_range = np.arange(n)

    def evaluate(sel: np.ndarray, x0) -> np.ndarray:
        g_apply = _policy_generator_apply(kmdp, sel)
        operator = LinearOperator(
            (n, n), matvec=lambda x: discount * x - g_apply(x), dtype=float
        )
        c = kmdp.costs[sel, state_range]
        v = _gmres_solve(
            operator, c, x0,
            what="matrix-free discounted evaluation",
            context={"discount": discount},
        )
        residual = c + g_apply(v) - discount * v
        scale = (
            (kmdp.max_exit_rate() * 2.0 + discount)
            * float(np.max(np.abs(v), initial=0.0))
            + float(np.max(np.abs(c), initial=0.0))
        )
        rel = float(np.max(np.abs(residual), initial=0.0)) / max(scale, 1e-300)
        if rel > RESIDUAL_RTOL:
            raise SolverError(
                f"matrix-free discounted evaluation residual {rel:.3g} "
                f"exceeds {RESIDUAL_RTOL:g}",
                diagnostics={
                    "backend": "kron", "residual": rel,
                    "residual_rtol": RESIDUAL_RTOL, "discount": discount,
                },
            )
        return v

    values = evaluate(sel, None)
    for iteration in range(1, max_iterations + 1):
        # Raw-unit test quantities and threshold, like the dense path.
        test = np.full((kmdp.n_actions, n), np.inf)
        for a in range(kmdp.n_actions):
            mask = kmdp.available[a]
            if not mask.any():
                continue
            _count_matvecs()
            vals = kmdp.costs[a] + kmdp.generators[a].matvec(values)
            test[a, mask] = vals[mask]
        best_val = test[sel, state_range]
        best = sel.copy()
        for a in range(kmdp.n_actions):
            column = test[a]
            better = (column < best_val - atol) & (sel != a)
            if np.any(better):
                best_val = np.where(better, column, best_val)
                best = np.where(better, a, best)
        changed = bool(np.any(best != sel))
        sel = best
        if changed:
            values = evaluate(sel, values)
        if not changed:
            return DiscountedResult(
                policy=ArrayPolicy(kmdp, sel),
                values=values,
                discount=discount,
                iterations=iteration,
            )
    raise SolverError(
        f"discounted policy iteration did not converge in {max_iterations} "
        "iterations"
    )
