"""Exception hierarchy for the :mod:`repro` package.

All errors raised by this library derive from :class:`ReproError` so that
callers can catch library-specific failures with a single ``except``
clause while letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class InvalidGeneratorError(ReproError):
    """A matrix does not satisfy the generator (differential) properties.

    A valid generator matrix has non-negative off-diagonal entries and
    rows that sum to zero (Eqn. 2.4 of the paper).
    """


class NotIrreducibleError(ReproError):
    """An operation required an irreducible chain but got a reducible one.

    The limiting distribution of a CTMC is only guaranteed to exist and be
    independent of the initial state for irreducible positive-recurrent
    chains (Theorem 2.1 of the paper).
    """


class InvalidModelError(ReproError):
    """A model definition is inconsistent (shapes, signs, missing actions)."""


class InvalidPolicyError(ReproError):
    """A policy refers to unknown states/actions or violates constraints."""


class SolverError(ReproError):
    """An optimization algorithm failed to converge or found no solution."""


class InfeasibleConstraintError(SolverError):
    """No policy can satisfy the requested performance constraint."""


class SimulationError(ReproError):
    """The event-driven simulator reached an inconsistent internal state."""
