"""Exception hierarchy for the :mod:`repro` package.

All errors raised by this library derive from :class:`ReproError` so that
callers can catch library-specific failures with a single ``except``
clause while letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class InvalidGeneratorError(ReproError):
    """A matrix does not satisfy the generator (differential) properties.

    A valid generator matrix has non-negative off-diagonal entries and
    rows that sum to zero (Eqn. 2.4 of the paper).
    """


class NotIrreducibleError(ReproError):
    """An operation required an irreducible chain but got a reducible one.

    The limiting distribution of a CTMC is only guaranteed to exist and be
    independent of the initial state for irreducible positive-recurrent
    chains (Theorem 2.1 of the paper).
    """


class InvalidModelError(ReproError):
    """A model definition is inconsistent (shapes, signs, missing actions)."""


class DomainError(InvalidModelError):
    """A closed-form formula was asked for inputs outside its domain.

    Raised by the queueing closed forms (``rho >= 1`` on an infinite
    queue, zero rates, non-finite parameters) instead of letting a
    division emit ``inf``/``NaN``. Subclasses
    :class:`InvalidModelError` so existing ``except InvalidModelError``
    call sites keep working.
    """


class ModelRejectedError(InvalidModelError):
    """The model-admission gate rejected a model.

    Carries the full :class:`repro.robust.admission.AdmissionReport`
    (as ``report``) so callers can inspect the individual findings --
    finding codes, state/action coordinates, suggested remediation --
    programmatically; ``report_dict`` is its JSON-serializable form.
    """

    def __init__(self, message: str, report: "Optional[Any]" = None) -> None:
        super().__init__(message)
        self.report = report

    @property
    def report_dict(self) -> "Optional[Dict[str, Any]]":
        return self.report.to_dict() if self.report is not None else None


class InvalidPolicyError(ReproError):
    """A policy refers to unknown states/actions or violates constraints."""


class SolverError(ReproError):
    """An optimization algorithm failed to converge or found no solution.

    Carries an optional structured ``diagnostics`` mapping (iteration
    counts, condition numbers, residuals, the offending policy, ...) so
    callers and operators can act on the failure programmatically
    instead of parsing the message. The payload is JSON-serializable by
    construction; :mod:`repro.robust.guardrails` documents the schema
    of the entries it emits.
    """

    def __init__(
        self, message: str, diagnostics: "Optional[Dict[str, Any]]" = None
    ) -> None:
        super().__init__(message)
        self.diagnostics: "Dict[str, Any]" = dict(diagnostics or {})


class InfeasibleConstraintError(SolverError):
    """No policy can satisfy the requested performance constraint."""


class SimulationError(ReproError):
    """The event-driven simulator reached an inconsistent internal state."""


class WorkerFailureError(SimulationError):
    """Parallel work could not complete even after retries and the
    serial degradation path also failed.

    Raised by :func:`repro.sim.parallel.parallel_map` only when every
    recovery rung (bounded retry with backoff, then in-process serial
    re-execution) has been exhausted; carries the per-chunk failure
    history in ``diagnostics``.
    """

    def __init__(
        self, message: str, diagnostics: "Optional[Dict[str, Any]]" = None
    ) -> None:
        super().__init__(message)
        self.diagnostics: "Dict[str, Any]" = dict(diagnostics or {})


class CheckpointError(ReproError):
    """A checkpoint file is unreadable, corrupt, or belongs to a
    different configuration than the resuming run."""


class ArtifactError(ReproError):
    """A policy-serving artifact could not be produced, stored, or
    loaded. Base class of the serve-pipeline failure family; the CLI
    maps it to its own exit code so operators can distinguish artifact
    trouble from solver or model failures."""


class ArtifactIntegrityError(ArtifactError):
    """An artifact file is unreadable, truncated, or fails its
    checksum -- corruption, a torn write, or a non-artifact file.
    Loading never trusts such a file; the serving runtime keeps
    answering from the last admitted artifact instead."""


class ArtifactSchemaError(ArtifactError):
    """An artifact parses as JSON but does not match the
    ``repro-policy/v1`` schema (missing fields, wrong shapes, an
    unknown format version)."""


class ArtifactRejectedError(ArtifactError):
    """An artifact is structurally intact but inadmissible: its model
    fingerprint does not match the serving model, the admission gate
    rejected the model it encodes, its policy names invalid
    states/actions, or its metrics are non-finite.

    Carries the admission ``report`` (when the gate produced one) so
    callers can inspect findings programmatically.
    """

    def __init__(self, message: str, report: "Optional[Any]" = None) -> None:
        super().__init__(message)
        self.report = report


class ServeRequestError(ReproError):
    """A decision request named an unknown mode or was otherwise
    malformed. The serving layer answers such requests with a typed
    error payload -- never a traceback, never a guessed action."""


class TraceIntegrityError(SimulationError):
    """A persisted trace or result file is corrupt: checksum mismatch,
    truncation, or unparseable content. The message always names the
    offending path (and line, for traces) so operators can locate the
    damaged file; subclasses :class:`SimulationError` so it maps into
    the CLI's simulation exit code."""


class CertificationError(ReproError):
    """The certification engine could not run: inconsistent inputs
    (a constrained solve without its bounds, a model/artifact
    fingerprint mismatch) or a corrupt certificate document. Distinct
    from a *failed* certification, which is a successful run whose
    report says ``verdict == "failed"``."""


class CertificationFailedError(CertificationError):
    """A solved policy failed independent certification.

    Carries the full :class:`repro.certify.CertificationReport` (as
    ``report``) so callers can inspect the typed findings -- Bellman
    gap, LP duality gap, exact-arithmetic mismatch, backend
    disagreement -- programmatically. Raised by
    :func:`repro.certify.require_certified`; the CLI maps the
    certification family to its own exit code.
    """

    def __init__(self, message: str, report: "Optional[Any]" = None) -> None:
        super().__init__(message)
        self.report = report
