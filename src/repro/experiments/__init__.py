"""Reproduction drivers for the paper's evaluation (Section V).

One module per exhibit:

- :mod:`repro.experiments.figure4` -- power--delay tradeoff of the
  CTMDP-optimal policies vs the N-policies (Figure 4), with both
  analytic ("functional") and simulated values.
- :mod:`repro.experiments.table1` -- the Little's-law approximation
  check across input rates (Table 1).
- :mod:`repro.experiments.figure5` -- CTMDP-optimal vs greedy and three
  timeout policies across input rates (Figure 5).

:mod:`repro.experiments.setup` centralizes the experimental constants;
:mod:`repro.experiments.reporting` renders the result rows as the
paper-style tables.
"""

from repro.experiments.figure4 import Figure4Point, run_figure4
from repro.experiments.figure5 import Figure5Point, run_figure5
from repro.experiments.table1 import Table1Row, run_table1

__all__ = [
    "Figure4Point",
    "Figure5Point",
    "Table1Row",
    "run_figure4",
    "run_figure5",
    "run_table1",
]
