"""Table 1: accuracy of the Little's-law queue-length approximation.

The second experiment of Section V: the performance constraint "average
waiting time <= average inter-arrival time" is converted into the model
constraint "average number of waiting requests <= 1" via the
approximation ``#waiting ~= input_rate x waiting_time``. Table 1
validates the conversion: for input rates 1/8 .. 1/3, simulate the
constrained-optimal policy and compare ``rate x simulated waiting time``
(the approximation) against the directly measured time-average queue
length. The paper reports errors within about 5 %.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.dpm.optimizer import optimize_constrained
from repro.dpm.presets import paper_system
from repro.experiments import setup
from repro.experiments.reporting import format_table
from repro.obs.runtime import active as obs_active
from repro.policies.optimal import StochasticCTMDPPolicy
from repro.sim.parallel import parallel_map


@dataclass(frozen=True)
class Table1Row:
    """One column of the paper's Table 1 (we render rates as rows)."""

    input_rate: float
    simulated_waiting_time: float
    approximate_queue_length: float  # rate * waiting time
    actual_queue_length: float  # time-averaged occupancy
    error_percent: float

    @classmethod
    def from_measurements(
        cls, input_rate: float, waiting_time: float, actual_queue_length: float
    ) -> "Table1Row":
        approx = input_rate * waiting_time
        error = (approx - actual_queue_length) / actual_queue_length * 100.0
        return cls(
            input_rate=input_rate,
            simulated_waiting_time=waiting_time,
            approximate_queue_length=approx,
            actual_queue_length=actual_queue_length,
            error_percent=error,
        )


def run_table1(
    rates: Sequence[float] = setup.INPUT_RATES,
    queue_length_bound: float = setup.QUEUE_LENGTH_BOUND,
    n_requests: int = setup.DEFAULT_N_REQUESTS,
    seed: int = setup.DEFAULT_SEED,
    n_jobs: Optional[int] = None,
) -> "List[Table1Row]":
    """Regenerate Table 1: one row per input rate.

    Rates are independent (each gets its own model, constrained solve
    and simulation), so ``n_jobs`` fans them out over a process pool;
    row order and values match the serial run exactly.
    """

    def _row(rate: float) -> Table1Row:
        model = paper_system(arrival_rate=rate)
        optimal = optimize_constrained(model, queue_length_bound)
        sim = setup.simulate_policy(
            model,
            StochasticCTMDPPolicy(optimal.policy, model.capacity, seed=seed),
            n_requests=n_requests,
            seed=seed,
        )
        return Table1Row.from_measurements(
            input_rate=rate,
            waiting_time=sim.average_waiting_time,
            actual_queue_length=sim.average_queue_length,
        )

    ins = obs_active()
    if ins.metrics is not None:
        ins.metrics.counter("experiment.table1.runs").inc()
    with ins.span(
        "experiment.table1", n_rates=len(rates), n_requests=n_requests
    ):
        return parallel_map(_row, list(rates), n_jobs=n_jobs)


def format_table1(rows: "List[Table1Row]") -> str:
    headers = (
        "input rate [1/s]",
        "avg waiting [s]",
        "approx #waiting",
        "actual #waiting",
        "error [%]",
    )
    table_rows = [
        (
            f"1/{round(1 / r.input_rate)}",
            r.simulated_waiting_time,
            r.approximate_queue_length,
            r.actual_queue_length,
            r.error_percent,
        )
        for r in rows
    ]
    return format_table(headers, table_rows)


def main() -> None:  # pragma: no cover - manual driver
    print(format_table1(run_table1()))


if __name__ == "__main__":  # pragma: no cover
    main()
