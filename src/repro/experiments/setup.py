"""Shared experimental setup (Section V).

The server, energies, powers and queue size come from
:mod:`repro.dpm.presets`; this module adds the sweep schedules and the
simulation harness shared by the three exhibits.

The paper simulates 50 000 requests; the drivers default to that but
accept a smaller ``n_requests`` so the benchmark suite stays fast --
the shapes are stable well below the paper's count.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.dpm.presets import PAPER_N_REQUESTS, paper_system
from repro.dpm.system import PowerManagedSystemModel
from repro.policies.base import PowerManagementPolicy
from repro.sim.simulator import SimulationResult, simulate
from repro.sim.workload import PoissonProcess

#: The Figure-5/Table-1 input-rate sweep (requests per second).
INPUT_RATES = (1.0 / 8.0, 1.0 / 7.0, 1.0 / 6.0, 1.0 / 5.0, 1.0 / 4.0, 1.0 / 3.0)

#: Weight schedule tracing the Figure-4 tradeoff curve. The optimal
#: policy is piecewise constant in the weight, so a modest log-spaced
#: schedule recovers every distinct Pareto point of this small model.
FIGURE4_WEIGHTS = (0.05, 0.2, 0.35, 0.5, 0.65, 0.8, 1.0, 1.3, 1.7, 2.5, 5.0, 10.0)

#: N-policy thresholds compared in Figure 4 (N = 1 .. Q).
FIGURE4_N_VALUES = (1, 2, 3, 4, 5)

#: Performance bound used by Table 1 / Figure 5: average waiting time at
#: most the mean inter-arrival time, i.e. average queue length <= 1
#: through the paper's Little's-law approximation.
QUEUE_LENGTH_BOUND = 1.0

DEFAULT_N_REQUESTS = PAPER_N_REQUESTS
DEFAULT_SEED = 1999  # the venue year; any fixed seed works


def simulate_policy(
    model: PowerManagedSystemModel,
    policy: PowerManagementPolicy,
    n_requests: int = DEFAULT_N_REQUESTS,
    seed: int = DEFAULT_SEED,
    initial_mode: Optional[str] = None,
) -> SimulationResult:
    """Run *policy* against the model's Poisson workload.

    All policies compared in one experiment should share *seed* so they
    face the identical arrival realization (common random numbers).
    """
    return simulate(
        provider=model.provider,
        capacity=model.capacity,
        workload=PoissonProcess(model.requestor.rate),
        policy=policy,
        n_requests=n_requests,
        seed=seed,
        initial_mode=initial_mode,
    )


def models_for_rates(
    rates: Sequence[float] = INPUT_RATES,
) -> "list[PowerManagedSystemModel]":
    """One Section-V model per input rate."""
    return [paper_system(arrival_rate=rate) for rate in rates]
