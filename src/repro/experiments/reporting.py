"""Plain-text table rendering for the experiment drivers.

The paper's exhibits are a scatter plot (Figure 4), a table (Table 1)
and a line plot (Figure 5); on a terminal we render all three as
fixed-width tables (every figure's underlying series is a table).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_format: str = "{:.3f}",
) -> str:
    """Render *rows* under *headers* as an aligned fixed-width table."""
    rendered: List[List[str]] = []
    for row in rows:
        rendered.append(
            [
                float_format.format(cell) if isinstance(cell, float) else str(cell)
                for cell in row
            ]
        )
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells for {len(headers)} headers: {row!r}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    lines.extend(
        "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        for row in rendered
    )
    return "\n".join(lines)
