"""Figure 5: CTMDP-optimal vs greedy and timeout heuristics.

The last experiment of Section V: sweep the input rate from 1/8 to 1/3
and compare, at each rate,

- the CTMDP-optimal policy tuned to the throughput constraint (average
  queue length <= 1, i.e. waiting time <= inter-arrival time),
- the greedy policy (sleep when empty, wake when non-empty), and
- three timeout policies: ``n = 1 s`` fixed, ``n`` equal to the mean
  inter-arrival time, and ``n`` equal to half of it,

by simulated average power and average waiting time. The paper's
conclusion -- asserted by the bench -- is that the optimal policy draws
the least power among all policies meeting the performance constraint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.dpm.optimizer import optimize_constrained
from repro.dpm.presets import paper_system
from repro.dpm.system import PowerManagedSystemModel
from repro.experiments import setup
from repro.experiments.reporting import format_table
from repro.obs.runtime import active as obs_active
from repro.policies.base import PowerManagementPolicy
from repro.policies.greedy import GreedyPolicy
from repro.policies.optimal import StochasticCTMDPPolicy
from repro.policies.timeout import TimeoutPolicy
from repro.sim.parallel import parallel_map


@dataclass(frozen=True)
class Figure5Point:
    """One (policy, rate) measurement of Figure 5."""

    policy: str
    input_rate: float
    simulated_power: float
    simulated_waiting_time: float
    simulated_queue_length: float
    loss_probability: float


def heuristic_policies(
    model: PowerManagedSystemModel,
) -> "Dict[str, PowerManagementPolicy]":
    """The paper's four heuristics at this model's input rate."""
    interarrival = model.requestor.mean_interarrival_time
    provider = model.provider
    return {
        "greedy": GreedyPolicy(provider),
        "timeout(1s)": TimeoutPolicy(1.0, provider),
        "timeout(1/lambda)": TimeoutPolicy(interarrival, provider),
        "timeout(0.5/lambda)": TimeoutPolicy(0.5 * interarrival, provider),
    }


def run_figure5(
    rates: Sequence[float] = setup.INPUT_RATES,
    queue_length_bound: float = setup.QUEUE_LENGTH_BOUND,
    n_requests: int = setup.DEFAULT_N_REQUESTS,
    seed: int = setup.DEFAULT_SEED,
    model_factory: Callable[[float], PowerManagedSystemModel] = (
        lambda rate: paper_system(arrival_rate=rate)
    ),
    n_jobs: Optional[int] = None,
) -> "List[Figure5Point]":
    """Regenerate the Figure-5 series: 5 policies x len(rates) points.

    Rates are independent (each carries its own model, constrained
    solve and the five policy simulations), so ``n_jobs`` fans them out
    over a process pool; point order and values match the serial run.
    """

    def _points_at_rate(rate: float) -> "List[Figure5Point]":
        model = model_factory(rate)
        optimal = optimize_constrained(model, queue_length_bound)
        policies: Dict[str, PowerManagementPolicy] = {
            "ctmdp-optimal": StochasticCTMDPPolicy(
                optimal.policy, model.capacity, seed=seed
            )
        }
        policies.update(heuristic_policies(model))
        rate_points: List[Figure5Point] = []
        for name, policy in policies.items():
            sim = setup.simulate_policy(
                model, policy, n_requests=n_requests, seed=seed
            )
            rate_points.append(
                Figure5Point(
                    policy=name,
                    input_rate=rate,
                    simulated_power=sim.average_power,
                    simulated_waiting_time=sim.average_waiting_time,
                    simulated_queue_length=sim.average_queue_length,
                    loss_probability=sim.loss_probability,
                )
            )
        return rate_points

    ins = obs_active()
    if ins.metrics is not None:
        ins.metrics.counter("experiment.figure5.runs").inc()
    with ins.span(
        "experiment.figure5", n_rates=len(rates), n_requests=n_requests
    ) as espan:
        per_rate = parallel_map(_points_at_rate, list(rates), n_jobs=n_jobs)
        points = [point for rate_points in per_rate for point in rate_points]
        if ins.enabled:
            espan.attrs.update(points=len(points))
    return points


def format_figure5(points: "List[Figure5Point]") -> str:
    headers = (
        "policy",
        "input rate [1/s]",
        "power [W]",
        "avg waiting [s]",
        "avg queue",
        "loss prob",
    )
    rows = [
        (
            p.policy,
            f"1/{round(1 / p.input_rate)}",
            p.simulated_power,
            p.simulated_waiting_time,
            p.simulated_queue_length,
            p.loss_probability,
        )
        for p in points
    ]
    return format_table(headers, rows)


def main() -> None:  # pragma: no cover - manual driver
    print(format_figure5(run_figure5()))


if __name__ == "__main__":  # pragma: no cover
    main()
