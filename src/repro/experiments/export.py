"""CSV export of the experiment series.

The drivers return typed rows; these helpers flatten any sequence of
dataclass rows (Figure4Point, Table1Row, Figure5Point, ...) into CSV so
results can be archived, diffed across versions, or plotted elsewhere.
"""

from __future__ import annotations

import csv
import dataclasses
from pathlib import Path
from typing import Sequence, Union

from repro.errors import ReproError

PathLike = Union[str, Path]


def export_rows(rows: Sequence[object], path: PathLike) -> None:
    """Write dataclass *rows* as CSV with a header from the field names.

    All rows must be instances of the same dataclass.
    """
    if not rows:
        raise ReproError("nothing to export: empty row sequence")
    first = rows[0]
    if not dataclasses.is_dataclass(first):
        raise ReproError(f"rows must be dataclasses, got {type(first).__name__}")
    row_type = type(first)
    if any(type(row) is not row_type for row in rows):
        raise ReproError("all rows must be of the same dataclass type")
    field_names = [f.name for f in dataclasses.fields(row_type)]
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(field_names)
        for row in rows:
            writer.writerow([getattr(row, name) for name in field_names])


def read_rows(path: PathLike) -> "list[dict]":
    """Read an exported CSV back as a list of string-valued dicts.

    Types are not reconstructed (CSV is untyped); the reader is for
    quick diffs and spreadsheets, not as a load path back into the
    experiment objects.
    """
    with open(path, newline="") as handle:
        return list(csv.DictReader(handle))
