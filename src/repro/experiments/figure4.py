"""Figure 4: power--delay tradeoff, CTMDP-optimal vs N-policies.

The first experiment of Section V: sweep the performance weight to
obtain a family of optimal policies, build the N-policies for
``N = 1 .. 5``, and compare simulated power vs simulated average queue
length. The paper additionally reports that the "functional"
(analytic) values nearly coincide with the simulated ones, so each
point carries both.

The expected shape (asserted by the bench): the optimal-policy curve
lies on or below the N-policy curve everywhere -- for any N-policy
there is an optimal point with no more power at no more delay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.dpm.analysis import evaluate_dpm_policy
from repro.dpm.model_policies import as_policy, n_policy_assignment
from repro.dpm.optimizer import sweep_weights
from repro.dpm.presets import paper_system
from repro.dpm.system import PowerManagedSystemModel
from repro.experiments import setup
from repro.experiments.reporting import format_table
from repro.obs.log import get_logger
from repro.obs.runtime import active as obs_active
from repro.policies.npolicy import NPolicy
from repro.policies.optimal import OptimalCTMDPPolicy
from repro.sim.parallel import parallel_map

logger = get_logger(__name__)


@dataclass(frozen=True)
class Figure4Point:
    """One scatter point of Figure 4.

    ``kind`` is ``"optimal"`` or ``"npolicy"``; ``parameter`` is the
    weight (optimal) or N (N-policy). Analytic and simulated values are
    both carried, mirroring the paper's model-accuracy claim.
    """

    kind: str
    parameter: float
    analytic_power: float
    analytic_queue_length: float
    simulated_power: float
    simulated_queue_length: float
    simulated_waiting_time: float


def run_figure4(
    model: "PowerManagedSystemModel | None" = None,
    weights: Sequence[float] = setup.FIGURE4_WEIGHTS,
    n_values: Sequence[int] = setup.FIGURE4_N_VALUES,
    n_requests: int = setup.DEFAULT_N_REQUESTS,
    seed: int = setup.DEFAULT_SEED,
    n_jobs: Optional[int] = None,
) -> "List[Figure4Point]":
    """Regenerate the Figure-4 data points.

    Duplicate optimal policies (adjacent weights often yield the same
    policy) are collapsed so each Pareto point is simulated once.
    ``n_jobs`` parallelizes the weight sweep and the per-point
    simulations; point order and values match the serial run exactly.
    """
    if model is None:
        model = paper_system()
    ins = obs_active()
    if ins.metrics is not None:
        ins.metrics.counter("experiment.figure4.runs").inc()
        ins.metrics.gauge("experiment.figure4.n_requests").set(n_requests)
    with ins.span(
        "experiment.figure4", n_weights=len(weights), n_requests=n_requests
    ) as espan:
        points = _run_figure4(
            model, weights, n_values, n_requests, seed, n_jobs, ins
        )
        if ins.enabled:
            espan.attrs.update(points=len(points))
    return points


def _run_figure4(model, weights, n_values, n_requests, seed, n_jobs, ins):
    # Collapse duplicate Pareto points before simulating: distinct
    # weights frequently yield the same point (the optimal policy is
    # piecewise constant in the weight, and policies may also differ
    # only at unreachable states).
    unique_results = []
    seen_points = set()
    for result in sweep_weights(model, weights, n_jobs=n_jobs):
        key = (
            round(result.metrics.average_power, 9),
            round(result.metrics.average_queue_length, 9),
        )
        if key in seen_points:
            continue
        seen_points.add(key)
        unique_results.append(result)
    if ins.enabled:
        logger.debug(
            "figure4: %d unique Pareto points from %d weights",
            len(unique_results), len(weights),
        )
        if ins.metrics is not None:
            ins.metrics.counter("experiment.figure4.unique_pareto_points").inc(
                len(unique_results)
            )

    def _simulate_optimal(result):
        return setup.simulate_policy(
            model,
            OptimalCTMDPPolicy(result.policy, model.capacity),
            n_requests=n_requests,
            seed=seed,
        )

    points: List[Figure4Point] = []
    for result, sim in zip(
        unique_results, parallel_map(_simulate_optimal, unique_results, n_jobs=n_jobs)
    ):
        points.append(
            Figure4Point(
                kind="optimal",
                parameter=float(result.weight),
                analytic_power=result.metrics.average_power,
                analytic_queue_length=result.metrics.average_queue_length,
                simulated_power=sim.average_power,
                simulated_queue_length=sim.average_queue_length,
                simulated_waiting_time=sim.average_waiting_time,
            )
        )
    mdp = model.build_ctmdp(0.0)
    analytics = [
        evaluate_dpm_policy(model, as_policy(mdp, n_policy_assignment(model, n)))
        for n in n_values
    ]

    def _simulate_npolicy(n):
        return setup.simulate_policy(
            model,
            NPolicy(n, model.provider),
            n_requests=n_requests,
            seed=seed,
        )

    for n, analytic, sim in zip(
        n_values, analytics, parallel_map(_simulate_npolicy, list(n_values), n_jobs=n_jobs)
    ):
        points.append(
            Figure4Point(
                kind="npolicy",
                parameter=float(n),
                analytic_power=analytic.average_power,
                analytic_queue_length=analytic.average_queue_length,
                simulated_power=sim.average_power,
                simulated_queue_length=sim.average_queue_length,
                simulated_waiting_time=sim.average_waiting_time,
            )
        )
    return points


def format_figure4(points: "List[Figure4Point]") -> str:
    """The Figure-4 series as a table."""
    headers = (
        "kind",
        "param",
        "power[W] (model)",
        "L (model)",
        "power[W] (sim)",
        "L (sim)",
        "wait[s] (sim)",
    )
    rows = [
        (
            p.kind,
            p.parameter,
            p.analytic_power,
            p.analytic_queue_length,
            p.simulated_power,
            p.simulated_queue_length,
            p.simulated_waiting_time,
        )
        for p in points
    ]
    return format_table(headers, rows)


def main() -> None:  # pragma: no cover - manual driver
    print(format_figure4(run_figure4()))


if __name__ == "__main__":  # pragma: no cover
    main()
