"""Cost model of the power-managed system (Eqn. 3.1).

The system cost of a state-action pair ``(x, a)`` combines

- the *power cost* ``C_pow(x, a) = pow(s) + sum_{s'} s_{s,s'}(a)
  ene(s, s')`` -- mode power plus switching energy folded into an
  equivalent rate, and
- the *delay cost* ``C_sq(x)`` -- the number of waiting requests,

as the weighted sum ``Cost(x, a) = C_pow(x, a) + w * C_sq(x)``. Sweeping
the performance weight ``w`` traces the power--delay tradeoff curve
(Figure 4); Section IV's constrained problem instead minimizes the
average of ``C_pow`` subject to a bound ``D_M`` on the average of
``C_sq``.

This module holds the channel names shared between the model builder,
the analytic evaluator, and the LP solver, plus the weighted combiner.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Extra-cost channel: effective power rate (watts, switching included).
POWER = "power"
#: Extra-cost channel: delay cost C_sq (waiting requests).
QUEUE_LENGTH = "queue_length"
#: Extra-cost channel: rate of lost requests (requests / second).
LOSS = "loss"


def weighted_cost(power: float, delay: float, weight: float) -> float:
    """``Cost = C_pow + w * C_sq`` (Eqn. 3.1)."""
    if weight < 0:
        raise ValueError(f"performance weight must be >= 0, got {weight}")
    return power + weight * delay


@dataclass(frozen=True)
class CostRates:
    """The per-state-action cost components of the SYS model.

    Attributes
    ----------
    power:
        Effective power rate ``C_pow(x, a)`` in watts.
    queue_length:
        Delay cost ``C_sq(x)`` in waiting requests.
    loss:
        Rate of lost requests in this state (requests per second).
    """

    power: float
    queue_length: float
    loss: float

    def combined(self, weight: float) -> float:
        """The Eqn.-3.1 weighted total."""
        return weighted_cost(self.power, self.queue_length, weight)

    def as_extra_costs(self) -> "dict[str, float]":
        """The mapping stored on CTMDP state-action pairs."""
        return {POWER: self.power, QUEUE_LENGTH: self.queue_length, LOSS: self.loss}
