"""Policy optimization workflow (Section IV, Figure 3).

Two equivalent entry points, mirroring the paper's two formulations:

- :func:`optimize_weighted` -- minimize the weighted cost
  ``C_pow + w * C_sq`` for a given weight ``w`` (policy iteration by
  default; value iteration and LP available for cross-checking).
  :func:`sweep_weights` traces the power--delay tradeoff curve of
  Figure 4 by solving across a weight schedule.
- :func:`optimize_constrained` -- minimize average power subject to an
  average-queue-length bound ``D_M``, solved exactly by the
  occupation-measure LP (possibly randomized optimum).
  :func:`find_weight_for_constraint` is the paper's Figure-3 workflow
  instead: adjust the weight until the deterministic optimal policy
  meets the constraint (bisection on ``w``, exploiting that the average
  queue length is non-increasing in ``w``).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.ctmdp.linear_program import solve_average_cost_lp, solve_constrained_lp
from repro.ctmdp.policy import Policy, RandomizedPolicy
from repro.ctmdp.policy_iteration import policy_iteration
from repro.ctmdp.value_iteration import relative_value_iteration
from repro.dpm import cost as cost_channels
from repro.dpm.analysis import AnalyticMetrics, evaluate_dpm_policy
from repro.dpm.system import PowerManagedSystemModel
from repro.errors import (
    InfeasibleConstraintError,
    InvalidPolicyError,
    SolverError,
)
from repro.obs.log import get_logger
from repro.obs.runtime import active as obs_active

SOLVERS = ("policy_iteration", "value_iteration", "linear_program")

#: Iteration budget for *seeded* policy-iteration solves. DPM models
#: converge in well under ten improvement rounds, and a good seed in one
#: to three -- but a harmful seed can send Howard iteration on a long
#: excursion (hundreds of rounds, sometimes ending at a numerically
#: multichain policy whose evaluation system is singular). Seeds are
#: advisory, so a seeded solve that exceeds this budget is abandoned and
#: re-run cold (``solver.reuse.warm_start_rejected``) rather than chased
#: to wherever the excursion leads. Cold solves keep the solver's own
#: default bound.
WARM_START_MAX_ITERATIONS = 25

logger = get_logger(__name__)


@dataclass(frozen=True)
class OptimizationResult:
    """An optimized policy together with its analytic metrics.

    Attributes
    ----------
    policy:
        The optimal stationary policy (randomized only when produced by
        the constrained LP).
    metrics:
        Exact steady-state metrics under the policy.
    weight:
        The performance weight the policy optimizes (``None`` for the
        directly constrained LP solution).
    """

    policy: Union[Policy, RandomizedPolicy]
    metrics: AnalyticMetrics
    weight: "float | None"


def _build_backend(backend: str) -> str:
    """Map a solver-backend request to the model-build representation."""
    if backend in ("dense", "compiled", "reference"):
        return "dense"
    # "auto" and "sparse" build what they name; "kron" propagates so
    # build_ctmdp raises its typed SYS-has-no-tensor-structure error.
    return backend


def _seed_policy(mdp, initial_policy) -> "Optional[Policy]":
    """Rebind a warm-start seed to *mdp* without validation.

    The seed typically converged on a structural sibling (same states
    and actions, neighboring weight), so its assignment transfers by
    state value; the solver's own row lookup still rejects a stale
    assignment with :class:`InvalidPolicyError`, which callers turn
    into a cold start.
    """
    if initial_policy is None:
        return None
    assignment = (
        initial_policy.as_dict()
        if isinstance(initial_policy, Policy)
        else dict(initial_policy)
    )
    return Policy._trusted(mdp, assignment)


def optimize_weighted(
    model: PowerManagedSystemModel,
    weight: float,
    solver: str = "policy_iteration",
    backend: str = "auto",
    initial_policy: "Optional[Policy]" = None,
    reuse: bool = True,
) -> OptimizationResult:
    """Minimize the average rate of ``C_pow + weight * C_sq``.

    Parameters
    ----------
    model:
        The SYS model.
    weight:
        The performance weight ``w >= 0`` of Eqn. 3.1.
    solver:
        ``"policy_iteration"`` (the paper's algorithm, default),
        ``"value_iteration"``, or ``"linear_program"``. All three agree
        on the optimal gain; they exist separately for the solver
        ablation bench.
    backend:
        Solver backend (see :mod:`repro.ctmdp.backends`); also selects
        the model representation ``build_ctmdp`` constructs, so
        ``backend="sparse"`` runs the whole workflow -- build, solve,
        metric evaluation -- without any dense O(pairs x states)
        allocation. The LP solver is dense-only and rejects sparse/kron
        with a typed error.
    initial_policy:
        Optional warm-start seed for ``solver="policy_iteration"`` --
        typically a neighboring weight's converged policy (the sweeps
        pass it automatically). Policy iteration converges to the same
        fixed point from any admissible start, so the result is
        unchanged; only the number of improvement rounds shrinks. A
        seed the model rejects -- or whose improvement path hits a
        policy the solver cannot evaluate -- falls back to a cold
        start (``solver.reuse.warm_start_rejected``). Other solvers
        ignore it.
    reuse:
        Forwarded to :func:`repro.ctmdp.policy_iteration.policy_iteration`
        (the within-solve reuse ladder on the sparse tier).
    """
    ins = obs_active()
    if ins.metrics is not None:
        ins.metrics.counter("optimizer.weighted_solves").inc()
    with ins.span("optimize_weighted", weight=float(weight), solver=solver) as span:
        if solver == "linear_program" and backend not in (
            "auto", "dense", "compiled"
        ):
            raise SolverError(
                "the occupation-measure LP is dense-only; backend "
                f"{backend!r} is not supported (use policy_iteration or "
                "value_iteration for sparse models)"
            )
        if solver == "linear_program":
            mdp = model.build_ctmdp(weight)
            policy: Union[Policy, RandomizedPolicy] = solve_average_cost_lp(
                mdp
            ).deterministic_policy
        else:
            mdp = model.build_ctmdp(weight, backend=_build_backend(backend))
            if solver == "policy_iteration":
                seed = _seed_policy(mdp, initial_policy)
                if seed is not None and ins.metrics is not None:
                    ins.metrics.counter("solver.reuse.warm_start_seeds").inc()
                try:
                    kwargs = (
                        {"max_iterations": WARM_START_MAX_ITERATIONS}
                        if seed is not None
                        else {}
                    )
                    policy = policy_iteration(
                        mdp, initial_policy=seed, backend=backend,
                        reuse=reuse, **kwargs
                    ).policy
                except (InvalidPolicyError, KeyError, SolverError):
                    if seed is None:
                        raise
                    # A stale seed (e.g. from a structurally different
                    # model) must never change the outcome: re-solve cold.
                    # SolverError covers the subtler hazards: a seeded
                    # improvement path can exhaust its (deliberately
                    # small) iteration budget, or visit an intermediate
                    # policy whose induced chain is (numerically)
                    # multichain -- a singular evaluation system a cold
                    # start never encounters. Warm starts are advisory,
                    # so any such failure falls back to the cold
                    # trajectory.
                    if ins.metrics is not None:
                        ins.metrics.counter(
                            "solver.reuse.warm_start_rejected"
                        ).inc()
                    policy = policy_iteration(
                        mdp, backend=backend, reuse=reuse
                    ).policy
            elif solver == "value_iteration":
                policy = relative_value_iteration(
                    mdp, span_tolerance=1e-9, backend=backend
                ).policy
            else:
                raise SolverError(f"unknown solver {solver!r}; choose from {SOLVERS}")
        metrics = evaluate_dpm_policy(model, policy)
        if ins.enabled:
            span.attrs.update(
                average_power=metrics.average_power,
                average_queue_length=metrics.average_queue_length,
            )
            logger.debug(
                "optimize_weighted(w=%g, solver=%s): power %.6g, queue %.6g",
                weight, solver, metrics.average_power, metrics.average_queue_length,
            )
    return OptimizationResult(policy=policy, metrics=metrics, weight=weight)


def serialize_result(result: OptimizationResult) -> "Dict[str, Any]":
    """A JSON payload reconstructing *result* bit-identically.

    Used by the checkpoint/resume layer: the policy is stored as its
    action list in model state order (actions are plain strings) and
    the metrics as their exact float fields (JSON floats round-trip
    through Python's shortest repr). Only deterministic policies are
    checkpointable -- the weighted sweeps and frontier bisection never
    produce randomized ones.
    """
    if not isinstance(result.policy, Policy):
        raise SolverError(
            "only deterministic policies are checkpointable; got "
            f"{type(result.policy).__name__}"
        )
    assignment = result.policy.as_dict()
    return {
        "weight": result.weight,
        "actions": [assignment[s] for s in result.policy.mdp.states],
        "metrics": dataclasses.asdict(result.metrics),
    }


def deserialize_result(
    model: PowerManagedSystemModel, payload: "Dict[str, Any]"
) -> OptimizationResult:
    """Rebuild a checkpointed :func:`serialize_result` payload.

    The policy is revalidated against the freshly built model, so a
    checkpoint from a drifted configuration fails loudly
    (:class:`~repro.errors.InvalidPolicyError`) instead of evaluating
    garbage; the stored metrics are reused verbatim (exact floats), not
    recomputed.
    """
    mdp = model.build_ctmdp(payload["weight"])
    policy = Policy(mdp, dict(zip(mdp.states, payload["actions"])))
    return OptimizationResult(
        policy=policy,
        metrics=AnalyticMetrics(**payload["metrics"]),
        weight=payload["weight"],
    )


def _warm_chain(
    model: PowerManagedSystemModel,
    weights: Sequence[float],
    solver: str,
    backend: str,
) -> "List[OptimizationResult]":
    """Serial sweep seeding each solve with the previous converged
    policy. Along a weight schedule the optimum is piecewise constant,
    so most solves start at (or one improvement step from) their own
    fixed point."""
    results: "List[OptimizationResult]" = []
    previous: "Optional[Policy]" = None
    for w in weights:
        result = optimize_weighted(
            model, w, solver=solver, backend=backend, initial_policy=previous
        )
        if isinstance(result.policy, Policy):
            previous = result.policy
        results.append(result)
    return results


def sweep_weights(
    model: PowerManagedSystemModel,
    weights: Sequence[float],
    solver: str = "policy_iteration",
    n_jobs: Optional[int] = None,
    checkpoint=None,
    backend: str = "auto",
    warm_start: bool = True,
) -> "List[OptimizationResult]":
    """Solve for every weight in *weights* (the Figure-4 tradeoff curve).

    The weights are independent solves, so ``n_jobs`` fans them out over
    a process pool; results keep the order of *weights* and are
    identical to a serial sweep. An optional
    :class:`repro.robust.checkpoint.Checkpoint` persists each completed
    solve (keyed ``repr(weight)``); on resume, cached weights are
    reconstructed without re-solving and the returned list is identical
    to an uninterrupted sweep.

    Serial policy-iteration sweeps (``n_jobs`` absent or 1) chain warm
    starts by default: each weight's solve is seeded with the previous
    weight's converged policy (``warm_start=False`` restores cold
    starts). Policy iteration reaches the same fixed point either way
    -- the equivalence suite asserts bit-identical results -- the seed
    only cuts the improvement rounds. Process-pool sweeps stay cold:
    workers cannot see each other's results.
    """
    # Imported lazily: repro.sim pulls in repro.policies, which imports
    # back into repro.dpm during package initialization.
    from repro.sim.parallel import parallel_map

    weights = list(weights)
    if checkpoint is not None and backend not in ("auto", "dense", "compiled"):
        raise SolverError(
            "checkpointed sweeps rebuild policies on the dense model "
            f"representation; backend {backend!r} cannot be combined with "
            "a checkpoint"
        )
    chain = (
        warm_start and solver == "policy_iteration" and n_jobs in (None, 1)
    )
    if checkpoint is None:
        if chain:
            return _warm_chain(model, weights, solver, backend)
        return parallel_map(
            lambda w: optimize_weighted(model, w, solver=solver, backend=backend),
            weights,
            n_jobs=n_jobs,
        )
    missing = [w for w in weights if repr(float(w)) not in checkpoint]
    if chain:
        solved = _warm_chain(model, missing, solver, backend)
    else:
        solved = parallel_map(
            lambda w: optimize_weighted(model, w, solver=solver, backend=backend),
            missing,
            n_jobs=n_jobs,
        )
    for w, result in zip(missing, solved):
        checkpoint.put(repr(float(w)), serialize_result(result))
    checkpoint.flush()
    return [
        deserialize_result(model, checkpoint.get(repr(float(w))))
        for w in weights
    ]


def optimize_constrained(
    model: PowerManagedSystemModel,
    max_queue_length: float,
) -> OptimizationResult:
    """Exactly minimize average power s.t. avg queue length <= ``D_M``.

    Uses the occupation-measure LP, which handles the constraint
    natively; the optimum may randomize between two actions in one
    state when the constraint is active.

    Raises
    ------
    InfeasibleConstraintError
        If no stationary policy meets the bound.
    """
    ins = obs_active()
    if ins.metrics is not None:
        ins.metrics.counter("optimizer.constrained_solves").inc()
    with ins.span("optimize_constrained", max_queue_length=float(max_queue_length)):
        mdp = model.build_ctmdp(weight=0.0)
        result = solve_constrained_lp(
            mdp,
            objective=cost_channels.POWER,
            constraints={cost_channels.QUEUE_LENGTH: max_queue_length},
        )
        policy = result.policy
        return OptimizationResult(
            policy=policy, metrics=evaluate_dpm_policy(model, policy), weight=None
        )


def find_weight_for_constraint(
    model: PowerManagedSystemModel,
    max_queue_length: float,
    weight_upper_bound: float = 1e4,
    tolerance: float = 1e-3,
    max_bisections: int = 60,
    solver: str = "policy_iteration",
    backend: str = "auto",
    warm_start: bool = True,
) -> OptimizationResult:
    """The paper's Figure-3 loop: tune ``w`` until the constraint holds.

    Average queue length under the weighted-optimal policy is
    non-increasing in ``w``, so bisection finds the smallest weight
    whose optimal policy satisfies ``avg queue length <= D_M``; smaller
    weights mean lower power, so this is the best deterministic policy
    along the tradeoff curve.

    Parameters
    ----------
    model, solver:
        As in :func:`optimize_weighted`.
    max_queue_length:
        The delay bound ``D_M``.
    weight_upper_bound:
        A weight assumed large enough to satisfy the constraint; checked
        and reported if insufficient.
    tolerance:
        Bisection interval width (in weight units) at which to stop.
    max_bisections:
        Safety bound on iterations.
    warm_start:
        Seed each bisection solve with the converged policy of the
        nearest previously solved weight (default). The optimum is
        piecewise constant in ``w`` and bisection shrinks the interval
        geometrically, so late midpoints almost always start at their
        own fixed point. ``warm_start=False`` restores cold solves;
        either way the bisection visits the same weights and returns
        the same result.

    Raises
    ------
    InfeasibleConstraintError
        If even ``weight_upper_bound`` cannot meet the bound.
    """
    ins = obs_active()
    solved: "List[tuple]" = []  # (weight, converged policy)

    def solve(w: float) -> OptimizationResult:
        seed = None
        if warm_start and solver == "policy_iteration" and solved:
            seed = min(solved, key=lambda item: abs(item[0] - w))[1]
        result = optimize_weighted(
            model, w, solver=solver, backend=backend, initial_policy=seed
        )
        if isinstance(result.policy, Policy):
            solved.append((w, result.policy))
        return result

    with ins.span(
        "find_weight_for_constraint",
        max_queue_length=float(max_queue_length),
        solver=solver,
    ) as span:
        low = 0.0
        low_result = solve(low)
        if low_result.metrics.average_queue_length <= max_queue_length:
            if ins.enabled:
                span.attrs.update(weight=low, bisections=0)
            return low_result
        high = weight_upper_bound
        high_result = solve(high)
        if high_result.metrics.average_queue_length > max_queue_length:
            raise InfeasibleConstraintError(
                f"queue-length bound {max_queue_length:g} unreachable even at "
                f"weight {weight_upper_bound:g} "
                f"(achieved {high_result.metrics.average_queue_length:g})"
            )
        best = high_result
        bisections = 0
        for _ in range(max_bisections):
            if high - low <= tolerance:
                break
            mid = 0.5 * (low + high)
            mid_result = solve(mid)
            bisections += 1
            if mid_result.metrics.average_queue_length <= max_queue_length:
                high = mid
                best = mid_result
            else:
                low = mid
        if ins.enabled:
            span.attrs.update(weight=best.weight, bisections=bisections)
        return best
