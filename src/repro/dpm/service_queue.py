"""The service queue (SQ) state space with transfer states.

Section III models the SQ after an M/M/1 queue of capacity ``Q``
(requests arriving at a full queue are lost), with two kinds of states:

- *stable* states ``q_0 .. q_Q`` -- ``q_i`` means ``i`` requests are in
  the system (the request in service, if any, is counted); and
- *transfer* states ``q_{i -> i-1}`` for ``i = 1 .. Q`` -- occupied
  between finishing the service of one request and starting the next,
  exactly while the SP performs the mode switch the PM commanded at the
  completion instant. Transfer states are the paper's novelty over [11]:
  they let the joint model distinguish the SP's busy and idle phases and
  capture the SQ/SP correlation.

Delay accounting (Section III): the delay cost ``C_sq`` is ``i`` in
stable state ``q_i`` and ``i`` in transfer state ``q_{i+1 -> i}``, i.e.
a transfer state counts the requests that *remain* after the completed
one departed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import InvalidModelError

STABLE = "stable"
TRANSFER = "transfer"


@dataclass(frozen=True, order=True)
class QueueState:
    """One SQ state.

    Attributes
    ----------
    kind:
        ``"stable"`` or ``"transfer"``.
    index:
        For stable states, the number of requests in the system
        (``q_index``). For transfer states, the ``i`` of
        ``q_{i -> i-1}`` -- the system held ``i`` requests when the
        service completed.
    """

    kind: str
    index: int

    def __post_init__(self) -> None:
        if self.kind not in (STABLE, TRANSFER):
            raise InvalidModelError(f"unknown queue-state kind {self.kind!r}")
        if self.kind == STABLE and self.index < 0:
            raise InvalidModelError(f"stable index must be >= 0, got {self.index}")
        if self.kind == TRANSFER and self.index < 1:
            raise InvalidModelError(f"transfer index must be >= 1, got {self.index}")

    @property
    def is_stable(self) -> bool:
        return self.kind == STABLE

    @property
    def is_transfer(self) -> bool:
        return self.kind == TRANSFER

    @property
    def waiting_count(self) -> int:
        """The delay cost ``C_sq`` of this state (Section III).

        ``i`` for stable ``q_i``; ``i - 1`` for transfer
        ``q_{i -> i-1}`` (the completed request has departed).
        """
        return self.index if self.is_stable else self.index - 1

    def __repr__(self) -> str:
        if self.is_stable:
            return f"q{self.index}"
        return f"q{self.index}->{self.index - 1}"


def stable(index: int) -> QueueState:
    """The stable state ``q_index``."""
    return QueueState(STABLE, index)


def transfer(index: int) -> QueueState:
    """The transfer state ``q_{index -> index-1}``."""
    return QueueState(TRANSFER, index)


def stable_states(capacity: int) -> "List[QueueState]":
    """``q_0 .. q_Q`` for capacity ``Q`` (the paper's ``Q_stable``)."""
    if capacity < 1:
        raise InvalidModelError(f"queue capacity must be >= 1, got {capacity}")
    return [stable(i) for i in range(capacity + 1)]


def transfer_states(capacity: int) -> "List[QueueState]":
    """``q_{1->0} .. q_{Q->Q-1}`` (the paper's ``Q_transfer``)."""
    if capacity < 1:
        raise InvalidModelError(f"queue capacity must be >= 1, got {capacity}")
    return [transfer(i) for i in range(1, capacity + 1)]


def queue_states(capacity: int, include_transfer: bool = True) -> "List[QueueState]":
    """All SQ states, stable block first.

    ``include_transfer=False`` gives the ablation variant without
    transfer states (the [11]-style queue).
    """
    states = stable_states(capacity)
    if include_transfer:
        states.extend(transfer_states(capacity))
    return states
