"""Loading SYS model configurations from JSON files.

The on-disk format mirrors the :class:`ServiceProvider` constructor:

.. code-block:: json

    {
      "provider": {
        "modes": ["active", "standby", "sleep"],
        "switching_rates": [[0, 10, 10], [100, 0, 10], [2, 2, 0]],
        "service_rates": [0.5, 0, 0],
        "power": [2.3, 0.8, 0.1],
        "switching_energy": [[0, 0.1, 0.4], [0.1, 0, 0.3], [2, 1.5, 0]],
        "self_switch_rate": 10000.0
      },
      "arrival_rate": 0.166,
      "capacity": 5,
      "include_transfer_states": true
    }

``switching_times`` (mean transition delays, the paper's Table) may be
given instead of ``switching_rates``. Malformed files raise
:class:`~repro.errors.InvalidModelError` with the offending key, so the
``validate`` CLI can point at the exact configuration problem; the
*values* are then judged by the admission gate, not here.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict

import numpy as np

from repro.errors import InvalidModelError


def _require(config: "Dict[str, Any]", key: str, where: str) -> Any:
    if key not in config:
        raise InvalidModelError(f"config is missing {where}{key!r}")
    return config[key]


def load_config(path: "str | os.PathLike") -> "Dict[str, Any]":
    """Parse a config file into a dict, with typed errors."""
    try:
        with open(path) as fh:
            config = json.load(fh)
    except OSError as exc:
        raise InvalidModelError(f"cannot read config {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise InvalidModelError(f"config {path} is not valid JSON: {exc}") from exc
    if not isinstance(config, dict):
        raise InvalidModelError(
            f"config {path} must be a JSON object, got {type(config).__name__}"
        )
    return config


def system_from_config(config: "Dict[str, Any]"):
    """Build a :class:`PowerManagedSystemModel` from a parsed config.

    Raises :class:`InvalidModelError` on missing/ill-typed keys; the
    provider/requestor constructors and the entry-level admission gate
    then enforce the value domains.
    """
    from repro.dpm.service_provider import ServiceProvider
    from repro.dpm.service_requestor import ServiceRequestor
    from repro.dpm.system import PowerManagedSystemModel

    p = _require(config, "provider", "")
    if not isinstance(p, dict):
        raise InvalidModelError("config 'provider' must be a JSON object")
    modes = _require(p, "modes", "provider.")
    kwargs: Dict[str, Any] = {}
    if "self_switch_rate" in p:
        kwargs["self_switch_rate"] = float(p["self_switch_rate"])
    try:
        if "switching_times" in p:
            provider = ServiceProvider.from_switching_times(
                modes=modes,
                switching_times=np.asarray(p["switching_times"], dtype=float),
                service_rates=np.asarray(
                    _require(p, "service_rates", "provider."), dtype=float),
                power=np.asarray(_require(p, "power", "provider."), dtype=float),
                switching_energy=np.asarray(
                    _require(p, "switching_energy", "provider."), dtype=float),
                **kwargs,
            )
        else:
            provider = ServiceProvider(
                modes,
                np.asarray(
                    _require(p, "switching_rates", "provider."), dtype=float),
                np.asarray(
                    _require(p, "service_rates", "provider."), dtype=float),
                np.asarray(_require(p, "power", "provider."), dtype=float),
                np.asarray(
                    _require(p, "switching_energy", "provider."), dtype=float),
                **kwargs,
            )
    except (TypeError, ValueError) as exc:
        raise InvalidModelError(f"malformed provider arrays: {exc}") from exc
    requestor = ServiceRequestor(float(_require(config, "arrival_rate", "")))
    return PowerManagedSystemModel(
        provider,
        requestor,
        int(_require(config, "capacity", "")),
        include_transfer_states=bool(
            config.get("include_transfer_states", True)),
    )


def load_system(path: "str | os.PathLike"):
    """Load a config file straight into a SYS model."""
    return system_from_config(load_config(path))
