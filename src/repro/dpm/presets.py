"""Device presets: the paper's experimental setup plus example devices.

:func:`paper_service_provider` and :func:`paper_system` encode Section V
exactly:

- a three-mode server ``active / waiting / sleeping``;
- mean switching times (seconds, Eqn. 4.1(a))::

      tr_time =  [ -    0.1  0.2 ]     rows: from active/waiting/sleeping
                 [ 0.5  -    0.1 ]     cols: to   active/waiting/sleeping
                 [ 1.1  0.5  -   ]

- switching energies (joules, Eqn. 4.1(b))::

      tr_energy = [ -    0.2  0.5 ]
                  [ 1    -    0.1 ]
                  [ 11   25   -   ]

- power 40 W / 15 W / 0.1 W for active / waiting / sleeping;
- service rate ``mu = 1/1.5`` in active (mean service time 1.5 s);
- queue capacity ``Q = 5``; arrival rate ``lambda = 1/6`` (mean
  inter-arrival 6 s).

The disk-drive and wireless-NIC presets are plausible devices for the
examples (constants in the style of published ACPI/disk datasheets, not
from the paper).
"""

from __future__ import annotations

import numpy as np

from repro.dpm.service_provider import DEFAULT_SELF_SWITCH_RATE, ServiceProvider
from repro.dpm.service_requestor import ServiceRequestor
from repro.dpm.system import PowerManagedSystemModel

#: Section V constants.
PAPER_MODES = ("active", "waiting", "sleeping")
PAPER_ARRIVAL_RATE = 1.0 / 6.0
PAPER_SERVICE_RATE = 1.0 / 1.5
PAPER_QUEUE_CAPACITY = 5
PAPER_POWER = (40.0, 15.0, 0.1)
PAPER_SWITCHING_TIMES = np.array(
    [
        [0.0, 0.1, 0.2],
        [0.5, 0.0, 0.1],
        [1.1, 0.5, 0.0],
    ]
)
PAPER_SWITCHING_ENERGY = np.array(
    [
        [0.0, 0.2, 0.5],
        [1.0, 0.0, 0.1],
        [11.0, 25.0, 0.0],
    ]
)
PAPER_N_REQUESTS = 50_000


def paper_service_provider(
    self_switch_rate: float = DEFAULT_SELF_SWITCH_RATE,
) -> ServiceProvider:
    """The Section-V three-mode server.

    ``self_switch_rate`` tunes the finite stand-in for the paper's
    instantaneous self-switch; lower it (e.g. to ~50) when feeding the
    model to stiffness-sensitive solvers such as value iteration.
    """
    return ServiceProvider.from_switching_times(
        modes=PAPER_MODES,
        switching_times=PAPER_SWITCHING_TIMES,
        service_rates=(PAPER_SERVICE_RATE, 0.0, 0.0),
        power=PAPER_POWER,
        switching_energy=PAPER_SWITCHING_ENERGY,
        self_switch_rate=self_switch_rate,
    )


def paper_system(
    arrival_rate: float = PAPER_ARRIVAL_RATE,
    capacity: int = PAPER_QUEUE_CAPACITY,
    include_transfer_states: bool = True,
    self_switch_rate: "float | None" = None,
) -> PowerManagedSystemModel:
    """The full Section-V SYS model, arrival rate overridable
    (Figure 5 sweeps it from 1/8 to 1/3)."""
    provider = (
        paper_service_provider()
        if self_switch_rate is None
        else paper_service_provider(self_switch_rate)
    )
    return PowerManagedSystemModel(
        provider=provider,
        requestor=ServiceRequestor(arrival_rate),
        capacity=capacity,
        include_transfer_states=include_transfer_states,
    )


def disk_drive_provider() -> ServiceProvider:
    """A four-mode hard disk: active / idle / standby / sleep.

    Idle keeps the platter spinning (fast resume, high power); standby
    parks the heads; sleep spins down entirely (large spin-up energy).
    """
    modes = ("active", "idle", "standby", "sleep")
    switching_times = np.array(
        [
            [0.0, 0.01, 0.5, 2.0],
            [0.05, 0.0, 0.3, 1.5],
            [1.0, 0.8, 0.0, 0.5],
            [5.0, 4.5, 2.5, 0.0],
        ]
    )
    switching_energy = np.array(
        [
            [0.0, 0.05, 0.8, 2.0],
            [0.3, 0.0, 0.5, 1.5],
            [4.0, 3.5, 0.0, 0.3],
            [18.0, 16.0, 6.0, 0.0],
        ]
    )
    return ServiceProvider.from_switching_times(
        modes=modes,
        switching_times=switching_times,
        service_rates=(1.0 / 0.02, 0.0, 0.0, 0.0),
        power=(2.5, 1.0, 0.4, 0.05),
        switching_energy=switching_energy,
    )


def wireless_nic_provider() -> ServiceProvider:
    """A three-mode wireless interface: transmit / doze / off.

    Transmission is fast (ms-scale packets); doze wakes quickly; off
    needs re-association, costing time and energy.
    """
    modes = ("transmit", "doze", "off")
    switching_times = np.array(
        [
            [0.0, 0.002, 0.01],
            [0.005, 0.0, 0.008],
            [0.3, 0.25, 0.0],
        ]
    )
    switching_energy = np.array(
        [
            [0.0, 0.001, 0.004],
            [0.002, 0.0, 0.001],
            [0.35, 0.3, 0.0],
        ]
    )
    return ServiceProvider.from_switching_times(
        modes=modes,
        switching_times=switching_times,
        service_rates=(1.0 / 0.005, 0.0, 0.0),
        power=(1.4, 0.045, 0.0),
        switching_energy=switching_energy,
    )
