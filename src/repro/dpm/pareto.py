"""Exact power--delay Pareto frontiers (the full Figure-4 curve).

The weighted-cost optimum is piecewise constant in the weight ``w``:
finitely many deterministic policies partition ``[0, inf)`` into
intervals. :func:`deterministic_frontier` recovers *every* breakpoint by
recursive weight bisection -- no grid to tune, no missed Pareto points
-- returning the complete deterministic frontier.

Randomized (occupation-measure) policies fill in the lower convex hull
between deterministic vertices; :func:`randomized_frontier` evaluates
it at chosen delay levels through the constrained LP. Together they
give both curves of the Figure-4 story exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.ctmdp.policy import Policy
from repro.dpm.analysis import AnalyticMetrics, evaluate_dpm_policy
from repro.dpm.optimizer import (
    deserialize_result,
    optimize_constrained,
    optimize_weighted,
    serialize_result,
)
from repro.dpm.system import PowerManagedSystemModel
from repro.errors import SolverError
from repro.obs.log import get_logger
from repro.obs.runtime import active as obs_active

logger = get_logger(__name__)


@dataclass(frozen=True)
class FrontierPoint:
    """One deterministic Pareto point.

    Attributes
    ----------
    weight:
        A weight whose optimal policy realizes this point (the smallest
        one encountered).
    policy:
        The deterministic optimal policy.
    metrics:
        Its exact steady-state metrics.
    """

    weight: float
    policy: Policy
    metrics: AnalyticMetrics

    @property
    def power(self) -> float:
        return self.metrics.average_power

    @property
    def delay(self) -> float:
        return self.metrics.average_queue_length


def _point_key(metrics: AnalyticMetrics) -> "tuple[float, float]":
    return (round(metrics.average_power, 9), round(metrics.average_queue_length, 9))


def deterministic_frontier(
    model: PowerManagedSystemModel,
    max_weight: float = 1e3,
    weight_tolerance: float = 1e-4,
    solver: str = "policy_iteration",
    max_points: int = 200,
    checkpoint=None,
    backend: str = "auto",
    warm_start: bool = True,
) -> "List[FrontierPoint]":
    """All deterministic Pareto points reachable by weighted optimization.

    Recursive bisection on the weight axis: whenever the optima at the
    two ends of an interval differ, the interval is split until either
    the endpoints agree or the interval is narrower than
    *weight_tolerance* (the remaining gap cannot hide a point whose
    weight interval is wider than that).

    Parameters
    ----------
    model:
        The SYS model.
    max_weight:
        Right end of the explored weight range; beyond it the optimum
        has long saturated at the minimum-delay policy for any sensible
        device.
    weight_tolerance:
        Bisection resolution on the weight axis.
    solver:
        Passed to :func:`repro.dpm.optimizer.optimize_weighted`.
    backend:
        Solver/model backend, passed to
        :func:`repro.dpm.optimizer.optimize_weighted`; non-dense
        backends cannot be combined with a checkpoint (checkpoint
        replay rebuilds policies on the dense representation).
    max_points:
        Safety bound on the number of distinct points collected.
    checkpoint:
        Optional :class:`repro.robust.checkpoint.Checkpoint`. Every
        solved weight is persisted (keyed ``repr(weight)``); resuming a
        killed sweep replays cached solves exactly, so the bisection
        revisits the same weights and the final frontier is
        bit-identical to an uninterrupted run.
    warm_start:
        Seed each bisection solve with the converged policy of the
        nearest previously solved weight (default;
        ``solver="policy_iteration"`` only). The bisection explores
        ever-narrower intervals, so most solves start inside their own
        optimality interval and converge in one round. Policy iteration
        reaches the same fixed point from any start, so the frontier --
        points, policies, metrics -- is identical with or without
        seeding (the warm-sweep suite asserts it bit-for-bit).

    Returns
    -------
    Points sorted by increasing delay (hence decreasing power).
    """
    if max_weight <= 0:
        raise SolverError(f"max_weight must be positive, got {max_weight}")
    if checkpoint is not None and backend not in ("auto", "dense", "compiled"):
        raise SolverError(
            "checkpointed frontiers rebuild policies on the dense model "
            f"representation; backend {backend!r} cannot be combined with "
            "a checkpoint"
        )
    ins = obs_active()
    points: "dict[tuple, FrontierPoint]" = {}
    solves = 0
    solved: "List[tuple]" = []  # (weight, converged policy) seeds

    def record(weight: float) -> "tuple":
        nonlocal solves
        ckpt_key = repr(float(weight))
        if checkpoint is not None and ckpt_key in checkpoint:
            result = deserialize_result(model, checkpoint.get(ckpt_key))
        else:
            seed = None
            if warm_start and solver == "policy_iteration" and solved:
                seed = min(solved, key=lambda item: abs(item[0] - weight))[1]
            result = optimize_weighted(
                model, weight, solver=solver, backend=backend,
                initial_policy=seed,
            )
            solves += 1
            if checkpoint is not None:
                checkpoint.put(ckpt_key, serialize_result(result))
        if isinstance(result.policy, Policy):
            solved.append((weight, result.policy))
        key = _point_key(result.metrics)
        existing = points.get(key)
        if existing is None or weight < existing.weight:
            points[key] = FrontierPoint(
                weight=weight, policy=result.policy, metrics=result.metrics
            )
        return key

    with ins.span(
        "deterministic_frontier", max_weight=float(max_weight), solver=solver
    ) as span:
        key_left = record(0.0)
        key_right = record(max_weight)
        # Explicit work stack instead of recursion: a pathological
        # combination of tiny weight_tolerance and wide weight range would
        # otherwise hit the interpreter recursion limit. Pushing the right
        # half first keeps the left-first depth-first order of the original
        # recursive exploration.
        stack = [(0.0, key_left, max_weight, key_right)]
        while stack:
            w_lo, key_lo, w_hi, key_hi = stack.pop()
            if key_lo == key_hi or w_hi - w_lo <= weight_tolerance:
                continue
            if len(points) >= max_points:
                raise SolverError(
                    f"frontier exceeded {max_points} points; "
                    "raise max_points if this model is genuinely that rich"
                )
            w_mid = 0.5 * (w_lo + w_hi)
            key_mid = record(w_mid)
            stack.append((w_mid, key_mid, w_hi, key_hi))
            stack.append((w_lo, key_lo, w_mid, key_mid))
        if ins.enabled:
            span.attrs.update(points=len(points), solves=solves)
            logger.debug(
                "deterministic frontier: %d points from %d solves",
                len(points), solves,
            )
    if checkpoint is not None:
        checkpoint.flush()
    return sorted(points.values(), key=lambda p: p.delay)


def randomized_frontier(
    model: PowerManagedSystemModel,
    delays: "List[float]",
) -> "List[AnalyticMetrics]":
    """Exact minimum power at each delay bound (convex lower hull).

    Each entry solves the constrained LP at one delay level; the result
    interpolates between (and never exceeds) the deterministic points.
    """
    return [optimize_constrained(model, d).metrics for d in delays]


def dominated_by_frontier(
    frontier: "List[FrontierPoint]",
    power: float,
    delay: float,
    slack: float = 1e-9,
) -> bool:
    """True if some frontier point weakly dominates ``(power, delay)``."""
    return any(
        p.power <= power + slack and p.delay <= delay + slack for p in frontier
    )
