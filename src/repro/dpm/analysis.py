"""Exact steady-state evaluation of a DPM policy on the SYS model.

Given any stationary policy on the joint CTMDP, the stationary
distribution of the induced chain yields the paper's "functional values"
(Section V): average power, average number of waiting requests, loss
rate, and -- via Little's law -- the average waiting time. These are the
analytic counterparts of the quantities the event-driven simulator
measures; Figure 4's accompanying claim is that they agree closely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.ctmdp.policy import Policy, RandomizedPolicy
from repro.dpm import cost as cost_channels
from repro.dpm.system import PowerManagedSystemModel


@dataclass(frozen=True)
class AnalyticMetrics:
    """Steady-state metrics of a policy on the SYS model.

    Attributes
    ----------
    average_power:
        Long-run average power in watts, switching energy included.
    average_queue_length:
        Long-run average of ``C_sq`` (waiting requests, in-service
        request counted).
    loss_rate:
        Requests lost per second (arrivals hitting a full queue).
    accepted_rate:
        ``lambda - loss_rate``: throughput in steady state.
    average_waiting_time:
        Little's law on accepted traffic:
        ``average_queue_length / accepted_rate``.
    paper_waiting_time_approximation:
        The paper's cruder form using the raw input rate:
        ``average_queue_length / lambda`` (Table 1 inverts this to
        approximate the queue length from a measured waiting time).
    """

    average_power: float
    average_queue_length: float
    loss_rate: float
    accepted_rate: float
    average_waiting_time: float
    paper_waiting_time_approximation: float


def evaluate_dpm_policy(
    model: PowerManagedSystemModel,
    policy: Union[Policy, RandomizedPolicy],
) -> AnalyticMetrics:
    """Compute :class:`AnalyticMetrics` for *policy* on *model*.

    The policy must have been built on a CTMDP produced by
    ``model.build_ctmdp`` (any weight -- the extra-cost channels carry
    the weight-independent power and delay rates). Policies over the
    sparse SYS build (``build_ctmdp(..., backend="sparse")``) evaluate
    through the CSR stationary solver without densifying anything.
    """
    from repro.ctmdp.sparse import SparseCTMDP, sparse_stationary_distribution

    if isinstance(policy.mdp, SparseCTMDP):
        smdp = policy.mdp
        sel = smdp.policy_rows(policy.as_dict())
        p = sparse_stationary_distribution(smdp.generator[sel])
        power = float(p @ smdp.extra[cost_channels.POWER][sel])
        queue_length = float(p @ smdp.extra[cost_channels.QUEUE_LENGTH][sel])
        loss = float(p @ smdp.extra[cost_channels.LOSS][sel])
    else:
        chain_generator = policy.generator_matrix()
        from repro.markov.generator import stationary_distribution

        p = stationary_distribution(chain_generator)
        power = float(p @ policy.extra_cost_vector(cost_channels.POWER))
        queue_length = float(p @ policy.extra_cost_vector(cost_channels.QUEUE_LENGTH))
        loss = float(p @ policy.extra_cost_vector(cost_channels.LOSS))
    lam = model.requestor.rate
    accepted = max(lam - loss, 0.0)
    waiting = queue_length / accepted if accepted > 0 else np.inf
    return AnalyticMetrics(
        average_power=power,
        average_queue_length=queue_length,
        loss_rate=loss,
        accepted_rate=accepted,
        average_waiting_time=waiting,
        paper_waiting_time_approximation=queue_length / lam,
    )


def state_probabilities(policy: Union[Policy, RandomizedPolicy]) -> "dict":
    """Stationary probability of each joint state under *policy*."""
    from repro.markov.generator import stationary_distribution

    p = stationary_distribution(policy.generator_matrix())
    return {state: float(p[i]) for i, state in enumerate(policy.mdp.states)}


def wakeup_latency(
    model: PowerManagedSystemModel,
    policy: Union[Policy, RandomizedPolicy],
) -> "dict":
    """Mean time from each powered-down state until the SP is active.

    The transient face of the tradeoff that stationary averages hide: a
    policy may look mild on average queue length yet make the *first*
    request after an idle period wait long. Computed as the mean
    first-passage time of the policy-induced chain into the set of
    active-mode joint states, keyed by the inactive-mode joint states.
    """
    from repro.markov.passage import mean_first_passage_times

    g = policy.generator_matrix()
    states = list(policy.mdp.states)
    active_indices = [
        i for i, x in enumerate(states) if model.provider.is_active(x.mode)
    ]
    m = mean_first_passage_times(g, active_indices)
    return {
        state: float(m[i])
        for i, state in enumerate(states)
        if not model.provider.is_active(state.mode)
    }
