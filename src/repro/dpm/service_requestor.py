"""The service requestor (SR) model.

Section III: the SR has a single request-generating mode; inter-arrival
times are exponential with mean ``1/lambda`` (a Poisson process). The
paper notes that the rate of a real, slowly-varying source can be
re-estimated online from ~50 observed events within about 5 % error;
that adaptive loop lives in :mod:`repro.dpm.adaptive`, while this module
is the model-side description used to build the joint CTMDP.
"""

from __future__ import annotations

import math

from repro.errors import InvalidModelError


class ServiceRequestor:
    """A single-mode Poisson request source.

    Parameters
    ----------
    rate:
        The arrival rate ``lambda`` (requests per second); must be
        positive.
    """

    def __init__(self, rate: float) -> None:
        if not rate > 0 or not math.isfinite(rate):
            raise InvalidModelError(
                f"arrival rate must be positive and finite, got {rate}"
            )
        self._rate = float(rate)

    @property
    def rate(self) -> float:
        """Arrival rate ``lambda``."""
        return self._rate

    @property
    def mean_interarrival_time(self) -> float:
        """``1 / lambda``."""
        return 1.0 / self._rate

    def with_rate(self, rate: float) -> "ServiceRequestor":
        """A copy at a different rate (used by adaptive re-solving)."""
        return ServiceRequestor(rate)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ServiceRequestor(rate={self._rate:g})"
