"""The joint power-managed system (SYS) model of Section III.

The SYS is the composition of the SP and SQ processes over the state set

``X = S x Q_stable  U  S_active x Q_transfer``

(Section III): every SP mode pairs with every stable queue state, while
transfer states only pair with *active* modes (a transfer state begins
at a service completion, which only an active mode can produce).

Actions are destination SP modes. The transition mechanics are:

stable ``(s, q_i)`` under action ``a``:

- *arrival* ``-> (s, q_{i+1})`` at rate ``lambda`` (``i < Q``; at
  ``i = Q`` the arrival is lost -- no transition, tracked as a loss
  rate),
- *mode switch* ``-> (a, q_i)`` at rate ``chi[s, a]`` when ``a != s``,
  paying ``ene(s, a)``,
- *service completion* ``-> (s, q_{i -> i-1})`` at rate ``mu(s)`` when
  ``i >= 1`` and ``s`` is active;

transfer ``(s, q_{i -> i-1})`` under action ``a``:

- *switch completion* ``-> (a, q_{i-1})`` at rate ``chi[s, a]`` paying
  ``ene(s, a)`` -- the SQ leaves the transfer state exactly when the SP
  transition completes (the paper's concurrency constraint). For
  ``a == s`` the paper's rate is infinite (instantaneous self-switch);
  we use the provider's large finite ``self_switch_rate`` stand-in,
- *arrival* ``-> (s, q_{i+1 -> i})`` at rate ``lambda`` (``i < Q``; the
  paper leaves the ``i = Q`` boundary unspecified "for brevity" -- we
  drop such arrivals as lost, which keeps the generator conservative).

Action-validity constraints (Section III):

1. In a stable state an active SP may not switch to an inactive mode
   (service must not be interrupted).
2. In stable ``q_Q`` (full queue) an inactive SP may not move to an
   inactive mode with a longer wakeup time. We apply the strict form --
   the destination must be active or have *strictly shorter* wakeup
   time -- so that every admissible policy makes progress toward an
   active mode at a full queue, guaranteeing a unichain joint process
   (the paper's stated purpose for this constraint).
3. In transfer ``q_{Q -> Q-1}`` an active SP may not move to an active
   mode with a longer service time.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.ctmdp.model import CTMDP
from repro.dpm import cost as cost_channels
from repro.dpm.cost import CostRates
from repro.dpm.service_provider import ServiceProvider
from repro.dpm.service_queue import QueueState, stable, transfer
from repro.dpm.service_requestor import ServiceRequestor
from repro.errors import InvalidModelError


@dataclass(frozen=True, order=True)
class SystemState:
    """A joint SYS state ``x = (s, q)``."""

    mode: str
    queue: QueueState

    def __repr__(self) -> str:
        return f"({self.mode},{self.queue!r})"


class PowerManagedSystemModel:
    """The SYS controllable Markov process and its CTMDP builder.

    Parameters
    ----------
    provider:
        The SP model.
    requestor:
        The SR model (supplies the arrival rate ``lambda``).
    capacity:
        Queue capacity ``Q``; requests arriving at a full queue are
        lost.
    include_transfer_states:
        ``True`` (default) builds the paper's model. ``False`` builds
        the ablation variant in the spirit of [11]: no transfer states,
        service completions go directly ``q_i -> q_{i-1}``, and
        constraint (1) is dropped (the SP may power down mid-service --
        exactly the inaccuracy the transfer states remove).
    rate_scale:
        Time-unit rescaling applied to every built CTMDP: transition
        and cost *rates* are multiplied by this factor, while pure
        costs (switching energies) and dimensionless observables (the
        extra-cost channels) stay in original units. Policies, biases
        and stationary distributions are invariant; solver gains come
        out multiplied by ``rate_scale``. The admission remediation
        ladder uses exact powers of two, for which the whole transform
        is exact on IEEE-754 floats -- dividing a gain by
        ``rate_scale`` recovers the original-unit value bit-for-bit.
    """

    #: Name of the extra-cost channel carrying the effective power rate.
    POWER = cost_channels.POWER
    #: Name of the extra-cost channel carrying the delay cost C_sq.
    QUEUE_LENGTH = cost_channels.QUEUE_LENGTH
    #: Name of the extra-cost channel carrying the request-loss rate.
    LOSS = cost_channels.LOSS

    #: Number of per-weight CTMDPs kept by :meth:`build_ctmdp`.
    CTMDP_CACHE_SIZE = 16

    def __init__(
        self,
        provider: ServiceProvider,
        requestor: ServiceRequestor,
        capacity: int,
        include_transfer_states: bool = True,
        rate_scale: float = 1.0,
    ) -> None:
        if capacity < 1:
            raise InvalidModelError(f"queue capacity must be >= 1, got {capacity}")
        if not (np.isfinite(rate_scale) and rate_scale > 0.0):
            raise InvalidModelError(
                f"rate_scale must be finite and positive, got {rate_scale!r}"
            )
        self.provider = provider
        self.requestor = requestor
        self.capacity = int(capacity)
        self.include_transfer_states = bool(include_transfer_states)
        self.rate_scale = float(rate_scale)
        # Entry-level admission: cheap input-domain checks shared with
        # every other entry point (lazy import -- repro.robust.admission
        # itself builds models through this class at deeper levels).
        from repro.robust.admission import admit_inputs

        admit_inputs(provider, requestor, self.capacity)
        self._states = self._enumerate_states()
        self._index = {x: i for i, x in enumerate(self._states)}
        # Weight-independent (state, action) structure -- transition-rate
        # and impulse vectors plus cost channels -- computed lazily once;
        # only the weighted cost rate differs between built CTMDPs.
        self._structure: "List[tuple] | None" = None
        # Weight-independent sparse skeleton: a structural SparseCTMDP
        # (CSR pattern, rates, extra channels) plus the per-pair cost
        # decomposition; per-weight builds overlay costs onto it.
        self._sparse_skeleton: "tuple | None" = None
        # LRU of built CTMDPs, keyed per (weight, backend) pair -- a
        # dense and a sparse build of the same weight coexist. Each
        # cached model carries its own lowering, so workflows that
        # re-solve the same weight (frontier bisection, constrained
        # search) skip both the Python construction and the lowering.
        self._ctmdp_cache: "OrderedDict[Tuple[float, str], CTMDP]" = (
            OrderedDict()
        )

    # -- state space -----------------------------------------------------------

    def _enumerate_states(self) -> "List[SystemState]":
        states = [
            SystemState(mode, stable(i))
            for mode in self.provider.modes
            for i in range(self.capacity + 1)
        ]
        if self.include_transfer_states:
            states.extend(
                SystemState(mode, transfer(i))
                for mode in self.provider.active_modes
                for i in range(1, self.capacity + 1)
            )
        return states

    @property
    def states(self) -> "List[SystemState]":
        """All joint states, stable block first."""
        return list(self._states)

    @property
    def n_states(self) -> int:
        return len(self._states)

    def index_of(self, state: SystemState) -> int:
        try:
            return self._index[state]
        except KeyError:
            raise InvalidModelError(f"unknown system state {state!r}") from None

    # -- action validity ---------------------------------------------------------

    def is_valid_action(self, state: SystemState, action: str) -> bool:
        """Apply the Section-III constraints (see module docstring)."""
        sp = self.provider
        if action not in sp.modes:
            return False
        s, q = state.mode, state.queue
        if q.is_stable:
            if (
                self.include_transfer_states
                and sp.is_active(s)
                and not sp.is_active(action)
            ):
                return False  # constraint (1): never interrupt service
            if q.index == self.capacity and not sp.is_active(s):
                # constraint (2), strict form: make progress toward active.
                if not sp.is_active(action) and not (
                    sp.wakeup_time(action) < sp.wakeup_time(s)
                ):
                    return False
            return True
        # transfer state: only reachable with s active
        if q.index == self.capacity and sp.is_active(action):
            # constraint (3): no slower active mode at a nearly full queue.
            if sp.service_time(action) > sp.service_time(s):
                return False
        return True

    def valid_actions(self, state: SystemState) -> "List[str]":
        """Valid destination modes, provider order."""
        actions = [a for a in self.provider.modes if self.is_valid_action(state, a)]
        if not actions:  # pragma: no cover - constraints always leave active modes
            raise InvalidModelError(f"state {state!r} has no valid action")
        return actions

    # -- transition mechanics ---------------------------------------------------

    def transition_rates(
        self, state: SystemState, action: str
    ) -> "Dict[SystemState, float]":
        """Outgoing rates of *state* under *action* (no validity check).

        Exposed separately from :meth:`build_ctmdp` so that structural
        tests can compare these mechanics against the paper's tensor
        construction block by block.
        """
        sp = self.provider
        lam = self.requestor.rate
        s, q = state.mode, state.queue
        rates: Dict[SystemState, float] = {}

        def add(dest: SystemState, rate: float) -> None:
            if rate > 0.0:
                rates[dest] = rates.get(dest, 0.0) + rate

        if q.is_stable:
            if q.index < self.capacity:
                add(SystemState(s, stable(q.index + 1)), lam)
            if action != s:
                add(SystemState(action, q), sp.switching_rate(s, action))
            mu = sp.service_rate(s)
            if mu > 0.0 and q.index >= 1:
                if self.include_transfer_states:
                    add(SystemState(s, transfer(q.index)), mu)
                else:
                    add(SystemState(s, stable(q.index - 1)), mu)
        else:
            add(
                SystemState(action, stable(q.index - 1)),
                sp.switching_rate(s, action),
            )
            if q.index < self.capacity:
                add(SystemState(s, transfer(q.index + 1)), lam)
        return rates

    def loss_rate(self, state: SystemState) -> float:
        """Rate at which arriving requests are lost in *state*."""
        if state.queue.index == self.capacity:
            return self.requestor.rate
        return 0.0

    def effective_power_rate(self, state: SystemState, action: str) -> float:
        """``C_pow(x, a) = pow(s) + sum_{s'} s_{s,s'}(a) ene(s, s')``.

        The switching-energy impulse is folded into an equivalent rate,
        exactly as in Section III.
        """
        sp = self.provider
        total = sp.power_rate(state.mode)
        if state.queue.is_stable:
            if action != state.mode:
                total += sp.switching_rate(state.mode, action) * sp.switching_energy(
                    state.mode, action
                )
        else:
            total += sp.switching_rate(state.mode, action) * sp.switching_energy(
                state.mode, action
            )
        return total

    def delay_cost(self, state: SystemState) -> float:
        """``C_sq(x)``: the number of waiting requests in *state*."""
        return float(state.queue.waiting_count)

    # -- CTMDP construction ------------------------------------------------------

    def _build_structure(self) -> "List[tuple]":
        """The weight-independent per-(state, action) construction data.

        Rate and impulse vectors are write-protected: they are shared by
        every CTMDP this model builds (``CTMDP.add_action`` stores them
        by reference), and ``generator_row`` copies before completing
        diagonals, so sharing is safe as long as nobody mutates them.
        """
        structure: List[tuple] = []
        n = self.n_states
        for state in self._states:
            for action in self.valid_actions(state):
                rates = np.zeros(n)
                impulses = np.zeros(n)
                for dest, rate in self.transition_rates(state, action).items():
                    j = self._index[dest]
                    rates[j] += rate
                    if dest.mode != state.mode:
                        impulses[j] = self.provider.switching_energy(
                            state.mode, dest.mode
                        )
                costs = CostRates(
                    power=self.effective_power_rate(state, action),
                    queue_length=self.delay_cost(state),
                    loss=self.loss_rate(state),
                )
                rates.setflags(write=False)
                impulses.setflags(write=False)
                structure.append((state, action, rates, impulses, costs))
        return structure

    def _sparse_skeleton_parts(self) -> tuple:
        """The weight-independent half of the sparse build, cached.

        Returns ``(skeleton, base_power, delay, term_pairs, term_vals)``
        where ``skeleton`` is a structural :class:`SparseCTMDP` (CSR
        rates, pair indexing, extra channels; costs all zero -- never
        solved directly) and the remaining arrays decompose each pair's
        effective cost rate so a per-weight overlay can reproduce the
        single-pass construction bit-for-bit: ``base_power`` is
        ``scale * pow(s)``, ``delay`` the ``C_sq`` count, and
        ``(term_pairs, term_vals)`` the folded switching-energy terms
        ``scaled_rate * ene`` in destination-index order.
        """
        if self._sparse_skeleton is not None:
            from repro.obs.runtime import active as obs_active

            ins = obs_active()
            if ins.enabled and ins.metrics is not None:
                ins.metrics.counter("solver.reuse.skeleton_hits").inc()
            return self._sparse_skeleton
        from repro.ctmdp.sparse import SparseCTMDP
        from repro.obs.runtime import active as obs_active

        scale = self.rate_scale
        states = self._states
        actions: "List[tuple]" = []
        pair_rows: "List[int]" = []
        cols: "List[int]" = []
        vals: "List[float]" = []
        base_power: "List[float]" = []
        delay: "List[float]" = []
        term_pairs: "List[int]" = []
        term_vals: "List[float]" = []
        extra: "Dict[str, List[float]]" = {
            "power": [], "queue_length": [], "loss": [],
        }
        pair = 0
        for state in states:
            acts = tuple(self.valid_actions(state))
            actions.append(acts)
            for action in acts:
                base_power.append(
                    scale * self.provider.power_rate(state.mode)
                )
                delay.append(self.delay_cost(state))
                entries = sorted(
                    (self._index[dest], dest, rate)
                    for dest, rate in self.transition_rates(state, action).items()
                )
                for j, dest, rate in entries:
                    scaled = rate * scale if scale != 1.0 else rate
                    pair_rows.append(pair)
                    cols.append(j)
                    vals.append(scaled)
                    if dest.mode != state.mode:
                        term_pairs.append(pair)
                        term_vals.append(
                            scaled * self.provider.switching_energy(
                                state.mode, dest.mode
                            )
                        )
                extra["power"].append(self.effective_power_rate(state, action))
                extra["queue_length"].append(self.delay_cost(state))
                extra["loss"].append(self.loss_rate(state))
                pair += 1
        skeleton = SparseCTMDP.from_coo(
            states,
            actions,
            np.asarray(pair_rows, dtype=np.intp),
            np.asarray(cols, dtype=np.intp),
            np.asarray(vals, dtype=float),
            np.zeros(pair),
            rate_scale=scale,
            extra={name: np.asarray(ch) for name, ch in extra.items()},
        )
        self._sparse_skeleton = (
            skeleton,
            np.asarray(base_power),
            np.asarray(delay),
            np.asarray(term_pairs, dtype=np.intp),
            np.asarray(term_vals),
        )
        ins = obs_active()
        if ins.enabled and ins.metrics is not None:
            ins.metrics.counter("solver.reuse.skeleton_builds").inc()
        return self._sparse_skeleton

    def _build_sparse_ctmdp(self, weight: float):
        """COO-direct sparse construction -- nothing of size
        ``O(pairs x states)`` is ever allocated, so SYS models with
        10^5+ states (large queue capacities) stay buildable.

        Split into the cached weight-independent skeleton
        (:meth:`_sparse_skeleton_parts`) plus a per-weight cost overlay:
        sibling models share every structural array, so a frontier sweep
        pays the Python construction loop once and each additional
        weight costs two O(pairs) vector ops.

        Numerically this mirrors :meth:`build_ctmdp`'s dense path entry
        for entry: the same scaled rates, and effective cost rates that
        fold the switching-energy impulses through the identical
        ``scale * power + (scale * weight) * queue + sum(rate * energy)``
        expression. The overlay replays that expression in the original
        order -- the base-plus-weight term first, then each energy term
        in destination-index order (``np.add.at`` accumulates in index
        order) -- so the overlaid costs match the single-pass build
        bit-for-bit.
        """
        skeleton, base_power, delay, term_pairs, term_vals = (
            self._sparse_skeleton_parts()
        )
        cost = base_power + (self.rate_scale * weight) * delay
        np.add.at(cost, term_pairs, term_vals)
        return skeleton.with_cost(cost)

    def build_ctmdp(self, weight: float = 0.0, backend: str = "dense") -> CTMDP:
        """Build the SYS CTMDP with cost ``C_pow + weight * C_sq``.

        The returned model also carries extra-cost channels ``"power"``,
        ``"queue_length"`` and ``"loss"`` for constrained optimization
        and post-hoc metric evaluation.

        ``backend="dense"`` (default) builds the dict-based
        :class:`CTMDP`; ``backend="sparse"`` builds a
        :class:`~repro.ctmdp.sparse.SparseCTMDP` directly from COO
        triples, never allocating per-pair dense rows -- the only way to
        build SYS models beyond ~10^4 states. ``backend="kron"`` is
        rejected with a typed error: the SYS transfer states (Section
        III) couple the mode and queue axes, so the joint generator has
        no tensor-sum structure to exploit.

        Built models are cached per (weight, backend) pair (a small
        LRU), so repeated calls with the same weight return the *same*
        model instance -- treat it as immutable, which
        :meth:`CTMDP.add_action` enforces for existing pairs anyway. The
        weight-independent transition structure is additionally shared
        across dense builds, so a frontier sweep pays the Python
        construction loop once.
        """
        if not np.isfinite(weight):
            raise InvalidModelError(f"performance weight must be finite, got {weight}")
        if weight < 0:
            raise InvalidModelError(f"performance weight must be >= 0, got {weight}")
        if backend in ("kron",):
            from repro.errors import SolverError

            raise SolverError(
                "SYS models have no Kronecker form: transfer states couple "
                "the service-provider and queue axes (build with "
                "backend='sparse' for large capacities instead)"
            )
        if backend not in ("dense", "sparse", "auto"):
            from repro.errors import SolverError

            raise SolverError(
                f"unknown build backend {backend!r}; choose 'dense', "
                "'sparse' or 'auto'"
            )
        if backend == "auto":
            from repro.ctmdp.backends import DENSE_STATE_LIMIT

            backend = "dense" if self.n_states <= DENSE_STATE_LIMIT else "sparse"
        key = (float(weight), backend)
        cached = self._ctmdp_cache.get(key)
        if cached is not None:
            self._ctmdp_cache.move_to_end(key)
            return cached
        if backend == "sparse":
            smdp = self._build_sparse_ctmdp(weight)
            self._ctmdp_cache[key] = smdp
            while len(self._ctmdp_cache) > self.CTMDP_CACHE_SIZE:
                self._ctmdp_cache.popitem(last=False)
            return smdp
        if self._structure is None:
            self._structure = self._build_structure()
        scale = self.rate_scale
        # Time rescaling: rates and cost *rates* get the factor; the
        # folded cost scale * power + (scale * weight) * queue equals
        # scale * (power + weight * queue) bit-for-bit when the factor
        # is a power of two. Impulse energies are pure costs (their
        # contribution scales through the rate vector they multiply),
        # and the extra channels stay in original observable units.
        # The scale == 1.0 path multiplies by exactly 1.0 but keeps
        # the shared unscaled vectors to avoid per-build copies.
        mdp = CTMDP(self._states, rate_scale=scale)
        for state, action, rates, impulses, costs in self._structure:
            if scale != 1.0:
                rates = rates * scale
                rates.setflags(write=False)
            mdp.add_action(
                state,
                action,
                rates=rates,
                cost_rate=scale * self.provider.power_rate(state.mode)
                + (scale * weight) * costs.queue_length,
                impulse_costs=impulses,
                extra_costs=costs.as_extra_costs(),
            )
        mdp.validate()
        self._ctmdp_cache[key] = mdp
        while len(self._ctmdp_cache) > self.CTMDP_CACHE_SIZE:
            self._ctmdp_cache.popitem(last=False)
        return mdp

    def clear_caches(self) -> None:
        """Drop every derived cache: built CTMDPs, the dense structure,
        and the sparse skeleton. Subsequent builds pay the full
        construction cost -- what benchmarks use to measure a genuinely
        cold leg against the reuse layer."""
        self._structure = None
        self._sparse_skeleton = None
        self._ctmdp_cache = OrderedDict()

    def __getstate__(self) -> dict:
        """Pickle without the derived caches (rebuilt lazily on demand)."""
        state = self.__dict__.copy()
        state["_structure"] = None
        state["_sparse_skeleton"] = None
        state["_ctmdp_cache"] = OrderedDict()
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PowerManagedSystemModel(modes={self.provider.modes!r}, "
            f"capacity={self.capacity}, lambda={self.requestor.rate:g}, "
            f"transfer_states={self.include_transfer_states})"
        )
