"""Model verification: do the Section-III constraints do their job?

The paper's action-validity constraints exist "to ensure that the
resulting SYS model is a connected Markov process" so that "the
limiting distribution of the state probability exists and is
independent of the initial state". This module checks that property
mechanically for a built model:

- :func:`verify_policy_unichain` -- one policy: its induced chain has a
  single recurrent class (the exact condition average-cost evaluation
  needs);
- :func:`verify_all_policies_unichain` -- *every* admissible
  deterministic policy, exhaustively for small models or by seeded
  random sampling above a configurable budget;
- :func:`verify_model` -- the full report: state-space composition,
  action-set non-emptiness, generator conservation, and the unichain
  sweep.

Useful when users define their own providers/constraints and want the
same guarantee the paper engineered for its model.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

import numpy as np

from repro.ctmdp.policy import Policy
from repro.dpm.system import PowerManagedSystemModel, SystemState
from repro.errors import InvalidModelError
from repro.markov.classify import classify_states, communicating_classes


@dataclass(frozen=True)
class VerificationReport:
    """Outcome of :func:`verify_model`.

    ``n_policies_checked`` counts the deterministic policies whose
    induced chains were classified; ``exhaustive`` says whether that
    was all of them. ``violations`` lists offending policies (empty
    for a healthy model).
    """

    n_states: int
    n_state_action_pairs: int
    n_policies_total: int
    n_policies_checked: int
    exhaustive: bool
    violations: "List[Dict[SystemState, str]]"

    @property
    def ok(self) -> bool:
        return not self.violations


def is_unichain(generator: np.ndarray) -> bool:
    """Single recurrent communicating class (transients allowed)."""
    kinds = classify_states(generator)
    recurrent_classes = [
        cls
        for cls in communicating_classes(generator)
        if all(kinds[i] == "recurrent" for i in cls)
    ]
    return len(recurrent_classes) == 1


def verify_policy_unichain(
    model: PowerManagedSystemModel,
    assignment: "Dict[SystemState, str]",
) -> bool:
    """True iff *assignment* induces a unichain joint process."""
    mdp = model.build_ctmdp(0.0)
    return is_unichain(Policy(mdp, assignment).generator_matrix())


def _policy_space(model: PowerManagedSystemModel) -> "Iterator[Dict]":
    states = model.states
    action_sets = [model.valid_actions(s) for s in states]
    for combo in itertools.product(*action_sets):
        yield dict(zip(states, combo))


def count_policies(model: PowerManagedSystemModel) -> int:
    """Number of admissible deterministic policies."""
    total = 1
    for state in model.states:
        total *= len(model.valid_actions(state))
    return total


def verify_all_policies_unichain(
    model: PowerManagedSystemModel,
    sample_budget: int = 500,
    seed: int = 0,
) -> VerificationReport:
    """Sweep the deterministic policy space for multichain violations.

    Exhaustive when the space is within *sample_budget*; otherwise a
    seeded uniform sample of that size (plus the all-first and all-last
    corner policies, which empirically catch lazy/greedy pathologies).
    """
    mdp = model.build_ctmdp(0.0)
    total = count_policies(model)
    violations: List[Dict[SystemState, str]] = []
    if total <= sample_budget:
        assignments = list(_policy_space(model))
        exhaustive = True
    else:
        rng = np.random.default_rng(seed)
        states = model.states
        action_sets = [model.valid_actions(s) for s in states]
        assignments = [
            dict(zip(states, [acts[0] for acts in action_sets])),
            dict(zip(states, [acts[-1] for acts in action_sets])),
        ]
        for _ in range(sample_budget - 2):
            assignments.append(
                {
                    s: acts[rng.integers(len(acts))]
                    for s, acts in zip(states, action_sets)
                }
            )
        exhaustive = False
    for assignment in assignments:
        g = Policy(mdp, assignment).generator_matrix()
        if not is_unichain(g):
            violations.append(assignment)
    return VerificationReport(
        n_states=model.n_states,
        n_state_action_pairs=len(mdp.state_action_pairs()),
        n_policies_total=total,
        n_policies_checked=len(assignments),
        exhaustive=exhaustive,
        violations=violations,
    )


def verify_model(
    model: PowerManagedSystemModel,
    sample_budget: int = 500,
    seed: int = 0,
) -> VerificationReport:
    """Structural checks plus the unichain sweep.

    Raises
    ------
    InvalidModelError
        If a structural invariant fails (these indicate bugs, not
        modeling choices): generator rows not conserving, empty action
        sets, or transfer states attached to inactive modes.
    """
    mdp = model.build_ctmdp(0.0)
    for state in model.states:
        if state.queue.is_transfer and not model.provider.is_active(state.mode):
            raise InvalidModelError(
                f"transfer state {state!r} attached to an inactive mode"
            )
        if not model.valid_actions(state):  # pragma: no cover - guarded upstream
            raise InvalidModelError(f"state {state!r} has no valid action")
    for state, action in mdp.state_action_pairs():
        row = mdp.generator_row(state, action)
        # Conservation is checked relative to the row's own magnitude:
        # an absolute threshold would reject every legitimate row once
        # rates reach ~1e6x the tolerance and pass any broken row whose
        # rates sit far below it.
        scale = float(np.abs(row).sum())
        if abs(float(row.sum())) > 1e-9 * scale:
            raise InvalidModelError(
                f"generator row of {state!r}/{action!r} sums to {row.sum():g} "
                f"against magnitude {scale:g}"
            )
    return verify_all_policies_unichain(model, sample_budget=sample_budget, seed=seed)
